//! Bring your own application: write a kernel in the embedded IR, compile
//! it to the native ISA, and let FITS synthesize a bespoke 16-bit
//! instruction set for it.
//!
//! The program below is a little fixed-point IIR filter plus a histogram —
//! nothing from the benchmark suite — demonstrating that the synthesis
//! pipeline is generic over applications, which is the whole point of a
//! *framework-based* tuning synthesis.
//!
//! ```sh
//! cargo run --example custom_kernel --release
//! ```

use powerfits::core::{FitsFlow, Tier};
use powerfits::isa::DATA_BASE;
use powerfits::kernels::builder::{FnBuilder, ModuleBuilder};
use powerfits::kernels::ir::{BinOp, CmpOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- write the application in the IR --------------------------------
    let n_samples = 512u32;
    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);

    // A one-pole IIR low-pass over a synthetic ramp-with-wrap signal:
    //   y += (x - y) >> 3
    // followed by a 16-bin histogram of the filtered output.
    let hist = f.imm(DATA_BASE); // 16 zeroed words live at the data base
    let x = f.imm(0u32);
    let y = f.imm(0u32);
    let acc = f.imm(0u32);
    f.repeat(n_samples, |f, i| {
        // x = (x + 37) & 1023  — a deterministic sawtooth-ish source
        let nx0 = f.add(x, 37u32);
        let nx = f.and(nx0, 1023u32);
        f.copy(x, nx);
        // y += (x - y) >> 3
        let diff = f.sub(x, y);
        let step = f.sar(diff, 3u32);
        let ny = f.add(y, step);
        f.copy(y, ny);
        // hist[y >> 6] += 1
        let bin = f.shr(y, 6u32);
        let clamped = f.and(bin, 15u32);
        let off = f.shl(clamped, 2u32);
        let slot = f.add(hist, off);
        let count = f.load_w(slot, 0);
        let bumped = f.add(count, 1u32);
        f.store_w(slot, 0, bumped);
        // fold the output for the checksum
        let r = f.bin(BinOp::Ror, acc, 31u32);
        f.bin_into(acc, BinOp::Xor, r, ny);
        let _ = i;
    });
    // Emit the populated histogram bins.
    f.repeat(16u32, |f, b| {
        let off = f.shl(b, 2u32);
        let slot = f.add(hist, off);
        let count = f.load_w(slot, 0);
        f.if_(f.cmp(CmpOp::Ne, count, 0u32), |f| f.emit(count));
    });
    f.ret(Some(acc));
    mb.push(f.finish());
    let module = mb.finish(vec![0u8; 64]);

    // ---- compile natively, then synthesize ------------------------------
    let program = powerfits::kernels::codegen::compile(&module)?;
    println!("custom app: {} native instructions", program.text.len());

    let outcome = FitsFlow::new().run(&program)?;
    println!(
        "synthesized {} opcodes ({} application-specific), {} dictionary entries",
        outcome.config().ops.len(),
        outcome.config().tier_ops(Tier::Ais).count(),
        outcome.config().dicts.entries(),
    );
    println!(
        "static 1-to-1 {:.1}%  dynamic 1-to-1 {:.1}%  code ratio {:.3}",
        100.0 * outcome.mapping.static_one_to_one_rate(),
        100.0 * outcome.dynamic_rate(),
        outcome.code_ratio(program.code_bytes()),
    );
    println!(
        "decoder configuration: {} bits of programmable state",
        outcome.config().config_bits()
    );
    println!(
        "verified: exit {:#010x}, {} emitted histogram bins match natively",
        outcome.fits_run.as_ref().expect("verified").exit_code,
        16
    );
    Ok(())
}
