//! Quickstart: run the complete FITS design flow on one benchmark and
//! inspect what it synthesized — the five stages of the paper's Figure 1
//! in about thirty lines.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use powerfits::core::FitsFlow;
use powerfits::kernels::kernels::{Kernel, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The CRC32 kernel — the same program the paper uses to illustrate its
    // synthesized instruction formats (Figure 2).
    let kernel = Kernel::Crc32;
    let scale = Scale::test();
    let program = kernel.compile(scale)?;
    println!(
        "native program: {} AR32 instructions ({} bytes of text)",
        program.text.len(),
        program.code_bytes()
    );

    // Profile -> synthesize -> translate -> configure -> execute (with
    // built-in differential verification against the native run).
    let outcome = FitsFlow::new().run(&program)?;

    println!("\n== mapping (the paper's Figures 3 and 4)");
    println!(
        "  static 1-to-1:  {:6.2}%",
        100.0 * outcome.mapping.static_one_to_one_rate()
    );
    println!("  dynamic 1-to-1: {:6.2}%", 100.0 * outcome.dynamic_rate());

    println!("\n== code size (Figure 5)");
    println!(
        "  FITS binary: {} bytes ({:.1}% of native)",
        outcome.fits.code_bytes(),
        100.0 * outcome.code_ratio(program.code_bytes())
    );

    println!("\n== the synthesized instruction set (Figure 2's real contents)");
    print!("{}", outcome.config());

    let run = outcome.fits_run.expect("flow verifies by default");
    println!(
        "verified: FITS exit code {:#010x} matches native execution",
        run.exit_code
    );
    Ok(())
}
