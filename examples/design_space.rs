//! Design-space exploration: sweep the I-cache size for both ISAs on a few
//! benchmarks and watch the paper's headline effect appear — the FITS
//! binary behaves like it has a cache twice as large ("this instruction
//! packing effect makes FITS caches seem virtually twice as large as their
//! true physical size", §6.4.1).
//!
//! ```sh
//! cargo run --example design_space --release
//! ```

use powerfits::core::{FitsFlow, FitsSet};
use powerfits::kernels::kernels::{Kernel, Scale};
use powerfits::power::{cache_power, TechParams};
use powerfits::sim::{Ar32Set, Machine, Sa1100Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale { n: 256 };
    let tech = TechParams::sa1100();
    let sizes = [4 * 1024u32, 8 * 1024, 16 * 1024, 32 * 1024];

    println!(
        "{:<16} {:>7}  {:>12} {:>10} {:>12} {:>10}",
        "kernel", "i$ size", "ARM miss/M", "ARM mW", "FITS miss/M", "FITS mW"
    );
    for kernel in [Kernel::Sha, Kernel::SusanCorners, Kernel::Crc32] {
        let program = kernel.compile(scale)?;
        let flow = FitsFlow::new().run(&program)?;
        for size in sizes {
            let sa = Sa1100Config::icache_16k().with_icache_bytes(size)?;

            let mut arm = Machine::new(Ar32Set::load(&program));
            let (_, arm_sim) = arm.run_timed(&sa)?;
            let arm_power = cache_power(&sa.icache, &arm_sim.icache, arm_sim.cycles, &tech);

            let mut fits = Machine::new(FitsSet::load(&flow.fits)?);
            let (_, fits_sim) = fits.run_timed(&sa)?;
            let fits_power = cache_power(&sa.icache, &fits_sim.icache, fits_sim.cycles, &tech);

            println!(
                "{:<16} {:>5}KB  {:>12.0} {:>10.2} {:>12.0} {:>10.2}",
                kernel.name(),
                size / 1024,
                arm_sim.icache.misses_per_million(),
                1e3 * arm_power.average_w(),
                fits_sim.icache.misses_per_million(),
                1e3 * fits_power.average_w(),
            );
        }
        println!();
    }
    println!("Note how the FITS column at N KB tracks the ARM column at 2N KB.");
    Ok(())
}
