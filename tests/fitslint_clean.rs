//! Suite-wide verification gate: every shipped kernel's synthesized
//! instruction set and translated binary must pass all four static analysis
//! families (`ENC`, `CFI`, `DF`, `TV`) at the test scale — the same check
//! the `fitslint --all` CI job runs.

#![allow(clippy::unwrap_used)]

use powerfits::kernels::kernels::{Kernel, Scale};
use powerfits::verify::lint_kernel;

#[test]
fn every_kernel_lints_clean() {
    let mut dirty = Vec::new();
    for &kernel in Kernel::ALL {
        let report = lint_kernel(kernel, Scale::test()).unwrap();
        if !report.is_clean() {
            dirty.push(report.render_text());
        }
    }
    assert!(
        dirty.is_empty(),
        "kernels failed static verification:\n{}",
        dirty.join("\n")
    );
}

#[test]
fn reports_render_machine_readable_json() {
    let report = lint_kernel(Kernel::Crc32, Scale::test()).unwrap();
    let json = report.render_json();
    assert!(json.starts_with("{\"name\":\"crc32\""));
    assert!(json.contains("\"clean\":true"));
    assert!(json.ends_with("]}"));
}
