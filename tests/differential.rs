//! The reproduction's central correctness property, checked over the whole
//! suite: for every kernel, the pure-Rust reference, the native AR32
//! simulation and the synthesized-FITS simulation must produce identical
//! exit codes and emit streams.

#![allow(clippy::unwrap_used)]

use powerfits::core::FitsFlow;
use powerfits::kernels::kernels::{Kernel, Scale};
use powerfits::sim::{fold_emitted, Ar32Set, Machine};

fn check_kernel(kernel: Kernel) {
    let scale = Scale::test();
    let program = kernel.compile(scale).expect("kernel compiles");

    // Reference vs native.
    let reference = kernel.reference(scale);
    let mut machine = Machine::new(Ar32Set::load(&program));
    let native = machine.run().expect("native run");
    assert_eq!(
        native.exit_code, reference.exit_code,
        "{kernel}: native exit code diverges from the reference"
    );
    assert_eq!(
        native.emitted,
        fold_emitted(&reference.emitted),
        "{kernel}: native emit stream diverges from the reference"
    );

    // Native vs FITS (the flow verifies internally; assert it did).
    let outcome = FitsFlow::new().run(&program).expect("FITS flow");
    let fits = outcome.fits_run.expect("verification enabled");
    assert_eq!(fits.exit_code, native.exit_code, "{kernel}: FITS exit code");
    assert_eq!(fits.emitted, native.emitted, "{kernel}: FITS emit stream");
}

macro_rules! differential_tests {
    ($($name:ident => $kernel:ident),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                check_kernel(Kernel::$kernel);
            }
        )+
    };
}

differential_tests! {
    bitcount_three_way => Bitcount,
    qsort_three_way => Qsort,
    susan_smoothing_three_way => SusanSmoothing,
    susan_edges_three_way => SusanEdges,
    susan_corners_three_way => SusanCorners,
    jpeg_dct_three_way => JpegDct,
    lame_filter_three_way => LameFilter,
    dijkstra_three_way => Dijkstra,
    patricia_three_way => Patricia,
    stringsearch_three_way => StringSearch,
    ispell_three_way => Ispell,
    blowfish_enc_three_way => BlowfishEnc,
    blowfish_dec_three_way => BlowfishDec,
    rijndael_enc_three_way => RijndaelEnc,
    rijndael_dec_three_way => RijndaelDec,
    sha_three_way => Sha,
    adpcm_enc_three_way => AdpcmEnc,
    adpcm_dec_three_way => AdpcmDec,
    crc32_three_way => Crc32,
    fft_three_way => Fft,
    gsm_three_way => Gsm,
}

#[test]
fn differential_holds_at_a_second_scale() {
    // Guard against scale-dependent divergence (dictionary pressure grows
    // with input size).
    let scale = Scale { n: 160 };
    for kernel in [Kernel::Crc32, Kernel::Sha, Kernel::Patricia, Kernel::Fft] {
        let program = kernel.compile(scale).expect("compiles");
        let reference = kernel.reference(scale);
        let native = Machine::new(Ar32Set::load(&program)).run().expect("runs");
        assert_eq!(native.exit_code, reference.exit_code, "{kernel} at n=160");
        let outcome = FitsFlow::new().run(&program).expect("flow");
        assert_eq!(
            outcome.fits_run.expect("verified").exit_code,
            native.exit_code,
            "{kernel} FITS at n=160"
        );
    }
}
