//! Property tests over the synthesis/translation pipeline: random
//! straight-line IR programs must survive the full FITS flow with exact
//! behavioural equivalence, and the synthesized configurations must be
//! structurally sound.

use powerfits::core::{synthesize, FitsFlow, SynthOptions};
use powerfits::isa::DATA_BASE;
use powerfits::kernels::builder::{FnBuilder, ModuleBuilder};
use powerfits::kernels::codegen::compile;
use powerfits::kernels::ir::{BinOp, CmpOp, Val};
use proptest::prelude::*;

/// A recipe for one random statement.
#[derive(Clone, Debug)]
enum Step {
    Imm(u32),
    Bin(u8, usize, usize),
    BinImm(u8, usize, u32),
    Not(usize),
    StoreLoad(usize, u8),
    CondInc(u8, usize, u32),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u32>().prop_map(Step::Imm),
        (0u8..11, 0usize..8, 0usize..8).prop_map(|(o, a, b)| Step::Bin(o, a, b)),
        (0u8..11, 0usize..8, any::<u32>()).prop_map(|(o, a, v)| Step::BinImm(o, a, v)),
        (0usize..8).prop_map(Step::Not),
        (0usize..8, 0u8..6).prop_map(|(a, s)| Step::StoreLoad(a, s)),
        (0u8..10, 0usize..8, any::<u32>()).prop_map(|(c, a, v)| Step::CondInc(c, a, v)),
    ]
}

fn bin_of(code: u8) -> BinOp {
    match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::And,
        3 => BinOp::Or,
        4 => BinOp::Xor,
        5 => BinOp::Bic,
        6 => BinOp::Shl,
        7 => BinOp::Shr,
        8 => BinOp::Sar,
        9 => BinOp::Ror,
        _ => BinOp::Mul,
    }
}

fn cmp_of(code: u8) -> CmpOp {
    match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::LtS,
        3 => CmpOp::LeS,
        4 => CmpOp::GtS,
        5 => CmpOp::GeS,
        6 => CmpOp::LtU,
        7 => CmpOp::LeU,
        8 => CmpOp::GtU,
        _ => CmpOp::GeU,
    }
}

/// Builds a program from the recipe: a pool of eight live values mutated by
/// each step, folded into a final checksum.
fn build(steps: &[Step]) -> powerfits::isa::Program {
    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let base = f.imm(DATA_BASE);
    let mut pool: Vec<Val> = (0..8).map(|i| f.imm(0x1234_5678u32.wrapping_mul(i + 1))).collect();
    for step in steps {
        match step {
            Step::Imm(v) => {
                let nv = f.imm(*v);
                pool.rotate_left(1);
                pool[0] = nv;
            }
            Step::Bin(op, a, b) => {
                let nv = f.bin(bin_of(*op), pool[*a], pool[*b]);
                pool[*a] = nv;
            }
            Step::BinImm(op, a, v) => {
                let nv = f.bin(bin_of(*op), pool[*a], *v);
                pool[*a] = nv;
            }
            Step::Not(a) => {
                let nv = f.not(pool[*a]);
                pool[*a] = nv;
            }
            Step::StoreLoad(a, slot) => {
                f.store_w(base, i32::from(*slot) * 4, pool[*a]);
                let nv = f.load_w(base, i32::from(*slot) * 4);
                pool[*a] = nv;
            }
            Step::CondInc(c, a, v) => {
                f.if_(f.cmp(cmp_of(*c), pool[*a], *v), |f| {
                    let nv = f.add(pool[*a], 1u32);
                    f.copy(pool[*a], nv);
                });
            }
        }
    }
    let mut acc = f.imm(0u32);
    for v in &pool {
        let r = f.bin(BinOp::Ror, acc, 31u32);
        acc = f.xor(r, *v);
    }
    f.emit(acc);
    f.ret(Some(acc));
    mb.push(f.finish());
    compile(&mb.finish(vec![0u8; 64])).expect("random program compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flagship property: the FITS flow is semantics-preserving on
    /// arbitrary programs, not just the curated suite (`FitsFlow` verifies
    /// the translated binary against the native run internally).
    #[test]
    fn flow_preserves_semantics_on_random_programs(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let program = build(&steps);
        let flow = FitsFlow {
            min_static_rate: 0.0, // synthetic soups may map poorly; only
                                  // correctness is asserted here
            ..FitsFlow::default()
        };
        let outcome = flow.run(&program).expect("flow succeeds");
        prop_assert!(outcome.fits_run.is_some(), "verification ran");
    }

    /// Synthesized configurations are prefix-free and within the opcode
    /// space budget for arbitrary programs.
    #[test]
    fn synthesis_is_structurally_sound(steps in proptest::collection::vec(arb_step(), 1..40)) {
        let program = build(&steps);
        let profile = powerfits::core::profile(&program).expect("profiles");
        let synthesis = synthesize(&profile, &SynthOptions::default());
        prop_assert!(synthesis.config.is_prefix_free());
        prop_assert!(synthesis.report.space_used <= 65536);
        // Every 16-bit word in a translated binary must decode uniquely.
        let translation = powerfits::core::translate(&program, &synthesis.config)
            .expect("translates");
        for word in &translation.fits.instrs {
            prop_assert!(
                translation.fits.config.match_word(*word).is_some(),
                "word {word:#06x} must decode"
            );
        }
    }
}
