//! Property tests over the synthesis/translation pipeline: random
//! straight-line IR programs must survive the full FITS flow with exact
//! behavioural equivalence, and the synthesized configurations must be
//! structurally sound — including under the `fits-verify` static analyses.
//!
//! Randomness comes from the workspace's deterministic `fits-rng` stream,
//! so failures reproduce exactly.

#![allow(clippy::unwrap_used)]

use fits_rng::StdRng;
use powerfits::core::{synthesize, FitsFlow, SynthOptions};
use powerfits::isa::DATA_BASE;
use powerfits::kernels::builder::{FnBuilder, ModuleBuilder};
use powerfits::kernels::codegen::compile;
use powerfits::kernels::ir::{BinOp, CmpOp, Val};

/// A recipe for one random statement.
#[derive(Clone, Debug)]
enum Step {
    Imm(u32),
    Bin(u8, usize, usize),
    BinImm(u8, usize, u32),
    Not(usize),
    StoreLoad(usize, u8),
    CondInc(u8, usize, u32),
}

fn arb_step(r: &mut StdRng) -> Step {
    match r.gen_range(0..6u8) {
        0 => Step::Imm(r.gen()),
        1 => Step::Bin(
            r.gen_range(0..11u8),
            r.gen_range(0..8usize),
            r.gen_range(0..8usize),
        ),
        2 => Step::BinImm(r.gen_range(0..11u8), r.gen_range(0..8usize), r.gen()),
        3 => Step::Not(r.gen_range(0..8usize)),
        4 => Step::StoreLoad(r.gen_range(0..8usize), r.gen_range(0..6u8)),
        _ => Step::CondInc(r.gen_range(0..10u8), r.gen_range(0..8usize), r.gen()),
    }
}

fn arb_steps(r: &mut StdRng, max: usize) -> Vec<Step> {
    let n = r.gen_range(1..max);
    (0..n).map(|_| arb_step(r)).collect()
}

fn bin_of(code: u8) -> BinOp {
    match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::And,
        3 => BinOp::Or,
        4 => BinOp::Xor,
        5 => BinOp::Bic,
        6 => BinOp::Shl,
        7 => BinOp::Shr,
        8 => BinOp::Sar,
        9 => BinOp::Ror,
        _ => BinOp::Mul,
    }
}

fn cmp_of(code: u8) -> CmpOp {
    match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::LtS,
        3 => CmpOp::LeS,
        4 => CmpOp::GtS,
        5 => CmpOp::GeS,
        6 => CmpOp::LtU,
        7 => CmpOp::LeU,
        8 => CmpOp::GtU,
        _ => CmpOp::GeU,
    }
}

/// Builds a program from the recipe: a pool of eight live values mutated by
/// each step, folded into a final checksum.
fn build(steps: &[Step]) -> powerfits::isa::Program {
    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let base = f.imm(DATA_BASE);
    let mut pool: Vec<Val> = (0..8)
        .map(|i| f.imm(0x1234_5678u32.wrapping_mul(i + 1)))
        .collect();
    for step in steps {
        match step {
            Step::Imm(v) => {
                let nv = f.imm(*v);
                pool.rotate_left(1);
                pool[0] = nv;
            }
            Step::Bin(op, a, b) => {
                let nv = f.bin(bin_of(*op), pool[*a], pool[*b]);
                pool[*a] = nv;
            }
            Step::BinImm(op, a, v) => {
                let nv = f.bin(bin_of(*op), pool[*a], *v);
                pool[*a] = nv;
            }
            Step::Not(a) => {
                let nv = f.not(pool[*a]);
                pool[*a] = nv;
            }
            Step::StoreLoad(a, slot) => {
                f.store_w(base, i32::from(*slot) * 4, pool[*a]);
                let nv = f.load_w(base, i32::from(*slot) * 4);
                pool[*a] = nv;
            }
            Step::CondInc(c, a, v) => {
                f.if_(f.cmp(cmp_of(*c), pool[*a], *v), |f| {
                    let nv = f.add(pool[*a], 1u32);
                    f.copy(pool[*a], nv);
                });
            }
        }
    }
    let mut acc = f.imm(0u32);
    for v in &pool {
        let r = f.bin(BinOp::Ror, acc, 31u32);
        acc = f.xor(r, *v);
    }
    f.emit(acc);
    f.ret(Some(acc));
    mb.push(f.finish());
    compile(&mb.finish(vec![0u8; 64])).expect("random program compiles")
}

/// The flagship property: the FITS flow is semantics-preserving on
/// arbitrary programs, not just the curated suite (`FitsFlow` verifies the
/// translated binary against the native run internally, and the static
/// validator checks the triple before anything executes).
#[test]
fn flow_preserves_semantics_on_random_programs() {
    let mut r = StdRng::seed_from_u64(0xf175);
    for case in 0..48 {
        let steps = arb_steps(&mut r, 60);
        let program = build(&steps);
        let flow = FitsFlow {
            min_static_rate: 0.0, // synthetic soups may map poorly; only
            // correctness is asserted here
            ..powerfits::verify::verified_flow()
        };
        let outcome = flow
            .run(&program)
            .unwrap_or_else(|e| panic!("case {case}: flow fails: {e}"));
        assert!(outcome.fits_run.is_some(), "verification ran");
    }
}

/// Synthesized configurations are prefix-free and within the opcode space
/// budget for arbitrary programs, and the translated binary is clean under
/// every `fitslint` analysis family.
#[test]
fn synthesis_is_structurally_sound() {
    let mut r = StdRng::seed_from_u64(0x50d4);
    for case in 0..48 {
        let steps = arb_steps(&mut r, 40);
        let program = build(&steps);
        let profile = powerfits::core::profile(&program).expect("profiles");
        let synthesis = synthesize(&profile, &SynthOptions::default());
        assert!(synthesis.config.is_prefix_free(), "case {case}");
        assert!(synthesis.report.space_used <= 65536, "case {case}");
        // Every 16-bit word in a translated binary must decode uniquely.
        let translation =
            powerfits::core::translate(&program, &synthesis.config).expect("translates");
        for word in &translation.fits.instrs {
            assert!(
                translation.fits.config.match_word(*word).is_some(),
                "case {case}: word {word:#06x} must decode"
            );
        }
        // And the whole triple must pass static verification.
        let report = powerfits::verify::analyze(&program, &synthesis, &translation);
        assert!(
            report.is_clean(),
            "case {case}: static analysis found defects:\n{}",
            report.render_text()
        );
    }
}
