//! Property tests over the synthesis/translation pipeline: random
//! straight-line IR programs must survive the full FITS flow with exact
//! behavioural equivalence, and the synthesized configurations must be
//! structurally sound — including under the `fits-verify` static analyses.
//!
//! Randomness comes from the workspace's deterministic `fits-rng` stream,
//! so failures reproduce exactly.

#![allow(clippy::unwrap_used)]

mod common;

use common::{arb_steps, build};
use fits_rng::StdRng;
use powerfits::core::{synthesize, FitsFlow, SynthOptions};

/// The flagship property: the FITS flow is semantics-preserving on
/// arbitrary programs, not just the curated suite (`FitsFlow` verifies the
/// translated binary against the native run internally, and the static
/// validator checks the triple before anything executes).
#[test]
fn flow_preserves_semantics_on_random_programs() {
    let mut r = StdRng::seed_from_u64(0xf175);
    for case in 0..48 {
        let steps = arb_steps(&mut r, 60);
        let program = build(&steps);
        let flow = FitsFlow {
            min_static_rate: 0.0, // synthetic soups may map poorly; only
            // correctness is asserted here
            ..powerfits::verify::verified_flow()
        };
        let outcome = flow
            .run(&program)
            .unwrap_or_else(|e| panic!("case {case}: flow fails: {e}"));
        assert!(outcome.fits_run.is_some(), "verification ran");
    }
}

/// Synthesized configurations are prefix-free and within the opcode space
/// budget for arbitrary programs, and the translated binary is clean under
/// every `fitslint` analysis family.
#[test]
fn synthesis_is_structurally_sound() {
    let mut r = StdRng::seed_from_u64(0x50d4);
    for case in 0..48 {
        let steps = arb_steps(&mut r, 40);
        let program = build(&steps);
        let profile = powerfits::core::profile(&program).expect("profiles");
        let synthesis = synthesize(&profile, &SynthOptions::default());
        assert!(synthesis.config.is_prefix_free(), "case {case}");
        assert!(synthesis.report.space_used <= 65536, "case {case}");
        // Every 16-bit word in a translated binary must decode uniquely.
        let translation =
            powerfits::core::translate(&program, &synthesis.config).expect("translates");
        for word in &translation.fits.instrs {
            assert!(
                translation.fits.config.match_word(*word).is_some(),
                "case {case}: word {word:#06x} must decode"
            );
        }
        // And the whole triple must pass static verification.
        let report = powerfits::verify::analyze(&program, &synthesis, &translation);
        assert!(
            report.is_clean(),
            "case {case}: static analysis found defects:\n{}",
            report.render_text()
        );
    }
}
