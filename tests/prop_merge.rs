//! Property tests over the merge algebra behind multi-application
//! synthesis: weighted profile merging must be commutative, invariant
//! under proportional weight respelling, associative under `scale`
//! re-weighting, idempotent on a single member — and the synthesis it
//! feeds must be byte-identical across runs, which is the contract the
//! content-addressed serving cache rests on.
//!
//! Randomness comes from the workspace's deterministic `fits-rng` stream,
//! so failures reproduce exactly.

#![allow(clippy::unwrap_used)]

mod common;

use common::{arb_steps, build};
use fits_rng::StdRng;
use powerfits::core::{
    canonical_text, profile, profile_hash, synthesize, synthesize_multi, MultiMember, MultiOptions,
    Profile, SynthOptions,
};
use powerfits::kernels::kernels::{Kernel, Scale};

/// A pool of random profiles plus their weights for one property case.
fn arb_profiles(r: &mut StdRng, count: usize) -> Vec<Profile> {
    (0..count)
        .map(|_| {
            let program = build(&arb_steps(r, 40));
            profile(&program).expect("random program profiles")
        })
        .collect()
}

/// Small positive integer weights: exact through the f64 canonicalization,
/// so every algebraic identity below must hold bit-for-bit.
fn arb_weight(r: &mut StdRng) -> f64 {
    f64::from(r.gen_range(1..9u8))
}

#[test]
fn merge_is_commutative_under_member_permutation() {
    let mut r = StdRng::seed_from_u64(0x4d65);
    for case in 0..24 {
        let profiles = arb_profiles(&mut r, 3);
        let weights: Vec<f64> = (0..3).map(|_| arb_weight(&mut r)).collect();
        let forward: Vec<(&Profile, f64)> = profiles.iter().zip(weights.iter().copied()).collect();
        // Rotate and swap: two non-trivial permutations of the same mix.
        let rotated = [forward[1], forward[2], forward[0]];
        let swapped = [forward[2], forward[1], forward[0]];
        let a = Profile::merge_weighted(&forward).unwrap();
        let b = Profile::merge_weighted(&rotated).unwrap();
        let c = Profile::merge_weighted(&swapped).unwrap();
        assert_eq!(
            canonical_text(&a.profile),
            canonical_text(&b.profile),
            "case {case}: rotation changed the merge"
        );
        assert_eq!(
            profile_hash(&a.profile),
            profile_hash(&c.profile),
            "case {case}: swap changed the merge"
        );
    }
}

#[test]
fn merge_is_invariant_under_proportional_weights() {
    let mut r = StdRng::seed_from_u64(0x70f2);
    for case in 0..24 {
        let profiles = arb_profiles(&mut r, 2);
        let weights: Vec<f64> = (0..2).map(|_| arb_weight(&mut r)).collect();
        let k = f64::from(r.gen_range(2..6u8));
        let base: Vec<(&Profile, f64)> = profiles.iter().zip(weights.iter().copied()).collect();
        let scaled: Vec<(&Profile, f64)> =
            profiles.iter().zip(weights.iter().map(|w| w * k)).collect();
        let fractional: Vec<(&Profile, f64)> =
            profiles.iter().zip(weights.iter().map(|w| w / k)).collect();
        let a = Profile::merge_weighted(&base).unwrap();
        let b = Profile::merge_weighted(&scaled).unwrap();
        let c = Profile::merge_weighted(&fractional).unwrap();
        assert_eq!(
            a.weights, b.weights,
            "case {case}: canonical weights differ"
        );
        assert_eq!(
            profile_hash(&a.profile),
            profile_hash(&b.profile),
            "case {case}: x{k} respelling changed the merge"
        );
        assert_eq!(
            profile_hash(&a.profile),
            profile_hash(&c.profile),
            "case {case}: /{k} respelling changed the merge"
        );
    }
}

#[test]
fn merge_is_associative_under_scale_reweighting() {
    let mut r = StdRng::seed_from_u64(0xa550);
    for case in 0..16 {
        let profiles = arb_profiles(&mut r, 3);
        // A uniform mix: the one weight vector every sub-merge
        // canonicalizes exactly (non-uniform sub-vectors are divided by
        // their own gcd, which shifts the mix relative to the flat merge).
        let flat: Vec<(&Profile, f64)> = profiles.iter().map(|p| (p, 1.0)).collect();
        let all = Profile::merge_weighted(&flat).unwrap();
        // Merge the first two, then fold in the third. The inner result
        // was divided by its collective gcd, so it re-enters the outer
        // merge carrying `scale` as its weight (see the `Merged::scale`
        // docs) — with that re-weighting the composition must equal the
        // flat three-way merge exactly.
        let inner = Profile::merge_weighted(&flat[..2]).unwrap();
        #[allow(clippy::cast_precision_loss)]
        let inner_weight = inner.scale as f64;
        let composed = Profile::merge_weighted(&[(&inner.profile, inner_weight), flat[2]]).unwrap();
        assert_eq!(
            canonical_text(&all.profile),
            canonical_text(&composed.profile),
            "case {case}: ((a,b),c) != (a,b,c)"
        );
    }
}

#[test]
fn self_merge_is_identity() {
    let mut r = StdRng::seed_from_u64(0x1de4);
    for case in 0..16 {
        let [p] = &arb_profiles(&mut r, 1)[..] else {
            unreachable!()
        };
        let solo = Profile::merge_weighted(&[(p, 1.0)]).unwrap();
        // Merging a profile with itself (any mix) is merging it alone.
        let doubled = Profile::merge_weighted(&[(p, 1.0), (p, 1.0)]).unwrap();
        let skewed = Profile::merge_weighted(&[(p, 1.0), (p, 3.0)]).unwrap();
        assert_eq!(
            canonical_text(&solo.profile),
            canonical_text(&doubled.profile),
            "case {case}: a+a != a"
        );
        assert_eq!(
            profile_hash(&solo.profile),
            profile_hash(&skewed.profile),
            "case {case}: a+3a != a"
        );
        // And the canonical units feed synthesis unchanged: the solo
        // merge and the raw profile synthesize the same decoder.
        let raw = synthesize(p, &SynthOptions::default());
        let merged = synthesize(&solo.profile, &SynthOptions::default());
        assert_eq!(
            raw.config, merged.config,
            "case {case}: canonical units changed the synthesized decoder"
        );
    }
}

#[test]
fn merged_synthesis_is_byte_identical_across_runs() {
    let kernels = [Kernel::Crc32, Kernel::Bitcount, Kernel::Sha];
    let programs: Vec<_> = kernels
        .iter()
        .map(|k| k.compile(Scale::test()).unwrap())
        .collect();
    let profiles: Vec<_> = programs.iter().map(|p| profile(p).unwrap()).collect();
    let members: Vec<MultiMember<'_>> = kernels
        .iter()
        .zip(&programs)
        .zip(&profiles)
        .map(|((k, program), profile)| MultiMember {
            name: k.name(),
            program,
            profile,
        })
        .collect();
    let weights = [1.0, 2.0, 1.0];
    let options = MultiOptions::default();
    let first = synthesize_multi(&members, &weights, &options).unwrap();
    let second = synthesize_multi(&members, &weights, &options).unwrap();
    assert_eq!(first.merged_hash, second.merged_hash);
    assert_eq!(
        first.synthesis.config, second.synthesis.config,
        "shared decoder must be identical across runs"
    );
    assert_eq!(
        canonical_text(&first.merged.profile),
        canonical_text(&second.merged.profile)
    );
    for (a, b) in first.members.iter().zip(&second.members) {
        assert_eq!(a.translation.fits.instrs, b.translation.fits.instrs);
        assert_eq!(a.shared_expansion.to_bits(), b.shared_expansion.to_bits());
    }
    // Proportional weights reach the same outcome through the service
    // path's integer canonicalization too.
    let respelled = synthesize_multi(&members, &[2.0, 4.0, 2.0], &options).unwrap();
    assert_eq!(first.merged_hash, respelled.merged_hash);
    assert_eq!(first.synthesis.config, respelled.synthesis.config);
}
