//! Shared generators for the workspace property tests: seeded random
//! straight-line programs over the IR builder, deterministic through
//! `fits-rng` so any failure reproduces exactly from its case number.
//!
//! Used by `prop_synthesis.rs` (flow/synthesis soundness) and
//! `prop_replay.rs` (interpreted vs. block-compiled bit-identity), which
//! must draw from the *same* program distribution so replay coverage keeps
//! pace with whatever the synthesis properties exercise.

#![allow(dead_code)] // each test binary uses the subset it needs

use fits_rng::StdRng;
use powerfits::isa::DATA_BASE;
use powerfits::kernels::builder::{FnBuilder, ModuleBuilder};
use powerfits::kernels::codegen::compile;
use powerfits::kernels::ir::{BinOp, CmpOp, Val};

/// A recipe for one random statement.
#[derive(Clone, Debug)]
pub enum Step {
    Imm(u32),
    Bin(u8, usize, usize),
    BinImm(u8, usize, u32),
    Not(usize),
    StoreLoad(usize, u8),
    CondInc(u8, usize, u32),
}

pub fn arb_step(r: &mut StdRng) -> Step {
    match r.gen_range(0..6u8) {
        0 => Step::Imm(r.gen()),
        1 => Step::Bin(
            r.gen_range(0..11u8),
            r.gen_range(0..8usize),
            r.gen_range(0..8usize),
        ),
        2 => Step::BinImm(r.gen_range(0..11u8), r.gen_range(0..8usize), r.gen()),
        3 => Step::Not(r.gen_range(0..8usize)),
        4 => Step::StoreLoad(r.gen_range(0..8usize), r.gen_range(0..6u8)),
        _ => Step::CondInc(r.gen_range(0..10u8), r.gen_range(0..8usize), r.gen()),
    }
}

pub fn arb_steps(r: &mut StdRng, max: usize) -> Vec<Step> {
    let n = r.gen_range(1..max);
    (0..n).map(|_| arb_step(r)).collect()
}

fn bin_of(code: u8) -> BinOp {
    match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::And,
        3 => BinOp::Or,
        4 => BinOp::Xor,
        5 => BinOp::Bic,
        6 => BinOp::Shl,
        7 => BinOp::Shr,
        8 => BinOp::Sar,
        9 => BinOp::Ror,
        _ => BinOp::Mul,
    }
}

fn cmp_of(code: u8) -> CmpOp {
    match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::LtS,
        3 => CmpOp::LeS,
        4 => CmpOp::GtS,
        5 => CmpOp::GeS,
        6 => CmpOp::LtU,
        7 => CmpOp::LeU,
        8 => CmpOp::GtU,
        _ => CmpOp::GeU,
    }
}

/// Builds a program from the recipe: a pool of eight live values mutated by
/// each step, folded into a final checksum.
pub fn build(steps: &[Step]) -> powerfits::isa::Program {
    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let base = f.imm(DATA_BASE);
    let mut pool: Vec<Val> = (0..8)
        .map(|i| f.imm(0x1234_5678u32.wrapping_mul(i + 1)))
        .collect();
    for step in steps {
        match step {
            Step::Imm(v) => {
                let nv = f.imm(*v);
                pool.rotate_left(1);
                pool[0] = nv;
            }
            Step::Bin(op, a, b) => {
                let nv = f.bin(bin_of(*op), pool[*a], pool[*b]);
                pool[*a] = nv;
            }
            Step::BinImm(op, a, v) => {
                let nv = f.bin(bin_of(*op), pool[*a], *v);
                pool[*a] = nv;
            }
            Step::Not(a) => {
                let nv = f.not(pool[*a]);
                pool[*a] = nv;
            }
            Step::StoreLoad(a, slot) => {
                f.store_w(base, i32::from(*slot) * 4, pool[*a]);
                let nv = f.load_w(base, i32::from(*slot) * 4);
                pool[*a] = nv;
            }
            Step::CondInc(c, a, v) => {
                f.if_(f.cmp(cmp_of(*c), pool[*a], *v), |f| {
                    let nv = f.add(pool[*a], 1u32);
                    f.copy(pool[*a], nv);
                });
            }
        }
    }
    let mut acc = f.imm(0u32);
    for v in &pool {
        let r = f.bin(BinOp::Ror, acc, 31u32);
        acc = f.xor(r, *v);
    }
    f.emit(acc);
    f.ret(Some(acc));
    mb.push(f.finish());
    compile(&mb.finish(vec![0u8; 64])).expect("random program compiles")
}
