//! Shape invariants from the paper's evaluation, asserted on a reduced-scale
//! suite run: who wins, by roughly what factor, and where the crossovers
//! fall. These are the claims EXPERIMENTS.md records quantitatively.

#![allow(clippy::unwrap_used)]

use powerfits::bench::{figures, run_suite, Config};
use powerfits::kernels::kernels::{Kernel, Scale};

fn small_suite() -> powerfits::bench::SuiteResults {
    // A representative subset that covers tiny, mid and cache-straddling
    // footprints; the full suite runs in the benches and the repro binary.
    run_suite(
        &[
            Kernel::Crc32,
            Kernel::Bitcount,
            Kernel::Sha,
            Kernel::SusanCorners,
            Kernel::Dijkstra,
            Kernel::AdpcmDec,
        ],
        Scale { n: 128 },
    )
    .expect("suite runs")
}

#[test]
fn mapping_rates_match_the_paper_band() {
    // Paper: 96% average static, 98% average dynamic (Figures 3-4).
    let suite = small_suite();
    let fig3 = figures::fig3_static_mapping(&suite);
    let fig4 = figures::fig4_dynamic_mapping(&suite);
    assert!(
        fig3.column_mean(0) > 0.94,
        "static {:.3}",
        fig3.column_mean(0)
    );
    assert!(
        fig4.column_mean(0) > 0.96,
        "dynamic {:.3}",
        fig4.column_mean(0)
    );
}

#[test]
fn code_size_ordering_and_factors() {
    // Paper Figure 5: FITS ~0.53 of ARM, THUMB ~0.67, FITS < THUMB < ARM.
    let suite = small_suite();
    let fig5 = figures::fig5_code_size(&suite);
    let thumb = fig5.column_mean(1);
    let fits = fig5.column_mean(2);
    assert!(
        fits < thumb && thumb < 1.0,
        "ordering: fits {fits:.3} thumb {thumb:.3}"
    );
    assert!((0.48..=0.60).contains(&fits), "FITS ratio {fits:.3}");
    assert!((0.60..=0.85).contains(&thumb), "THUMB ratio {thumb:.3}");
}

#[test]
fn switching_saving_favors_fits_only() {
    // Paper Figure 7: FITS16 ~ FITS8 ~ 50%, ARM8 ~ 0.
    let suite = small_suite();
    let fig7 = figures::fig7_switching_saving(&suite);
    let (fits16, fits8, arm8) = (
        fig7.column_mean(0),
        fig7.column_mean(1),
        fig7.column_mean(2),
    );
    assert!(
        (0.30..=0.60).contains(&fits16),
        "FITS16 switching {fits16:.3}"
    );
    assert!((fits8 - fits16).abs() < 0.10, "FITS16 ~ FITS8");
    assert!(arm8.abs() < 0.08, "ARM8 saves virtually none: {arm8:.3}");
}

#[test]
fn total_cache_power_ordering() {
    // Paper Figure 11: FITS8 (47%) > ARM8 (27%) > FITS16 (18%).
    let suite = small_suite();
    let fig11 = figures::fig11_total_saving(&suite);
    let (fits16, fits8, arm8) = (
        fig11.column_mean(0),
        fig11.column_mean(1),
        fig11.column_mean(2),
    );
    assert!(fits8 > arm8, "FITS8 {fits8:.3} must beat ARM8 {arm8:.3}");
    assert!(arm8 > fits16, "ARM8 {arm8:.3} above FITS16 {fits16:.3}");
    assert!((0.38..=0.60).contains(&fits8), "FITS8 {fits8:.3}");
    assert!((0.10..=0.30).contains(&fits16), "FITS16 {fits16:.3}");
}

#[test]
fn chip_saving_favors_fits8() {
    // Paper Figure 12: FITS8 ~15% is the best chip-level outcome.
    let suite = small_suite();
    let fig12 = figures::fig12_chip_saving(&suite);
    let (fits16, fits8) = (fig12.column_mean(0), fig12.column_mean(1));
    assert!(fits8 > fits16, "FITS8 {fits8:.3} > FITS16 {fits16:.3}");
    assert!((0.08..=0.25).contains(&fits8), "FITS8 chip {fits8:.3}");
}

#[test]
fn fits8_misses_no_more_than_arm16() {
    // Paper §6.4: "8 Kb caches for FITS have no more misses than 16 Kb for
    // ARM" — the halved-footprint spatial-locality effect.
    let suite = small_suite();
    for k in &suite.kernels {
        let arm16 = k.run(Config::Arm16).sim.icache.misses_per_million();
        let fits8 = k.run(Config::Fits8).sim.icache.misses_per_million();
        assert!(
            fits8 <= arm16 * 1.05 + 50.0,
            "{}: FITS8 {fits8:.0} ppm vs ARM16 {arm16:.0} ppm",
            k.kernel
        );
    }
}

#[test]
fn ipc_comparable_for_fits8_and_worst_for_arm8() {
    // Paper Figure 14: FITS8 ~ ARM16; ARM8 is the clear loser.
    let suite = small_suite();
    let fig14 = figures::fig14_ipc(&suite);
    let (arm16, arm8, _fits16, fits8) = (
        fig14.column_mean(0),
        fig14.column_mean(1),
        fig14.column_mean(2),
        fig14.column_mean(3),
    );
    assert!(
        fits8 >= arm16 * 0.93,
        "FITS8 IPC {fits8:.3} vs ARM16 {arm16:.3}"
    );
    assert!(
        arm8 <= arm16 + 1e-9,
        "ARM8 IPC {arm8:.3} cannot beat ARM16 {arm16:.3}"
    );
}

#[test]
fn cache_breakdown_internal_dominates() {
    // Paper §6.3.2: internal power contributes more than half of total
    // cache power in all four schemes.
    let suite = small_suite();
    let fig6 = figures::fig6_power_breakdown(&suite);
    for row in &fig6.rows {
        assert!(
            row.values[1] > 0.5,
            "{}: internal share {:.3} must dominate",
            row.label,
            row.values[1]
        );
        let sum: f64 = row.values.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "shares sum to 1");
    }
}

#[test]
fn fits_halves_fetch_traffic() {
    // The fetch-buffer effect: two 16-bit instructions per 32-bit fetch.
    let suite = small_suite();
    for k in &suite.kernels {
        let arm = k.run(Config::Arm16).sim.icache.accesses as f64;
        let fits = k.run(Config::Fits16).sim.icache.accesses as f64;
        let ratio = fits / arm;
        assert!(
            (0.42..=0.65).contains(&ratio),
            "{}: fetch ratio {ratio:.3}",
            k.kernel
        );
    }
}
