//! Property test for the ISA spec plane: seeded random words pushed
//! through the built-in decode tables and through engines compiled from
//! re-parsed spec documents must produce byte-identical outcomes —
//! accepted instructions, reserved-pattern rejections and stream errors
//! alike. The spec texts are respelled (a comment appended) so their
//! content hashes differ from the built-ins and the `from_spec` path is
//! genuinely exercised rather than short-circuited.

#![allow(clippy::unwrap_used)]

use fits_rng::StdRng;
use powerfits::isa::spec::{Ar32Tables, IsaSpec, T16Tables, AR32_SPEC_TEXT, T16_SPEC_TEXT};

const CASES: usize = 20_000;

fn respelled(text: &str) -> IsaSpec {
    IsaSpec::load(&format!("{text}\n# respelled for the property suite\n")).unwrap()
}

/// Two decode outcomes compared in rendered form, so rejection *reasons*
/// must agree, not just the accept/reject split.
fn assert_same_debug<T: std::fmt::Debug, U: std::fmt::Debug>(a: &T, b: &U, ctx: &str) {
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{ctx}");
}

#[test]
fn random_ar32_words_decode_identically() {
    let spec = respelled(AR32_SPEC_TEXT);
    assert_ne!(
        spec.hash(),
        powerfits::isa::spec::builtin_ar32().hash(),
        "respelling must change the hash"
    );
    let tables = Ar32Tables::from_spec(&spec).expect("engine compiles");
    let builtin = Ar32Tables::builtin();
    let mut rng = StdRng::seed_from_u64(0x15a5_9ec0_de00_0001);
    for case in 0..CASES {
        let word: u32 = rng.gen();
        let a = builtin.decode(word);
        let b = tables.decode(word);
        assert_same_debug(&a, &b, &format!("case {case}: word {word:#010x}"));
        // Accepted words must also re-encode identically through both
        // engines (the canonical word, don't-care bits zeroed).
        if let Ok(instr) = a {
            assert_eq!(
                builtin.encode(&instr),
                tables.encode(&instr),
                "case {case}: word {word:#010x} re-encodes differently"
            );
        }
    }
}

#[test]
fn random_t16_streams_decode_identically() {
    let spec = respelled(T16_SPEC_TEXT);
    let tables = T16Tables::from_spec(&spec).expect("engine compiles");
    let builtin = T16Tables::builtin();
    let mut rng = StdRng::seed_from_u64(0x15a5_9ec0_de00_0002);
    for case in 0..CASES {
        // Streams of 1..4 halfwords so the two-halfword BL forms see both
        // complete pairs and truncation at the stream end.
        let len = rng.gen_range(1..5usize);
        let stream: Vec<u16> = (0..len).map(|_| rng.gen::<u32>() as u16).collect();
        let mut at = 0usize;
        while at < stream.len() {
            let a = builtin.decode(&stream[at..]);
            let b = tables.decode(&stream[at..]);
            assert_same_debug(
                &a,
                &b,
                &format!("case {case}: stream {stream:04x?} at {at}"),
            );
            match a {
                Ok((instr, used)) => {
                    let mut ea = Vec::with_capacity(2);
                    let mut eb = Vec::with_capacity(2);
                    let ra = builtin.encode(&instr, &mut ea);
                    let rb = tables.encode(&instr, &mut eb);
                    assert_same_debug(&ra, &rb, &format!("case {case}: encode outcome at {at}"));
                    if ra.is_ok() {
                        assert_eq!(ea, eb, "case {case}: encoding at {at}");
                    }
                    at += used;
                }
                Err(_) => break,
            }
        }
    }
}
