//! Differential guarantees of the execute-once/replay-many engine: feeding N
//! timing models from a single functional execution must be observationally
//! identical — bit-for-bit on every counter — to running each configuration
//! in its own machine, and the no-observer fast path must agree exactly with
//! the observed path.

#![allow(clippy::unwrap_used)]

use std::cell::Cell;
use std::rc::Rc;

use powerfits::core::{FitsFlow, FitsSet};
use powerfits::kernels::kernels::{Kernel, Scale};
use powerfits::sim::{
    Ar32Set, CompiledProgram, ExecCtx, InstrSet, Machine, OpControl, OpMeta, Sa1100Config,
    SimError, StepOutcome,
};

/// The four cache configurations the experiment harness sweeps.
fn sweep_configs() -> Vec<Sa1100Config> {
    [16 * 1024, 8 * 1024, 4 * 1024, 2 * 1024]
        .into_iter()
        .map(|bytes| {
            Sa1100Config::icache_16k()
                .with_icache_bytes(bytes)
                .expect("sweep sizes divide the geometry")
        })
        .collect()
}

/// `run_timed_multi` over N configs must be bit-identical to N independent
/// `run_timed` machines, for both instruction sets of every kernel.
#[test]
fn replay_many_is_bit_identical_to_per_config_runs() {
    let scale = Scale::test();
    let cfgs = sweep_configs();
    for &kernel in Kernel::ALL.iter() {
        let program = kernel.compile(scale).expect("kernel compiles");

        let (multi_out, multi_sims) = Machine::new(Ar32Set::load(&program))
            .run_timed_multi(&cfgs)
            .expect("multi run");
        for (cfg, multi_sim) in cfgs.iter().zip(&multi_sims) {
            let (out, sim) = Machine::new(Ar32Set::load(&program))
                .run_timed(cfg)
                .expect("single run");
            assert_eq!(out, multi_out, "{kernel}: AR32 RunOutput diverged");
            assert_eq!(
                sim, *multi_sim,
                "{kernel}: AR32 SimResult diverged at {} B icache",
                cfg.icache.size_bytes
            );
        }

        let flow = FitsFlow::new().run(&program).expect("flow accepts");
        let (multi_out, multi_sims) = Machine::new(FitsSet::load(&flow.fits).unwrap())
            .run_timed_multi(&cfgs)
            .expect("multi run");
        for (cfg, multi_sim) in cfgs.iter().zip(&multi_sims) {
            let (out, sim) = Machine::new(FitsSet::load(&flow.fits).unwrap())
                .run_timed(cfg)
                .expect("single run");
            assert_eq!(out, multi_out, "{kernel}: FITS RunOutput diverged");
            assert_eq!(
                sim, *multi_sim,
                "{kernel}: FITS SimResult diverged at {} B icache",
                cfg.icache.size_bytes
            );
        }
    }
}

/// The dedicated no-observer fast path in `Machine::run` must produce the
/// same `RunOutput` as `run_observed` with a no-op observer.
#[test]
fn fast_path_agrees_with_observed_path() {
    let scale = Scale::test();
    for &kernel in Kernel::ALL.iter() {
        let program = kernel.compile(scale).expect("kernel compiles");
        let fast = Machine::new(Ar32Set::load(&program)).run().expect("fast");
        let observed = Machine::new(Ar32Set::load(&program))
            .run_observed(|_, _| {})
            .expect("observed");
        assert_eq!(fast, observed, "{kernel}: fast path diverged");
    }
}

/// An [`InstrSet`] wrapper counting `execute` calls, proving the replay
/// engine performs exactly one functional execution regardless of how many
/// timing models it feeds.
struct CountingSet<S> {
    inner: S,
    executes: Rc<Cell<u64>>,
}

impl<S: InstrSet> InstrSet for CountingSet<S> {
    type Op = S::Op;

    fn entry_pc(&self) -> u32 {
        self.inner.entry_pc()
    }
    fn op_size(&self) -> u32 {
        self.inner.op_size()
    }
    fn op_count(&self) -> usize {
        self.inner.op_count()
    }
    fn control_flow(&self, pc: u32, op: &Self::Op) -> OpControl {
        self.inner.control_flow(pc, op)
    }
    fn initial_data(&self) -> &[u8] {
        self.inner.initial_data()
    }
    fn op_at(&self, pc: u32) -> Result<&Self::Op, SimError> {
        self.inner.op_at(pc)
    }
    fn fetch_word(&self, word_addr: u32) -> u32 {
        self.inner.fetch_word(word_addr)
    }
    fn describe(&self, op: &Self::Op) -> OpMeta {
        self.inner.describe(op)
    }
    fn op_with_meta(&self, pc: u32) -> Result<(&Self::Op, &OpMeta), SimError> {
        self.inner.op_with_meta(pc)
    }
    fn execute(&self, op: &Self::Op, ctx: &mut ExecCtx<'_>) -> Result<StepOutcome, SimError> {
        self.executes.set(self.executes.get() + 1);
        self.inner.execute(op, ctx)
    }
}

#[test]
fn replay_many_executes_each_instruction_once() {
    let program = Kernel::Crc32.compile(Scale::test()).expect("compiles");
    let executes = Rc::new(Cell::new(0));
    let set = CountingSet {
        inner: Ar32Set::load(&program),
        executes: Rc::clone(&executes),
    };
    let (out, sims) = Machine::new(set)
        .run_timed_multi(&sweep_configs())
        .expect("multi run");
    assert_eq!(sims.len(), 4);
    assert_eq!(
        executes.get(),
        out.steps,
        "four timing models must share one execution, not re-execute"
    );
}

/// The explicit compiled API — `CompiledProgram::compile`, then
/// `Machine::run_recorded`, then `RecordedTrace::price_all` — must agree
/// bit-for-bit with per-config interpreted `run_timed`, and a recorded trace
/// must be re-priceable any number of times with identical results.
#[test]
fn compiled_api_is_bit_identical_and_repriceable() {
    let scale = Scale::test();
    let cfgs = sweep_configs();
    for &kernel in [Kernel::Crc32, Kernel::JpegDct, Kernel::Dijkstra].iter() {
        let program = kernel.compile(scale).expect("kernel compiles");
        let set = Ar32Set::load(&program);
        let compiled = CompiledProgram::compile(&set).expect("compiles to blocks");
        let trace = Machine::new(Ar32Set::load(&program))
            .run_recorded(&compiled)
            .expect("recorded run");

        let first = trace.price_all(&compiled, &cfgs).expect("price all");
        let again = trace.price_all(&compiled, &cfgs).expect("re-price");
        assert_eq!(first, again, "{kernel}: re-pricing the same trace diverged");

        for (cfg, sim) in cfgs.iter().zip(&first) {
            let (out, reference) = Machine::new(Ar32Set::load(&program))
                .run_timed(cfg)
                .expect("single run");
            assert_eq!(out, trace.output, "{kernel}: RunOutput diverged");
            assert_eq!(
                *sim, reference,
                "{kernel}: compiled replay diverged at {} B icache",
                cfg.icache.size_bytes
            );
        }
    }
}
