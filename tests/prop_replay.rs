//! Property test for the block-compiled replay engine: random programs —
//! drawn from the *same* seeded generator distribution as the synthesis
//! properties (`tests/common`) — must behave bit-identically under the
//! interpreted path (`run_observed` / `run_timed`) and the compiled path
//! (`CompiledProgram` → `run_recorded` → `price`), across all three
//! scenario presets, for both instruction sets.

#![allow(clippy::unwrap_used)]

mod common;

use common::{arb_steps, build};
use fits_rng::StdRng;
use powerfits::core::{FitsFlow, FitsSet};
use powerfits::scenario::{ScenarioSpec, PRESET_NAMES};
use powerfits::sim::{Ar32Set, CompiledProgram, InstrSet, Machine, Sa1100Config, SimError};

/// The machine configurations of all three scenario presets (sa1100,
/// small-embedded, modern-node).
fn preset_configs() -> Vec<Sa1100Config> {
    PRESET_NAMES
        .iter()
        .map(|name| ScenarioSpec::preset(name).unwrap().machine_config())
        .collect()
}

/// Runs one instruction set through both paths and asserts bit-identity of
/// the functional output and every preset's timing result.
fn assert_paths_agree<S: InstrSet + Clone>(set: &S, label: &str) {
    let compiled = CompiledProgram::compile(set).unwrap_or_else(|e| panic!("{label}: lift: {e}"));
    let trace = Machine::new(set.clone())
        .run_recorded(&compiled)
        .unwrap_or_else(|e| panic!("{label}: record: {e}"));

    let observed = Machine::new(set.clone())
        .run_observed(|_, _| {})
        .unwrap_or_else(|e| panic!("{label}: interpret: {e}"));
    assert_eq!(trace.output, observed, "{label}: RunOutput diverged");

    for cfg in preset_configs() {
        let (out, reference) = Machine::new(set.clone())
            .run_timed(&cfg)
            .unwrap_or_else(|e: SimError| panic!("{label}: run_timed: {e}"));
        let sim = trace
            .price(&compiled, &cfg)
            .unwrap_or_else(|e| panic!("{label}: price: {e}"));
        assert_eq!(out, trace.output, "{label}: timed RunOutput diverged");
        assert_eq!(
            sim, reference,
            "{label}: SimResult diverged at {} B icache",
            cfg.icache.size_bytes
        );
    }
}

/// AR32: every random program must replay bit-identically under all
/// presets.
#[test]
fn compiled_replay_matches_interpreter_on_random_programs() {
    let mut r = StdRng::seed_from_u64(0x5e9_1a7);
    for case in 0..32 {
        let steps = arb_steps(&mut r, 60);
        let program = build(&steps);
        assert_paths_agree(&Ar32Set::load(&program), &format!("case {case} (AR32)"));
    }
}

/// FITS: programs surviving the full synthesis flow must also replay
/// bit-identically — the compiled engine understands the synthesized ISA's
/// control flow (Jalr, wide forms), not just native branches.
#[test]
fn compiled_replay_matches_interpreter_on_random_fits_programs() {
    let mut r = StdRng::seed_from_u64(0xf1_7eb);
    for case in 0..8 {
        let steps = arb_steps(&mut r, 40);
        let program = build(&steps);
        let flow = FitsFlow {
            min_static_rate: 0.0, // synthetic soups may map poorly
            ..powerfits::verify::verified_flow()
        };
        let outcome = flow
            .run(&program)
            .unwrap_or_else(|e| panic!("case {case}: flow fails: {e}"));
        let set = FitsSet::load(&outcome.fits).unwrap();
        assert_paths_agree(&set, &format!("case {case} (FITS)"));
    }
}
