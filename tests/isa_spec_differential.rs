//! Suite-wide differential for the ISA spec plane: engines compiled from
//! *re-parsed* spec documents must be bit-identical to the built-in
//! tables. The documents are the shipped texts with a respelled trailing
//! comment — semantically the same machine description with a different
//! content hash — so nothing downstream can take the built-in fast path:
//! every decode, encode, execution and synthesis result below really
//! flows through `from_spec`-compiled tables.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use powerfits::core::{FitsFlow, SynthOptions};
use powerfits::isa::spec::{
    Ar32Tables, IsaSpec, SpecCatalog, T16Tables, AR32_SPEC_TEXT, FITS_SPEC_TEXT, T16_SPEC_TEXT,
};
use powerfits::isa::thumb::translate;
use powerfits::kernels::kernels::{Kernel, Scale};
use powerfits::sim::{Ar32Set, Machine};

/// The shipped text with one comment appended: same semantics, distinct
/// content hash.
fn respelled(text: &str) -> String {
    format!("{text}\n# respelled for the differential suite\n")
}

/// A catalog whose three specs are all respelled re-parses of the shipped
/// documents, so `is_builtin()` is false on every slot.
fn respelled_catalog() -> Arc<SpecCatalog> {
    let catalog = SpecCatalog {
        ar32: Arc::new(IsaSpec::load(&respelled(AR32_SPEC_TEXT)).unwrap()),
        t16: Arc::new(IsaSpec::load(&respelled(T16_SPEC_TEXT)).unwrap()),
        fits: Arc::new(IsaSpec::load(&respelled(FITS_SPEC_TEXT)).unwrap()),
    };
    assert!(
        !catalog.is_builtin(),
        "respelling must change the content hash"
    );
    Arc::new(catalog)
}

/// The three synthesis presets the flow-level differential runs under.
fn presets() -> [SynthOptions; 3] {
    [
        SynthOptions::default(),
        SynthOptions {
            toggle_aware: false,
            ..SynthOptions::default()
        },
        SynthOptions {
            max_dict_bits: 4,
            space_budget: 0.9,
            ..SynthOptions::default()
        },
    ]
}

/// AR32: every instruction of the kernel encodes to the same word and
/// decodes back identically through both engines, and a full simulated
/// run over the spec-loaded instruction set matches the built-in one.
fn check_ar32(kernel: Kernel, spec_tables: &Ar32Tables) {
    let scale = Scale::test();
    let program = kernel.compile(scale).expect("kernel compiles");
    let builtin = Ar32Tables::builtin();
    for (i, instr) in program.text.iter().enumerate() {
        let word = builtin.encode(instr);
        assert_eq!(
            word,
            spec_tables.encode(instr),
            "{kernel}: instr {i} encodes differently"
        );
        assert_eq!(
            builtin.decode(word).unwrap(),
            spec_tables.decode(word).unwrap(),
            "{kernel}: word {word:#010x} decodes differently"
        );
    }
    let native = Machine::new(Ar32Set::load(&program)).run().expect("native");
    let via_spec = Machine::new(Ar32Set::load_with(&program, spec_tables))
        .run()
        .expect("spec-loaded run");
    assert_eq!(via_spec.exit_code, native.exit_code, "{kernel}: exit code");
    assert_eq!(via_spec.emitted, native.emitted, "{kernel}: emit stream");
}

/// T16: the kernel's translated Thumb stream encodes and re-decodes
/// identically through both engines.
fn check_t16(kernel: Kernel, spec_tables: &T16Tables) {
    let program = kernel.compile(Scale::test()).expect("kernel compiles");
    let thumb = translate(&program);
    let builtin = T16Tables::builtin();
    for (i, instr) in thumb.instrs.iter().enumerate() {
        let mut a = Vec::with_capacity(2);
        let mut b = Vec::with_capacity(2);
        let ra = builtin.encode(instr, &mut a);
        let rb = spec_tables.encode(instr, &mut b);
        // Translation may emit instructions the encoding cannot carry
        // (out-of-range branch offsets and the like); both engines must
        // reject them the same way.
        assert_eq!(
            format!("{ra:?}"),
            format!("{rb:?}"),
            "{kernel}: T16 instr {i} encode outcome diverges"
        );
        if ra.is_err() {
            continue;
        }
        assert_eq!(a, b, "{kernel}: T16 instr {i} encodes differently");
        let (da, ua) = builtin.decode(&a).expect("builtin decodes");
        let (db, ub) = spec_tables.decode(&b).expect("spec decodes");
        assert_eq!((da, ua), (db, ub), "{kernel}: T16 instr {i} round-trip");
    }
}

/// The full synthesis flow under a spec-loaded catalog: identical profile,
/// FITS program, mapping and verified run — only the stamped catalog hash
/// may (and must) differ.
fn check_flow(kernel: Kernel, catalog: &Arc<SpecCatalog>) {
    let program = kernel.compile(Scale::test()).expect("kernel compiles");
    for (p, options) in presets().into_iter().enumerate() {
        let base = FitsFlow {
            options: options.clone(),
            ..FitsFlow::default()
        };
        let spec_flow = FitsFlow {
            options,
            isa: Arc::clone(catalog),
            ..FitsFlow::default()
        };
        let want = base.run(&program).expect("builtin flow");
        let got = spec_flow.run(&program).expect("spec-loaded flow");
        assert_eq!(
            got.profile.dyn_total, want.profile.dyn_total,
            "{kernel} preset {p}: profile"
        );
        assert_eq!(
            got.fits.instrs, want.fits.instrs,
            "{kernel} preset {p}: FITS program"
        );
        assert_eq!(
            got.mapping.static_one_to_one_rate(),
            want.mapping.static_one_to_one_rate(),
            "{kernel} preset {p}: mapping rate"
        );
        assert_eq!(
            got.iterations, want.iterations,
            "{kernel} preset {p}: iterations"
        );
        let want_run = want.fits_run.expect("verification on");
        let got_run = got.fits_run.expect("verification on");
        assert_eq!(
            got_run.exit_code, want_run.exit_code,
            "{kernel} preset {p}: FITS exit code"
        );
        assert_eq!(
            got_run.emitted, want_run.emitted,
            "{kernel} preset {p}: FITS emit stream"
        );
        assert_eq!(got.isa_hash, catalog.hash_hex(), "{kernel}: stamped hash");
        assert_ne!(got.isa_hash, want.isa_hash, "{kernel}: hash must differ");
    }
}

fn check_kernel(kernel: Kernel) {
    let catalog = respelled_catalog();
    let ar32 = Ar32Tables::from_spec(&catalog.ar32).expect("AR32 engine compiles");
    let t16 = T16Tables::from_spec(&catalog.t16).expect("T16 engine compiles");
    check_ar32(kernel, &ar32);
    check_t16(kernel, &t16);
    check_flow(kernel, &catalog);
}

macro_rules! spec_differential_tests {
    ($($name:ident => $kernel:ident),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                check_kernel(Kernel::$kernel);
            }
        )+
    };
}

spec_differential_tests! {
    bitcount_spec_differential => Bitcount,
    qsort_spec_differential => Qsort,
    susan_smoothing_spec_differential => SusanSmoothing,
    susan_edges_spec_differential => SusanEdges,
    susan_corners_spec_differential => SusanCorners,
    jpeg_dct_spec_differential => JpegDct,
    lame_filter_spec_differential => LameFilter,
    dijkstra_spec_differential => Dijkstra,
    patricia_spec_differential => Patricia,
    stringsearch_spec_differential => StringSearch,
    ispell_spec_differential => Ispell,
    blowfish_enc_spec_differential => BlowfishEnc,
    blowfish_dec_spec_differential => BlowfishDec,
    rijndael_enc_spec_differential => RijndaelEnc,
    rijndael_dec_spec_differential => RijndaelDec,
    sha_spec_differential => Sha,
    adpcm_enc_spec_differential => AdpcmEnc,
    adpcm_dec_spec_differential => AdpcmDec,
    crc32_spec_differential => Crc32,
    fft_spec_differential => Fft,
    gsm_spec_differential => Gsm,
}

/// The whole 16-bit space decodes identically through both T16 engines
/// (accepted words and rejections alike — errors are compared by their
/// rendered form).
#[test]
fn t16_decode_is_exhaustively_identical() {
    let catalog = respelled_catalog();
    let spec_tables = T16Tables::from_spec(&catalog.t16).expect("T16 engine compiles");
    let builtin = T16Tables::builtin();
    for w in 0..=u16::MAX {
        let a = builtin.decode(&[w]);
        let b = spec_tables.decode(&[w]);
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "word {w:#06x}"),
            _ => assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "word {w:#06x}: divergent outcome"
            ),
        }
    }
}
