use std::fmt;

/// Errors raised while simulating a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The PC left the text segment or was misaligned.
    BadPc {
        /// The offending PC value.
        pc: u32,
    },
    /// A data access fell outside the memory image.
    BadAddress {
        /// The offending address.
        addr: u32,
        /// Access width in bytes.
        size: u32,
    },
    /// A data access was not naturally aligned.
    Misaligned {
        /// The offending address.
        addr: u32,
        /// Access width in bytes.
        size: u32,
    },
    /// An unknown software-interrupt number was executed.
    UnknownSwi {
        /// The trap number.
        number: u32,
    },
    /// The step budget was exhausted before the program exited.
    MaxSteps {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// An instruction could not be decoded or executed by this instruction
    /// set (used by the FITS executor for malformed decoder configs).
    BadInstruction {
        /// Diagnostic description.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadPc { pc } => write!(f, "pc {pc:#010x} outside text segment"),
            SimError::BadAddress { addr, size } => {
                write!(f, "{size}-byte access at {addr:#010x} outside memory")
            }
            SimError::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#010x}")
            }
            SimError::UnknownSwi { number } => write!(f, "unknown swi #{number}"),
            SimError::MaxSteps { limit } => {
                write!(f, "exceeded {limit} steps without exiting")
            }
            SimError::BadInstruction { what } => write!(f, "bad instruction: {what}"),
        }
    }
}

impl std::error::Error for SimError {}
