//! The machine loop: drives an [`InstrSet`] over memory, optionally feeding
//! a timing model or a step observer.

use crate::cache::validate_config;
use crate::replay::{CompiledProgram, RecordedTrace, TraceEntry};
use crate::{
    CpuState, ExecCtx, InstrSet, Memory, Sa1100Config, SimError, SimResult, StepInfo, TimingModel,
};

/// Default step budget: generous enough for the full-scale benchmark suite,
/// small enough to catch runaway programs.
pub const MAX_STEPS_DEFAULT: u64 = 4_000_000_000;

/// The functional result of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutput {
    /// The value of `r0` at the exit trap.
    pub exit_code: u32,
    /// FNV-1a hash over all words passed to the emit trap.
    pub emitted: u64,
    /// Dynamic instruction count (retired, including failed-condition ones).
    pub steps: u64,
}

impl RunOutput {
    /// A single checksum combining exit code and emitted stream, used by the
    /// differential tests (reference vs AR32 vs FITS).
    #[must_use]
    pub fn checksum(&self) -> u64 {
        fnv1a(fnv1a(FNV_OFFSET, u64::from(self.exit_code)), self.emitted)
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds an emit stream into the hash the machine computes, so reference
/// implementations can be compared against [`RunOutput::emitted`].
#[must_use]
pub fn fold_emitted(words: &[u32]) -> u64 {
    words
        .iter()
        .fold(FNV_OFFSET, |h, &w| fnv1a(h, u64::from(w)))
}

pub(crate) fn fnv1a(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for byte in value.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A simulated machine: CPU state, memory and an instruction set.
#[derive(Clone, Debug)]
pub struct Machine<S: InstrSet> {
    set: S,
    cpu: CpuState,
    mem: Memory,
    pc: u32,
    step_limit: u64,
}

impl<S: InstrSet> Machine<S> {
    /// Builds a machine with fresh state and memory initialized from the
    /// instruction set's data image.
    #[must_use]
    pub fn new(set: S) -> Machine<S> {
        let mem = Memory::with_data(set.initial_data());
        let pc = set.entry_pc();
        Machine {
            set,
            cpu: CpuState::new(),
            mem,
            pc,
            step_limit: MAX_STEPS_DEFAULT,
        }
    }

    /// Caps the number of dynamic instructions before aborting.
    pub fn set_step_limit(&mut self, limit: u64) -> &mut Self {
        self.step_limit = limit;
        self
    }

    /// Read access to the memory image (for result inspection in tests).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Read access to the CPU state.
    #[must_use]
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// Read access to the instruction set this machine executes (for
    /// tooling that needs the encoded size or metadata tables).
    #[must_use]
    pub fn instr_set(&self) -> &S {
        &self.set
    }

    /// Runs to the exit trap, functional only (no timing).
    ///
    /// This is the true fast path: no [`StepInfo`] is constructed and no
    /// per-op metadata is consulted — the loop is fetch → execute → retire.
    /// Functional results ([`RunOutput`]) are exactly those of
    /// [`Machine::run_observed`] with a no-op observer.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by execution, including step-budget overrun.
    pub fn run(&mut self) -> Result<RunOutput, SimError> {
        let mut steps: u64 = 0;
        let mut emitted = FNV_OFFSET;
        loop {
            if steps >= self.step_limit {
                return Err(SimError::MaxSteps {
                    limit: self.step_limit,
                });
            }
            let op = self.set.op_at(self.pc)?;
            let mut ctx = ExecCtx {
                cpu: &mut self.cpu,
                mem: &mut self.mem,
                pc: self.pc,
            };
            let out = self.set.execute(op, &mut ctx)?;
            steps += 1;
            if let Some(word) = out.emit {
                emitted = fnv1a(emitted, u64::from(word));
            }
            if let Some(code) = out.exit {
                return Ok(RunOutput {
                    exit_code: code,
                    emitted,
                    steps,
                });
            }
            self.pc = out.next_pc;
        }
    }

    /// Runs to the exit trap, invoking `observer` with every retired
    /// instruction and its [`StepInfo`] — the hook the FITS profiler uses to
    /// gather dynamic statistics. The static part of each [`StepInfo`] comes
    /// from the instruction set's load-time metadata table
    /// ([`crate::InstrSet::op_with_meta`]); only the dynamic outcome fields
    /// are filled per step.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by execution, including step-budget overrun.
    pub fn run_observed(
        &mut self,
        mut observer: impl FnMut(&S::Op, &StepInfo),
    ) -> Result<RunOutput, SimError> {
        let op_size = self.set.op_size();
        let mut steps: u64 = 0;
        let mut emitted = FNV_OFFSET;
        loop {
            if steps >= self.step_limit {
                return Err(SimError::MaxSteps {
                    limit: self.step_limit,
                });
            }
            let (op, meta) = self.set.op_with_meta(self.pc)?;
            let mut ctx = ExecCtx {
                cpu: &mut self.cpu,
                mem: &mut self.mem,
                pc: self.pc,
            };
            let out = self.set.execute(op, &mut ctx)?;
            let fetch_word_addr = self.pc & !3;
            let info = StepInfo {
                pc: self.pc,
                size: op_size,
                fetch_word_addr,
                fetch_word_value: self.set.fetch_word(fetch_word_addr),
                class: meta.class,
                reg_reads: meta.reg_reads,
                reg_writes: meta.reg_writes,
                executed: out.executed,
                mem: out.mem,
                branch: out.branch,
                is_mul: out.is_mul && out.executed,
                dests: meta.dests,
                sources: meta.sources,
                sets_flags: meta.sets_flags && out.executed,
                reads_flags: meta.reads_flags,
            };
            observer(op, &info);
            steps += 1;
            if let Some(word) = out.emit {
                emitted = fnv1a(emitted, u64::from(word));
            }
            if let Some(code) = out.exit {
                return Ok(RunOutput {
                    exit_code: code,
                    emitted,
                    steps,
                });
            }
            self.pc = out.next_pc;
        }
    }

    /// Runs to the exit trap under the SA-1100 timing model, returning both
    /// the functional output and the microarchitectural statistics.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by execution, including step-budget overrun.
    pub fn run_timed(&mut self, cfg: &Sa1100Config) -> Result<(RunOutput, SimResult), SimError> {
        let mut timing = TimingModel::new(cfg)?;
        let output = self.run_observed(|_, info| timing.observe(info))?;
        Ok((output, timing.finish()))
    }

    /// Lifts this machine's program into basic-block descriptors and step
    /// templates (see [`CompiledProgram::compile`]).
    ///
    /// # Errors
    ///
    /// Propagates decode-table lookup failures.
    pub fn compile(&self) -> Result<CompiledProgram, SimError> {
        CompiledProgram::compile(&self.set)
    }

    /// Runs to the exit trap **recording** a compact block-ID +
    /// dynamic-outcome trace against a lifted program, without building
    /// `StepInfo`s or driving any timing model. The returned trace replays
    /// over any number of configurations via
    /// [`RecordedTrace::price_all`]; its
    /// [`RunOutput`](RecordedTrace::output) is exactly that of
    /// [`Machine::run`].
    ///
    /// The hot loop walks whole basic blocks between control transfers:
    /// sequential successors advance without a PC→index lookup, and taken
    /// direct branches follow the block's pre-resolved successor link.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by execution, a step-budget overrun, or a
    /// `compiled` program that was not lifted from this machine's
    /// instruction set.
    pub fn run_recorded(&mut self, compiled: &CompiledProgram) -> Result<RecordedTrace, SimError> {
        compiled.check_matches(&self.set)?;
        let op_size = self.set.op_size();
        let mut trace = RecordedTrace {
            output: RunOutput {
                exit_code: 0,
                emitted: FNV_OFFSET,
                steps: 0,
            },
            entries: Vec::new(),
            flags: Vec::new(),
            mem: Vec::new(),
            token: compiled.token(),
            statics: Default::default(),
        };
        let mut steps: u64 = 0;
        let mut emitted = FNV_OFFSET;
        let mut index = compiled.index_of_pc(self.pc)?;
        loop {
            let start = index;
            let boundary = compiled.boundary_of(index);
            let mut len = 0u32;
            // One trace entry: retire ops until the block ends, the PC
            // redirects, or the program exits.
            let next = loop {
                if steps >= self.step_limit {
                    return Err(SimError::MaxSteps {
                        limit: self.step_limit,
                    });
                }
                let op = self.set.op_at(self.pc)?;
                let mut ctx = ExecCtx {
                    cpu: &mut self.cpu,
                    mem: &mut self.mem,
                    pc: self.pc,
                };
                let out = self.set.execute(op, &mut ctx)?;
                steps += 1;
                len += 1;
                trace.record_step(&out);
                if let Some(word) = out.emit {
                    emitted = fnv1a(emitted, u64::from(word));
                }
                if let Some(code) = out.exit {
                    trace.entries.push(TraceEntry { start, len });
                    trace.output = RunOutput {
                        exit_code: code,
                        emitted,
                        steps,
                    };
                    trace.compute_statics(compiled.templates());
                    return Ok(trace);
                }
                let seq_pc = self.pc.wrapping_add(op_size);
                if out.next_pc != seq_pc {
                    self.pc = out.next_pc;
                    // Taken direct branches follow the pre-resolved link;
                    // indirect targets fall back to a checked lookup.
                    break match compiled.branch_link(index) {
                        Some((target_pc, target_index, _)) if target_pc == out.next_pc => {
                            target_index
                        }
                        _ => compiled.index_of_pc(out.next_pc)?,
                    };
                }
                self.pc = seq_pc;
                index += 1;
                if index == boundary {
                    break index;
                }
            };
            trace.entries.push(TraceEntry { start, len });
            index = next;
            if index as usize >= compiled.op_count() {
                // Fell off the end of the text segment: report it exactly
                // as the interpreted loop would on its next fetch.
                return Err(SimError::BadPc { pc: self.pc });
            }
        }
    }

    /// Executes the program **once** and prices every configuration from
    /// the recorded trace — the execute-once/replay-many engine, now
    /// running on the basic-block compiled replay path: the program is
    /// lifted ([`Machine::compile`]), one functional execution records a
    /// compact trace ([`Machine::run_recorded`]), and a single
    /// structure-of-arrays replay pass prices all configurations
    /// ([`RecordedTrace::price_all`]). The `SimResult` for each
    /// configuration is bit-identical to a separate [`Machine::run_timed`]
    /// call with that configuration.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by execution or by cache-geometry validation
    /// of any configuration.
    pub fn run_timed_multi(
        &mut self,
        cfgs: &[Sa1100Config],
    ) -> Result<(RunOutput, Vec<SimResult>), SimError> {
        // Validate every geometry up front so a bad configuration fails
        // before the functional execution, as the per-model path did.
        for cfg in cfgs {
            validate_config(&cfg.icache)?;
            validate_config(&cfg.dcache)?;
        }
        let compiled = self.compile()?;
        let trace = self.run_recorded(&compiled)?;
        let sims = trace.price_all(&compiled, cfgs)?;
        Ok((trace.output, sims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ar32Set;
    use fits_isa::{Cond, DpOp, Instr, MemOp, Operand2, Program, Reg, DATA_BASE};

    fn countdown_program() -> Program {
        Program {
            text: vec![
                Instr::mov(Reg::R0, Operand2::imm(100).unwrap()),
                Instr::mov(Reg::R1, Operand2::imm(0).unwrap()),
                // loop: r1 += r0; r0 -= 1; bne loop
                Instr::dp(DpOp::Add, Reg::R1, Reg::R1, Operand2::reg(Reg::R0)),
                Instr::Dp {
                    cond: Cond::Al,
                    op: DpOp::Sub,
                    set_flags: true,
                    rd: Reg::R0,
                    rn: Reg::R0,
                    op2: Operand2::imm(1).unwrap(),
                },
                Instr::b(-4).with_cond(Cond::Ne),
                Instr::mov(Reg::R0, Operand2::reg(Reg::R1)),
                Instr::Swi {
                    cond: Cond::Al,
                    imm: 0,
                },
            ],
            ..Program::default()
        }
    }

    #[test]
    fn sums_one_to_hundred() {
        let mut m = Machine::new(Ar32Set::load(&countdown_program()));
        let out = m.run().unwrap();
        assert_eq!(out.exit_code, 5050);
        assert_eq!(out.steps, 2 + 3 * 100 + 2);
    }

    #[test]
    fn step_limit_trips() {
        let spin = Program {
            text: vec![Instr::b(-2)], // branch to self
            ..Program::default()
        };
        let mut m = Machine::new(Ar32Set::load(&spin));
        m.set_step_limit(1000);
        assert!(matches!(m.run(), Err(SimError::MaxSteps { limit: 1000 })));
    }

    #[test]
    fn emit_affects_checksum() {
        let mk = |emit_value: u32| {
            let program = Program {
                text: vec![
                    Instr::mov(Reg::R0, Operand2::imm(emit_value).unwrap()),
                    Instr::Swi {
                        cond: Cond::Al,
                        imm: 1,
                    },
                    Instr::Swi {
                        cond: Cond::Al,
                        imm: 0,
                    },
                ],
                ..Program::default()
            };
            Machine::new(Ar32Set::load(&program)).run().unwrap()
        };
        let a = mk(1);
        let b = mk(2);
        assert_eq!(a.exit_code, 1);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn memory_visible_after_run() {
        let program = Program {
            text: vec![
                Instr::mov(Reg::R1, Operand2::imm(DATA_BASE).unwrap()),
                Instr::mov(Reg::R0, Operand2::imm(42).unwrap()),
                Instr::mem(MemOp::Str, Reg::R0, Reg::R1, 0),
                Instr::Swi {
                    cond: Cond::Al,
                    imm: 0,
                },
            ],
            ..Program::default()
        };
        let mut m = Machine::new(Ar32Set::load(&program));
        m.run().unwrap();
        assert_eq!(m.memory().load_w(DATA_BASE).unwrap(), 42);
    }

    #[test]
    fn observer_sees_every_step() {
        let mut m = Machine::new(Ar32Set::load(&countdown_program()));
        let mut count = 0u64;
        let out = m.run_observed(|_, info| {
            count += 1;
            assert_eq!(info.size, 4);
        });
        assert_eq!(out.unwrap().steps, count);
    }
}
