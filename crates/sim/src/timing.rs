//! The SA-1100-style timing model.
//!
//! The paper's §5 simulates Intel's SA-1100 StrongARM as a dual-issue
//! in-order machine at 200 MHz (§6.4.2: "the highest IPC possible is 2").
//! This model consumes the retired-instruction stream and accounts cycles:
//!
//! * **Fetch** — one I-cache access per aligned 32-bit word. Two sequential
//!   16-bit FITS instructions share one fetch (the fetch-buffer effect that
//!   halves FITS I-cache traffic); every AR32 instruction is its own word.
//! * **Issue** — up to two instructions per cycle, subject to the classic
//!   in-order pairing rules: no intra-pair RAW (registers or flags), at most
//!   one memory op and one multiply per pair, a control-flow op ends the
//!   pair, and both must come from the same or adjacent fetch words.
//! * **Hazards** — one-cycle load-use interlock, multi-cycle multiply,
//!   static BTFNT branch prediction (backward taken / forward not-taken)
//!   with a redirect bubble on correct taken branches and a deeper flush on
//!   mispredicts, and blocking cache-miss stalls.

use crate::cache::{validate_config, GeometryError};
use crate::{Cache, CacheConfig, CacheStats, SimError, StepInfo};
use fits_isa::InstrClass;

/// Configuration of the simulated core, defaults modeled on the SA-1100.
#[derive(Clone, Debug)]
pub struct Sa1100Config {
    /// Instruction cache geometry (the experiments' controlled variable).
    pub icache: CacheConfig,
    /// Data cache geometry (held constant across configurations).
    pub dcache: CacheConfig,
    /// Cycles stalled on an I-cache miss.
    pub icache_miss_penalty: u64,
    /// Cycles stalled on a D-cache miss.
    pub dcache_miss_penalty: u64,
    /// Extra cycles occupied by a multiply.
    pub mul_extra_cycles: u64,
    /// Redirect bubble for a correctly-predicted taken branch.
    pub taken_branch_penalty: u64,
    /// Flush penalty for a mispredicted branch.
    pub mispredict_penalty: u64,
    /// Core clock, Hz (the paper's fixed 200 MHz).
    pub freq_hz: f64,
}

impl Sa1100Config {
    /// The baseline configuration with a 16 KB I-cache ("ARM16"/"FITS16").
    #[must_use]
    pub fn icache_16k() -> Sa1100Config {
        Sa1100Config {
            icache: CacheConfig::sa1100_icache(),
            dcache: CacheConfig::sa1100_dcache(),
            icache_miss_penalty: 24,
            dcache_miss_penalty: 24,
            mul_extra_cycles: 2,
            taken_branch_penalty: 1,
            mispredict_penalty: 3,
            freq_hz: 200.0e6,
        }
    }

    /// The half-size configuration with an 8 KB I-cache ("ARM8"/"FITS8").
    #[must_use]
    pub fn icache_8k() -> Sa1100Config {
        let mut cfg = Sa1100Config::icache_16k();
        cfg.icache = cfg
            .icache
            .resized(8 * 1024)
            .expect("8 KB divides the fixed SA-1100 geometry");
        cfg
    }

    /// A copy with the I-cache resized to `bytes`.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] when `bytes` is not compatible with the
    /// geometry (see [`CacheConfig::resized`]).
    pub fn with_icache_bytes(&self, bytes: u32) -> Result<Sa1100Config, GeometryError> {
        let mut cfg = self.clone();
        cfg.icache = cfg.icache.resized(bytes)?;
        Ok(cfg)
    }
}

/// Branch-behaviour counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Branch instructions retired.
    pub branches: u64,
    /// Taken branches.
    pub taken: u64,
    /// Static-prediction (BTFNT) mispredicts.
    pub mispredicted: u64,
}

/// Microarchitectural statistics from a timed run — the sole input (besides
/// geometry) to the `fits-power` model.
///
/// Equality is exact (every counter is an integer), which is what lets the
/// differential tests assert that execute-once/replay-many
/// ([`crate::Machine::run_timed_multi`]) reproduces per-configuration runs
/// bit for bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimResult {
    /// Total cycles.
    pub cycles: u64,
    /// Retired instructions (including failed-condition ones).
    pub retired: u64,
    /// Instructions whose condition passed.
    pub executed: u64,
    /// Issue groups (cycles that issued at least one instruction).
    pub issue_groups: u64,
    /// Groups that dual-issued.
    pub dual_issues: u64,
    /// Instruction-cache activity.
    pub icache: CacheStats,
    /// Data-cache activity.
    pub dcache: CacheStats,
    /// Retired-instruction counts per [`InstrClass`]
    /// (operate, memory, branch, trap).
    pub class_counts: [u64; 4],
    /// Branch behaviour.
    pub branch: BranchStats,
    /// Register-file read-port events.
    pub reg_reads: u64,
    /// Register-file write-port events.
    pub reg_writes: u64,
    /// Flag-register writes.
    pub flag_writes: u64,
    /// Multiplies executed.
    pub mul_ops: u64,
    /// Load-use interlock stalls.
    pub load_use_stalls: u64,
    /// Cycles lost to I-cache misses.
    pub icache_stall_cycles: u64,
    /// Cycles lost to D-cache misses.
    pub dcache_stall_cycles: u64,
}

impl SimResult {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Wall-clock runtime in seconds at the configured frequency.
    #[must_use]
    pub fn runtime_seconds(&self, freq_hz: f64) -> f64 {
        self.cycles as f64 / freq_hz
    }
}

/// Observer of the cache-level events a [`TimingModel`] generates while it
/// consumes a retired-instruction stream — the seam the `fits-obs` tracing
/// layer rides.
///
/// Events fire only for **actual** cache accesses: a second 16-bit FITS
/// instruction served from the same fetched word produces no I-cache event,
/// exactly as it produces no access in [`CacheStats`]. A `hit == false`
/// event implies a line fill of `line_bytes / 4` words.
///
/// All methods default to no-ops, and `()` implements the trait, so the
/// untraced paths ([`TimingModel::observe`], [`TimingModel::finish`])
/// monomorphize to exactly the pre-seam code — the differential tests in
/// `fits-obs` hold the two bit-identical.
pub trait CacheEventObserver {
    /// One I-cache access of the aligned word at `word_addr`.
    fn icache_access(&mut self, word_addr: u32, hit: bool) {
        let _ = (word_addr, hit);
    }

    /// One D-cache access at `addr` (`write` for stores).
    fn dcache_access(&mut self, addr: u32, write: bool, hit: bool) {
        let _ = (addr, write, hit);
    }
}

/// The no-op observer used by the untraced fast path.
impl CacheEventObserver for () {}

/// Streaming timing model; feed it [`StepInfo`]s, then call
/// [`TimingModel::finish`].
#[derive(Debug)]
pub struct TimingModel {
    /// Penalty values copied out of the borrowed [`Sa1100Config`] — the
    /// model keeps no clone of the configuration, so hot sweep paths can
    /// build one model per configuration from shared references.
    icache_miss_penalty: u64,
    dcache_miss_penalty: u64,
    mul_extra_cycles: u64,
    taken_branch_penalty: u64,
    mispredict_penalty: u64,
    icache: Cache,
    dcache: Cache,
    result: SimResult,
    /// First instruction of the currently-forming issue pair.
    pending: Option<StepInfo>,
    /// Word address most recently obtained from the fetch path.
    last_fetch_word: Option<u32>,
    /// Destination of a load issued in the immediately preceding group.
    last_group_load_dest: Option<fits_isa::Reg>,
    load_dest_this_group: Option<fits_isa::Reg>,
}

impl TimingModel {
    /// Builds a model, validating cache geometry. Takes the configuration
    /// by reference: only the two cache geometries are copied (into the
    /// caches themselves) plus the five penalty scalars.
    ///
    /// # Errors
    ///
    /// Returns an error when either cache geometry is degenerate.
    pub fn new(cfg: &Sa1100Config) -> Result<TimingModel, SimError> {
        validate_config(&cfg.icache)?;
        validate_config(&cfg.dcache)?;
        Ok(TimingModel {
            icache: Cache::new(cfg.icache.clone()),
            dcache: Cache::new(cfg.dcache.clone()),
            icache_miss_penalty: cfg.icache_miss_penalty,
            dcache_miss_penalty: cfg.dcache_miss_penalty,
            mul_extra_cycles: cfg.mul_extra_cycles,
            taken_branch_penalty: cfg.taken_branch_penalty,
            mispredict_penalty: cfg.mispredict_penalty,
            result: SimResult::default(),
            pending: None,
            last_fetch_word: None,
            last_group_load_dest: None,
            load_dest_this_group: None,
        })
    }

    fn fetch<O: CacheEventObserver>(&mut self, info: &StepInfo, obs: &mut O) {
        if self.last_fetch_word == Some(info.fetch_word_addr) {
            return; // second half of the same 32-bit fetch (16-bit ISAs)
        }
        self.last_fetch_word = Some(info.fetch_word_addr);
        let cycle = self.result.cycles;
        let hit = self
            .icache
            .access(info.fetch_word_addr, false, info.fetch_word_value, cycle);
        obs.icache_access(info.fetch_word_addr, hit);
        if !hit {
            self.result.cycles += self.icache_miss_penalty;
            self.result.icache_stall_cycles += self.icache_miss_penalty;
        }
    }

    fn can_pair(a: &StepInfo, b: &StepInfo) -> bool {
        // A control-flow op (or anything that redirected the PC) closes the
        // group.
        if a.branch.is_some() || a.class == InstrClass::Trap {
            return false;
        }
        // Fetch bandwidth: the pair must come from the same or the next
        // aligned word.
        if b.fetch_word_addr != a.fetch_word_addr && b.fetch_word_addr != a.fetch_word_addr + 4 {
            return false;
        }
        // Structural: one memory port, one multiplier.
        if a.mem.is_some() && b.mem.is_some() {
            return false;
        }
        if a.is_mul && b.is_mul {
            return false;
        }
        // RAW on registers.
        for d in a.dests.iter().flatten() {
            if b.sources.iter().flatten().any(|s| s == d) {
                return false;
            }
            // WAW within a pair also serializes on this simple core.
            if b.dests.iter().flatten().any(|s| s == d) {
                return false;
            }
        }
        // RAW on flags.
        if a.sets_flags && b.reads_flags {
            return false;
        }
        true
    }

    fn issue_group<O: CacheEventObserver>(
        &mut self,
        first: StepInfo,
        second: Option<StepInfo>,
        obs: &mut O,
    ) {
        self.result.cycles += 1;
        self.result.issue_groups += 1;
        if second.is_some() {
            self.result.dual_issues += 1;
        }
        self.load_dest_this_group = None;

        // Load-use interlock against the previous group.
        if let Some(dest) = self.last_group_load_dest {
            let uses = |i: &StepInfo| i.sources.iter().flatten().any(|s| *s == dest);
            if uses(&first) || second.as_ref().is_some_and(uses) {
                self.result.cycles += 1;
                self.result.load_use_stalls += 1;
            }
        }

        for info in std::iter::once(&first).chain(second.as_ref()) {
            self.account_instr(info, obs);
        }
        self.last_group_load_dest = self.load_dest_this_group.take();
    }

    fn account_instr<O: CacheEventObserver>(&mut self, info: &StepInfo, obs: &mut O) {
        let class_idx = match info.class {
            InstrClass::Operate => 0,
            InstrClass::Memory => 1,
            InstrClass::Branch => 2,
            InstrClass::Trap => 3,
        };
        self.result.class_counts[class_idx] += 1;
        if info.executed {
            self.result.executed += 1;
        }
        self.result.reg_reads += u64::from(info.reg_reads);
        self.result.reg_writes += u64::from(info.reg_writes);
        if info.sets_flags {
            self.result.flag_writes += 1;
        }
        if info.is_mul {
            self.result.mul_ops += 1;
            self.result.cycles += self.mul_extra_cycles;
        }
        if let Some(mem) = &info.mem {
            let cycle = self.result.cycles;
            let hit = self.dcache.access(mem.addr, !mem.is_load, mem.data, cycle);
            obs.dcache_access(mem.addr, !mem.is_load, hit);
            if !hit {
                self.result.cycles += self.dcache_miss_penalty;
                self.result.dcache_stall_cycles += self.dcache_miss_penalty;
            }
            if mem.is_load {
                self.load_dest_this_group = info.dests[0];
            }
        }
        if let Some(branch) = &info.branch {
            self.result.branch.branches += 1;
            let predicted_taken = branch.backward; // BTFNT
            if branch.taken {
                self.result.branch.taken += 1;
            }
            if branch.taken != predicted_taken {
                self.result.branch.mispredicted += 1;
                self.result.cycles += self.mispredict_penalty;
            } else if branch.taken {
                self.result.cycles += self.taken_branch_penalty;
            }
            if branch.taken {
                // The next fetch starts at the target word.
                self.last_fetch_word = None;
            }
        }
    }

    /// Feeds one retired instruction.
    pub fn observe(&mut self, info: &StepInfo) {
        self.observe_with(info, &mut ());
    }

    /// Feeds one retired instruction, reporting every cache access to
    /// `obs`. [`TimingModel::observe`] is this method with the no-op `()`
    /// observer — the accumulated [`SimResult`] is identical either way.
    pub fn observe_with<O: CacheEventObserver>(&mut self, info: &StepInfo, obs: &mut O) {
        self.result.retired += 1;
        self.fetch(info, obs);
        match self.pending.take() {
            None => self.pending = Some(*info),
            Some(prev) => {
                if Self::can_pair(&prev, info) {
                    self.issue_group(prev, Some(*info), obs);
                } else {
                    self.issue_group(prev, None, obs);
                    self.pending = Some(*info);
                }
            }
        }
    }

    /// Flushes pending state and returns the accumulated statistics.
    #[must_use]
    pub fn finish(self) -> SimResult {
        self.finish_with(&mut ())
    }

    /// Like [`TimingModel::finish`], reporting any cache accesses from the
    /// flushed final issue group to `obs`.
    #[must_use]
    pub fn finish_with<O: CacheEventObserver>(mut self, obs: &mut O) -> SimResult {
        if let Some(prev) = self.pending.take() {
            self.issue_group(prev, None, obs);
        }
        self.icache.finish();
        self.dcache.finish();
        self.result.icache = self.icache.stats().clone();
        self.result.dcache = self.dcache.stats().clone();
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::BranchOutcome;
    use crate::MemAccess;
    use fits_isa::{Reg, TEXT_BASE};

    fn info(pc: u32) -> StepInfo {
        StepInfo {
            pc,
            size: 4,
            fetch_word_addr: pc & !3,
            fetch_word_value: pc, // arbitrary
            class: InstrClass::Operate,
            reg_reads: 2,
            reg_writes: 1,
            executed: true,
            mem: None,
            branch: None,
            is_mul: false,
            dests: [Some(Reg::R0), None],
            sources: [Some(Reg::R1), Some(Reg::R2), None],
            sets_flags: false,
            reads_flags: false,
        }
    }

    fn model() -> TimingModel {
        TimingModel::new(&Sa1100Config::icache_16k()).unwrap()
    }

    #[test]
    fn independent_adjacent_ops_dual_issue() {
        let mut t = model();
        let mut a = info(TEXT_BASE);
        a.dests = [Some(Reg::R0), None];
        let mut b = info(TEXT_BASE + 4);
        b.dests = [Some(Reg::R3), None];
        b.sources = [Some(Reg::R4), None, None];
        t.observe(&a);
        t.observe(&b);
        let r = t.finish();
        assert_eq!(r.dual_issues, 1);
        assert_eq!(r.issue_groups, 1);
        assert_eq!(r.retired, 2);
    }

    #[test]
    fn raw_dependency_blocks_pairing() {
        let mut t = model();
        let a = info(TEXT_BASE); // writes r0
        let mut b = info(TEXT_BASE + 4);
        b.sources = [Some(Reg::R0), None, None]; // reads r0
        t.observe(&a);
        t.observe(&b);
        let r = t.finish();
        assert_eq!(r.dual_issues, 0);
        assert_eq!(r.issue_groups, 2);
    }

    #[test]
    fn flag_dependency_blocks_pairing() {
        let mut t = model();
        let mut a = info(TEXT_BASE);
        a.sets_flags = true;
        let mut b = info(TEXT_BASE + 4);
        b.sources = [Some(Reg::R4), None, None];
        b.dests = [Some(Reg::R5), None];
        b.reads_flags = true;
        t.observe(&a);
        t.observe(&b);
        assert_eq!(t.finish().dual_issues, 0);
    }

    #[test]
    fn two_memory_ops_serialize() {
        let mut t = model();
        let mem = Some(MemAccess {
            addr: fits_isa::DATA_BASE,
            size: 4,
            is_load: true,
            data: 0,
        });
        let mut a = info(TEXT_BASE);
        a.mem = mem;
        a.dests = [Some(Reg::R0), None];
        let mut b = info(TEXT_BASE + 4);
        b.mem = mem;
        b.dests = [Some(Reg::R3), None];
        b.sources = [Some(Reg::R4), None, None];
        t.observe(&a);
        t.observe(&b);
        assert_eq!(t.finish().dual_issues, 0);
    }

    #[test]
    fn icache_miss_stalls() {
        let mut t = model();
        t.observe(&info(TEXT_BASE));
        let r = t.finish();
        assert_eq!(r.icache.misses, 1, "cold fetch misses");
        assert!(r.cycles >= 24);
        assert_eq!(r.icache_stall_cycles, 24);
    }

    #[test]
    fn same_word_fetch_is_shared() {
        let mut t = model();
        // Two 16-bit instructions in one word: same fetch_word_addr.
        let mut a = info(TEXT_BASE);
        a.size = 2;
        let mut b = info(TEXT_BASE + 2);
        b.size = 2;
        b.fetch_word_addr = TEXT_BASE;
        b.dests = [Some(Reg::R3), None];
        b.sources = [Some(Reg::R4), None, None];
        t.observe(&a);
        t.observe(&b);
        let r = t.finish();
        assert_eq!(r.icache.accesses, 1, "one fetch feeds the pair");
        assert_eq!(r.dual_issues, 1);
    }

    #[test]
    fn load_use_stall_applies_across_groups() {
        let mut t = model();
        let mut a = info(TEXT_BASE);
        a.mem = Some(MemAccess {
            addr: fits_isa::DATA_BASE,
            size: 4,
            is_load: true,
            data: 0,
        });
        a.dests = [Some(Reg::R6), None];
        let mut b = info(TEXT_BASE + 4);
        b.sources = [Some(Reg::R6), None, None]; // immediately uses the load
        t.observe(&a);
        t.observe(&b);
        let r = t.finish();
        assert_eq!(r.load_use_stalls, 1);
    }

    #[test]
    fn branch_prediction_btfnt() {
        let mut t = model();
        // Backward taken: predicted correctly -> small penalty only.
        let mut a = info(TEXT_BASE);
        a.class = InstrClass::Branch;
        a.branch = Some(BranchOutcome {
            taken: true,
            backward: true,
        });
        a.dests = [None, None];
        t.observe(&a);
        // Forward taken: mispredict.
        let mut b = info(TEXT_BASE + 4);
        b.class = InstrClass::Branch;
        b.branch = Some(BranchOutcome {
            taken: true,
            backward: false,
        });
        b.dests = [None, None];
        t.observe(&b);
        let r = t.finish();
        assert_eq!(r.branch.branches, 2);
        assert_eq!(r.branch.taken, 2);
        assert_eq!(r.branch.mispredicted, 1);
    }

    #[test]
    fn ipc_bounded_by_two() {
        let mut t = model();
        for i in 0..1000u32 {
            let mut s = info(TEXT_BASE + i * 4);
            s.dests = [Some(Reg::new((i % 6) as u8)), None];
            s.sources = [Some(Reg::new(((i + 7) % 12) as u8)), None, None];
            t.observe(&s);
        }
        let r = t.finish();
        assert!(r.ipc() <= 2.0);
        // Cold-cache compulsory misses dominate this synthetic stream, so
        // judge issue throughput net of I-cache stalls.
        let busy = (r.cycles - r.icache_stall_cycles) as f64;
        assert!(r.retired as f64 / busy > 0.9, "net ipc too low: {busy}");
    }
}
