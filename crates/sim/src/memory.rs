use fits_isa::{DATA_BASE, STACK_TOP};

use crate::SimError;

/// A flat little-endian memory image covering `0..STACK_TOP`.
///
/// Only the data segment and stack live here; instruction fetch goes through
/// the pre-decoded text held by the [`crate::InstrSet`] (the text segment is
/// read-only and never loaded from by the benchmark kernels).
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zeroed memory image and copies `data` to [`DATA_BASE`].
    ///
    /// # Panics
    ///
    /// Panics if the data image overflows the space below [`STACK_TOP`].
    #[must_use]
    pub fn with_data(data: &[u8]) -> Memory {
        let mut mem = Memory {
            bytes: vec![0; STACK_TOP as usize],
        };
        let start = DATA_BASE as usize;
        assert!(
            start + data.len() <= mem.bytes.len(),
            "data segment of {} bytes does not fit",
            data.len()
        );
        mem.bytes[start..start + data.len()].copy_from_slice(data);
        mem
    }

    fn check(&self, addr: u32, size: u32) -> Result<usize, SimError> {
        let a = addr as usize;
        if a + size as usize > self.bytes.len() {
            return Err(SimError::BadAddress { addr, size });
        }
        if !addr.is_multiple_of(size) {
            return Err(SimError::Misaligned { addr, size });
        }
        Ok(a)
    }

    /// Loads a 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range or misaligned addresses.
    pub fn load_w(&self, addr: u32) -> Result<u32, SimError> {
        let a = self.check(addr, 4)?;
        let mut word = [0u8; 4];
        word.copy_from_slice(&self.bytes[a..a + 4]);
        Ok(u32::from_le_bytes(word))
    }

    /// Loads a 16-bit halfword (zero-extended).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range or misaligned addresses.
    pub fn load_h(&self, addr: u32) -> Result<u32, SimError> {
        let a = self.check(addr, 2)?;
        let mut half = [0u8; 2];
        half.copy_from_slice(&self.bytes[a..a + 2]);
        Ok(u32::from(u16::from_le_bytes(half)))
    }

    /// Loads a byte (zero-extended).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses.
    pub fn load_b(&self, addr: u32) -> Result<u32, SimError> {
        let a = self.check(addr, 1)?;
        Ok(u32::from(self.bytes[a]))
    }

    /// Stores a 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range or misaligned addresses.
    pub fn store_w(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Stores the low 16 bits of `value`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range or misaligned addresses.
    pub fn store_h(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        let a = self.check(addr, 2)?;
        self.bytes[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes());
        Ok(())
    }

    /// Stores the low 8 bits of `value`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses.
    pub fn store_b(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = value as u8;
        Ok(())
    }

    /// Reads back a slice of memory (for result verification in tests).
    ///
    /// # Errors
    ///
    /// Fails if the range is out of bounds.
    pub fn read_slice(&self, addr: u32, len: usize) -> Result<&[u8], SimError> {
        let a = addr as usize;
        if a + len > self.bytes.len() {
            return Err(SimError::BadAddress {
                addr,
                size: len as u32,
            });
        }
        Ok(&self.bytes[a..a + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_lands_at_data_base() {
        let mem = Memory::with_data(&[1, 2, 3, 4]);
        assert_eq!(mem.load_w(DATA_BASE).unwrap(), 0x0403_0201);
        assert_eq!(mem.load_b(DATA_BASE + 3).unwrap(), 4);
        assert_eq!(mem.load_h(DATA_BASE + 2).unwrap(), 0x0403);
    }

    #[test]
    fn store_and_load_round_trip() {
        let mut mem = Memory::with_data(&[]);
        mem.store_w(DATA_BASE, 0xdead_beef).unwrap();
        assert_eq!(mem.load_w(DATA_BASE).unwrap(), 0xdead_beef);
        mem.store_h(DATA_BASE + 4, 0x1234_5678).unwrap();
        assert_eq!(mem.load_h(DATA_BASE + 4).unwrap(), 0x5678);
        mem.store_b(DATA_BASE + 6, 0xab).unwrap();
        assert_eq!(mem.load_b(DATA_BASE + 6).unwrap(), 0xab);
    }

    #[test]
    fn alignment_is_enforced() {
        let mem = Memory::with_data(&[]);
        assert!(matches!(
            mem.load_w(DATA_BASE + 2),
            Err(SimError::Misaligned { .. })
        ));
        assert!(matches!(
            mem.load_h(DATA_BASE + 1),
            Err(SimError::Misaligned { .. })
        ));
    }

    #[test]
    fn bounds_are_enforced() {
        let mem = Memory::with_data(&[]);
        assert!(matches!(
            mem.load_w(STACK_TOP),
            Err(SimError::BadAddress { .. })
        ));
        assert!(mem.load_w(STACK_TOP - 4).is_ok());
    }
}
