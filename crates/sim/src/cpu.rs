use fits_isa::alu::Flags;
use fits_isa::{InstrClass, Reg, STACK_TOP};

use crate::{Memory, SimError};

/// The architectural register state shared by all executors: sixteen GPRs
/// and the NZCV flags. The PC is tracked by the machine, not stored in
/// `regs[15]`; reading `r15` through [`ExecCtx::read_reg`] yields the
/// ARM-visible `PC + 8`.
#[derive(Clone, Debug)]
pub struct CpuState {
    /// General-purpose registers `r0`–`r14` (`r15`'s slot is unused).
    pub regs: [u32; 16],
    /// Condition flags.
    pub flags: Flags,
}

impl CpuState {
    /// Fresh state: all registers zero except `sp`, which starts at the top
    /// of the stack.
    #[must_use]
    pub fn new() -> CpuState {
        let mut regs = [0u32; 16];
        regs[Reg::SP.index() as usize] = STACK_TOP;
        CpuState {
            regs,
            flags: Flags::default(),
        }
    }
}

impl Default for CpuState {
    fn default() -> Self {
        CpuState::new()
    }
}

/// A single data-memory access performed by an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u32,
    /// Width in bytes (1, 2 or 4).
    pub size: u32,
    /// Whether the access reads memory.
    pub is_load: bool,
    /// The data moved (used for toggle accounting).
    pub data: u32,
}

/// What executing one instruction did, as reported by an executor to the
/// machine loop.
#[derive(Clone, Copy, Debug)]
pub struct StepOutcome {
    /// Whether the condition passed and the instruction had effect.
    pub executed: bool,
    /// The next PC (sequential or redirected).
    pub next_pc: u32,
    /// Data access, if any.
    pub mem: Option<MemAccess>,
    /// Set when the instruction was an exit trap: the exit code.
    pub exit: Option<u32>,
    /// Set when the instruction was an emit trap: the emitted word, mixed
    /// into the run's output checksum by the machine.
    pub emit: Option<u32>,
    /// For branches: whether the branch was taken and whether it points
    /// backwards (for static-prediction accounting).
    pub branch: Option<BranchOutcome>,
    /// Whether a multiply unit was used.
    pub is_mul: bool,
}

/// Branch resolution details.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch redirected the PC.
    pub taken: bool,
    /// Whether the (static) target lies at a lower address than the branch.
    pub backward: bool,
}

/// Everything the timing model needs to know about one retired instruction.
#[derive(Clone, Copy, Debug)]
pub struct StepInfo {
    /// The instruction's address.
    pub pc: u32,
    /// Encoded size in bytes (4 for AR32, 2 for FITS).
    pub size: u32,
    /// The aligned 32-bit word the fetch unit read to obtain it.
    pub fetch_word_addr: u32,
    /// The contents of that word (for output-toggle accounting).
    pub fetch_word_value: u32,
    /// Broad category.
    pub class: InstrClass,
    /// Register-file read/write port usage.
    pub reg_reads: u32,
    /// Register-file write port usage.
    pub reg_writes: u32,
    /// Whether the condition passed.
    pub executed: bool,
    /// Data access, if any.
    pub mem: Option<MemAccess>,
    /// Branch resolution, if this was a branch.
    pub branch: Option<BranchOutcome>,
    /// Whether a multiply unit was used.
    pub is_mul: bool,
    /// Destination registers written (up to two), for hazard tracking.
    pub dests: [Option<Reg>; 2],
    /// Source registers read (up to three), for hazard tracking.
    pub sources: [Option<Reg>; 3],
    /// Whether the flags were written.
    pub sets_flags: bool,
    /// Whether the instruction reads the flags (predication or ADC-style).
    pub reads_flags: bool,
}

/// Execution context handed to an [`crate::InstrSet`]'s `execute`: the
/// register file, data memory and the current PC.
pub struct ExecCtx<'a> {
    /// Register and flag state.
    pub cpu: &'a mut CpuState,
    /// Data memory.
    pub mem: &'a mut Memory,
    /// Address of the executing instruction.
    pub pc: u32,
}

impl ExecCtx<'_> {
    /// Reads a register with ARM PC semantics: `r15` reads as `PC + 8`.
    #[must_use]
    pub fn read_reg(&self, r: Reg) -> u32 {
        if r.is_pc() {
            self.pc.wrapping_add(8)
        } else {
            self.cpu.regs[r.index() as usize]
        }
    }

    /// Writes a register. Writing the PC is handled by the executor (it
    /// redirects control); this helper only stores to `r0`–`r14`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is the PC — executors must intercept PC writes.
    pub fn write_reg(&mut self, r: Reg, value: u32) {
        assert!(!r.is_pc(), "PC writes must be handled as control flow");
        self.cpu.regs[r.index() as usize] = value;
    }

    /// Performs a data-memory load of `size` bytes (sign-extending when
    /// `signed` is set), returning the value.
    ///
    /// # Errors
    ///
    /// Propagates alignment/range errors from [`Memory`].
    pub fn load(&mut self, addr: u32, size: u32, signed: bool) -> Result<u32, SimError> {
        let raw = match size {
            4 => self.mem.load_w(addr)?,
            2 => self.mem.load_h(addr)?,
            1 => self.mem.load_b(addr)?,
            _ => unreachable!("load size {size}"),
        };
        Ok(match (size, signed) {
            (2, true) => raw as u16 as i16 as i32 as u32,
            (1, true) => raw as u8 as i8 as i32 as u32,
            _ => raw,
        })
    }

    /// Performs a data-memory store of `size` bytes.
    ///
    /// # Errors
    ///
    /// Propagates alignment/range errors from [`Memory`].
    pub fn store(&mut self, addr: u32, size: u32, value: u32) -> Result<(), SimError> {
        match size {
            4 => self.mem.store_w(addr, value),
            2 => self.mem.store_h(addr, value),
            1 => self.mem.store_b(addr, value),
            _ => unreachable!("store size {size}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_has_stack_pointer() {
        let cpu = CpuState::new();
        assert_eq!(cpu.regs[13], STACK_TOP);
        assert_eq!(cpu.regs[0], 0);
        assert!(!cpu.flags.z);
    }

    #[test]
    fn pc_reads_as_plus_eight() {
        let mut cpu = CpuState::new();
        let mut mem = Memory::with_data(&[]);
        let ctx = ExecCtx {
            cpu: &mut cpu,
            mem: &mut mem,
            pc: 0x8000,
        };
        assert_eq!(ctx.read_reg(Reg::PC), 0x8008);
        assert_eq!(ctx.read_reg(Reg::R0), 0);
    }

    #[test]
    fn signed_loads_extend() {
        let mut cpu = CpuState::new();
        let mut mem = Memory::with_data(&[0xff, 0x7f, 0x80, 0xff]);
        let mut ctx = ExecCtx {
            cpu: &mut cpu,
            mem: &mut mem,
            pc: 0,
        };
        let base = fits_isa::DATA_BASE;
        assert_eq!(ctx.load(base, 1, true).unwrap(), u32::MAX);
        assert_eq!(ctx.load(base + 1, 1, true).unwrap(), 0x7f);
        assert_eq!(ctx.load(base, 2, true).unwrap(), 0x7fff);
        assert_eq!(ctx.load(base + 2, 2, true).unwrap(), 0xffff_ff80);
        assert_eq!(ctx.load(base + 2, 2, false).unwrap(), 0xff80);
    }
}
