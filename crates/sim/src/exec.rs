//! The [`InstrSet`] abstraction and the native AR32 executor.

use fits_isa::alu::{dp_eval, mul_flags, shifter_operand};
use fits_isa::{AddrOffset, Index, Instr, InstrClass, MemOp, Program, Reg, Shift, TEXT_BASE};

use crate::cpu::BranchOutcome;
use crate::{ExecCtx, MemAccess, SimError, StepOutcome};

/// Static, per-instruction metadata the machine loop and timing model need.
///
/// Everything here is a pure function of the decoded instruction, so
/// instruction sets compute it **once at load time** (one table entry per
/// static op) rather than on every retired instruction — see
/// [`InstrSet::op_with_meta`].
#[derive(Clone, Copy, Debug)]
pub struct OpMeta {
    /// Broad category.
    pub class: InstrClass,
    /// Source registers (up to three).
    pub sources: [Option<Reg>; 3],
    /// Destination registers (up to two).
    pub dests: [Option<Reg>; 2],
    /// Whether the instruction writes the flags.
    pub sets_flags: bool,
    /// Whether the instruction reads the flags (predication, ADC/SBC, …).
    pub reads_flags: bool,
    /// Whether a multiplier is used.
    pub is_mul: bool,
    /// Register-file read ports used (`sources` entries that are `Some`).
    pub reg_reads: u32,
    /// Register-file write ports used (`dests` entries that are `Some`).
    pub reg_writes: u32,
}

impl OpMeta {
    /// Builds metadata, deriving the read/write port counts from the
    /// operand slots so they are computed exactly once per static op.
    #[must_use]
    pub fn new(
        class: InstrClass,
        sources: [Option<Reg>; 3],
        dests: [Option<Reg>; 2],
        sets_flags: bool,
        reads_flags: bool,
        is_mul: bool,
    ) -> OpMeta {
        OpMeta {
            class,
            sources,
            dests,
            sets_flags,
            reads_flags,
            is_mul,
            reg_reads: sources.iter().flatten().count() as u32,
            reg_writes: dests.iter().flatten().count() as u32,
        }
    }
}

/// Static control-flow shape of one decoded op — what the basic-block
/// lifter ([`crate::CompiledProgram`]) needs to place block leaders and
/// pre-resolve successor links.
///
/// The classification is purely static: a conditional branch is
/// [`OpControl::Branch`] whether or not any dynamic instance takes it, and
/// an op is [`OpControl::Indirect`] whenever its target is only known at
/// run time (`mov pc, r`, `ldr pc, …`, FITS `jalr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpControl {
    /// Falls through to the next op.
    Sequential,
    /// Direct (possibly conditional) branch to a statically-known PC.
    Branch {
        /// Architectural target PC when the branch is taken.
        target: u32,
    },
    /// PC redirect whose target is only known at run time.
    Indirect,
    /// Trap (exit/emit); ends a block because `exit` stops the run.
    Trap,
}

/// An executable instruction set: the bridge between a program binary and
/// the ISA-agnostic [`crate::Machine`].
///
/// Implementations hold the pre-decoded text segment (instruction memory is
/// read-only in this simulator) and expose the raw encoded words so the
/// fetch path can account cache activity against the real bit patterns.
pub trait InstrSet {
    /// The decoded instruction type.
    type Op;

    /// Entry PC.
    fn entry_pc(&self) -> u32;

    /// Uniform encoded instruction size in bytes (4 for AR32, 2 for FITS).
    fn op_size(&self) -> u32;

    /// The initialized data image to load at `DATA_BASE`.
    fn initial_data(&self) -> &[u8];

    /// The decoded instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadPc`] when `pc` is outside the text segment or
    /// misaligned.
    fn op_at(&self, pc: u32) -> Result<&Self::Op, SimError>;

    /// The encoded 32-bit word at an aligned text address (for fetch/toggle
    /// accounting). Out-of-range addresses return 0.
    fn fetch_word(&self, word_addr: u32) -> u32;

    /// Static metadata for an instruction.
    fn describe(&self, op: &Self::Op) -> OpMeta;

    /// Base address of the text segment (the PC of op index 0). Both
    /// shipped instruction sets place their text at the workspace-wide
    /// [`TEXT_BASE`].
    fn text_base(&self) -> u32 {
        TEXT_BASE
    }

    /// Number of decoded ops in the text segment. Op `i` lives at
    /// `text_base() + i * op_size()`.
    fn op_count(&self) -> usize;

    /// Static control-flow classification of the op at `pc`, used by the
    /// basic-block lifter to place leaders and pre-resolve direct branch
    /// targets. Must agree with what `execute` can actually do to the PC.
    fn control_flow(&self, pc: u32, op: &Self::Op) -> OpControl;

    /// The decoded instruction at `pc` together with its **precomputed**
    /// static metadata. This is the machine loop's per-step entry point:
    /// implementations must serve the metadata from a table built at load
    /// time, never by re-deriving it per retired instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadPc`] when `pc` is outside the text segment or
    /// misaligned.
    fn op_with_meta(&self, pc: u32) -> Result<(&Self::Op, &OpMeta), SimError>;

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates memory faults and malformed-instruction conditions.
    fn execute(&self, op: &Self::Op, ctx: &mut ExecCtx<'_>) -> Result<StepOutcome, SimError>;
}

/// The native AR32 instruction set, pre-decoded from a [`Program`].
#[derive(Clone, Debug)]
pub struct Ar32Set {
    text: Vec<Instr>,
    words: Vec<u32>,
    /// Per-op static metadata, parallel to `text` (built once at load).
    metas: Vec<OpMeta>,
    data: Vec<u8>,
    entry: usize,
}

impl Ar32Set {
    /// Loads a program, pre-encoding every instruction for fetch accounting
    /// and pre-computing its static metadata for the step loop.
    #[must_use]
    pub fn load(program: &Program) -> Ar32Set {
        Ar32Set::load_with(program, fits_isa::spec::Ar32Tables::builtin())
    }

    /// Loads a program using spec-compiled encode tables for the fetch
    /// words, so toggle/cache accounting runs against the bit patterns the
    /// loaded ISA spec defines. `load` is this with the shipped tables
    /// (which are bit-identical to [`Instr::encode`]).
    #[must_use]
    pub fn load_with(program: &Program, tables: &fits_isa::spec::Ar32Tables) -> Ar32Set {
        Ar32Set {
            words: program.text.iter().map(|i| tables.encode(i)).collect(),
            metas: program.text.iter().map(instr_meta).collect(),
            text: program.text.clone(),
            data: program.data.clone(),
            entry: program.entry,
        }
    }

    fn index_of(&self, pc: u32) -> Result<usize, SimError> {
        if pc < TEXT_BASE || !pc.is_multiple_of(4) {
            return Err(SimError::BadPc { pc });
        }
        let index = ((pc - TEXT_BASE) / 4) as usize;
        if index >= self.text.len() {
            return Err(SimError::BadPc { pc });
        }
        Ok(index)
    }
}

/// Static metadata for an AR32 internal operation — shared with the FITS
/// executor, which pre-decodes to the same internal form.
#[must_use]
pub fn instr_meta(instr: &Instr) -> OpMeta {
    let mut sources = [None; 3];
    for (slot, r) in sources.iter_mut().zip(instr.reads()) {
        *slot = Some(r);
    }
    let mut dests = [None; 2];
    for (slot, r) in dests.iter_mut().zip(instr.writes()) {
        *slot = Some(r);
    }
    let reads_flags = instr.cond() != fits_isa::Cond::Al
        || matches!(
            instr,
            Instr::Dp {
                op: fits_isa::DpOp::Adc | fits_isa::DpOp::Sbc | fits_isa::DpOp::Rsc,
                ..
            }
        );
    OpMeta::new(
        instr.class(),
        sources,
        dests,
        instr.sets_flags(),
        reads_flags,
        matches!(instr, Instr::Mul { .. }),
    )
}

/// Static control flow of an [`Instr`], shared with the FITS executor
/// (whose `Plain` micro-ops are this same type at `op_size == 2`). The
/// branch-target arithmetic mirrors [`execute_instr`] exactly: words
/// relative to PC + 2·`op_size`, scaled by `op_size`.
#[must_use]
pub fn instr_control_flow(instr: &Instr, pc: u32, op_size: u32) -> OpControl {
    match instr {
        Instr::Branch { offset, .. } => OpControl::Branch {
            target: pc
                .wrapping_add(2 * op_size)
                .wrapping_add((offset.wrapping_mul(op_size as i32)) as u32),
        },
        Instr::Dp { op, rd, .. } if rd.is_pc() && !op.is_compare() => OpControl::Indirect,
        Instr::Mem { op, rd, .. } if op.is_load() && rd.is_pc() => OpControl::Indirect,
        Instr::Swi { .. } => OpControl::Trap,
        _ => OpControl::Sequential,
    }
}

/// Executes one AR32 instruction against the context. Shared with the FITS
/// executor in `fits-core`, whose programmable decoder expands each 16-bit
/// instruction to exactly this internal form — the "full range of functions"
/// datapath of the paper's §3.1.
///
/// # Errors
///
/// Propagates memory faults and unknown trap numbers.
pub fn execute_instr(
    instr: &Instr,
    ctx: &mut ExecCtx<'_>,
    op_size: u32,
) -> Result<StepOutcome, SimError> {
    let seq_pc = ctx.pc.wrapping_add(op_size);
    let mut out = StepOutcome {
        executed: true,
        next_pc: seq_pc,
        mem: None,
        exit: None,
        emit: None,
        branch: None,
        is_mul: false,
    };

    if !instr.cond().holds(ctx.cpu.flags) {
        out.executed = false;
        if let Instr::Branch { offset, .. } = instr {
            out.branch = Some(BranchOutcome {
                taken: false,
                backward: *offset < 0,
            });
        }
        return Ok(out);
    }

    match instr {
        Instr::Dp {
            op,
            set_flags,
            rd,
            rn,
            op2,
            ..
        } => {
            let (b, shifter_carry) = shifter_operand(op2, ctx.cpu.flags.c, |r| ctx.read_reg(r));
            let a = if op.ignores_rn() {
                0
            } else {
                ctx.read_reg(*rn)
            };
            let r = dp_eval(*op, a, b, shifter_carry, ctx.cpu.flags);
            if *set_flags {
                ctx.cpu.flags = r.flags;
            }
            if !op.is_compare() {
                if rd.is_pc() {
                    if !r.value.is_multiple_of(op_size) {
                        return Err(SimError::BadPc { pc: r.value });
                    }
                    out.next_pc = r.value;
                } else {
                    ctx.write_reg(*rd, r.value);
                }
            }
        }
        Instr::Mul {
            set_flags,
            rd,
            rm,
            rs,
            acc,
            ..
        } => {
            out.is_mul = true;
            let mut value = ctx.read_reg(*rm).wrapping_mul(ctx.read_reg(*rs));
            if let Some(rn) = acc {
                value = value.wrapping_add(ctx.read_reg(*rn));
            }
            if *set_flags {
                ctx.cpu.flags = mul_flags(value, ctx.cpu.flags);
            }
            ctx.write_reg(*rd, value);
        }
        Instr::Mem {
            op,
            rd,
            rn,
            offset,
            index,
            ..
        } => {
            let base = ctx.read_reg(*rn);
            let off_value = match offset {
                AddrOffset::Imm(d) => *d as u32,
                AddrOffset::Reg {
                    rm,
                    shift,
                    subtract,
                } => {
                    let raw = ctx.read_reg(*rm);
                    let shifted = match shift {
                        Shift::Imm(kind, n) => {
                            let amount = u32::from(*n);
                            fits_isa::alu::barrel_shift(*kind, raw, amount, false).0
                        }
                        Shift::Reg(..) => {
                            return Err(SimError::BadInstruction {
                                what: "register-shifted memory offset".to_string(),
                            })
                        }
                    };
                    if *subtract {
                        shifted.wrapping_neg()
                    } else {
                        shifted
                    }
                }
            };
            let indexed = base.wrapping_add(off_value);
            let addr = match index {
                Index::Post => base,
                _ => indexed,
            };
            let size = op.size();
            let signed = matches!(op, MemOp::Ldrsb | MemOp::Ldrsh);
            let data;
            if op.is_load() {
                let value = ctx.load(addr, size, signed)?;
                data = value;
                if index.writes_base() {
                    ctx.write_reg(*rn, indexed);
                }
                if rd.is_pc() {
                    if value % op_size != 0 {
                        return Err(SimError::BadPc { pc: value });
                    }
                    out.next_pc = value;
                } else {
                    ctx.write_reg(*rd, value);
                }
            } else {
                let value = ctx.read_reg(*rd);
                ctx.store(addr, size, value)?;
                data = value;
                if index.writes_base() {
                    ctx.write_reg(*rn, indexed);
                }
            }
            out.mem = Some(MemAccess {
                addr,
                size,
                is_load: op.is_load(),
                data,
            });
        }
        Instr::Branch { link, offset, .. } => {
            if *link {
                ctx.write_reg(Reg::LR, ctx.pc.wrapping_add(op_size));
            }
            // The offset is architectural: words relative to PC + 8 in AR32.
            // FITS reuses the same `Instr` as its micro-op form with its own
            // scaling, so the executor takes the op size into account.
            let scale = op_size;
            out.next_pc = ctx
                .pc
                .wrapping_add(2 * scale)
                .wrapping_add((offset.wrapping_mul(scale as i32)) as u32);
            out.branch = Some(BranchOutcome {
                taken: true,
                backward: *offset < 0,
            });
        }
        Instr::Swi { imm, .. } => match imm {
            0 => out.exit = Some(ctx.read_reg(Reg::R0)),
            1 => out.emit = Some(ctx.read_reg(Reg::R0)),
            n => return Err(SimError::UnknownSwi { number: *n }),
        },
    }
    Ok(out)
}

impl InstrSet for Ar32Set {
    type Op = Instr;

    fn entry_pc(&self) -> u32 {
        TEXT_BASE + (self.entry as u32) * 4
    }

    fn op_size(&self) -> u32 {
        4
    }

    fn initial_data(&self) -> &[u8] {
        &self.data
    }

    fn op_at(&self, pc: u32) -> Result<&Instr, SimError> {
        Ok(&self.text[self.index_of(pc)?])
    }

    fn fetch_word(&self, word_addr: u32) -> u32 {
        self.index_of(word_addr).map(|i| self.words[i]).unwrap_or(0)
    }

    fn describe(&self, op: &Instr) -> OpMeta {
        instr_meta(op)
    }

    fn op_count(&self) -> usize {
        self.text.len()
    }

    fn control_flow(&self, pc: u32, op: &Instr) -> OpControl {
        instr_control_flow(op, pc, 4)
    }

    fn op_with_meta(&self, pc: u32) -> Result<(&Instr, &OpMeta), SimError> {
        let index = self.index_of(pc)?;
        Ok((&self.text[index], &self.metas[index]))
    }

    fn execute(&self, op: &Instr, ctx: &mut ExecCtx<'_>) -> Result<StepOutcome, SimError> {
        execute_instr(op, ctx, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuState, Memory};
    use fits_isa::{Cond, DpOp, Operand2, RotImm, ShiftKind, DATA_BASE};

    fn ctx_fixture() -> (CpuState, Memory) {
        (CpuState::new(), Memory::with_data(&[0; 64]))
    }

    fn exec(instr: Instr, cpu: &mut CpuState, mem: &mut Memory, pc: u32) -> StepOutcome {
        let mut ctx = ExecCtx { cpu, mem, pc };
        execute_instr(&instr, &mut ctx, 4).unwrap()
    }

    #[test]
    fn add_and_flags() {
        let (mut cpu, mut mem) = ctx_fixture();
        cpu.regs[1] = 7;
        let out = exec(
            Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::imm(5).unwrap()),
            &mut cpu,
            &mut mem,
            TEXT_BASE,
        );
        assert_eq!(cpu.regs[0], 12);
        assert_eq!(out.next_pc, TEXT_BASE + 4);
        assert!(!cpu.flags.z, "no S bit, flags untouched");
    }

    #[test]
    fn conditional_skip() {
        let (mut cpu, mut mem) = ctx_fixture();
        cpu.regs[1] = 7;
        let out = exec(
            Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::imm(5).unwrap()).with_cond(Cond::Eq),
            &mut cpu,
            &mut mem,
            TEXT_BASE,
        );
        assert!(!out.executed);
        assert_eq!(cpu.regs[0], 0);
    }

    #[test]
    fn load_store_round_trip() {
        let (mut cpu, mut mem) = ctx_fixture();
        cpu.regs[1] = DATA_BASE;
        cpu.regs[2] = 0xdead_beef;
        exec(
            Instr::mem(MemOp::Str, Reg::R2, Reg::R1, 8),
            &mut cpu,
            &mut mem,
            TEXT_BASE,
        );
        let out = exec(
            Instr::mem(MemOp::Ldr, Reg::R3, Reg::R1, 8),
            &mut cpu,
            &mut mem,
            TEXT_BASE + 4,
        );
        assert_eq!(cpu.regs[3], 0xdead_beef);
        let acc = out.mem.unwrap();
        assert_eq!(acc.addr, DATA_BASE + 8);
        assert!(acc.is_load);
        assert_eq!(acc.data, 0xdead_beef);
    }

    #[test]
    fn post_index_updates_base() {
        let (mut cpu, mut mem) = ctx_fixture();
        cpu.regs[1] = DATA_BASE;
        mem.store_w(DATA_BASE, 42).unwrap();
        let instr = Instr::Mem {
            cond: Cond::Al,
            op: MemOp::Ldr,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: AddrOffset::Imm(4),
            index: Index::Post,
        };
        exec(instr, &mut cpu, &mut mem, TEXT_BASE);
        assert_eq!(cpu.regs[0], 42);
        assert_eq!(cpu.regs[1], DATA_BASE + 4);
    }

    #[test]
    fn scaled_register_offset() {
        let (mut cpu, mut mem) = ctx_fixture();
        cpu.regs[1] = DATA_BASE;
        cpu.regs[2] = 3;
        mem.store_w(DATA_BASE + 12, 99).unwrap();
        let instr = Instr::Mem {
            cond: Cond::Al,
            op: MemOp::Ldr,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: AddrOffset::Reg {
                rm: Reg::R2,
                shift: Shift::Imm(ShiftKind::Lsl, 2),
                subtract: false,
            },
            index: Index::PreNoWb,
        };
        exec(instr, &mut cpu, &mut mem, TEXT_BASE);
        assert_eq!(cpu.regs[0], 99);
    }

    #[test]
    fn branch_and_link() {
        let (mut cpu, mut mem) = ctx_fixture();
        let out = exec(
            Instr::Branch {
                cond: Cond::Al,
                link: true,
                offset: 3,
            },
            &mut cpu,
            &mut mem,
            TEXT_BASE,
        );
        assert_eq!(out.next_pc, TEXT_BASE + 8 + 12);
        assert_eq!(cpu.regs[14], TEXT_BASE + 4);
        assert_eq!(
            out.branch,
            Some(BranchOutcome {
                taken: true,
                backward: false
            })
        );
    }

    #[test]
    fn return_via_mov_pc_lr() {
        let (mut cpu, mut mem) = ctx_fixture();
        cpu.regs[14] = TEXT_BASE + 0x40;
        let out = exec(
            Instr::mov(Reg::PC, Operand2::reg(Reg::LR)),
            &mut cpu,
            &mut mem,
            TEXT_BASE,
        );
        assert_eq!(out.next_pc, TEXT_BASE + 0x40);
    }

    #[test]
    fn mla_accumulates() {
        let (mut cpu, mut mem) = ctx_fixture();
        cpu.regs[1] = 6;
        cpu.regs[2] = 7;
        cpu.regs[3] = 100;
        let instr = Instr::Mul {
            cond: Cond::Al,
            set_flags: false,
            rd: Reg::R0,
            rm: Reg::R1,
            rs: Reg::R2,
            acc: Some(Reg::R3),
        };
        let out = exec(instr, &mut cpu, &mut mem, TEXT_BASE);
        assert_eq!(cpu.regs[0], 142);
        assert!(out.is_mul);
    }

    #[test]
    fn swi_exit_and_emit() {
        let (mut cpu, mut mem) = ctx_fixture();
        cpu.regs[0] = 77;
        let out = exec(
            Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            },
            &mut cpu,
            &mut mem,
            TEXT_BASE,
        );
        assert_eq!(out.exit, Some(77));
        let out = exec(
            Instr::Swi {
                cond: Cond::Al,
                imm: 1,
            },
            &mut cpu,
            &mut mem,
            TEXT_BASE,
        );
        assert_eq!(out.emit, Some(77));
        let mut ctx = ExecCtx {
            cpu: &mut cpu,
            mem: &mut mem,
            pc: TEXT_BASE,
        };
        assert!(matches!(
            execute_instr(
                &Instr::Swi {
                    cond: Cond::Al,
                    imm: 9
                },
                &mut ctx,
                4
            ),
            Err(SimError::UnknownSwi { number: 9 })
        ));
    }

    #[test]
    fn rotated_immediate_materializes() {
        let (mut cpu, mut mem) = ctx_fixture();
        let imm = RotImm::encode(0x3fc0).unwrap();
        exec(
            Instr::mov(Reg::R0, Operand2::Imm(imm)),
            &mut cpu,
            &mut mem,
            TEXT_BASE,
        );
        assert_eq!(cpu.regs[0], 0x3fc0);
    }

    #[test]
    fn meta_flags() {
        let set = Ar32Set::load(&Program {
            text: vec![Instr::dp(
                DpOp::Adc,
                Reg::R0,
                Reg::R1,
                Operand2::reg(Reg::R2),
            )],
            ..Program::default()
        });
        let m = set.describe(&set.text[0]);
        assert!(m.reads_flags);
        assert!(!m.sets_flags);
        assert_eq!(m.class, InstrClass::Operate);
        assert_eq!(m.sources[0], Some(Reg::R1));
        assert_eq!(m.dests[0], Some(Reg::R0));
    }
}
