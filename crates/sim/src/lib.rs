//! # fits-sim — functional and timing simulation
//!
//! The execution substrate of the PowerFITS reproduction, standing in for
//! SimpleScalar-ARM: a functional executor for program images, a
//! set-associative cache model with the activity counters the power model
//! needs (access counts, output-bit toggles, sliding-window peaks), and a
//! dual-issue in-order timing model configured after Intel's SA-1100
//! StrongARM (the paper's §5 experimental setup).
//!
//! The crate is deliberately ISA-agnostic: anything implementing
//! [`InstrSet`] can be simulated. [`Ar32Set`] runs native AR32 programs;
//! `fits-core` provides the executor for synthesized 16-bit FITS binaries
//! (backed by its programmable decoder), so the same machinery measures both
//! sides of every experiment.
//!
//! ## Example
//!
//! ```
//! use fits_isa::{Instr, Operand2, Reg, Cond, DpOp, Program};
//! use fits_sim::{Ar32Set, Machine};
//!
//! # fn main() -> Result<(), fits_sim::SimError> {
//! // r0 = 10; loop { r0 -= 1 } until zero; exit(r0 + 3)
//! let program = Program {
//!     text: vec![
//!         Instr::mov(Reg::R0, Operand2::imm(10).unwrap()),
//!         Instr::Dp { cond: Cond::Al, op: DpOp::Sub, set_flags: true,
//!                     rd: Reg::R0, rn: Reg::R0, op2: Operand2::imm(1).unwrap() },
//!         Instr::b(-3).with_cond(Cond::Ne),
//!         Instr::dp(DpOp::Add, Reg::R0, Reg::R0, Operand2::imm(3).unwrap()),
//!         Instr::Swi { cond: Cond::Al, imm: 0 },
//!     ],
//!     ..Program::default()
//! };
//! let mut machine = Machine::new(Ar32Set::load(&program));
//! let run = machine.run()?;
//! assert_eq!(run.exit_code, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod cache;
mod cpu;
mod error;
mod exec;
mod machine;
mod memory;
mod replay;
mod timing;

pub use cache::{
    validate_geometry, Cache, CacheConfig, CacheStats, GeometryError, Replacement, WindowPeak,
    PEAK_WINDOW_CYCLES,
};
pub use cpu::{BranchOutcome, CpuState, ExecCtx, MemAccess, StepInfo, StepOutcome};
pub use error::SimError;
pub use exec::{
    execute_instr, instr_control_flow, instr_meta, Ar32Set, InstrSet, OpControl, OpMeta,
};
pub use machine::{fold_emitted, Machine, RunOutput, MAX_STEPS_DEFAULT};
pub use memory::Memory;
pub use replay::{BasicBlock, CompiledProgram, RecordedTrace, StepTemplate, TraceEntry};
pub use timing::{BranchStats, CacheEventObserver, Sa1100Config, SimResult, TimingModel};
