//! The basic-block compiled replay engine.
//!
//! The interpreted paths ([`crate::Machine::run_timed`],
//! [`TimingModel`]) re-derive everything per retired instruction: decode
//! lookup, `StepInfo` assembly, and one full timing-model pass per
//! configuration. This module splits that work into three phases so a
//! geometry × tech sweep pays for the expensive parts exactly once:
//!
//! 1. **Lift** ([`CompiledProgram::compile`]) — discover basic blocks from
//!    the decoded text (leaders at the entry, at direct branch targets and
//!    after every control-flow op), precompute one static [`StepTemplate`]
//!    per op (PC, fetch word, class, ports, operands — everything in
//!    [`crate::StepInfo`] that does not depend on the dynamic outcome) and
//!    pre-resolve direct successor links.
//! 2. **Record** ([`crate::Machine::run_recorded`]) — one functional
//!    execution emits a compact trace: `(block-entry index, length)` pairs
//!    plus one dynamic-outcome byte per retired op and a side stream of
//!    memory addresses/data. No `StepInfo` is built and no timing model
//!    runs.
//! 3. **Replay** ([`RecordedTrace::price_all`]) — one pass over the trace
//!    re-runs the SA-1100 issue/hazard pipeline (which is configuration-
//!    independent: pairing, interlocks and prediction depend only on the
//!    program, never on cache geometry or penalty values) and prices **all
//!    N configurations simultaneously**, with per-configuration timing
//!    state laid out in a contiguous structure-of-arrays of [`Lane`]s. The
//!    cycle at which each cache access lands in lane *i* is reconstructed
//!    from shared event counters and lane-local stall totals, so every
//!    lane's `Cache` sees exactly the `(addr, data, cycle)` sequence the
//!    interpreted model would have produced — bit-identical counters, one
//!    pipeline pass instead of N.
//!
//! The differential tests (`tests/replay_multi.rs`, `tests/prop_replay.rs`
//! and the `fits-obs` suite) hold phases 2–3 bit-identical to the
//! interpreted reference on every counter of [`SimResult`] and every
//! [`CacheEventObserver`] event.

use fits_isa::{InstrClass, Reg};

use crate::cache::validate_config;
use crate::machine::{RunOutput, FNV_OFFSET};
use crate::timing::{BranchStats, CacheEventObserver, Sa1100Config, SimResult};
use crate::{Cache, InstrSet, OpControl, SimError};

/// Static per-op template: every [`crate::StepInfo`] field that is a pure
/// function of the decoded instruction, precomputed once at lift time.
#[derive(Clone, Copy, Debug)]
pub struct StepTemplate {
    /// Architectural PC of the op.
    pub pc: u32,
    /// Aligned 32-bit fetch word address (`pc & !3`).
    pub fetch_word_addr: u32,
    /// Encoded contents of the fetch word (for cache toggle accounting).
    pub fetch_word_value: u32,
    /// Broad category.
    pub class: InstrClass,
    /// Register-file read ports used.
    pub reg_reads: u32,
    /// Register-file write ports used.
    pub reg_writes: u32,
    /// Destination registers.
    pub dests: [Option<Reg>; 2],
    /// Source registers.
    pub sources: [Option<Reg>; 3],
    /// Bitmask of `dests` (bit *i* = `r<i>`), for branch-free hazard
    /// checks in the replay pipeline.
    pub dest_mask: u16,
    /// Bitmask of `sources`.
    pub source_mask: u16,
    /// Bitmask of `dests[0]` alone (0 when absent) — the load-use
    /// interlock tracks only a load's first destination.
    pub dest0_mask: u16,
    /// Whether the op writes flags *when executed*.
    pub sets_flags: bool,
    /// Whether the op reads flags.
    pub reads_flags: bool,
    /// Whether the op uses the multiplier *when executed*.
    pub is_mul: bool,
}

/// One basic block of the lifted program, with pre-resolved successors.
#[derive(Clone, Copy, Debug)]
pub struct BasicBlock {
    /// Index of the block's first op (template index == op index).
    pub first: u32,
    /// Number of ops in the block.
    pub len: u32,
    /// Block entered on fall-through, if the terminator can fall through.
    pub fall_through: Option<u32>,
    /// Pre-resolved direct branch successor of the terminator:
    /// `(target PC, target op index, target block)`. `None` for indirect
    /// terminators, traps, and branches leaving the text segment.
    pub branch_to: Option<(u32, u32, u32)>,
}

/// Dynamic-outcome flags recorded per retired op (one byte each).
const F_EXECUTED: u8 = 1 << 0;
const F_MEM: u8 = 1 << 1;
const F_MEM_LOAD: u8 = 1 << 2;
const F_BRANCH: u8 = 1 << 3;
const F_TAKEN: u8 = 1 << 4;
const F_BACKWARD: u8 = 1 << 5;

/// A program lifted to basic-block descriptors and per-op static
/// templates — the shared, configuration-independent half of the compiled
/// replay engine. Build once per loaded binary with
/// [`CompiledProgram::compile`]; reuse across every recording and every
/// sweep point.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    op_size: u32,
    /// Op index of the program entry point.
    entry_index: u32,
    templates: Vec<StepTemplate>,
    blocks: Vec<BasicBlock>,
    /// Per-op: one-past-the-end op index of the containing block.
    boundary: Vec<u32>,
    /// Per-op: containing block id.
    block_of: Vec<u32>,
    /// Base address of op index 0.
    text_base: u32,
    /// Fingerprint tying recorded traces to this lifted program.
    token: u64,
}

impl CompiledProgram {
    /// Lifts a decoded program into block descriptors and step templates.
    ///
    /// # Errors
    ///
    /// Propagates decode-table lookup failures from the instruction set
    /// (impossible for well-formed loaded binaries).
    pub fn compile<S: InstrSet>(set: &S) -> Result<CompiledProgram, SimError> {
        let op_size = set.op_size();
        let text_base = set.text_base();
        let n = set.op_count();
        let entry_index = index_of(set.entry_pc(), text_base, op_size, n)?;

        let mut templates = Vec::with_capacity(n);
        let mut controls = Vec::with_capacity(n);
        let mut token = FNV_OFFSET;
        for i in 0..n {
            let pc = text_base.wrapping_add(i as u32 * op_size);
            let (op, meta) = set.op_with_meta(pc)?;
            let fetch_word_addr = pc & !3;
            let fetch_word_value = set.fetch_word(fetch_word_addr);
            let mask = |regs: &[Option<Reg>]| -> u16 {
                regs.iter().flatten().fold(0u16, |m, r| m | 1 << r.index())
            };
            templates.push(StepTemplate {
                pc,
                fetch_word_addr,
                fetch_word_value,
                class: meta.class,
                reg_reads: meta.reg_reads,
                reg_writes: meta.reg_writes,
                dests: meta.dests,
                sources: meta.sources,
                dest_mask: mask(&meta.dests),
                source_mask: mask(&meta.sources),
                dest0_mask: mask(&meta.dests[..1]),
                sets_flags: meta.sets_flags,
                reads_flags: meta.reads_flags,
                is_mul: meta.is_mul,
            });
            controls.push(set.control_flow(pc, op));
            token = crate::machine::fnv1a(token, u64::from(fetch_word_value));
        }
        token = crate::machine::fnv1a(token, u64::from(op_size));
        token = crate::machine::fnv1a(token, n as u64);

        // Leaders: the entry, every direct branch target inside the text,
        // and the op after every control-flow op.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
            leader[entry_index as usize] = true;
        }
        for (i, control) in controls.iter().enumerate() {
            match control {
                OpControl::Sequential => {}
                OpControl::Branch { target } => {
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                    if let Ok(t) = index_of(*target, text_base, op_size, n) {
                        leader[t as usize] = true;
                    }
                }
                OpControl::Indirect | OpControl::Trap => {
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
            }
        }

        // Partition into blocks and pre-resolve successor links.
        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; n];
        let mut boundary = vec![0u32; n];
        let mut start = 0usize;
        for end in 1..=n {
            if end < n && !leader[end] {
                continue;
            }
            let id = blocks.len() as u32;
            let terminator = &controls[end - 1];
            let fall_through = match terminator {
                OpControl::Sequential | OpControl::Branch { .. } | OpControl::Trap if end < n => {
                    // Block ids are assigned in text order, so the
                    // fall-through block is always the next one.
                    Some(id + 1)
                }
                _ => None,
            };
            let branch_to = match terminator {
                OpControl::Branch { target } => index_of(*target, text_base, op_size, n)
                    .ok()
                    .map(|t| (*target, t, 0u32)), // block id patched below
                _ => None,
            };
            blocks.push(BasicBlock {
                first: start as u32,
                len: (end - start) as u32,
                fall_through,
                branch_to,
            });
            for slot in &mut block_of[start..end] {
                *slot = id;
            }
            for slot in &mut boundary[start..end] {
                *slot = end as u32;
            }
            start = end;
        }
        // Patch branch successors now that every op knows its block.
        let resolved: Vec<Option<(u32, u32, u32)>> = blocks
            .iter()
            .map(|b| b.branch_to.map(|(pc, t, _)| (pc, t, block_of[t as usize])))
            .collect();
        for (block, link) in blocks.iter_mut().zip(resolved) {
            block.branch_to = link;
        }

        Ok(CompiledProgram {
            op_size,
            entry_index,
            templates,
            blocks,
            boundary,
            block_of,
            text_base,
            token,
        })
    }

    /// The lifted basic blocks, in text order.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The per-op static templates (template index == op index).
    #[must_use]
    pub fn templates(&self) -> &[StepTemplate] {
        &self.templates
    }

    /// Number of static ops.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.templates.len()
    }

    /// Block id containing op `index`.
    #[must_use]
    pub fn block_of(&self, index: usize) -> u32 {
        self.block_of[index]
    }

    /// Checks that this lifted program belongs to `set` (same geometry and
    /// encoded text).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadInstruction`] on mismatch.
    pub fn check_matches<S: InstrSet>(&self, set: &S) -> Result<(), SimError> {
        if self.op_size != set.op_size()
            || self.templates.len() != set.op_count()
            || self.text_base != set.text_base()
        {
            return Err(SimError::BadInstruction {
                what: "compiled program does not match this instruction set".to_string(),
            });
        }
        Ok(())
    }

    /// Op index of the program entry point.
    #[must_use]
    pub fn entry_index(&self) -> u32 {
        self.entry_index
    }

    pub(crate) fn token(&self) -> u64 {
        self.token
    }

    pub(crate) fn index_of_pc(&self, pc: u32) -> Result<u32, SimError> {
        index_of(pc, self.text_base, self.op_size, self.templates.len())
    }

    pub(crate) fn boundary_of(&self, index: u32) -> u32 {
        self.boundary[index as usize]
    }

    /// Pre-resolved direct branch successor of the block containing op
    /// `index` (valid only when `index` is the block terminator, which is
    /// the only op that can redirect).
    pub(crate) fn branch_link(&self, index: u32) -> Option<(u32, u32, u32)> {
        self.blocks[self.block_of[index as usize] as usize].branch_to
    }
}

fn index_of(pc: u32, text_base: u32, op_size: u32, n: usize) -> Result<u32, SimError> {
    if pc < text_base || !pc.is_multiple_of(op_size) {
        return Err(SimError::BadPc { pc });
    }
    let index = (pc - text_base) / op_size;
    if index as usize >= n {
        return Err(SimError::BadPc { pc });
    }
    Ok(index)
}

/// One contiguous run of retired ops: `len` ops starting at op `start`.
/// Entries end at block boundaries or at a dynamic PC redirect, so each is
/// a (possibly partial, for indirect entry points) basic-block execution.
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// First op index of the run.
    pub start: u32,
    /// Retired op count.
    pub len: u32,
}

/// A recorded functional execution: the compact block-ID + dynamic-outcome
/// trace phase 2 produces. Replay it over any number of configurations
/// with [`RecordedTrace::price_all`] without re-executing the program.
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    /// Functional result of the recorded execution.
    pub output: RunOutput,
    pub(crate) entries: Vec<TraceEntry>,
    /// One dynamic-outcome byte per retired op, in retire order.
    pub(crate) flags: Vec<u8>,
    /// `(addr, data)` per memory access, in retire order.
    pub(crate) mem: Vec<(u32, u32)>,
    pub(crate) token: u64,
    /// Pairing-independent aggregates, folded once at record time.
    pub(crate) statics: StaticCounters,
}

/// Instruction-mix aggregates that depend only on the retired-op stream,
/// not on issue pairing or any machine configuration: computed in a single
/// template+flag walk when the trace is recorded, so the replay pipeline
/// never touches them per op and every priced lane just copies them into
/// its [`SimResult`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StaticCounters {
    pub(crate) retired: u64,
    pub(crate) executed: u64,
    pub(crate) class_counts: [u64; 4],
    pub(crate) branch: BranchStats,
    pub(crate) reg_reads: u64,
    pub(crate) reg_writes: u64,
    pub(crate) flag_writes: u64,
    pub(crate) mul_ops: u64,
}

/// Index of an instruction class in `class_counts` (same layout as the
/// interpreted [`crate::TimingModel`]).
fn class_index(class: InstrClass) -> usize {
    match class {
        InstrClass::Operate => 0,
        InstrClass::Memory => 1,
        InstrClass::Branch => 2,
        InstrClass::Trap => 3,
    }
}

impl RecordedTrace {
    /// Appends one retired op's dynamic outcome (called by the recording
    /// loop in [`crate::Machine::run_recorded`]).
    pub(crate) fn record_step(&mut self, out: &crate::StepOutcome) {
        let mut f = 0u8;
        if out.executed {
            f |= F_EXECUTED;
        }
        if let Some(mem) = &out.mem {
            f |= F_MEM;
            if mem.is_load {
                f |= F_MEM_LOAD;
            }
            self.mem.push((mem.addr, mem.data));
        }
        if let Some(branch) = &out.branch {
            f |= F_BRANCH;
            if branch.taken {
                f |= F_TAKEN;
            }
            if branch.backward {
                f |= F_BACKWARD;
            }
        }
        self.flags.push(f);
    }

    /// Folds the pairing-independent aggregates (instruction mix, register
    /// traffic, branch outcomes) in one walk over the templates and flag
    /// bytes — called once by [`crate::Machine::run_recorded`] after the
    /// functional pass, so pricing never recomputes them per op.
    pub(crate) fn compute_statics(&mut self, templates: &[StepTemplate]) {
        let mut s = StaticCounters {
            retired: self.flags.len() as u64,
            ..StaticCounters::default()
        };
        let mut flag_idx = 0usize;
        for e in &self.entries {
            for k in 0..e.len {
                let t = &templates[(e.start + k) as usize];
                let f = self.flags[flag_idx];
                flag_idx += 1;
                let executed = f & F_EXECUTED != 0;
                s.class_counts[class_index(t.class)] += 1;
                s.executed += u64::from(executed);
                s.reg_reads += u64::from(t.reg_reads);
                s.reg_writes += u64::from(t.reg_writes);
                s.flag_writes += u64::from(t.sets_flags && executed);
                s.mul_ops += u64::from(t.is_mul && executed);
                if f & F_BRANCH != 0 {
                    let taken = f & F_TAKEN != 0;
                    s.branch.branches += 1;
                    s.branch.taken += u64::from(taken);
                    // BTFNT: backward predicted taken, forward not-taken.
                    s.branch.mispredicted += u64::from(taken != (f & F_BACKWARD != 0));
                }
            }
        }
        self.statics = s;
    }

    /// Number of block-run entries in the trace.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The block-run entries.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Per-static-op execution counts, by difference array over the trace
    /// entries — O(entries + ops) instead of one increment per retired
    /// instruction (the profiler's hot loop).
    #[must_use]
    pub fn exec_counts(&self, op_count: usize) -> Vec<u64> {
        let mut diff = vec![0i64; op_count + 1];
        for e in &self.entries {
            diff[e.start as usize] += 1;
            diff[(e.start + e.len) as usize] -= 1;
        }
        let mut counts = Vec::with_capacity(op_count);
        let mut acc = 0i64;
        for d in &diff[..op_count] {
            acc += d;
            counts.push(acc as u64);
        }
        counts
    }

    /// Replays the SA-1100 pipeline once over the trace and prices **all**
    /// configurations in a structure-of-arrays batch. Returns one
    /// [`SimResult`] per configuration, each bit-identical to an
    /// interpreted [`crate::Machine::run_timed`] of the same program.
    ///
    /// # Errors
    ///
    /// Returns an error when a configuration's cache geometry is
    /// degenerate, or when `compiled` is not the program this trace was
    /// recorded from.
    pub fn price_all(
        &self,
        compiled: &CompiledProgram,
        cfgs: &[Sa1100Config],
    ) -> Result<Vec<SimResult>, SimError> {
        self.price_batch(compiled, cfgs)
    }

    /// Single-configuration replay.
    ///
    /// # Errors
    ///
    /// As [`RecordedTrace::price_all`].
    pub fn price(
        &self,
        compiled: &CompiledProgram,
        cfg: &Sa1100Config,
    ) -> Result<SimResult, SimError> {
        self.price_with(compiled, cfg, &mut ())
    }

    /// Single-configuration replay reporting every cache access to `obs` —
    /// the compiled counterpart of [`TimingModel::observe_with`]: the
    /// event stream is bit-identical to the interpreted one.
    ///
    /// [`TimingModel::observe_with`]: crate::TimingModel::observe_with
    ///
    /// # Errors
    ///
    /// As [`RecordedTrace::price_all`].
    pub fn price_with<O: CacheEventObserver>(
        &self,
        compiled: &CompiledProgram,
        cfg: &Sa1100Config,
        obs: &mut O,
    ) -> Result<SimResult, SimError> {
        let mut results = self.price_lanes(compiled, std::slice::from_ref(cfg), obs)?;
        results.pop().ok_or_else(|| SimError::BadInstruction {
            what: "empty replay lane set".to_string(),
        })
    }

    /// Validates `cfgs` against this trace's program and builds the pricing
    /// lanes.
    fn build_lanes(
        &self,
        compiled: &CompiledProgram,
        cfgs: &[Sa1100Config],
    ) -> Result<Vec<Lane>, SimError> {
        if self.token != compiled.token() {
            return Err(SimError::BadInstruction {
                what: "recorded trace does not belong to this compiled program".to_string(),
            });
        }
        let mut lanes = Vec::with_capacity(cfgs.len());
        for cfg in cfgs {
            validate_config(&cfg.icache)?;
            validate_config(&cfg.dcache)?;
            lanes.push(Lane {
                caches: [
                    Cache::new(cfg.icache.clone()),
                    Cache::new(cfg.dcache.clone()),
                ],
                stalls: [0, 0],
                miss_penalty: [cfg.icache_miss_penalty, cfg.dcache_miss_penalty],
                event_cycles: 0,
                event_penalty: [
                    cfg.mul_extra_cycles,
                    cfg.taken_branch_penalty,
                    cfg.mispredict_penalty,
                ],
            });
        }
        Ok(lanes)
    }

    /// The observed engine: one fused pipeline pass driving every lane
    /// inline, with observer events reported for lane 0 (the observing
    /// callers always pass exactly one configuration).
    fn price_lanes<O: CacheEventObserver>(
        &self,
        compiled: &CompiledProgram,
        cfgs: &[Sa1100Config],
        obs: &mut O,
    ) -> Result<Vec<SimResult>, SimError> {
        let lanes = self.build_lanes(compiled, cfgs)?;
        let mut replay = Replay::new(DirectSink { lanes, obs });
        let mut cursor = OpCursor::new(self, compiled.templates());
        while let Some(op) = cursor.next_op() {
            replay.observe(op);
        }
        replay.flush_pending();
        let shared = replay.shared;
        let sink = replay.sink;
        Ok(sink
            .lanes
            .into_iter()
            .map(|lane| lane.into_result(&shared, &self.statics))
            .collect())
    }

    /// The batch engine behind [`RecordedTrace::price_all`]: the pipeline
    /// pass fills a bounded buffer of cache/penalty events (so memory stays
    /// constant no matter how long the trace is), and each full buffer is
    /// drained by every lane in a tight, branch-light loop. One lane's
    /// cache state stays hot in L1 for a whole chunk instead of being
    /// evicted by its neighbours on every op, which is what makes this
    /// faster than the fused pass despite touching every event N times.
    /// Event order and cycle reconstruction are identical to the fused
    /// pass, so results stay bit-identical regardless of lane count.
    fn price_batch(
        &self,
        compiled: &CompiledProgram,
        cfgs: &[Sa1100Config],
    ) -> Result<Vec<SimResult>, SimError> {
        /// Events per chunk: small enough (16 B each) to stay
        /// cache-resident, large enough to amortize the loop switches.
        const CHUNK_EVENTS: usize = 1 << 15;

        let mut lanes = self.build_lanes(compiled, cfgs)?;
        let mut replay = Replay::new(BufferSink {
            // One op can emit at most 1 I-cache + 1 D-cache event, so a
            // small slack past the target avoids reallocation.
            buf: Vec::with_capacity(CHUNK_EVENTS + 8),
            pending: [0; 3],
            last_word: [0; 2],
        });
        let mut cursor = OpCursor::new(self, compiled.templates());
        let mut done = false;
        while !done {
            while replay.sink.buf.len() < CHUNK_EVENTS {
                match cursor.next_op() {
                    Some(op) => replay.observe(op),
                    None => {
                        replay.flush_pending();
                        done = true;
                        break;
                    }
                }
            }
            for lane in &mut lanes {
                lane.apply(&replay.sink.buf);
            }
            replay.sink.buf.clear();
        }
        // Penalty events after the final cache access never rode a packed
        // delta; fold them into every lane's clock now.
        for lane in &mut lanes {
            lane.apply_trailing(&replay.sink.pending);
        }
        let shared = replay.shared;
        Ok(lanes
            .into_iter()
            .map(|lane| lane.into_result(&shared, &self.statics))
            .collect())
    }
}

/// A cursor decoding the compact trace back into [`RetiredOp`]s, one at a
/// time — the shared driver of both replay engines.
struct OpCursor<'t> {
    templates: &'t [StepTemplate],
    entries: &'t [TraceEntry],
    flags: &'t [u8],
    mem: &'t [(u32, u32)],
    entry_idx: usize,
    pos: u32,
    flag_idx: usize,
    mem_idx: usize,
}

impl<'t> OpCursor<'t> {
    fn new(trace: &'t RecordedTrace, templates: &'t [StepTemplate]) -> OpCursor<'t> {
        OpCursor {
            templates,
            entries: &trace.entries,
            flags: &trace.flags,
            mem: &trace.mem,
            entry_idx: 0,
            pos: 0,
            flag_idx: 0,
            mem_idx: 0,
        }
    }

    fn next_op(&mut self) -> Option<RetiredOp<'t>> {
        loop {
            let entry = self.entries.get(self.entry_idx)?;
            if self.pos == entry.len {
                self.entry_idx += 1;
                self.pos = 0;
                continue;
            }
            let template = &self.templates[(entry.start + self.pos) as usize];
            self.pos += 1;
            let f = self.flags[self.flag_idx];
            self.flag_idx += 1;
            let executed = f & F_EXECUTED != 0;
            let mem = if f & F_MEM != 0 {
                let (addr, data) = self.mem[self.mem_idx];
                self.mem_idx += 1;
                Some((addr, data, f & F_MEM_LOAD != 0))
            } else {
                None
            };
            let branch = if f & F_BRANCH != 0 {
                Some((f & F_TAKEN != 0, f & F_BACKWARD != 0))
            } else {
                None
            };
            return Some(RetiredOp {
                template,
                is_mul: template.is_mul && executed,
                sets_flags: template.sets_flags && executed,
                mem,
                branch,
            });
        }
    }
}

/// One retired op reconstructed from a template plus its recorded dynamic
/// outcome — the replay-side equivalent of [`crate::StepInfo`].
#[derive(Clone, Copy)]
struct RetiredOp<'a> {
    template: &'a StepTemplate,
    /// Executed-and-multiply: conditionally-skipped ops pay no penalty.
    is_mul: bool,
    sets_flags: bool,
    /// `(addr, data, is_load)`.
    mem: Option<(u32, u32, bool)>,
    /// `(taken, backward)`.
    branch: Option<(bool, bool)>,
}

/// Per-configuration timing state: the structure-of-arrays slice of the
/// replay. Everything configuration-dependent lives here; everything else
/// is shared across lanes in [`SharedCounters`].
struct Lane {
    /// `[icache, dcache]`, selected by the event's cache-select bit —
    /// array indexing instead of a per-event branch over cache kind.
    caches: [Cache; 2],
    /// Cycles lost to misses so far per cache (== misses × penalty).
    stalls: [u64; 2],
    /// Miss penalty per cache.
    miss_penalty: [u64; 2],
    /// Cycles from per-event penalties so far: every executed multiply
    /// adds `mul_extra`, every correctly-predicted taken branch adds
    /// `taken_penalty`, every mispredict adds `mispredict_penalty` —
    /// accumulated incrementally at the event instead of recomputed as
    /// `count × penalty` products on every cache access.
    event_cycles: u64,
    /// `[mul_extra, taken_penalty, mispredict_penalty]`, indexed in the
    /// order of the packed delta fields.
    event_penalty: [u64; 3],
}

impl Lane {
    /// The cycle counter this lane's interpreted [`crate::TimingModel`]
    /// would show right now, given the shared pipeline's `base_cycles` at
    /// this point: every increment the model ever applies is either
    /// configuration-independent (issue groups, load-use stalls —
    /// `base_cycles`), an event penalty folded into `event_cycles`, or a
    /// lane-local cache stall.
    #[inline]
    fn cycle_at(&self, base: u64) -> u64 {
        base + self.event_cycles + self.stalls[0] + self.stalls[1]
    }

    /// Drains one buffered event chunk — the per-lane hot loop of the
    /// batch engine. Every event is a cache access (penalty outcomes ride
    /// along as packed deltas, applied *before* the access — exactly when
    /// [`DirectSink`] would have bumped `event_cycles`), so the loop body
    /// is completely branch-free up to the cache's own hit/miss handling:
    /// no data-dependent dispatch to mispredict on.
    fn apply(&mut self, events: &[ReplayEvent]) {
        for ev in events {
            let p = ev.packed;
            // Penalty deltas are zero on the vast majority of events
            // (only branches and multiplies produce them), so one
            // well-predicted branch beats three unconditional multiplies.
            if p >> D_MUL != 0 {
                self.event_cycles += ((p >> D_MUL) & D_MAX) * self.event_penalty[0]
                    + ((p >> D_TAKEN) & D_MAX) * self.event_penalty[1]
                    + ((p >> D_MISPREDICT) & D_MAX) * self.event_penalty[2];
            }
            let which = ((p >> K_DCACHE) & 1) as usize;
            let write = (p >> K_WRITE) & 1 != 0;
            let cycle = (p & BASE_MASK) + self.event_cycles + self.stalls[0] + self.stalls[1];
            let hit =
                self.caches[which].access_toggles(ev.addr, write, u64::from(ev.toggles), cycle);
            self.stalls[which] += self.miss_penalty[which] * u64::from(!hit);
        }
    }

    /// Folds penalty deltas that trail the last cache event (accumulated
    /// in the sink but never attached to an access) into the lane clock.
    fn apply_trailing(&mut self, pending: &[u64; 3]) {
        self.event_cycles += pending[0] * self.event_penalty[0]
            + pending[1] * self.event_penalty[1]
            + pending[2] * self.event_penalty[2];
    }

    /// Finalizes the caches and assembles this lane's [`SimResult`] from
    /// the shared pairing counters and the trace's static aggregates.
    fn into_result(self, shared: &SharedCounters, statics: &StaticCounters) -> SimResult {
        let cycles = self.cycle_at(shared.base_cycles);
        let [mut icache, mut dcache] = self.caches;
        icache.finish();
        dcache.finish();
        SimResult {
            cycles,
            retired: statics.retired,
            executed: statics.executed,
            issue_groups: shared.issue_groups,
            dual_issues: shared.dual_issues,
            icache: icache.stats().clone(),
            dcache: dcache.stats().clone(),
            class_counts: statics.class_counts,
            branch: statics.branch,
            reg_reads: statics.reg_reads,
            reg_writes: statics.reg_writes,
            flag_writes: statics.flag_writes,
            mul_ops: statics.mul_ops,
            load_use_stalls: shared.load_use_stalls,
            icache_stall_cycles: self.stalls[0],
            dcache_stall_cycles: self.stalls[1],
        }
    }
}

/// One lane-facing event emitted by the shared pipeline pass, packed into
/// 16 bytes: the kind tag lives in the top byte of `tagged_base`, the
/// snapshot of [`SharedCounters::base_cycles`] at the access in the low 56
/// bits (a run would need two years of simulated 2.4 GHz time to
/// overflow). The snapshot lets a lane reconstruct the exact interpreted
/// cycle as `base + event_cycles + stalls` without seeing the pipeline at
/// all.
#[derive(Clone, Copy)]
struct ReplayEvent {
    /// Accessed address.
    addr: u32,
    /// Output-port toggle count for this access. The toggle sequence is a
    /// pure function of the access stream (XOR chain over the data words),
    /// so the shared pipeline pass computes each delta once and every lane
    /// just adds it — no per-lane popcount.
    toggles: u32,
    /// Bit-packed `base_cycles` snapshot (low 48 bits — a run would need
    /// a month of simulated 100 GHz time to overflow), cache-select and
    /// write bits, and the three penalty-delta nibbles (see the `K_*` /
    /// `D_*` constants).
    packed: u64,
}

/// Mask of the `base_cycles` snapshot inside [`ReplayEvent::packed`].
const BASE_MASK: u64 = (1 << 48) - 1;
/// Cache-select bit: 0 = I-cache, 1 = D-cache.
const K_DCACHE: u32 = 48;
/// Write bit (D-cache stores).
const K_WRITE: u32 = 49;
/// Executed multiplies since the previous cache event (4-bit delta).
const D_MUL: u32 = 50;
/// Correctly-predicted taken branches since the previous cache event.
const D_TAKEN: u32 = 54;
/// Mispredicted branches since the previous cache event.
const D_MISPREDICT: u32 = 58;
/// Maximum value of one penalty-delta nibble. The pipeline can emit at
/// most a handful of penalty events between consecutive cache accesses
/// (every op is fetched, and an issue group holds at most one multiply
/// and one branch), so 15 is unreachable in practice; the debug assert in
/// [`BufferSink::push`] guards the invariant.
const D_MAX: u64 = 0xf;

/// Where the shared pipeline pass delivers lane-facing events: either
/// straight into every lane ([`DirectSink`], the fused engine), or into a
/// bounded buffer ([`BufferSink`], the batch engine).
trait EventSink {
    fn icache(&mut self, addr: u32, data: u32, base: u64);
    fn dcache(&mut self, addr: u32, write: bool, data: u32, base: u64);
    fn mul_event(&mut self);
    fn taken_event(&mut self);
    fn mispredict_event(&mut self);
}

/// The fused sink: applies each event to every lane inline and reports
/// lane 0's cache outcomes to the observer.
struct DirectSink<'o, O: CacheEventObserver> {
    lanes: Vec<Lane>,
    obs: &'o mut O,
}

impl<O: CacheEventObserver> EventSink for DirectSink<'_, O> {
    fn icache(&mut self, addr: u32, data: u32, base: u64) {
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let cycle = lane.cycle_at(base);
            let hit = lane.caches[0].access(addr, false, data, cycle);
            if !hit {
                lane.stalls[0] += lane.miss_penalty[0];
            }
            if i == 0 {
                self.obs.icache_access(addr, hit);
            }
        }
    }

    fn dcache(&mut self, addr: u32, write: bool, data: u32, base: u64) {
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let cycle = lane.cycle_at(base);
            let hit = lane.caches[1].access(addr, write, data, cycle);
            if !hit {
                lane.stalls[1] += lane.miss_penalty[1];
            }
            if i == 0 {
                self.obs.dcache_access(addr, write, hit);
            }
        }
    }

    fn mul_event(&mut self) {
        for lane in &mut self.lanes {
            lane.event_cycles += lane.event_penalty[0];
        }
    }

    fn taken_event(&mut self) {
        for lane in &mut self.lanes {
            lane.event_cycles += lane.event_penalty[1];
        }
    }

    fn mispredict_event(&mut self) {
        for lane in &mut self.lanes {
            lane.event_cycles += lane.event_penalty[2];
        }
    }
}

/// The batch sink: records each cache access (with its `base_cycles`
/// snapshot) for lanes to drain later in tight per-lane loops. Penalty
/// outcomes are not events of their own — they accumulate in `pending`
/// and ride the next cache event as packed deltas, so the lane loop sees
/// a homogeneous, branch-free stream.
struct BufferSink {
    buf: Vec<ReplayEvent>,
    /// Penalty events since the last cache event:
    /// `[muls, taken, mispredicts]`.
    pending: [u64; 3],
    /// Last word seen on each cache's output port (`[icache, dcache]`) —
    /// the pipeline-side mirror of `Cache::last_output`, used to compute
    /// each access's toggle count once instead of per lane.
    last_word: [u32; 2],
}

impl BufferSink {
    fn push(&mut self, addr: u32, data: u32, base: u64, dcache: bool, write: bool) {
        debug_assert!(
            self.pending.iter().all(|&p| p <= D_MAX) && base <= BASE_MASK,
            "replay event field overflow"
        );
        let packed = base
            | u64::from(dcache) << K_DCACHE
            | u64::from(write) << K_WRITE
            | self.pending[0] << D_MUL
            | self.pending[1] << D_TAKEN
            | self.pending[2] << D_MISPREDICT;
        self.pending = [0; 3];
        let toggles = (self.last_word[usize::from(dcache)] ^ data).count_ones();
        self.last_word[usize::from(dcache)] = data;
        self.buf.push(ReplayEvent {
            addr,
            toggles,
            packed,
        });
    }
}

impl EventSink for BufferSink {
    fn icache(&mut self, addr: u32, data: u32, base: u64) {
        self.push(addr, data, base, false, false);
    }

    fn dcache(&mut self, addr: u32, write: bool, data: u32, base: u64) {
        self.push(addr, data, base, true, write);
    }

    fn mul_event(&mut self) {
        self.pending[0] += 1;
    }

    fn taken_event(&mut self) {
        self.pending[1] += 1;
    }

    fn mispredict_event(&mut self) {
        self.pending[2] += 1;
    }
}

/// Configuration-independent **pairing** counters — the only aggregates
/// that genuinely need the fetch/pair/issue state machine. Everything
/// else a [`SimResult`] reports is pairing-independent and pre-folded
/// into the trace's [`StaticCounters`] at record time.
#[derive(Default)]
struct SharedCounters {
    /// Issue-group cycles plus load-use stall cycles.
    base_cycles: u64,
    issue_groups: u64,
    dual_issues: u64,
    load_use_stalls: u64,
}

/// The replay pipeline: a faithful mirror of [`crate::TimingModel`]'s
/// fetch / pair / issue / account state machine, run **once** for all
/// lanes, delivering lane-facing events through an [`EventSink`]. Any
/// behavioural divergence from the interpreted model — however small,
/// including the order of cache accesses within a dual-issue group and
/// the deferred fetch-dedup reset after taken branches — breaks the
/// bit-identity contract, so the method bodies below transcribe
/// `TimingModel` line for line.
struct Replay<'a, S: EventSink> {
    sink: S,
    shared: SharedCounters,
    pending: Option<RetiredOp<'a>>,
    last_fetch_word: Option<u32>,
    /// `dest0_mask` of the previous group's load (0 when none) — the
    /// load-use interlock operates on register bitmasks.
    last_group_load_dest: u16,
    load_dest_this_group: u16,
}

impl<'a, S: EventSink> Replay<'a, S> {
    fn new(sink: S) -> Replay<'a, S> {
        Replay {
            sink,
            shared: SharedCounters::default(),
            pending: None,
            last_fetch_word: None,
            last_group_load_dest: 0,
            load_dest_this_group: 0,
        }
    }

    fn fetch(&mut self, template: &StepTemplate) {
        if self.last_fetch_word == Some(template.fetch_word_addr) {
            return; // second half of the same 32-bit fetch (16-bit ISAs)
        }
        self.last_fetch_word = Some(template.fetch_word_addr);
        self.sink.icache(
            template.fetch_word_addr,
            template.fetch_word_value,
            self.shared.base_cycles,
        );
    }

    fn can_pair(a: &RetiredOp<'_>, b: &RetiredOp<'_>) -> bool {
        if a.branch.is_some() || a.template.class == InstrClass::Trap {
            return false;
        }
        if b.template.fetch_word_addr != a.template.fetch_word_addr
            && b.template.fetch_word_addr != a.template.fetch_word_addr + 4
        {
            return false;
        }
        if a.mem.is_some() && b.mem.is_some() {
            return false;
        }
        if a.is_mul && b.is_mul {
            return false;
        }
        // RAW/WAW hazards via the precomputed register bitmasks — the
        // same predicate as iterating `dests` × `sources`/`dests`.
        if a.template.dest_mask & (b.template.source_mask | b.template.dest_mask) != 0 {
            return false;
        }
        if a.sets_flags && b.template.reads_flags {
            return false;
        }
        true
    }

    fn issue_group(&mut self, first: RetiredOp<'a>, second: Option<RetiredOp<'a>>) {
        self.shared.base_cycles += 1;
        self.shared.issue_groups += 1;
        if second.is_some() {
            self.shared.dual_issues += 1;
        }
        self.load_dest_this_group = 0;

        let dest = self.last_group_load_dest;
        if dest != 0 {
            let uses = |o: &RetiredOp<'_>| o.template.source_mask & dest != 0;
            if uses(&first) || second.as_ref().is_some_and(uses) {
                self.shared.base_cycles += 1;
                self.shared.load_use_stalls += 1;
            }
        }

        self.account(&first);
        if let Some(second) = &second {
            self.account(second);
        }
        self.last_group_load_dest = std::mem::take(&mut self.load_dest_this_group);
    }

    /// Delivers an op's lane-facing events. The mix/branch/register
    /// aggregates the interpreted model folds here are pairing-independent
    /// and already pre-computed in the trace's [`StaticCounters`], so the
    /// per-op pipeline work is only what the lanes actually need to see.
    fn account(&mut self, op: &RetiredOp<'_>) {
        if op.is_mul {
            self.sink.mul_event();
        }
        if let Some((addr, data, is_load)) = op.mem {
            self.sink
                .dcache(addr, !is_load, data, self.shared.base_cycles);
            if is_load {
                self.load_dest_this_group = op.template.dest0_mask;
            }
        }
        if let Some((taken, backward)) = op.branch {
            let predicted_taken = backward; // BTFNT
            if taken != predicted_taken {
                self.sink.mispredict_event();
            } else if taken {
                self.sink.taken_event();
            }
            if taken {
                // The next fetch starts at the target word.
                self.last_fetch_word = None;
            }
        }
    }

    fn observe(&mut self, op: RetiredOp<'a>) {
        self.fetch(op.template);
        match self.pending.take() {
            None => self.pending = Some(op),
            Some(prev) => {
                if Self::can_pair(&prev, &op) {
                    self.issue_group(prev, Some(op));
                } else {
                    self.issue_group(prev, None);
                    self.pending = Some(op);
                }
            }
        }
    }

    /// Issues the trailing single-op group, if any — the tail of the op
    /// stream that `observe` keeps pending for pairing.
    fn flush_pending(&mut self) {
        if let Some(prev) = self.pending.take() {
            self.issue_group(prev, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ar32Set, Machine};
    use fits_isa::{Cond, DpOp, Instr, Operand2, Program, Reg, TEXT_BASE};

    fn looped_program() -> Program {
        Program {
            text: vec![
                Instr::mov(Reg::R0, Operand2::imm(10).unwrap()),
                Instr::mov(Reg::R1, Operand2::imm(0).unwrap()),
                // loop: r1 += r0; r0 -= 1; bne loop
                Instr::dp(DpOp::Add, Reg::R1, Reg::R1, Operand2::reg(Reg::R0)),
                Instr::Dp {
                    cond: Cond::Al,
                    op: DpOp::Sub,
                    set_flags: true,
                    rd: Reg::R0,
                    rn: Reg::R0,
                    op2: Operand2::imm(1).unwrap(),
                },
                Instr::b(-4).with_cond(Cond::Ne),
                Instr::mov(Reg::R0, Operand2::reg(Reg::R1)),
                Instr::Swi {
                    cond: Cond::Al,
                    imm: 0,
                },
            ],
            ..Program::default()
        }
    }

    #[test]
    fn blocks_split_at_branches_and_targets() {
        let set = Ar32Set::load(&looped_program());
        let compiled = CompiledProgram::compile(&set).unwrap();
        // Leaders: 0 (entry), 2 (branch target), 5 (after branch), 6
        // (after nothing — 5..7 split by nothing else, Swi terminates).
        let firsts: Vec<u32> = compiled.blocks().iter().map(|b| b.first).collect();
        assert_eq!(firsts, vec![0, 2, 5]);
        let loop_block = compiled.blocks()[1];
        assert_eq!(loop_block.len, 3);
        let (target_pc, target_idx, target_block) = loop_block.branch_to.unwrap();
        assert_eq!(target_pc, TEXT_BASE + 8);
        assert_eq!(target_idx, 2);
        assert_eq!(target_block, 1, "loop branch links back to its own block");
        assert_eq!(loop_block.fall_through, Some(2));
    }

    #[test]
    fn recorded_trace_counts_match_run() {
        let set = Ar32Set::load(&looped_program());
        let compiled = CompiledProgram::compile(&set).unwrap();
        let mut m = Machine::new(Ar32Set::load(&looped_program()));
        let trace = m.run_recorded(&compiled).unwrap();
        let reference = Machine::new(Ar32Set::load(&looped_program()))
            .run()
            .unwrap();
        assert_eq!(trace.output, reference);
        assert_eq!(trace.flags.len() as u64, trace.output.steps);
        let counts = trace.exec_counts(compiled.op_count());
        assert_eq!(counts[0], 1);
        assert_eq!(counts[2], 10, "loop body retires once per iteration");
        assert_eq!(counts[4], 10);
        assert_eq!(counts[6], 1);
    }

    #[test]
    fn price_all_matches_run_timed() {
        let cfgs = [Sa1100Config::icache_16k(), Sa1100Config::icache_8k()];
        let set = Ar32Set::load(&looped_program());
        let compiled = CompiledProgram::compile(&set).unwrap();
        let trace = Machine::new(set).run_recorded(&compiled).unwrap();
        let sims = trace.price_all(&compiled, &cfgs).unwrap();
        for (cfg, sim) in cfgs.iter().zip(&sims) {
            let (out, reference) = Machine::new(Ar32Set::load(&looped_program()))
                .run_timed(cfg)
                .unwrap();
            assert_eq!(out, trace.output);
            assert_eq!(*sim, reference);
        }
    }

    #[test]
    fn mismatched_trace_is_rejected() {
        let set = Ar32Set::load(&looped_program());
        let compiled = CompiledProgram::compile(&set).unwrap();
        let trace = Machine::new(set).run_recorded(&compiled).unwrap();
        let other = Ar32Set::load(&Program {
            text: vec![Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            }],
            ..Program::default()
        });
        let other_compiled = CompiledProgram::compile(&other).unwrap();
        assert!(trace
            .price_all(&other_compiled, &[Sa1100Config::icache_16k()])
            .is_err());
    }
}
