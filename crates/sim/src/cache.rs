//! Set-associative cache model with the activity counters the power model
//! consumes.
//!
//! Beyond the usual hit/miss accounting, every access records the Hamming
//! distance between successive data words on the cache's output port (the
//! "switching" activity of the paper's power breakdown) and feeds a sliding
//! cycle window that captures the busiest interval (the "peak power" input).

use std::fmt;

use crate::SimError;

/// Width of the sliding window used for peak-activity tracking, in cycles.
///
/// sim-panalyzer reports peak power per cycle; a single-cycle window makes
/// the metric binary (an access happened or not), so we follow the common
/// practice of a short multi-cycle window that still captures `di/dt`-scale
/// bursts.
pub const PEAK_WINDOW_CYCLES: u64 = 64;

/// Why a cache geometry is invalid.
///
/// Scenario sweeps feed user-supplied geometries into the simulator, so
/// invalid shapes must surface as values, not panics — every constructor
/// that derives a geometry returns this instead of asserting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeometryError {
    /// The line size is below one word or not a power of two.
    BadLineSize {
        /// The offending line size in bytes.
        line_bytes: u32,
    },
    /// Zero ways requested.
    ZeroWays,
    /// The capacity does not divide into an integral number of sets.
    NotDivisible {
        /// Requested capacity in bytes.
        size_bytes: u32,
        /// Associativity.
        ways: u32,
        /// Line size in bytes.
        line_bytes: u32,
    },
    /// The set count is not a power of two (the index function is a mask).
    SetsNotPowerOfTwo {
        /// The resulting set count.
        sets: u32,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::BadLineSize { line_bytes } => {
                write!(f, "line size {line_bytes} must be a power of two >= 4")
            }
            GeometryError::ZeroWays => write!(f, "associativity must be nonzero"),
            GeometryError::NotDivisible {
                size_bytes,
                ways,
                line_bytes,
            } => write!(
                f,
                "{size_bytes} bytes not divisible into {ways} ways of {line_bytes}-byte lines"
            ),
            GeometryError::SetsNotPowerOfTwo { sets } => {
                write!(f, "set count {sets} must be a power of two")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Replacement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// Pseudo-random (LFSR victim selection), the policy ARM's
    /// high-associativity caches actually implement — and what keeps a
    /// slightly-overflowing loop from degenerating into the 100% miss rate
    /// LRU produces on cyclic reference streams.
    PseudoRandom,
}

/// Geometry and identity of a cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name (for reports).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// The SA-1100 instruction cache: 16 KB, 32-way, 32-byte lines.
    #[must_use]
    pub fn sa1100_icache() -> CacheConfig {
        CacheConfig {
            name: "icache".to_string(),
            size_bytes: 16 * 1024,
            ways: 32,
            line_bytes: 32,
            replacement: Replacement::PseudoRandom,
        }
    }

    /// The SA-1100 data cache: 8 KB, 32-way, 32-byte lines.
    #[must_use]
    pub fn sa1100_dcache() -> CacheConfig {
        CacheConfig {
            name: "dcache".to_string(),
            size_bytes: 8 * 1024,
            ways: 32,
            line_bytes: 32,
            replacement: Replacement::PseudoRandom,
        }
    }

    /// Returns a copy resized to `size_bytes` (associativity and line size
    /// kept; the set count shrinks/grows), the paper's single controlled
    /// variable.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] when the requested capacity does not
    /// produce a valid geometry (non-integral or non-power-of-two set
    /// count). Sweep grids are user input, so this never panics.
    pub fn resized(&self, size_bytes: u32) -> Result<CacheConfig, GeometryError> {
        let mut cfg = self.clone();
        cfg.size_bytes = size_bytes;
        validate_geometry(&cfg)?;
        Ok(cfg)
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Peak-activity snapshot: the busiest [`PEAK_WINDOW_CYCLES`]-cycle window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowPeak {
    /// Accesses in the busiest window.
    pub accesses: u64,
    /// Output-bit toggles in that window.
    pub toggles: u64,
    /// Line-fill words in that window.
    pub fill_words: u64,
}

/// Activity counters accumulated by a [`Cache`] over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Words transferred by line fills.
    pub fill_words: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Write accesses (0 for an I-cache).
    pub writes: u64,
    /// Total Hamming distance between successive output words.
    pub output_toggles: u64,
    /// Busiest-window snapshot.
    pub peak: WindowPeak,
}

impl CacheStats {
    /// Miss rate as a fraction of accesses (0 when idle).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per million accesses, the unit of the paper's Figure 13.
    #[must_use]
    pub fn misses_per_million(&self) -> f64 {
        self.miss_rate() * 1.0e6
    }
}

/// "No entry" sentinel for the line→way shortcut table: the low 32 bits
/// (the line-address field) are all-ones, which no validated geometry can
/// produce (line addresses are at most 30 bits wide).
const SHORTCUT_EMPTY: u64 = u64::MAX;

/// Entry count of the direct-mapped line→way shortcut table (2 KB per
/// cache): large enough to cover a hot loop's code and data lines, small
/// enough to stay L1-resident even with several replay lanes live.
const SHORTCUT_ENTRIES: usize = 256;

/// An LRU set-associative cache.
///
/// Line state is stored structure-of-arrays: the associative search only
/// streams the contiguous `u32` tag array (128 B for a 32-way set) instead
/// of striding over fat per-line records, which is what keeps the replay
/// engine's per-lane loop fast.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// Per-line tag, indexed `set * ways + way`. Only the first
    /// `filled[set]` ways of a set are meaningful.
    tags: Vec<u32>,
    /// Number of valid ways per set. Lines are never invalidated and fills
    /// always prefer the first free way, so validity is exactly "way index
    /// below this count" — the associative search scans only that prefix.
    filled: Vec<u32>,
    /// Per-line dirty bit.
    dirty: Vec<bool>,
    /// Per-line last-use tick for LRU victim selection (the tick is the
    /// running access count).
    lru: Vec<u64>,
    /// Running totals. `hits` is derived (`accesses - misses`) by
    /// [`Cache::finish`], not maintained per access.
    stats: CacheStats,
    last_output: u32,
    window_start: u64,
    /// Snapshot of the running totals at the start of the in-flight peak
    /// window; the window's own counters are the difference between the
    /// totals and this snapshot.
    win_start: WindowPeak,
    /// Deterministic xorshift state for pseudo-random victim selection.
    lfsr: u32,
    /// Lossy direct-mapped shortcut from line address to resident way
    /// index — the single fast path of [`Cache::access`]. Each entry packs
    /// `line_addr | (global way index << 32)` so the lookup is one load;
    /// entries are validated on use against `tags` (a refilled way no
    /// longer matches, falling back to the associative search), so stale
    /// entries are harmless and no invalidation bookkeeping is needed.
    shortcut: Vec<u64>,

    /// `log2(line_bytes)` when the line size is a power of two (the
    /// validated case), so the per-access address math is a shift instead
    /// of a hardware divide. `None` falls back to division — same values,
    /// only slower — for unvalidated geometries constructed in tests.
    line_shift: Option<u32>,
    /// `sets - 1` when the set count is a power of two (mask indexing) and
    /// `log2(sets)` for the tag shift, same fallback rule.
    set_mask_shift: Option<(u32, u32)>,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Cache {
        let n = (cfg.sets() * cfg.ways) as usize;
        let line_shift = (cfg.line_bytes.is_power_of_two() && cfg.line_bytes >= 4)
            .then(|| cfg.line_bytes.trailing_zeros());
        let sets = cfg.sets();
        let set_mask_shift =
            (sets > 0 && sets.is_power_of_two()).then(|| (sets - 1, sets.trailing_zeros()));
        Cache {
            cfg,
            tags: vec![u32::MAX; n],
            filled: vec![0; sets as usize],
            dirty: vec![false; n],
            lru: vec![0; n],
            stats: CacheStats::default(),
            last_output: 0,
            window_start: 0,
            win_start: WindowPeak::default(),
            lfsr: 0x2545_f491,
            shortcut: vec![SHORTCUT_EMPTY; SHORTCUT_ENTRIES],
            line_shift,
            set_mask_shift,
        }
    }

    /// `addr / line_bytes` via shift when the geometry allows.
    #[inline]
    fn line_addr_of(&self, addr: u32) -> u32 {
        match self.line_shift {
            Some(shift) => addr >> shift,
            None => addr / self.cfg.line_bytes,
        }
    }

    /// `(line_addr % sets, line_addr / sets)` via mask/shift when possible.
    #[inline]
    fn set_and_tag(&self, line_addr: u32) -> (u32, u32) {
        match self.set_mask_shift {
            Some((mask, shift)) => (line_addr & mask, line_addr >> shift),
            None => (line_addr % self.cfg.sets(), line_addr / self.cfg.sets()),
        }
    }

    /// Inverse of [`Cache::set_and_tag`]: the line address resident in a
    /// set under a given tag.
    #[inline]
    fn line_addr_from(&self, set: u32, tag: u32) -> u32 {
        match self.set_mask_shift {
            Some((_, shift)) => tag << shift | set,
            None => tag * self.cfg.sets() + set,
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics. Call [`Cache::finish`] first to fold the
    /// in-flight peak window in.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn roll_window(&mut self, cycle: u64) {
        let bucket = cycle / PEAK_WINDOW_CYCLES;
        if bucket != self.window_start {
            self.fold_window();
            self.window_start = bucket;
        }
    }

    /// Closes the in-flight window: derives its counters from the running
    /// totals (the hot access path maintains no separate window counters),
    /// folds it into the peak, and starts the next window at the current
    /// totals.
    #[cold]
    fn fold_window(&mut self) {
        let accesses = self.stats.accesses - self.win_start.accesses;
        if accesses > self.stats.peak.accesses {
            self.stats.peak = WindowPeak {
                accesses,
                toggles: self.stats.output_toggles - self.win_start.toggles,
                fill_words: self.stats.fill_words - self.win_start.fill_words,
            };
        }
        self.win_start = WindowPeak {
            accesses: self.stats.accesses,
            toggles: self.stats.output_toggles,
            fill_words: self.stats.fill_words,
        };
    }

    /// Performs one access at simulation time `cycle`. Returns `true` on a
    /// hit. `data` is the word on the cache's data port (instruction word or
    /// load/store data), used for toggle accounting.
    ///
    /// The body is split so the dominant case — a shortcut-table hit —
    /// stays small enough to inline into the replay engine's per-lane
    /// loop; the associative search and the miss path live in
    /// [`Cache::access_search`].
    ///
    /// Soundness of the shortcut hit: the table holds only currently
    /// resident lines — entries are written on search hits and fills,
    /// and the entry of an evicted line is cleared when its way is
    /// refilled — so a matching entry *is* the hit, with no tag
    /// re-validation on the fast path.
    #[inline]
    pub fn access(&mut self, addr: u32, write: bool, data: u32, cycle: u64) -> bool {
        let toggles = u64::from((self.last_output ^ data).count_ones());
        self.last_output = data;
        self.access_toggles(addr, write, toggles, cycle)
    }

    /// [`Cache::access`] with the output-port toggle count already
    /// computed. The toggle sequence is a pure function of the access
    /// stream, so the replay engine computes each delta once in the
    /// shared pipeline pass and every lane calls this entry point —
    /// `last_output` is left untouched (nothing reads it on this path).
    #[inline]
    pub(crate) fn access_toggles(
        &mut self,
        addr: u32,
        write: bool,
        toggles: u64,
        cycle: u64,
    ) -> bool {
        self.roll_window(cycle);
        self.stats.accesses += 1;
        self.stats.writes += u64::from(write);
        self.stats.output_toggles += toggles;

        let line_addr = self.line_addr_of(addr);
        let h = line_addr as usize & (SHORTCUT_ENTRIES - 1);
        let entry = self.shortcut[h];
        if entry as u32 == line_addr {
            let idx = (entry >> 32) as usize;
            self.lru[idx] = self.stats.accesses;
            if write {
                self.dirty[idx] = true;
            }
            return true;
        }

        self.access_search(line_addr, write)
    }

    /// The associative-search and miss half of [`Cache::access`]; counter
    /// updates are identical to the pre-split single function. Kept out of
    /// line so the inlined fast path stays register-allocatable.
    #[inline(never)]
    fn access_search(&mut self, line_addr: u32, write: bool) -> bool {
        let (set, tag) = self.set_and_tag(line_addr);
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        let filled = self.filled[set as usize] as usize;
        let set_tags = &self.tags[base..base + filled];

        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            let idx = base + way;
            self.lru[idx] = self.stats.accesses;
            if write {
                self.dirty[idx] = true;
            }
            let h = line_addr as usize & (SHORTCUT_ENTRIES - 1);
            self.shortcut[h] = u64::from(line_addr) | (idx as u64) << 32;
            return true;
        }

        // Miss: pick a victim per the replacement policy and fill. Free
        // ways are always preferred (in way order, hence the prefix
        // invariant on `filled`).
        self.stats.misses += 1;
        let way = if filled < ways {
            self.filled[set as usize] += 1;
            filled
        } else {
            match self.cfg.replacement {
                Replacement::Lru => {
                    let set_lru = &self.lru[base..base + ways];
                    set_lru
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| **l)
                        .map(|(i, _)| i)
                        .expect("at least one way")
                }
                Replacement::PseudoRandom => {
                    // xorshift32
                    self.lfsr ^= self.lfsr << 13;
                    self.lfsr ^= self.lfsr >> 17;
                    self.lfsr ^= self.lfsr << 5;
                    (self.lfsr as usize) % ways
                }
            }
        };
        let idx = base + way;
        if way < filled {
            if self.dirty[idx] {
                self.stats.writebacks += 1;
            }
            // Evicting a resident line: clear its shortcut entry (if it
            // still points at this way) to keep the table's "resident
            // lines only" invariant that lets `access` skip tag
            // validation.
            let evicted = self.line_addr_from(set, self.tags[idx]);
            let eh = evicted as usize & (SHORTCUT_ENTRIES - 1);
            if self.shortcut[eh] == u64::from(evicted) | (idx as u64) << 32 {
                self.shortcut[eh] = SHORTCUT_EMPTY;
            }
        }
        self.tags[idx] = tag;
        self.dirty[idx] = write;
        self.lru[idx] = self.stats.accesses;
        let h = line_addr as usize & (SHORTCUT_ENTRIES - 1);
        self.shortcut[h] = u64::from(line_addr) | (idx as u64) << 32;
        let fill = u64::from(self.cfg.line_bytes / 4);
        self.stats.fill_words += fill;
        false
    }

    /// Folds the in-flight peak window into the statistics and
    /// materializes the derived counters (`hits`). Idempotent.
    pub fn finish(&mut self) {
        self.fold_window();
        self.stats.hits = self.stats.accesses - self.stats.misses;
    }

    /// Checks whether an address would hit, without updating any state
    /// (used by tests and the reference model).
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let line_addr = addr / self.cfg.line_bytes;
        let set = line_addr % self.cfg.sets();
        let tag = line_addr / self.cfg.sets();
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        let filled = self.filled[set as usize] as usize;
        self.tags[base..base + filled].contains(&tag)
    }
}

#[cfg(test)]
/// A deliberately naive reference model (fully associative per set via
/// linear search over an unbounded history) used by property tests to
/// validate the LRU implementation.
#[derive(Debug, Default)]
struct RefCacheModel {
    history: Vec<(u32, u64)>, // (line address, last use)
    tick: u64,
}

#[cfg(test)]
impl RefCacheModel {
    /// Mirrors [`Cache::access`] for hit/miss behaviour given a geometry.
    fn access(&mut self, cfg: &CacheConfig, addr: u32) -> bool {
        self.tick += 1;
        let line_addr = addr / cfg.line_bytes;
        let set = line_addr % cfg.sets();
        if let Some(entry) = self.history.iter_mut().find(|(l, _)| *l == line_addr) {
            entry.1 = self.tick;
            return true;
        }
        // Count resident lines of this set; evict LRU if full.
        let mut residents: Vec<usize> = self
            .history
            .iter()
            .enumerate()
            .filter(|(_, (l, _))| l % cfg.sets() == set)
            .map(|(i, _)| i)
            .collect();
        if residents.len() >= cfg.ways as usize {
            residents.sort_by_key(|&i| self.history[i].1);
            let evict = residents[0];
            self.history.remove(evict);
        }
        self.history.push((line_addr, self.tick));
        false
    }
}

/// Validates a cache geometry, returning the typed reason on failure.
///
/// # Errors
///
/// The first [`GeometryError`] found (line size, then ways, then
/// divisibility, then set count).
pub fn validate_geometry(cfg: &CacheConfig) -> Result<(), GeometryError> {
    if cfg.line_bytes < 4 || !cfg.line_bytes.is_power_of_two() {
        return Err(GeometryError::BadLineSize {
            line_bytes: cfg.line_bytes,
        });
    }
    if cfg.ways == 0 {
        return Err(GeometryError::ZeroWays);
    }
    if cfg.size_bytes == 0 || !cfg.size_bytes.is_multiple_of(cfg.ways * cfg.line_bytes) {
        return Err(GeometryError::NotDivisible {
            size_bytes: cfg.size_bytes,
            ways: cfg.ways,
            line_bytes: cfg.line_bytes,
        });
    }
    if !cfg.sets().is_power_of_two() {
        return Err(GeometryError::SetsNotPowerOfTwo { sets: cfg.sets() });
    }
    Ok(())
}

/// Validates a cache configuration for use by a simulation run.
///
/// # Errors
///
/// Returns [`SimError::BadInstruction`] describing the problem when the
/// geometry is degenerate (zero sets, non-power-of-two line size, …).
pub fn validate_config(cfg: &CacheConfig) -> Result<(), SimError> {
    validate_geometry(cfg).map_err(|e| SimError::BadInstruction {
        what: format!("cache {}: {e}", cfg.name),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        CacheConfig {
            name: "t".into(),
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
            replacement: Replacement::Lru,
        }
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::sa1100_icache();
        assert_eq!(c.sets(), 16);
        assert_eq!(c.resized(8 * 1024).unwrap().sets(), 8);
        assert_eq!(tiny().sets(), 4);
        validate_config(&c).unwrap();
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(tiny());
        assert!(!c.access(0x1000, false, 1, 0));
        assert!(c.access(0x1000, false, 1, 1));
        assert!(c.access(0x101c, false, 1, 2), "same line");
        assert!(!c.access(0x1020, false, 1, 3), "next line");
        c.finish();
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.fill_words, 16);
    }

    #[test]
    fn lru_eviction() {
        let mut c = Cache::new(tiny()); // 4 sets, 2 ways, 32B lines
                                        // Three lines mapping to set 0: line addresses 0, 4, 8.
        let a = 0x0000; // set 0
        let b = 4 * 32; // set 0
        let d = 8 * 32; // set 0
        assert!(!c.access(a, false, 0, 0));
        assert!(!c.access(b, false, 0, 1));
        assert!(c.access(a, false, 0, 2)); // a most recent
        assert!(!c.access(d, false, 0, 3)); // evicts b (LRU)
        assert!(c.access(a, false, 0, 4));
        assert!(!c.access(b, false, 0, 5), "b was evicted");
    }

    #[test]
    fn writeback_counting() {
        let mut c = Cache::new(tiny());
        let a = 0x0000;
        let b = 4 * 32;
        let d = 8 * 32;
        c.access(a, true, 0, 0); // dirty
        c.access(b, false, 0, 1);
        c.access(d, false, 0, 2); // evicts a (dirty)
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn toggle_accounting_uses_hamming_distance() {
        let mut c = Cache::new(tiny());
        c.access(0, false, 0x0000_0000, 0);
        c.access(0, false, 0xffff_ffff, 1);
        c.access(0, false, 0xffff_fff0, 2);
        assert_eq!(c.stats().output_toggles, 32 + 4);
    }

    #[test]
    fn peak_window_tracks_busiest_interval() {
        let mut c = Cache::new(tiny());
        // Three accesses in window 0, one in window 1.
        c.access(0, false, 0, 0);
        c.access(0, false, 0, 1);
        c.access(0, false, 0, 2);
        c.access(0, false, 0, PEAK_WINDOW_CYCLES + 1);
        c.finish();
        assert_eq!(c.stats().peak.accesses, 3);
    }

    #[test]
    fn matches_reference_model() {
        let cfg = tiny();
        let mut c = Cache::new(cfg.clone());
        let mut r = RefCacheModel::default();
        // A pseudo-random but deterministic address stream.
        let mut x: u32 = 12345;
        for i in 0..2000u64 {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            let addr = (x >> 7) % 4096;
            assert_eq!(
                c.access(addr, false, 0, i),
                r.access(&cfg, addr),
                "divergence at access {i} addr {addr:#x}"
            );
        }
    }

    #[test]
    fn rejects_bad_geometry() {
        let mut cfg = tiny();
        cfg.ways = 0;
        assert!(validate_config(&cfg).is_err());
        let mut cfg = tiny();
        cfg.line_bytes = 24;
        assert!(validate_config(&cfg).is_err());
        let mut cfg = tiny();
        cfg.size_bytes = 300;
        assert!(validate_config(&cfg).is_err());
        let mut cfg = tiny();
        cfg.size_bytes = 192; // 3 sets
        assert!(validate_config(&cfg).is_err());
    }
}
