//! Chip-wide power: the cache models plus per-event energies for the rest
//! of the core — the paper's Figure 12 mapping from I-cache savings to
//! whole-chip savings.

use std::fmt;

use fits_sim::SimResult;

use crate::{cache_power, CachePower, TechParams};

/// How instruction decode is implemented.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeKind {
    /// Hardwired 32-bit decode (the native ARM pipeline).
    Fixed32,
    /// FITS programmable decode: configured table lookups over 16-bit
    /// instructions, plus the leakage of the configuration storage.
    Programmable {
        /// Size of the decoder configuration state, in bits.
        config_bits: usize,
    },
}

/// Chip components tracked by the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChipComponent {
    /// Instruction cache.
    ICache,
    /// Data cache.
    DCache,
    /// Instruction decode (fixed or programmable).
    Decode,
    /// Register file.
    RegFile,
    /// ALU, shifter and multiplier.
    Alu,
    /// Global clock tree.
    Clock,
    /// Buses, pads, control, and non-cache leakage.
    Other,
}

impl ChipComponent {
    /// All components, in report order.
    pub const ALL: [ChipComponent; 7] = [
        ChipComponent::ICache,
        ChipComponent::DCache,
        ChipComponent::Decode,
        ChipComponent::RegFile,
        ChipComponent::Alu,
        ChipComponent::Clock,
        ChipComponent::Other,
    ];
}

impl fmt::Display for ChipComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipComponent::ICache => "icache",
            ChipComponent::DCache => "dcache",
            ChipComponent::Decode => "decode",
            ChipComponent::RegFile => "regfile",
            ChipComponent::Alu => "alu",
            ChipComponent::Clock => "clock",
            ChipComponent::Other => "other",
        };
        f.write_str(s)
    }
}

/// The chip-wide energy report.
#[derive(Clone, Debug)]
pub struct ChipPower {
    /// Per-component task energy (J), indexed like [`ChipComponent::ALL`].
    pub energy_j: [f64; 7],
    /// The I-cache's detailed report.
    pub icache: CachePower,
    /// The D-cache's detailed report.
    pub dcache: CachePower,
    /// Run length (s).
    pub seconds: f64,
}

impl ChipPower {
    /// Total chip task energy (J).
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Average chip power (W).
    #[must_use]
    pub fn average_w(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.total_j() / self.seconds
        }
    }

    /// One component's energy.
    #[must_use]
    pub fn component_j(&self, c: ChipComponent) -> f64 {
        self.energy_j[ChipComponent::ALL
            .iter()
            .position(|x| *x == c)
            .expect("known")]
    }

    /// One component's share of the total.
    #[must_use]
    pub fn share(&self, c: ChipComponent) -> f64 {
        let t = self.total_j();
        if t == 0.0 {
            0.0
        } else {
            self.component_j(c) / t
        }
    }

    /// Total-chip fractional saving versus a baseline (Figure 12), on task
    /// energy — consistent with the cache figures, and the view §6.3's
    /// energy-equivalence remark endorses. A configuration that trades
    /// cache area for runtime (ARM8 on a thrashing benchmark) is charged
    /// for its longer operational period rather than rewarded for idling.
    #[must_use]
    pub fn saving_vs(&self, baseline: &ChipPower) -> f64 {
        let b = baseline.total_j();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.total_j() / b
        }
    }

    /// Total-chip fractional saving on average power (the alternative
    /// view; insensitive to runtime differences).
    #[must_use]
    pub fn power_saving_vs(&self, baseline: &ChipPower) -> f64 {
        let b = baseline.average_w();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.average_w() / b
        }
    }
}

/// Computes chip-wide energy from a timed simulation result.
#[must_use]
pub fn chip_power(sim: &SimResult, decode: DecodeKind, tech: &TechParams) -> ChipPower {
    let seconds = sim.cycles as f64 * tech.cycle_seconds();
    let icache = cache_power(&sim_icache_cfg(sim), &sim.icache, sim.cycles, tech);
    let dcache = cache_power(&sim_dcache_cfg(sim), &sim.dcache, sim.cycles, tech);

    let decode_j = match decode {
        DecodeKind::Fixed32 => sim.retired as f64 * tech.e_decode32,
        DecodeKind::Programmable { config_bits } => {
            sim.retired as f64 * tech.e_decode16
                + config_bits as f64 * tech.p_leak_per_bit * seconds
        }
    };
    let regfile_j = (sim.reg_reads + sim.reg_writes) as f64 * tech.e_regfile_port;
    let alu_j = sim.class_counts[0] as f64 * tech.e_alu_op + sim.mul_ops as f64 * tech.e_mul_op;
    let clock_j = tech.p_clock_tree * seconds;
    let other_j = sim.cycles as f64 * tech.e_other_per_cycle + tech.p_leak_other * seconds;

    ChipPower {
        energy_j: [
            icache.total_j(),
            dcache.total_j(),
            decode_j,
            regfile_j,
            alu_j,
            clock_j,
            other_j,
        ],
        icache,
        dcache,
        seconds,
    }
}

// The SimResult does not carry its cache geometries; the timing model's
// stats do carry enough to recover them from the experiment configuration.
// To keep the power crate decoupled, the experiment passes geometry via the
// stats' recorded config — but `CacheStats` is geometry-free, so these
// helpers reconstruct the geometry from the experiment convention: callers
// that need non-default geometries should use [`cache_power`] directly and
// assemble [`ChipPower`] via [`chip_power_with`].
fn sim_icache_cfg(_sim: &SimResult) -> fits_sim::CacheConfig {
    fits_sim::CacheConfig::sa1100_icache()
}

fn sim_dcache_cfg(_sim: &SimResult) -> fits_sim::CacheConfig {
    fits_sim::CacheConfig::sa1100_dcache()
}

/// Like [`chip_power`], with explicit cache geometries (use this whenever
/// the I-cache size is the experiment variable).
#[must_use]
pub fn chip_power_with(
    sim: &SimResult,
    icache_cfg: &fits_sim::CacheConfig,
    dcache_cfg: &fits_sim::CacheConfig,
    decode: DecodeKind,
    tech: &TechParams,
) -> ChipPower {
    let seconds = sim.cycles as f64 * tech.cycle_seconds();
    let icache = cache_power(icache_cfg, &sim.icache, sim.cycles, tech);
    let dcache = cache_power(dcache_cfg, &sim.dcache, sim.cycles, tech);
    let decode_j = match decode {
        DecodeKind::Fixed32 => sim.retired as f64 * tech.e_decode32,
        DecodeKind::Programmable { config_bits } => {
            sim.retired as f64 * tech.e_decode16
                + config_bits as f64 * tech.p_leak_per_bit * seconds
        }
    };
    let regfile_j = (sim.reg_reads + sim.reg_writes) as f64 * tech.e_regfile_port;
    let alu_j = sim.class_counts[0] as f64 * tech.e_alu_op + sim.mul_ops as f64 * tech.e_mul_op;
    let clock_j = tech.p_clock_tree * seconds;
    let other_j = sim.cycles as f64 * tech.e_other_per_cycle + tech.p_leak_other * seconds;
    ChipPower {
        energy_j: [
            icache.total_j(),
            dcache.total_j(),
            decode_j,
            regfile_j,
            alu_j,
            clock_j,
            other_j,
        ],
        icache,
        dcache,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_sim::{CacheStats, WindowPeak};

    fn sim_result(n: u64) -> SimResult {
        let cycles = (n as f64 / 1.3) as u64;
        SimResult {
            cycles,
            retired: n,
            executed: n,
            icache: CacheStats {
                accesses: n,
                hits: n - 100,
                misses: 100,
                fill_words: 800,
                output_toggles: 12 * n,
                peak: WindowPeak {
                    accesses: 60,
                    toggles: 700,
                    fill_words: 0,
                },
                ..CacheStats::default()
            },
            dcache: CacheStats {
                accesses: n / 4,
                hits: n / 4 - 50,
                misses: 50,
                fill_words: 400,
                output_toggles: 10 * n / 4,
                ..CacheStats::default()
            },
            class_counts: [n * 6 / 10, n / 4, n * 15 / 100, 0],
            reg_reads: n * 17 / 10,
            reg_writes: n * 8 / 10,
            mul_ops: n / 50,
            ..SimResult::default()
        }
    }

    #[test]
    fn icache_share_matches_strongarm() {
        // The calibration target: I-cache ≈ 27% of chip power (§1 of the
        // paper, citing the StrongARM measurements).
        let tech = TechParams::sa1100();
        let chip = chip_power(&sim_result(1_000_000), DecodeKind::Fixed32, &tech);
        let share = chip.share(ChipComponent::ICache);
        assert!(
            (0.20..=0.34).contains(&share),
            "icache share {share:.3} out of calibration band"
        );
        // Caches combined are the biggest consumer (paper: >40%).
        let caches = share + chip.share(ChipComponent::DCache);
        assert!(caches > 0.25, "caches combined {caches:.3}");
    }

    #[test]
    fn chip_power_near_strongarm_envelope() {
        let tech = TechParams::sa1100();
        let chip = chip_power(&sim_result(1_000_000), DecodeKind::Fixed32, &tech);
        let w = chip.average_w();
        assert!(
            (0.1..=0.8).contains(&w),
            "average chip power {w:.3} W should be SA-1100-class"
        );
    }

    #[test]
    fn programmable_decode_charges_config_leakage() {
        let tech = TechParams::sa1100();
        let sim = sim_result(1_000_000);
        let fixed = chip_power(&sim, DecodeKind::Fixed32, &tech);
        let prog_small = chip_power(&sim, DecodeKind::Programmable { config_bits: 4000 }, &tech);
        let prog_big = chip_power(
            &sim,
            DecodeKind::Programmable {
                config_bits: 4_000_000,
            },
            &tech,
        );
        assert!(
            prog_small.component_j(ChipComponent::Decode)
                < fixed.component_j(ChipComponent::Decode)
        );
        assert!(
            prog_big.component_j(ChipComponent::Decode)
                > prog_small.component_j(ChipComponent::Decode)
        );
    }

    #[test]
    fn savings_are_antisymmetric_in_sign() {
        let tech = TechParams::sa1100();
        let a = chip_power(&sim_result(1_000_000), DecodeKind::Fixed32, &tech);
        let mut cheap_sim = sim_result(1_000_000);
        cheap_sim.icache.accesses /= 2;
        cheap_sim.icache.output_toggles /= 2;
        let b = chip_power(&cheap_sim, DecodeKind::Fixed32, &tech);
        assert!(b.saving_vs(&a) > 0.0);
        assert!(a.saving_vs(&b) < 0.0);
    }
}
