//! Cache power: geometry + measured activity → the paper's four components.

use fits_sim::{CacheConfig, CacheStats, PEAK_WINDOW_CYCLES};

use crate::TechParams;

/// The power/energy report for one cache over one run — the quantities of
/// the paper's Figures 6–11.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CachePower {
    /// Switching (output-driver) energy over the run (J).
    pub switching_j: f64,
    /// Internal (array + precharge/clock) energy over the run (J).
    pub internal_j: f64,
    /// Leakage energy over the run (J).
    pub leakage_j: f64,
    /// Peak power: the busiest sliding window's dynamic energy rate plus
    /// the static floor (W).
    pub peak_w: f64,
    /// Run length in seconds.
    pub seconds: f64,
}

impl CachePower {
    /// Total energy (J) — switching + internal + leakage.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.switching_j + self.internal_j + self.leakage_j
    }

    /// Average power over the run (W).
    #[must_use]
    pub fn average_w(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.total_j() / self.seconds
        }
    }

    /// Component shares of the total (switching, internal, leakage) — the
    /// paper's Figure 6 breakdown.
    #[must_use]
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let t = self.total_j();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.switching_j / t,
            self.internal_j / t,
            self.leakage_j / t,
        )
    }

    /// Fractional saving of `self` relative to `baseline` (1.0 =
    /// eliminated everything; negative = worse), the paper's Figures 7–11.
    ///
    /// Switching, internal, leakage and total compare **task energy**
    /// (§6.3: for the equal-runtime FITS configurations energy and power
    /// savings coincide; for ARM8 the energy view charges the "longer
    /// operational period" that §6.3.2's leakage discussion describes).
    /// Peak compares peak watts directly.
    #[must_use]
    pub fn saving_vs(&self, baseline: &CachePower) -> ComponentSavings {
        let frac = |ours: f64, base: f64| {
            if base == 0.0 {
                0.0
            } else {
                1.0 - ours / base
            }
        };
        ComponentSavings {
            switching: frac(self.switching_j, baseline.switching_j),
            internal: frac(self.internal_j, baseline.internal_j),
            leakage: frac(self.leakage_j, baseline.leakage_j),
            peak: frac(self.peak_w, baseline.peak_w),
            total: frac(self.total_j(), baseline.total_j()),
        }
    }
}

/// Per-component fractional savings versus a baseline configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ComponentSavings {
    /// Switching-power saving (Figure 7).
    pub switching: f64,
    /// Internal-power saving (Figure 8).
    pub internal: f64,
    /// Leakage-power saving (Figure 9).
    pub leakage: f64,
    /// Peak-power saving (Figure 10).
    pub peak: f64,
    /// Total cache-power saving (Figure 11).
    pub total: f64,
}

/// Tag width on a 32-bit address bus: `32 - log2(sets * line_bytes)`,
/// saturated at zero — a geometry whose index + offset covers the whole
/// address (≥ 4 GB of sets × lines) simply has no tag bits left, rather
/// than a negative width poisoning the energy terms.
fn tag_bits(cfg: &CacheConfig) -> f64 {
    (32.0 - (f64::from(cfg.sets()) * f64::from(cfg.line_bytes)).log2()).max(0.0)
}

/// Per-access internal (array) energy for a geometry: bitline discharge
/// proportional to the row count, CAM-style tag compare across the ways,
/// and the row decoder.
fn e_array_access(cfg: &CacheConfig, tech: &TechParams) -> f64 {
    let sets = f64::from(cfg.sets());
    let ways = f64::from(cfg.ways);
    let addr_bits = f64::from(32 - cfg.line_bytes.leading_zeros());
    let read_bits = 32.0; // one word per access on this 32-bit fetch path
    tech.e_bitline_per_row_bit * sets * read_bits
        + tech.e_tag_bit * ways * tag_bits(cfg)
        + tech.e_decode_bit * (sets.log2().max(1.0) + addr_bits)
}

/// Per-access I-cache read energy (array + decoder + tag compare) for a
/// geometry — the size-dependent term the scenario sweeps study. Exposed so
/// property tests can check monotonicity in cache size without rebuilding
/// the model.
#[must_use]
pub fn read_energy_per_access(cfg: &CacheConfig, tech: &TechParams) -> f64 {
    e_array_access(cfg, tech)
}

/// Per-access energy bounds for one cache geometry — the arithmetic a
/// static analysis needs to turn hit/miss classifications into energy
/// envelopes without replaying a trace.
///
/// The bounds cover the **per-access** dynamic terms of [`cache_power`]:
/// the array read, the driven output bus, data-dependent output toggling
/// (zero toggles at the lower bound, every bit toggling at the upper), and
/// the line fill charged to a miss. Time-proportional terms (clock,
/// leakage) are excluded: they depend on run length, which a per-access
/// bound cannot know.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessEnergyBounds {
    /// Least energy a hit can cost (J): array read + driven bus, no
    /// toggling.
    pub hit_min_j: f64,
    /// Most energy a hit can cost (J): all 32 output bits toggle.
    pub hit_max_j: f64,
    /// Least energy a miss can cost (J): a minimal hit plus the full line
    /// fill.
    pub miss_min_j: f64,
    /// Most energy a miss can cost (J): a maximal hit plus the full line
    /// fill.
    pub miss_max_j: f64,
}

/// Per-access energy bounds for a geometry under a tech node.
///
/// Consistent with [`cache_power`] by construction: for any measured
/// activity, `hits·hit + misses·miss` brackets the per-access portion of
/// `switching_j + internal_j` (every miss fills exactly one line on this
/// fetch path).
#[must_use]
pub fn access_energy_bounds(cfg: &CacheConfig, tech: &TechParams) -> AccessEnergyBounds {
    let hit_min_j = e_array_access(cfg, tech) + 16.0 * tech.e_output_driven_bit;
    let hit_max_j = hit_min_j + 32.0 * tech.e_output_toggle_bit;
    let fill_j = f64::from(cfg.line_bytes / 4) * 32.0 * tech.e_fill_bit;
    AccessEnergyBounds {
        hit_min_j,
        hit_max_j,
        miss_min_j: hit_min_j + fill_j,
        miss_max_j: hit_max_j + fill_j,
    }
}

/// Storage bits (data + tags + valid/dirty/LRU state).
fn storage_bits(cfg: &CacheConfig) -> f64 {
    let lines = f64::from(cfg.sets() * cfg.ways);
    let state_bits = 2.0 + 5.0; // valid+dirty plus LRU bookkeeping
    f64::from(cfg.size_bytes) * 8.0 + lines * (tag_bits(cfg) + state_bits)
}

/// Computes the cache power report from measured activity.
///
/// `cycles` is the run length of the configuration that produced `stats`
/// (the cache is clocked, and leaks, for that whole interval — this is the
/// "longer operational period" effect of the paper's §6.3.2).
#[must_use]
pub fn cache_power(
    cfg: &CacheConfig,
    stats: &CacheStats,
    cycles: u64,
    tech: &TechParams,
) -> CachePower {
    let seconds = cycles as f64 * tech.cycle_seconds();
    let e_access = e_array_access(cfg, tech);
    let bits = storage_bits(cfg);

    // Switching: per-access driven-bus term (16 effective bits of the
    // 32-bit read port) plus the measured data-dependent toggling.
    let switching_j = stats.accesses as f64 * 16.0 * tech.e_output_driven_bit
        + stats.output_toggles as f64 * tech.e_output_toggle_bit;
    let internal_j = stats.accesses as f64 * e_access
        + stats.fill_words as f64 * 32.0 * tech.e_fill_bit
        + bits * tech.p_clock_per_bit * seconds;
    let leakage_j = bits * tech.p_leak_per_bit * seconds;

    // Peak: the busiest window's *dynamic* energy rate — the di/dt-relevant
    // component (§4.1: "sharp changes in power consumption"); the static
    // floor is flat by definition and common to every instant, so it does
    // not contribute to the peak-to-peak excursion the figure studies.
    let window_s = PEAK_WINDOW_CYCLES as f64 * tech.cycle_seconds();
    let window_j = stats.peak.accesses as f64 * (e_access + 16.0 * tech.e_output_driven_bit)
        + stats.peak.toggles as f64 * tech.e_output_toggle_bit
        + stats.peak.fill_words as f64 * 32.0 * tech.e_fill_bit;
    let peak_w = window_j / window_s;

    CachePower {
        switching_j,
        internal_j,
        leakage_j,
        peak_w,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_sim::WindowPeak;

    fn stats(accesses: u64, toggles: u64, fills: u64) -> CacheStats {
        CacheStats {
            accesses,
            hits: accesses.saturating_sub(fills / 8),
            misses: fills / 8,
            fill_words: fills,
            output_toggles: toggles,
            peak: WindowPeak {
                accesses: accesses.min(64),
                toggles: toggles.min(64 * 12),
                fill_words: 0,
            },
            ..CacheStats::default()
        }
    }

    fn icache16() -> CacheConfig {
        CacheConfig::sa1100_icache()
    }

    #[test]
    fn breakdown_matches_paper_shape() {
        // A representative instruction stream: one access and ~12 toggled
        // bits per instruction, IPC ~1.3.
        let tech = TechParams::sa1100();
        let n: u64 = 1_000_000;
        let p = cache_power(
            &icache16(),
            &stats(n, 12 * n, 800),
            (n as f64 / 1.3) as u64,
            &tech,
        );
        let (sw, int, lk) = p.breakdown();
        assert!(int > 0.5, "internal must dominate: {int:.3}");
        assert!(sw > 0.2 && sw < 0.45, "switching share {sw:.3}");
        assert!(lk > 0.05 && lk < 0.2, "leakage share {lk:.3}");
        assert!((sw + int + lk - 1.0).abs() < 1e-9);
    }

    #[test]
    fn halving_accesses_halves_switching() {
        // The FITS16 effect: same cache, half the fetches/toggles.
        let tech = TechParams::sa1100();
        let n: u64 = 1_000_000;
        let cycles = (n as f64 / 1.3) as u64;
        let base = cache_power(&icache16(), &stats(n, 12 * n, 800), cycles, &tech);
        let fits = cache_power(&icache16(), &stats(n / 2, 6 * n, 800), cycles, &tech);
        let s = fits.saving_vs(&base);
        assert!(
            (s.switching - 0.5).abs() < 0.01,
            "switching {:.3}",
            s.switching
        );
        assert!(
            s.internal > 0.05 && s.internal < 0.35,
            "internal {:.3}",
            s.internal
        );
        assert!(
            s.leakage.abs() < 0.01,
            "same size, same time: {:.3}",
            s.leakage
        );
        assert!(s.total > 0.15 && s.total < 0.40, "total {:.3}", s.total);
    }

    #[test]
    fn half_size_cache_saves_internal_and_leakage() {
        // The ARM8 effect: half the array, same access count, 15% more
        // cycles from extra misses.
        let tech = TechParams::sa1100();
        let n: u64 = 1_000_000;
        let base = cache_power(
            &icache16(),
            &stats(n, 12 * n, 800),
            (n as f64 / 1.3) as u64,
            &tech,
        );
        let half = icache16().resized(8 * 1024).unwrap();
        let arm8 = cache_power(
            &half,
            &stats(n, 12 * n, 8_000),
            (n as f64 / 1.3 * 1.15) as u64,
            &tech,
        );
        let s = arm8.saving_vs(&base);
        assert!(
            s.switching.abs() < 0.02,
            "switching unchanged: {:.3}",
            s.switching
        );
        assert!(s.internal > 0.25, "internal {:.3}", s.internal);
        assert!(
            s.leakage > 0.3 && s.leakage < 0.5,
            "leakage halved minus longer runtime: {:.3}",
            s.leakage
        );
    }

    #[test]
    fn peak_reflects_window_activity_and_size() {
        let tech = TechParams::sa1100();
        let cfg = icache16();
        let mut a = stats(1000, 12_000, 0);
        a.peak = WindowPeak {
            accesses: 64,
            toggles: 64 * 12,
            fill_words: 0,
        };
        let mut b = a.clone();
        b.peak = WindowPeak {
            accesses: 32,
            toggles: 32 * 12,
            fill_words: 0,
        };
        let pa = cache_power(&cfg, &a, 1000, &tech);
        let pb = cache_power(&cfg, &b, 1000, &tech);
        assert!(pb.peak_w < pa.peak_w);
        // A half-size cache has a lower peak even at the same window rate.
        let pc = cache_power(&cfg.resized(8 * 1024).unwrap(), &a, 1000, &tech);
        assert!(pc.peak_w < pa.peak_w);
    }

    #[test]
    fn access_bounds_bracket_cache_power() {
        // hits·hit + misses·miss must bracket the per-access portion of the
        // full model for any toggle count between 0 and 32 bits/access.
        let tech = TechParams::sa1100();
        let cfg = icache16();
        let b = access_energy_bounds(&cfg, &tech);
        assert!(b.hit_min_j < b.hit_max_j);
        assert!(b.hit_max_j < b.miss_max_j);
        assert!(b.miss_min_j < b.miss_max_j);
        for &(accesses, toggles, misses) in &[
            (1000u64, 0u64, 0u64),
            (1000, 12_000, 25),
            (1000, 32_000, 1000),
        ] {
            let fills = misses * u64::from(cfg.line_bytes / 4);
            let mut s = stats(accesses, toggles, fills);
            s.hits = accesses - misses;
            s.misses = misses;
            let p = cache_power(&cfg, &s, 0, &tech);
            // cycles = 0 zeroes the clock/leakage terms, leaving exactly
            // the per-access energy the bounds model.
            let per_access_j = p.switching_j + p.internal_j;
            let hits = (accesses - misses) as f64;
            let lo = hits * b.hit_min_j + misses as f64 * b.miss_min_j;
            let hi = hits * b.hit_max_j + misses as f64 * b.miss_max_j;
            assert!(
                lo <= per_access_j * (1.0 + 1e-12) && per_access_j <= hi * (1.0 + 1e-12),
                "lo {lo} actual {per_access_j} hi {hi}"
            );
        }
    }

    #[test]
    fn energy_power_consistency() {
        let tech = TechParams::sa1100();
        let p = cache_power(&icache16(), &stats(1000, 12_000, 0), 1000, &tech);
        let expect = p.total_j() / (1000.0 * tech.cycle_seconds());
        assert!((p.average_w() - expect).abs() < 1e-12);
    }
}
