//! # fits-power — analytical CMOS power model
//!
//! The reproduction's substitute for sim-panalyzer (§4 of the paper): an
//! activity-based architectural power model that converts the simulator's
//! measured activity (access counts, real output-bit toggles, sliding-window
//! peaks, cycle counts) into the paper's four power components:
//!
//! * **switching power** — the output drivers and their load, proportional
//!   to measured Hamming toggling on the cache's read port;
//! * **internal power** — the array itself: decoder/wordline/bitline/tag
//!   energy per access, line-fill writes, plus the size-proportional
//!   precharge/clock power burned every cycle the block is on;
//! * **leakage power** — gate count × per-bit leakage × operating interval
//!   (`P = A·C·V²·f + V·I_leak`, the paper's equation 1);
//! * **peak power** — the busiest sliding window's energy rate.
//!
//! Following §6.3 of the paper ("energy savings … could be directly
//! inferred from the corresponding power reduction … the differences among
//! their simulation times were not significant"), comparisons are made on
//! **task energy**: for equal-runtime configurations the two views agree,
//! and for the slow configurations (ARM8's cache-miss stalls) the energy
//! view correctly charges the "longer operational period" that §6.3's
//! leakage discussion describes.
//!
//! Absolute values are calibrated to the StrongARM SA-1100 power breakdown
//! the paper's tooling validates against ([`TechParams::sa1100`]): the
//! I-cache is ≈27% of chip power and dynamic power dominates leakage at
//! 0.35 µm. The experiments only consume *ratios* between configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod cache;
mod chip;
mod tech;

pub use cache::ComponentSavings;
pub use cache::{access_energy_bounds, AccessEnergyBounds};
pub use cache::{cache_power, read_energy_per_access, CachePower};
pub use chip::{chip_power, chip_power_with, ChipComponent, ChipPower, DecodeKind};
pub use tech::TechParams;
