//! Technology parameters: per-event energies and leakage rates.

/// Per-event energy and leakage constants for one fabrication point.
///
/// All energies are in joules per event; leakage is watts per bit of
/// storage. The [`TechParams::sa1100`] defaults model a 0.35 µm, 1.5 V,
/// 200 MHz StrongARM-class part, calibrated so the simulated ARM16
/// baseline reproduces the published StrongARM power breakdown the paper
/// cites (I-cache ≈ 27% of chip power, caches > 40% combined, dynamic
/// power ≫ leakage). The experiments compare configurations against each
/// other, so only the *relative* magnitudes matter; the absolute scale is
/// chosen to land near the SA-1100's ≈0.35 W at 200 MHz.
#[derive(Clone, Debug)]
pub struct TechParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Clock frequency (Hz).
    pub freq_hz: f64,
    /// Energy per bitline-pair discharge, per row of the array (J). The
    /// bitline capacitance grows with the number of rows (sets), which is
    /// what makes a half-size cache cheaper per access.
    pub e_bitline_per_row_bit: f64,
    /// Energy per tag-bit compare across the ways (the SA-1100 uses
    /// CAM-style tags, so every way participates) (J).
    pub e_tag_bit: f64,
    /// Row-decoder energy per address bit (J).
    pub e_decode_bit: f64,
    /// Output-driver energy per *driven* output bit per access (J) — the
    /// sim-panalyzer-style switching term ("switching capacitance
    /// multiplied by the number of microarchitectural accesses"), charged
    /// for half the 32-bit read port per access (activity factor 0.5).
    pub e_output_driven_bit: f64,
    /// Additional output energy per *measured toggled* bit (J) — the
    /// data-dependent refinement on top of the per-access term; this is
    /// the part the toggle-aware opcode assignment can reduce.
    pub e_output_toggle_bit: f64,
    /// Array-write energy per bit on a line fill (J).
    pub e_fill_bit: f64,
    /// Precharge/clock power per bit of cache storage, charged every cycle
    /// the block is powered (W per bit).
    pub p_clock_per_bit: f64,
    /// Leakage power per bit of storage (W per bit). Small at 0.35 µm.
    pub p_leak_per_bit: f64,

    // ---- chip-level (non-cache) per-event energies --------------------
    /// Fixed 32-bit instruction decode, per retired instruction (J).
    pub e_decode32: f64,
    /// Programmable 16-bit FITS decode, per retired instruction (J). A
    /// configured table lookup on half the bits; slightly cheaper than the
    /// hardwired 32-bit decode (§3.1's deactivated-datapath argument).
    pub e_decode16: f64,
    /// Register-file energy per port event (J).
    pub e_regfile_port: f64,
    /// ALU/shifter energy per executed operate instruction (J).
    pub e_alu_op: f64,
    /// Extra multiplier energy per multiply (J).
    pub e_mul_op: f64,
    /// Global clock-tree power (W), always on.
    pub p_clock_tree: f64,
    /// Everything else (buses, pads, control), per cycle (J).
    pub e_other_per_cycle: f64,
    /// Non-cache leakage (W).
    pub p_leak_other: f64,
}

impl TechParams {
    /// The SA-1100-class calibration (see type docs).
    #[must_use]
    pub fn sa1100() -> TechParams {
        // Energy unit: calibrated in tenths of picojoules (1e-13 J).
        const U: f64 = 1.0e-13;
        TechParams {
            vdd: 1.5,
            freq_hz: 200.0e6,
            e_bitline_per_row_bit: 0.9 * U,
            e_tag_bit: 0.35 * U,
            e_decode_bit: 9.0 * U,
            e_output_driven_bit: 62.0 * U,
            e_output_toggle_bit: 12.0 * U,
            e_fill_bit: 1.4 * U,
            // 0.0122 U per bit per cycle of precharge/clock energy.
            p_clock_per_bit: 2.4e-7,
            // 0.004 U per bit per cycle of leakage at 0.35 um.
            p_leak_per_bit: 8.0e-8,
            e_decode32: 2300.0 * U,
            e_decode16: 2100.0 * U,
            e_regfile_port: 420.0 * U,
            e_alu_op: 1500.0 * U,
            e_mul_op: 3600.0 * U,
            p_clock_tree: 16.0e-3,
            e_other_per_cycle: 3500.0 * U,
            p_leak_other: 4.0e-3,
        }
    }

    /// A 65 nm-class calibration: 1.1 V, 600 MHz, per-event dynamic
    /// energies shrunk by the `C·V²` scaling from 0.35 µm/1.5 V, and —
    /// the point of the node — per-bit leakage grown to the magnitude
    /// where static power rivals dynamic power. The scenario sweeps use
    /// this point to ask whether the paper's 0.35 µm conclusions (leakage
    /// a ~10% afterthought) survive on a leakage-dominated process.
    #[must_use]
    pub fn modern_65nm() -> TechParams {
        // Dynamic event scale: capacitance shrink × (1.1/1.5)² ≈ 0.25.
        const DYN: f64 = 0.25;
        let base = TechParams::sa1100();
        TechParams {
            vdd: 1.1,
            freq_hz: 600.0e6,
            e_bitline_per_row_bit: base.e_bitline_per_row_bit * DYN,
            e_tag_bit: base.e_tag_bit * DYN,
            e_decode_bit: base.e_decode_bit * DYN,
            e_output_driven_bit: base.e_output_driven_bit * DYN,
            e_output_toggle_bit: base.e_output_toggle_bit * DYN,
            e_fill_bit: base.e_fill_bit * DYN,
            p_clock_per_bit: 1.0e-7,
            // ~8x the 0.35 µm per-bit leakage: subthreshold + gate leakage
            // make the static floor a first-class term at this node.
            p_leak_per_bit: 6.4e-7,
            e_decode32: base.e_decode32 * DYN,
            e_decode16: base.e_decode16 * DYN,
            e_regfile_port: base.e_regfile_port * DYN,
            e_alu_op: base.e_alu_op * DYN,
            e_mul_op: base.e_mul_op * DYN,
            p_clock_tree: 8.0e-3,
            e_other_per_cycle: base.e_other_per_cycle * DYN,
            p_leak_other: 12.0e-3,
        }
    }

    /// Seconds per cycle at this frequency.
    #[must_use]
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.freq_hz
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams::sa1100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let t = TechParams::sa1100();
        assert!(t.vdd > 0.0 && t.freq_hz > 0.0);
        assert!(t.e_output_driven_bit > t.e_bitline_per_row_bit);
        assert!(t.e_output_toggle_bit > t.e_bitline_per_row_bit);
        assert!(
            t.p_leak_per_bit < t.p_clock_per_bit,
            "0.35um: leakage small"
        );
        assert!((t.cycle_seconds() - 5e-9).abs() < 1e-12);
    }

    #[test]
    fn modern_node_is_leakage_heavy() {
        let old = TechParams::sa1100();
        let new = TechParams::modern_65nm();
        assert!(new.e_bitline_per_row_bit < old.e_bitline_per_row_bit);
        assert!(new.e_output_driven_bit < old.e_output_driven_bit);
        assert!(
            new.p_leak_per_bit > old.p_leak_per_bit * 4.0,
            "65 nm leakage must dwarf 0.35 um leakage"
        );
        assert!(
            new.p_leak_per_bit > new.p_clock_per_bit,
            "65 nm: static floor rivals the clocked precharge power"
        );
        assert!(new.freq_hz > old.freq_hz);
    }
}
