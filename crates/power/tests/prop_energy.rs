//! Seeded property test: per-access I-cache read energy is monotone
//! non-decreasing in capacity at fixed associativity and line size — a
//! bigger array never reads cheaper. This is the sanity floor under every
//! sweep table: if it breaks, "smaller cache saves energy" conclusions
//! are artifacts of the model, not the architecture.
//!
//! Associativity is capped at 64 ways: the analytical model's
//! comparator/mux term grows with ways x tag bits, and tag bits *shrink*
//! as capacity grows, so at extreme associativity (~80+ ways) the
//! per-access cost is legitimately non-monotone in size. Real sweep
//! geometries stay far below that.

use fits_power::{read_energy_per_access, TechParams};
use fits_rng::StdRng;
use fits_sim::{CacheConfig, Replacement};

#[test]
fn read_energy_monotone_in_capacity_at_fixed_shape() {
    let mut rng = StdRng::seed_from_u64(0xe4e26);
    for round in 0..200 {
        let ways = 1u32 << rng.gen_range(0u32..7); // 1..=64
        let line_bytes = 1u32 << rng.gen_range(2u32..7); // 4..=64
        let tech = if rng.gen_range(0u32..2) == 0 {
            TechParams::sa1100()
        } else {
            TechParams::modern_65nm()
        };
        let mut prev = 0.0_f64;
        for k in 0..8 {
            let sets = 1u32 << k;
            let cfg = CacheConfig {
                name: "icache".to_string(),
                size_bytes: sets * ways * line_bytes,
                ways,
                line_bytes,
                replacement: Replacement::PseudoRandom,
            };
            let e = read_energy_per_access(&cfg, &tech);
            assert!(
                e.is_finite() && e > 0.0,
                "round {round}: energy must be positive and finite: {cfg:?}"
            );
            assert!(
                e >= prev,
                "round {round}: per-access read energy regressed growing \
                 {ways} ways x {line_bytes} B lines to {} sets: {e} < {prev}",
                sets
            );
            prev = e;
        }
    }
}
