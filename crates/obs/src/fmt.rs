//! The one place report numbers are rounded.
//!
//! Every percentage the workspace prints goes through [`percent`] /
//! [`fmt_percent`], so a figure table in `fits-bench` and a span tree in
//! this crate agree on the rule: **half-away-from-zero at one decimal**
//! (`f64::round` on the tenths), applied *before* display formatting.
//! Rust's `{:.1}` alone ties-to-even, which is how `12.25%` prints as
//! `12.2` in one table and `12.3` in another when the helper is
//! duplicated — the drift this module exists to end.

/// Rounds to one decimal place, half away from zero.
#[must_use]
pub fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// A fraction (`0.0..=1.0`-ish) as a percentage rounded by the shared rule.
#[must_use]
pub fn percent(frac: f64) -> f64 {
    round1(frac * 100.0)
}

/// Formats a fraction as a percentage with one decimal, right-aligned to
/// `width` (no `%` sign — tables carry the unit in their header).
#[must_use]
pub fn fmt_percent(frac: f64, width: usize) -> String {
    format!("{:>width$.1}", percent(frac))
}

/// Formats a nanosecond total as milliseconds with three decimals.
#[must_use]
pub fn fmt_ms(nanos: u64, width: usize) -> String {
    format!("{:>width$.3}", nanos as f64 / 1.0e6)
}

/// Formats an energy in joules with an auto-selected engineering unit
/// (`pJ`/`nJ`/`uJ`/`mJ`/`J`), three significant decimals.
#[must_use]
pub fn fmt_energy(joules: f64) -> String {
    let magnitude = joules.abs();
    let (scale, unit) = if magnitude >= 1.0 || magnitude == 0.0 {
        (1.0, "J")
    } else if magnitude >= 1e-3 {
        (1e3, "mJ")
    } else if magnitude >= 1e-6 {
        (1e6, "uJ")
    } else if magnitude >= 1e-9 {
        (1e9, "nJ")
    } else {
        (1e12, "pJ")
    };
    format!("{:.3} {}", joules * scale, unit)
}

/// Formats a byte capacity the way scenario ids spell it: `"16k"` for
/// whole kibibytes, raw `"512b"` otherwise — so a table header, a trace
/// meta line and a `ScenarioSpec` id all agree on the label for one
/// geometry.
#[must_use]
pub fn fmt_size(bytes: u64) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}k", bytes / 1024)
    } else {
        format!("{bytes}b")
    }
}

/// Formats a count with thousands separators (`1_234_567`).
#[must_use]
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_is_half_away_from_zero() {
        assert_eq!(round1(12.25), 12.3, "not ties-to-even");
        assert_eq!(round1(-12.25), -12.3);
        assert_eq!(round1(12.24), 12.2);
        assert_eq!(percent(0.1225), 12.3);
        assert_eq!(percent(0.6), 60.0);
    }

    #[test]
    fn percent_formatting_is_width_aligned() {
        assert_eq!(fmt_percent(0.5, 8), "    50.0");
        assert_eq!(fmt_percent(0.1225, 6), "  12.3");
    }

    #[test]
    fn energy_picks_engineering_units() {
        assert_eq!(fmt_energy(0.0), "0.000 J");
        assert_eq!(fmt_energy(1.5), "1.500 J");
        assert_eq!(fmt_energy(2.5e-3), "2.500 mJ");
        assert_eq!(fmt_energy(7.25e-6), "7.250 uJ");
        assert_eq!(fmt_energy(3.0e-9), "3.000 nJ");
        assert_eq!(fmt_energy(4.0e-12), "4.000 pJ");
    }

    #[test]
    fn sizes_match_scenario_id_labels() {
        assert_eq!(fmt_size(16 * 1024), "16k");
        assert_eq!(fmt_size(4 * 1024), "4k");
        assert_eq!(fmt_size(512), "512b");
        assert_eq!(fmt_size(1536), "1536b");
    }

    #[test]
    fn counts_group_by_thousands() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1_000");
        assert_eq!(fmt_count(1234567), "1_234_567");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(2_000_000, 9), "    2.000");
        assert_eq!(fmt_ms(1_234_000, 0), "1.234");
    }
}
