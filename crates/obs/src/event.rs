//! Structured JSONL access/event log with a non-blocking producer side.
//!
//! The serving hot path must never wait on disk: [`EventLog`] puts a
//! bounded channel between request threads and a dedicated writer thread,
//! and producers use a *non-blocking* send — when the channel is full the
//! line is counted as dropped (observable in `/metrics`) instead of
//! stalling the request. That makes the log lossy under extreme pressure
//! by design, which is the correct trade for an access log: the metrics
//! plane keeps exact counts, the log keeps exemplars.
//!
//! Log lines follow the `powerfits-access-v1` schema: the first line is a
//! `meta` record naming the schema, then `request` records (one per
//! served request, carrying the trace id, endpoint, status, cache
//! disposition, latency, and the flattened phase tree) and leveled
//! `event` records interleave. [`validate_access_jsonl`] checks a whole
//! log against that schema and is what `fitsctl checklog` and CI run.

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::json::{parse, Value, Writer};
use crate::metrics::Counter;
use crate::span::Span;

/// Schema identifier written in the log's leading `meta` record.
pub const ACCESS_SCHEMA: &str = "powerfits-access-v1";

/// Severity of an `event` record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Routine operational notices (startup, shutdown, dumps).
    Info,
    /// Degraded but self-healing conditions (shedding, drops).
    Warn,
    /// Failed requests or internal faults.
    Error,
}

impl Level {
    /// The schema's string form of the level.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Everything one `request` log line carries. Phases are the request's
/// top-level spans; they are flattened to slash paths in the line, so the
/// full nesting survives without recursive JSON in every record.
#[derive(Debug)]
pub struct AccessRecord<'a> {
    /// Request trace id (echoed to the client as `X-Fits-Trace`).
    pub trace: &'a str,
    /// HTTP method.
    pub method: &'a str,
    /// Normalized endpoint label (path without query).
    pub endpoint: &'a str,
    /// Response status code.
    pub status: u16,
    /// Cache disposition: `hit`, `coalesced`, `miss`, or `-`.
    pub cache: &'a str,
    /// Total request latency in microseconds.
    pub us: u64,
    /// The request's span forest (empty when tracing is off).
    pub phases: &'a [Span],
}

impl AccessRecord<'_> {
    /// Renders the record as one schema-conformant JSONL line (no
    /// trailing newline).
    #[must_use]
    pub fn line(&self) -> String {
        let level = if self.status >= 500 {
            Level::Error
        } else if self.status >= 400 {
            Level::Warn
        } else {
            Level::Info
        };
        let mut w = Writer::new();
        w.begin_obj();
        w.field_str("type", "request");
        w.field_str("level", level.name());
        w.field_str("trace", self.trace);
        w.field_str("method", self.method);
        w.field_str("endpoint", self.endpoint);
        w.field_u64("status", u64::from(self.status));
        w.field_str("cache", self.cache);
        w.field_u64("us", self.us);
        w.key("phases");
        w.begin_arr();
        for span in self.phases {
            write_phases(&mut w, span, "");
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

/// Flattens a span subtree into `{"name": "a/b", "us": .., "count": ..}`
/// entries, depth-first — the same order `SpanRegistry::visit` walks.
fn write_phases(w: &mut Writer, span: &Span, prefix: &str) {
    let path = if prefix.is_empty() {
        span.name.clone()
    } else {
        format!("{prefix}/{}", span.name)
    };
    w.begin_obj();
    w.field_str("name", &path);
    w.field_u64("us", span.nanos / 1_000);
    w.field_u64("count", span.count);
    w.end_obj();
    for child in &span.children {
        write_phases(w, child, &path);
    }
}

/// Renders a leveled `event` record as one JSONL line.
#[must_use]
pub fn event_line(level: Level, message: &str) -> String {
    let mut w = Writer::new();
    w.begin_obj();
    w.field_str("type", "event");
    w.field_str("level", level.name());
    w.field_str("message", message);
    w.end_obj();
    w.finish()
}

/// Renders the leading `meta` record.
#[must_use]
pub fn meta_line(commit: &str) -> String {
    let mut w = Writer::new();
    w.begin_obj();
    w.field_str("type", "meta");
    w.field_str("schema", ACCESS_SCHEMA);
    w.field_u64("pid", u64::from(std::process::id()));
    w.field_str("commit", commit);
    w.end_obj();
    w.finish()
}

/// Where the writer thread sends bytes.
type Sink = Box<dyn std::io::Write + Send>;

/// A bounded, non-blocking JSONL log.
///
/// Cloning is cheap (`Arc` inside); all clones feed the same writer
/// thread. A disabled log ([`EventLog::disabled`]) accepts and discards
/// every line without counting drops — "off" is not "failing".
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    inner: Option<Arc<LogInner>>,
}

struct LogInner {
    tx: Mutex<Option<SyncSender<String>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    dropped: Counter,
    emitted: Counter,
    capacity: usize,
}

impl std::fmt::Debug for LogInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogInner")
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.get())
            .finish()
    }
}

impl EventLog {
    /// A log that discards everything (tracing off / no `--access-log`).
    #[must_use]
    pub fn disabled() -> EventLog {
        EventLog { inner: None }
    }

    /// A log appending to `path`, with a producer-side channel holding at
    /// most `capacity` in-flight lines. Writes the `meta` record first.
    pub fn to_file(path: &Path, capacity: usize, commit: &str) -> std::io::Result<EventLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(EventLog::to_sink(Box::new(file), capacity, commit))
    }

    /// A log writing to an arbitrary sink (used by tests to capture the
    /// stream in memory). Writes the `meta` record first.
    #[must_use]
    pub fn to_sink(mut sink: Sink, capacity: usize, commit: &str) -> EventLog {
        let (tx, rx) = sync_channel::<String>(capacity.max(1));
        let meta = meta_line(commit);
        let handle = std::thread::Builder::new()
            .name("fits-event-log".into())
            .spawn(move || {
                let _ = writeln!(sink, "{meta}");
                let _ = sink.flush();
                while let Ok(line) = rx.recv() {
                    let _ = writeln!(sink, "{line}");
                    let _ = sink.flush();
                }
                let _ = sink.flush();
            });
        // Thread spawn failing means the process is in deep trouble;
        // degrade to a log that counts every line as dropped.
        let handle = handle.ok();
        EventLog {
            inner: Some(Arc::new(LogInner {
                tx: Mutex::new(handle.is_some().then_some(tx)),
                handle: Mutex::new(handle),
                dropped: Counter::new(),
                emitted: Counter::new(),
                capacity: capacity.max(1),
            })),
        }
    }

    /// True when lines go anywhere at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Channel capacity (0 when disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.capacity)
    }

    /// Enqueues one line without blocking. When the channel is full or
    /// the log is closed, the line is dropped and counted.
    pub fn emit(&self, line: String) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let tx = match inner.tx.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match tx.as_ref() {
            Some(tx) => match tx.try_send(line) {
                Ok(()) => inner.emitted.inc(),
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    inner.dropped.inc();
                }
            },
            None => inner.dropped.inc(),
        }
    }

    /// Lines accepted into the channel so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.emitted.get())
    }

    /// Lines dropped because the channel was full or closed.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.get())
    }

    /// Closes the channel and joins the writer thread, guaranteeing every
    /// accepted line reached the sink. Idempotent; later `emit`s count as
    /// drops.
    pub fn close(&self) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let tx = match inner.tx.lock() {
            Ok(mut g) => g.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        drop(tx);
        let handle = match inner.handle.lock() {
            Ok(mut g) => g.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// A shared in-memory sink for tests: the bytes written so far are
/// readable through the returned handle.
#[must_use]
pub fn memory_sink() -> (Sink, Arc<Mutex<Vec<u8>>>) {
    #[derive(Clone)]
    struct Mem(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Mem {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match self.0.lock() {
                Ok(mut g) => g.extend_from_slice(buf),
                Err(poisoned) => poisoned.into_inner().extend_from_slice(buf),
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let shared = Arc::new(Mutex::new(Vec::new()));
    (Box::new(Mem(Arc::clone(&shared))), shared)
}

/// A sink that blocks forever on the `gate` counter before every write —
/// the differential test's tool for proving `emit` never blocks the
/// producer even when the writer thread is wedged.
#[must_use]
pub fn gated_sink(gate: Arc<AtomicU64>) -> Sink {
    struct Gated(Arc<AtomicU64>);
    impl std::io::Write for Gated {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            while self.0.load(Ordering::Relaxed) == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    Box::new(Gated(gate))
}

/// Summary of a validated access log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Commit recorded in the `meta` line.
    pub commit: String,
    /// Number of `request` records.
    pub requests: u64,
    /// Number of `event` records.
    pub events: u64,
    /// Every `request` record's trace id, in log order.
    pub traces: Vec<String>,
}

fn field<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_of<'v>(obj: &'v [(String, Value)], key: &str, line_no: usize) -> Result<&'v str, String> {
    match field(obj, key) {
        Some(Value::Str(s)) => Ok(s),
        _ => Err(format!("line {line_no}: missing string field '{key}'")),
    }
}

fn num_of(obj: &[(String, Value)], key: &str, line_no: usize) -> Result<f64, String> {
    match field(obj, key) {
        Some(Value::Num(n)) => Ok(*n),
        _ => Err(format!("line {line_no}: missing number field '{key}'")),
    }
}

/// Validates a whole JSONL access log against `powerfits-access-v1`.
///
/// Checks: the first line is a `meta` record naming the schema; every
/// later line is a `request` or `event` record with its required fields
/// typed correctly; levels are legal; every `request` phase entry has
/// `name`/`us`/`count`. Returns per-type counts and the trace ids.
pub fn validate_access_jsonl(text: &str) -> Result<AccessStats, String> {
    let mut stats = AccessStats::default();
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((_, first)) = lines.next() else {
        return Err("empty access log".to_string());
    };
    let meta = match parse(first) {
        Ok(Value::Obj(fields)) => fields,
        Ok(_) => return Err("line 1: meta record is not an object".to_string()),
        Err(e) => return Err(format!("line 1: {e}")),
    };
    if str_of(&meta, "type", 1)? != "meta" {
        return Err("line 1: first record must have type 'meta'".to_string());
    }
    let schema = str_of(&meta, "schema", 1)?;
    if schema != ACCESS_SCHEMA {
        return Err(format!("line 1: schema '{schema}' != '{ACCESS_SCHEMA}'"));
    }
    num_of(&meta, "pid", 1)?;
    stats.commit = str_of(&meta, "commit", 1)?.to_string();

    for (idx, line) in lines {
        let line_no = idx + 1;
        let obj = match parse(line) {
            Ok(Value::Obj(fields)) => fields,
            Ok(_) => return Err(format!("line {line_no}: record is not an object")),
            Err(e) => return Err(format!("line {line_no}: {e}")),
        };
        let level = str_of(&obj, "level", line_no)?;
        if !matches!(level, "info" | "warn" | "error") {
            return Err(format!("line {line_no}: bad level '{level}'"));
        }
        match str_of(&obj, "type", line_no)? {
            "request" => {
                let trace = str_of(&obj, "trace", line_no)?;
                if trace.is_empty() {
                    return Err(format!("line {line_no}: empty trace id"));
                }
                str_of(&obj, "method", line_no)?;
                str_of(&obj, "endpoint", line_no)?;
                str_of(&obj, "cache", line_no)?;
                let status = num_of(&obj, "status", line_no)?;
                if !(100.0..600.0).contains(&status) {
                    return Err(format!("line {line_no}: bad status {status}"));
                }
                num_of(&obj, "us", line_no)?;
                let Some(Value::Arr(phases)) = field(&obj, "phases") else {
                    return Err(format!("line {line_no}: missing array field 'phases'"));
                };
                for phase in phases {
                    let Value::Obj(p) = phase else {
                        return Err(format!("line {line_no}: phase is not an object"));
                    };
                    str_of(p, "name", line_no)?;
                    num_of(p, "us", line_no)?;
                    num_of(p, "count", line_no)?;
                }
                stats.requests += 1;
                stats.traces.push(trace.to_string());
            }
            "event" => {
                str_of(&obj, "message", line_no)?;
                stats.events += 1;
            }
            other => return Err(format!("line {line_no}: unknown record type '{other}'")),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(name: &str, us: u64) -> Span {
        Span {
            name: name.to_string(),
            nanos: us * 1_000,
            count: 1,
            children: Vec::new(),
        }
    }

    #[test]
    fn access_record_lines_validate() {
        let mut parent = span("execute", 900);
        parent.children.push(span("profile", 400));
        let rec = AccessRecord {
            trace: "a1b2",
            method: "POST",
            endpoint: "/synthesize",
            status: 200,
            cache: "miss",
            us: 1234,
            phases: &[span("parse", 10), parent],
        };
        let text = format!(
            "{}\n{}\n{}\n",
            meta_line("deadbeef"),
            rec.line(),
            event_line(Level::Info, "shutdown: \"bye\"\n")
        );
        let stats = validate_access_jsonl(&text).expect("schema-valid");
        assert_eq!(stats.commit, "deadbeef");
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.events, 1);
        assert_eq!(stats.traces, ["a1b2"]);
        // Nested phases flatten to slash paths.
        assert!(rec.line().contains("execute/profile"));
    }

    #[test]
    fn validator_rejects_malformed_logs() {
        assert!(validate_access_jsonl("").is_err());
        assert!(validate_access_jsonl("{\"type\": \"request\"}").is_err());
        let meta = meta_line("x");
        let bad_status = format!(
            "{meta}\n{{\"type\": \"request\", \"level\": \"info\", \"trace\": \"t\", \
             \"method\": \"GET\", \"endpoint\": \"/x\", \"cache\": \"-\", \
             \"status\": 99, \"us\": 1, \"phases\": []}}"
        );
        assert!(validate_access_jsonl(&bad_status).is_err());
        let bad_level =
            format!("{meta}\n{{\"type\": \"event\", \"level\": \"debug\", \"message\": \"m\"}}");
        assert!(validate_access_jsonl(&bad_level).is_err());
        let wrong_schema = meta.replace(ACCESS_SCHEMA, "powerfits-access-v0");
        assert!(validate_access_jsonl(&wrong_schema).is_err());
    }

    #[test]
    fn log_round_trips_through_the_writer_thread() {
        let (sink, shared) = memory_sink();
        let log = EventLog::to_sink(sink, 64, "cafe");
        assert!(log.enabled());
        for i in 0..10 {
            log.emit(event_line(Level::Info, &format!("event {i}")));
        }
        log.close();
        let bytes = shared.lock().expect("sink").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let stats = validate_access_jsonl(&text).expect("valid log");
        assert_eq!(stats.events, 10);
        assert_eq!(stats.commit, "cafe");
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.emitted(), 10);
        // Emits after close are drops, not hangs.
        log.emit(event_line(Level::Info, "late"));
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn full_channel_drops_without_blocking() {
        let gate = Arc::new(AtomicU64::new(0));
        let log = EventLog::to_sink(gated_sink(Arc::clone(&gate)), 4, "c");
        let start = std::time::Instant::now();
        for i in 0..100 {
            log.emit(event_line(Level::Info, &format!("e{i}")));
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "emit must never block on a wedged writer"
        );
        assert!(log.dropped() > 0, "overflow must be counted");
        assert_eq!(log.emitted() + log.dropped(), 100);
        gate.store(1, Ordering::Relaxed);
        log.close();
    }

    #[test]
    fn disabled_log_is_inert() {
        let log = EventLog::disabled();
        assert!(!log.enabled());
        log.emit("anything".to_string());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.emitted(), 0);
        log.close();
    }
}
