//! # fits-obs — tracing, metrics and power attribution
//!
//! The observability layer of the PowerFITS reproduction. The paper's whole
//! argument is an *attribution* claim — I-cache switching/internal/leakage
//! power shifts when the ISA is re-synthesized — and this crate provides the
//! lens to see **where** those shifts come from, instead of only end-of-run
//! totals:
//!
//! * [`SpanRegistry`] — a thread-safe registry of hierarchical phase timers
//!   (compile → profile → synthesize → translate → verify → execute →
//!   simulate → power). It implements `fits-core`'s `FlowObserver`, so
//!   installing a clone on a `FitsFlow` times every Figure-1 stage with no
//!   change to flow results.
//! * [`trace_timed_run`] — a timed simulation that additionally streams
//!   per-PC retire counts, per-set I-cache hit/miss/fill events and branch
//!   outcomes into compact histograms ([`SimTrace`]). It rides the
//!   `CacheEventObserver` seam in `fits-sim`'s timing model; the
//!   differential tests in `tests/` prove the traced run's `SimResult` is
//!   **bit-identical** to the untraced fast path.
//! * [`check_bounds`] — the dynamic-vs-static join: a traced run's per-set
//!   I-cache counters checked against the miss intervals and energy
//!   envelopes implied by the `CA` static cache analysis in `fits-verify`.
//!   A sound analysis brackets every run; the suite-wide differential test
//!   in `fits-bench` enforces exactly that.
//! * [`attribute_kernel`] — the power-attribution join: per-PC histograms ×
//!   the `fits-power` cache model, broken down per basic block (and per
//!   source kernel function) of the *native* program, with the FITS run
//!   mapped back onto the same blocks through the translator's expansion
//!   table — ARM vs. FITS, side by side.
//! * [`json`] — a dependency-free JSON scanner used to validate the JSONL
//!   trace export of the `fitstrace` CLI (in `fits-bench`) and the request
//!   bodies of the `fitsd` daemon (in `fits-serve`).
//! * [`metrics`] — lock-free service counters and a log-bucketed latency
//!   histogram (p50/p99), the `/metrics` substrate of `fitsd`.
//! * [`event`] — the structured JSONL access/event log: a bounded channel
//!   in front of a dedicated writer thread (the request path never blocks
//!   on I/O; overflow is counted, not waited on), schema-validated by
//!   [`event::validate_access_jsonl`] (`powerfits-access-v1`).
//! * [`window`] — sliding ~60 s latency histograms and sampled gauges made
//!   of stamped one-second slots, so "what happened in the last minute"
//!   is answerable next to the lifetime aggregates.
//! * [`ring`] — the flight recorder: a ring of recent request summaries
//!   plus the slowest-N exemplars with full span trees, dumpable from
//!   `/debug/flight`, shutdown, and the panic hook.
//! * [`fmt`] — the one place numbers are rounded for reports (percentages,
//!   energies, durations), shared by `fits-bench`'s tables and the trace
//!   renderers.
//!
//! Everything here is strictly additive: with no observer installed the
//! simulator and flow run exactly the pre-observability code paths, and all
//! collectors use saturating counters so a pathological run degrades the
//! report, never the process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod attr;
pub mod bounds;
pub mod event;
pub mod fmt;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod span;
pub mod trace;
pub mod window;

pub use attr::{attribute_kernel, basic_blocks, Attribution, BasicBlock, BlockCost};
pub use bounds::{check_bounds, BoundsCheck, SetBounds};
pub use event::{validate_access_jsonl, AccessRecord, AccessStats, EventLog, Level};
pub use hist::{BranchCounts, BranchHistogram, PcHistogram, SetCounters, SetHistogram};
pub use metrics::{Counter, LatencyHistogram};
pub use ring::{FlightRecorder, RequestSummary};
pub use span::{ScopedObserver, ScopedSpans, Span, SpanGuard, SpanRegistry};
pub use trace::{trace_timed_run, CacheEvents, DCacheTotals, SimTrace};
pub use window::{GaugeSeries, GaugeSnapshot, WindowSnapshot, WindowedHistogram};
