//! The dynamic-vs-static join: checks a traced run's per-set I-cache
//! activity against the bounds implied by the `CA` static analysis in
//! `fits-verify`.
//!
//! The static analysis promises, per fetch word and per set, which
//! accesses must hit, must miss, or miss at most once. A traced run
//! ([`crate::trace_timed_run`]) counts what actually happened: real
//! accesses per fetch word ([`crate::PcHistogram`]) and hits/misses per
//! set ([`crate::SetHistogram`]). [`check_bounds`] folds the per-word
//! dynamic counts through the static word classes into a per-set miss
//! interval `[miss_min, miss_max]` and verifies the observed counters land
//! inside it:
//!
//! * every access of an always-miss word misses, and every touched line
//!   starts cold, so it misses at least once → `miss_min`;
//! * an always-hit word never misses, a line of a persistent set misses
//!   at most once, and anything else can at worst miss on every access →
//!   `miss_max`;
//! * the per-word access counts and the per-set access counters describe
//!   the same event stream, so their per-set sums must agree exactly.
//!
//! A violation means the static analysis (or the mapping between the two
//! views) is unsound for this run — the suite-wide differential test in
//! `fits-bench` runs this check for every kernel, preset and instruction
//! stream.

use fits_power::AccessEnergyBounds;
use fits_verify::{CacheAnalysis, FetchClass};

use crate::hist::{PcHistogram, SetHistogram};

/// Static miss interval and observed counters for one cache set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SetBounds {
    /// Real accesses predicted from the per-word counts (must equal
    /// `hits + misses`).
    pub accesses: u64,
    /// Observed hits.
    pub hits: u64,
    /// Observed misses.
    pub misses: u64,
    /// Static lower bound on misses.
    pub miss_min: u64,
    /// Static upper bound on misses.
    pub miss_max: u64,
}

impl SetBounds {
    /// The fetch-energy envelope of this set's accesses: hit/miss counts
    /// swing between the static extremes, each access charged the matching
    /// per-access energy bound (a miss always costs at least a hit).
    #[must_use]
    pub fn energy_envelope(&self, bounds: &AccessEnergyBounds) -> (f64, f64) {
        let miss_lo = self.miss_min.min(self.accesses);
        let miss_hi = self.miss_max.min(self.accesses);
        #[allow(clippy::cast_precision_loss)]
        let (a, lo_m, hi_m) = (self.accesses as f64, miss_lo as f64, miss_hi as f64);
        (
            (a - lo_m) * bounds.hit_min_j + lo_m * bounds.miss_min_j,
            (a - hi_m) * bounds.hit_max_j + hi_m * bounds.miss_max_j,
        )
    }
}

/// The result of joining a traced run against a static cache analysis.
#[derive(Clone, Debug)]
pub struct BoundsCheck {
    /// Per-set bounds and observations, indexed by set.
    pub sets: Vec<SetBounds>,
    /// Human-readable soundness violations (empty for a sound analysis).
    pub violations: Vec<String>,
}

impl BoundsCheck {
    /// Whether every observation landed inside its static interval.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total observed accesses across all sets.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.sets
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.accesses))
    }

    /// Total observed misses across all sets.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.sets
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.misses))
    }

    /// Total static miss interval across all sets.
    #[must_use]
    pub fn miss_interval(&self) -> (u64, u64) {
        self.sets.iter().fold((0u64, 0u64), |(lo, hi), s| {
            (
                lo.saturating_add(s.miss_min),
                hi.saturating_add(s.miss_max.min(s.accesses)),
            )
        })
    }

    /// The whole run's fetch-energy envelope: the sum of the per-set
    /// envelopes.
    #[must_use]
    pub fn energy_envelope(&self, bounds: &AccessEnergyBounds) -> (f64, f64) {
        self.sets.iter().fold((0.0, 0.0), |(lo, hi), s| {
            let (slo, shi) = s.energy_envelope(bounds);
            (lo + slo, hi + shi)
        })
    }
}

/// Joins a traced run's I-cache activity against a static analysis.
///
/// `fetches` must be the per-fetch-word access histogram of the traced run
/// (stride 4 from the text base, as [`crate::CacheEvents`] collects it) and
/// `set_hist` the matching per-set counters; `analysis` must have run
/// against the same geometry the simulation used (the `CA002` audit in
/// `fits-verify` checks that side).
#[must_use]
pub fn check_bounds(
    analysis: &CacheAnalysis,
    fetches: &PcHistogram,
    set_hist: &SetHistogram,
) -> BoundsCheck {
    let n_sets = analysis.params.sets as usize;
    let mut violations = Vec::new();
    if set_hist.sets().len() != n_sets {
        violations.push(format!(
            "set histogram has {} sets but the analysis geometry has {n_sets}",
            set_hist.sets().len()
        ));
        return BoundsCheck {
            sets: Vec::new(),
            violations,
        };
    }
    if fetches.stray() > 0 {
        violations.push(format!(
            "{} fetch events landed outside the text's word grid",
            fetches.stray()
        ));
    }

    let mut sets = vec![SetBounds::default(); n_sets];
    // Per-line fold: whether the line was touched at all, and whether any
    // of its touched words is always-miss (whose counted misses subsume
    // the line's cold miss).
    let mut line_state: Option<(u32, u32, bool, bool, bool)> = None;
    let flush = |sets: &mut Vec<SetBounds>, state: Option<(u32, u32, bool, bool, bool)>| {
        let Some((_, set, touched, touched_am, persistent)) = state else {
            return;
        };
        if !touched {
            return;
        }
        let s = &mut sets[set as usize];
        if !touched_am {
            // The line starts cold: its first access misses.
            s.miss_min = s.miss_min.saturating_add(1);
        }
        if persistent {
            // A line of a persistent set misses at most once, ever.
            s.miss_max = s.miss_max.saturating_add(1);
        }
    };

    let mut predicted_total = 0u64;
    for w in &analysis.words {
        let n_w = fetches.get(w.addr);
        predicted_total = predicted_total.saturating_add(n_w);
        let s = &mut sets[w.set as usize];
        s.accesses = s.accesses.saturating_add(n_w);
        if n_w > 0 {
            if w.class == FetchClass::Unreachable {
                violations.push(format!(
                    "word {:#x} is statically unreachable but was fetched {n_w} time(s)",
                    w.addr
                ));
            }
            if w.class == FetchClass::AlwaysMiss {
                s.miss_min = s.miss_min.saturating_add(n_w);
            }
            if !w.persistent_line && w.class != FetchClass::AlwaysHit {
                s.miss_max = s.miss_max.saturating_add(n_w);
            }
        }
        match &mut line_state {
            Some((line, _, touched, touched_am, _)) if *line == w.line => {
                *touched |= n_w > 0;
                *touched_am |= n_w > 0 && w.class == FetchClass::AlwaysMiss;
            }
            other => {
                flush(&mut sets, other.take());
                line_state = Some((
                    w.line,
                    w.set,
                    n_w > 0,
                    n_w > 0 && w.class == FetchClass::AlwaysMiss,
                    w.persistent_line,
                ));
            }
        }
    }
    flush(&mut sets, line_state.take());

    if fetches.total() != predicted_total {
        violations.push(format!(
            "trace counted {} fetches but only {predicted_total} fall on analyzed words",
            fetches.total()
        ));
    }

    for (i, (bound, observed)) in sets.iter_mut().zip(set_hist.sets()).enumerate() {
        bound.hits = observed.hits;
        bound.misses = observed.misses;
        let total = observed.hits.saturating_add(observed.misses);
        if total != bound.accesses {
            violations.push(format!(
                "set {i}: word counts predict {} accesses but the set saw {total}",
                bound.accesses
            ));
        }
        if bound.misses < bound.miss_min {
            violations.push(format!(
                "set {i}: observed {} misses below the static lower bound {}",
                bound.misses, bound.miss_min
            ));
        }
        let miss_cap = bound.miss_max.min(bound.accesses);
        if bound.misses > miss_cap {
            violations.push(format!(
                "set {i}: observed {} misses above the static upper bound {miss_cap}",
                bound.misses
            ));
        }
    }

    BoundsCheck { sets, violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_timed_run;
    use fits_kernels::kernels::{Kernel, Scale};
    use fits_power::{access_energy_bounds, TechParams};
    use fits_scenario::AbstractCacheParams;
    use fits_sim::{Ar32Set, Machine, Sa1100Config};
    use fits_verify::analyze_native_cache;

    fn traced(kernel: Kernel) -> (fits_isa::Program, Sa1100Config, crate::SimTrace) {
        let program = kernel.compile(Scale::test()).unwrap();
        let cfg = Sa1100Config::icache_16k();
        let mut m = Machine::new(Ar32Set::load(&program));
        let (_, _, trace) = trace_timed_run(&mut m, &cfg).unwrap();
        (program, cfg, trace)
    }

    #[test]
    fn sound_run_lands_inside_the_bounds() {
        let (program, cfg, trace) = traced(Kernel::Crc32);
        let params = AbstractCacheParams::from_config(&cfg.icache).unwrap();
        let analysis = analyze_native_cache(&program, params);
        let check = check_bounds(&analysis, &trace.cache.fetches, &trace.cache.icache_sets);
        assert!(check.is_sound(), "violations: {:?}", check.violations);
        let (lo, hi) = check.miss_interval();
        assert!(lo <= check.misses() && check.misses() <= hi);

        let bounds = access_energy_bounds(&cfg.icache, &TechParams::default());
        let (e_lo, e_hi) = check.energy_envelope(&bounds);
        assert!(e_lo > 0.0 && e_lo <= e_hi, "envelope [{e_lo}, {e_hi}]");
    }

    #[test]
    fn all_hit_observation_breaks_the_lower_bound() {
        let (program, cfg, trace) = traced(Kernel::Bitcount);
        let params = AbstractCacheParams::from_config(&cfg.icache).unwrap();
        let analysis = analyze_native_cache(&program, params);
        // Forge a run where nothing ever missed: the cold-start lower
        // bound (every touched line misses at least once) must fire.
        let mut forged = SetHistogram::new(cfg.icache.sets(), cfg.icache.line_bytes);
        for (addr, count) in trace.cache.fetches.iter() {
            for _ in 0..count {
                forged.record(addr, true);
            }
        }
        let check = check_bounds(&analysis, &trace.cache.fetches, &forged);
        assert!(!check.is_sound());
        assert!(
            check.violations.iter().any(|v| v.contains("lower bound")),
            "violations: {:?}",
            check.violations
        );
    }

    #[test]
    fn tampered_counters_break_the_access_equality() {
        let (program, cfg, trace) = traced(Kernel::Crc32);
        let params = AbstractCacheParams::from_config(&cfg.icache).unwrap();
        let analysis = analyze_native_cache(&program, params);
        let mut tampered = trace.cache.icache_sets.clone();
        tampered.record(fits_isa::TEXT_BASE, false); // one phantom access
        let check = check_bounds(&analysis, &trace.cache.fetches, &tampered);
        assert!(!check.is_sound());
        assert!(
            check.violations.iter().any(|v| v.contains("accesses")),
            "violations: {:?}",
            check.violations
        );
    }

    #[test]
    fn geometry_mismatch_is_reported_not_panicked() {
        let (program, cfg, trace) = traced(Kernel::Crc32);
        let params = AbstractCacheParams::from_config(&cfg.icache).unwrap();
        let analysis = analyze_native_cache(&program, params);
        let wrong = SetHistogram::new(cfg.icache.sets() * 2, cfg.icache.line_bytes);
        let check = check_bounds(&analysis, &trace.cache.fetches, &wrong);
        assert!(!check.is_sound());
        assert!(check.sets.is_empty());
    }
}
