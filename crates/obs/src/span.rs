//! Hierarchical phase spans: a thread-safe registry of named timers that
//! nest (compile → profile → synthesize → …) and render as a tree.
//!
//! Counters saturate rather than wrap: a span recorded `u64::MAX` times or
//! accumulating more than `u64::MAX` nanoseconds clamps instead of
//! overflowing, so a pathological run degrades the report, never the
//! process.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fits_core::{FlowObserver, FlowStage};

/// One node of the span tree: a named timer with saturating totals and
/// children merged by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Span name (stage or phase label).
    pub name: String,
    /// Total wall-clock time attributed to this span, in nanoseconds
    /// (saturating).
    pub nanos: u64,
    /// Number of times the span was entered or recorded (saturating).
    pub count: u64,
    /// Child spans, in first-entry order.
    pub children: Vec<Span>,
}

impl Span {
    fn new(name: &str) -> Span {
        Span {
            name: name.to_string(),
            ..Span::default()
        }
    }

    /// Adds one observation of `nanos` nanoseconds, saturating both totals.
    pub fn record(&mut self, nanos: u64) {
        self.nanos = self.nanos.saturating_add(nanos);
        self.count = self.count.saturating_add(1);
    }

    /// The child named `name`, created on first use.
    fn child(&mut self, name: &str) -> &mut Span {
        let idx = match self.children.iter().position(|c| c.name == name) {
            Some(i) => i,
            None => {
                self.children.push(Span::new(name));
                self.children.len() - 1
            }
        };
        &mut self.children[idx]
    }

    /// Sum of the subtree's own time — for the root, the traced total.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        if self.nanos > 0 {
            self.nanos
        } else {
            self.children
                .iter()
                .fold(0u64, |acc, c| acc.saturating_add(c.total_nanos()))
        }
    }

    /// Looks a span up by slash-separated path (`"flow/translate"`).
    #[must_use]
    pub fn find(&self, path: &str) -> Option<&Span> {
        let mut node = self;
        for part in path.split('/') {
            node = node.children.iter().find(|c| c.name == part)?;
        }
        Some(node)
    }

    fn render_into(&self, out: &mut String, depth: usize, parent_nanos: u64) {
        let ms = self.nanos as f64 / 1.0e6;
        let share = if parent_nanos > 0 {
            crate::fmt::percent(self.nanos as f64 / parent_nanos as f64)
        } else {
            100.0
        };
        out.push_str(&format!(
            "{:indent$}{:<width$} {:>9.3} ms {:>5.1}%  x{}\n",
            "",
            self.name,
            ms,
            share,
            self.count,
            indent = depth * 2,
            width = 24usize.saturating_sub(depth * 2),
        ));
        let own = self.nanos.max(self.total_nanos());
        for child in &self.children {
            child.render_into(out, depth + 1, own);
        }
    }

    fn walk(&self, prefix: &str, visit: &mut impl FnMut(&str, &Span)) {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix}/{}", self.name)
        };
        visit(&path, self);
        for child in &self.children {
            child.walk(&path, visit);
        }
    }
}

/// The mutable state behind the registry: the span forest plus the stack of
/// currently-open spans (as paths into the forest).
#[derive(Debug, Default)]
struct Inner {
    /// Synthetic root; its children are the top-level spans.
    root: Span,
    /// Paths (child indices from the root) of the open spans, innermost
    /// last.
    open: Vec<Vec<usize>>,
}

impl Inner {
    fn node_mut(&mut self, path: &[usize]) -> &mut Span {
        let mut node = &mut self.root;
        for &i in path {
            node = &mut node.children[i];
        }
        node
    }

    fn open_child(&mut self, name: &str) -> Vec<usize> {
        let parent_path = self.open.last().cloned().unwrap_or_default();
        let parent = self.node_mut(&parent_path);
        let idx = match parent.children.iter().position(|c| c.name == name) {
            Some(i) => i,
            None => {
                parent.children.push(Span::new(name));
                parent.children.len() - 1
            }
        };
        let mut path = parent_path;
        path.push(idx);
        self.open.push(path.clone());
        path
    }

    fn close(&mut self, path: &[usize], nanos: u64) {
        self.node_mut(path).record(nanos);
        if let Some(pos) = self.open.iter().rposition(|p| p == path) {
            self.open.remove(pos);
        }
    }

    fn add(&mut self, name: &str, nanos: u64) {
        let parent_path = self.open.last().cloned().unwrap_or_default();
        self.node_mut(&parent_path).child(name).record(nanos);
    }
}

/// A shareable registry of hierarchical spans.
///
/// Cloning is cheap (`Arc` inside); all clones feed the same tree. Spans
/// opened while another span is open become its children; leaf timings can
/// also be attributed directly with [`SpanRegistry::add`] — which is how the
/// registry doubles as the flow's [`FlowObserver`].
#[derive(Clone, Debug, Default)]
pub struct SpanRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl SpanRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> SpanRegistry {
        SpanRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another thread panicked mid-update;
        // trace data is best-effort, so keep going with what's there.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Opens a span; it closes (and records its wall time) when the guard
    /// drops. Spans opened while the guard lives nest under it.
    #[must_use]
    pub fn enter(&self, name: &str) -> SpanGuard {
        let path = self.lock().open_child(name);
        SpanGuard {
            registry: self.clone(),
            path,
            start: Instant::now(),
        }
    }

    /// Records a completed duration under `name` as a child of the
    /// currently-open span (or at top level).
    pub fn add(&self, name: &str, wall: Duration) {
        let nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        self.lock().add(name, nanos);
    }

    /// Times a closure under `name`, nesting anything it opens.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let guard = self.enter(name);
        let out = f();
        drop(guard);
        out
    }

    /// A deep copy of the current span forest (top-level spans).
    #[must_use]
    pub fn snapshot(&self) -> Vec<Span> {
        self.lock().root.children.clone()
    }

    /// Renders the forest as an indented tree with milliseconds, percent of
    /// parent, and entry counts.
    #[must_use]
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let total: u64 = snap.iter().map(Span::total_nanos).sum();
        let mut out = String::new();
        for span in &snap {
            span.render_into(&mut out, 0, total.max(1));
        }
        out
    }

    /// Visits every span depth-first with its slash-separated path — the
    /// JSONL exporter's iteration order.
    pub fn visit(&self, mut visit: impl FnMut(&str, &Span)) {
        for span in self.snapshot() {
            span.walk("", &mut visit);
        }
    }
}

impl FlowObserver for SpanRegistry {
    fn stage(&self, stage: FlowStage, wall: Duration) {
        self.add(stage.name(), wall);
    }
}

std::thread_local! {
    /// The registry currently installed for this thread's in-flight
    /// request, if any. `fitsd` handles each request on exactly one
    /// worker thread, which is what makes a thread-local the right scope.
    static SCOPED: std::cell::RefCell<Option<SpanRegistry>> =
        const { std::cell::RefCell::new(None) };
}

/// A [`FlowObserver`] that forwards stage timings to whichever
/// [`SpanRegistry`] is installed on the *current thread* via
/// [`ScopedSpans::install`] — and silently drops them when none is.
///
/// This is the bridge that lets one long-lived engine-side structure (the
/// shared artifacts pool) report into a *per-request* span tree: the pool
/// carries a single `ScopedObserver`, and each request installs its own
/// registry for the duration of its compute call. Because installation is
/// thread-local, concurrent requests on different workers never see each
/// other's registries.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScopedObserver;

impl ScopedObserver {
    /// Records `wall` under `name` in the thread's installed registry, if
    /// any. Used for phases that are not `FlowStage`s.
    pub fn add(name: &str, wall: Duration) {
        SCOPED.with(|slot| {
            if let Some(reg) = slot.borrow().as_ref() {
                reg.add(name, wall);
            }
        });
    }
}

impl FlowObserver for ScopedObserver {
    fn stage(&self, stage: FlowStage, wall: Duration) {
        ScopedObserver::add(stage.name(), wall);
    }
}

/// RAII installation of a [`SpanRegistry`] as the current thread's scoped
/// span sink (see [`ScopedObserver`]). Restores the previously installed
/// registry — if any — on drop, so installations nest correctly.
#[derive(Debug)]
pub struct ScopedSpans {
    prev: Option<SpanRegistry>,
}

impl ScopedSpans {
    /// Installs `registry` on the current thread until the guard drops.
    #[must_use]
    pub fn install(registry: &SpanRegistry) -> ScopedSpans {
        let prev = SCOPED.with(|slot| slot.borrow_mut().replace(registry.clone()));
        ScopedSpans { prev }
    }
}

impl Drop for ScopedSpans {
    fn drop(&mut self) {
        let prev = self.prev.take();
        SCOPED.with(|slot| *slot.borrow_mut() = prev);
    }
}

/// RAII guard returned by [`SpanRegistry::enter`]; records the span's wall
/// time when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    registry: SpanRegistry,
    path: Vec<usize>,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry.lock().close(&self.path, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_under_open_parent() {
        let reg = SpanRegistry::new();
        {
            let _outer = reg.enter("flow");
            reg.add("profile", Duration::from_millis(5));
            reg.time("simulate", || {
                reg.add("arm", Duration::from_millis(2));
            });
        }
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        let flow = &snap[0];
        assert_eq!(flow.name, "flow");
        assert_eq!(flow.count, 1);
        let names: Vec<_> = flow.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["profile", "simulate"]);
        let sim = flow.find("simulate").unwrap();
        assert_eq!(sim.children[0].name, "arm");
        assert_eq!(sim.children[0].nanos, 2_000_000);
    }

    #[test]
    fn repeated_entries_merge_by_name() {
        let reg = SpanRegistry::new();
        let _flow = reg.enter("flow");
        reg.add("synthesize", Duration::from_millis(1));
        reg.add("synthesize", Duration::from_millis(3));
        drop(_flow);
        let snap = reg.snapshot();
        let synth = snap[0].find("synthesize").unwrap();
        assert_eq!(synth.count, 2);
        assert_eq!(synth.nanos, 4_000_000);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut span = Span::new("s");
        span.record(u64::MAX - 1);
        span.record(u64::MAX - 1);
        assert_eq!(span.nanos, u64::MAX);
        span.count = u64::MAX;
        span.record(1);
        assert_eq!(span.count, u64::MAX);
        assert_eq!(span.nanos, u64::MAX);
    }

    #[test]
    fn flow_observer_attributes_under_open_span() {
        let reg = SpanRegistry::new();
        {
            let _flow = reg.enter("flow");
            FlowObserver::stage(&reg, FlowStage::Translate, Duration::from_millis(7));
        }
        let snap = reg.snapshot();
        let t = snap[0].find("translate").unwrap();
        assert_eq!(t.nanos, 7_000_000);
        assert_eq!(t.count, 1);
    }

    #[test]
    fn render_contains_every_name() {
        let reg = SpanRegistry::new();
        reg.time("compile", || {});
        reg.time("flow", || reg.add("profile", Duration::from_micros(10)));
        let text = reg.render();
        for name in ["compile", "flow", "profile"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn scoped_observer_routes_to_the_installed_registry_only() {
        let reg = SpanRegistry::new();
        // No registry installed: the observation is dropped, not panicked.
        FlowObserver::stage(
            &ScopedObserver,
            FlowStage::Profile,
            Duration::from_millis(1),
        );
        assert!(reg.snapshot().is_empty());
        {
            let _scope = reg.enter("execute");
            let _install = ScopedSpans::install(&reg);
            FlowObserver::stage(
                &ScopedObserver,
                FlowStage::Profile,
                Duration::from_millis(2),
            );
            ScopedObserver::add("replay", Duration::from_millis(3));
        }
        // After the guard drops the thread is clean again.
        FlowObserver::stage(
            &ScopedObserver,
            FlowStage::Profile,
            Duration::from_millis(4),
        );
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1, "only the installed window recorded");
        let exec = &snap[0];
        assert_eq!(exec.name, "execute");
        assert_eq!(exec.find("profile").unwrap().nanos, 2_000_000);
        assert_eq!(exec.find("replay").unwrap().nanos, 3_000_000);
    }

    #[test]
    fn scoped_installs_nest_and_restore() {
        let outer = SpanRegistry::new();
        let inner = SpanRegistry::new();
        let _a = ScopedSpans::install(&outer);
        {
            let _b = ScopedSpans::install(&inner);
            ScopedObserver::add("x", Duration::from_nanos(10));
        }
        ScopedObserver::add("y", Duration::from_nanos(20));
        assert!(inner.snapshot()[0].name == "x");
        assert!(outer.snapshot()[0].name == "y");
    }

    #[test]
    fn find_by_path() {
        let reg = SpanRegistry::new();
        reg.time("a", || {
            reg.time("b", || {
                reg.add("c", Duration::from_nanos(42));
            });
        });
        let snap = reg.snapshot();
        assert_eq!(snap[0].find("b/c").unwrap().nanos, 42);
        assert!(snap[0].find("b/x").is_none());
    }
}
