//! The simulation-side trace collector: rides the machine's step-observer
//! hook and the timing model's [`CacheEventObserver`] seam to stream per-PC
//! retire counts, per-set I-cache events and branch outcomes into compact
//! histograms — without perturbing a single counter of the [`SimResult`].
//!
//! The contract the differential tests enforce: for any machine and
//! configuration, [`trace_timed_run`] returns a `(RunOutput, SimResult)`
//! pair **bit-identical** to [`Machine::run_timed`]'s. The collector only
//! listens; it never feeds back into execution or timing.

use fits_isa::TEXT_BASE;
use fits_sim::{
    CacheEventObserver, InstrSet, Machine, RunOutput, Sa1100Config, SimError, SimResult,
    TimingModel,
};

use crate::hist::{BranchHistogram, PcHistogram, SetHistogram};

/// Aggregate D-cache activity seen by the collector (the D-cache is held
/// constant across the paper's configurations, so totals suffice).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DCacheTotals {
    /// Load accesses.
    pub reads: u64,
    /// Store accesses.
    pub writes: u64,
    /// Misses (either kind).
    pub misses: u64,
}

/// The [`CacheEventObserver`] half of the trace: per-word fetch counts,
/// per-set I-cache events and D-cache totals.
#[derive(Clone, Debug)]
pub struct CacheEvents {
    /// I-cache accesses per aligned fetch word (stride 4, both ISAs: two
    /// 16-bit FITS instructions share one fetched word and one event).
    pub fetches: PcHistogram,
    /// Per-set I-cache hit/miss/fill counters.
    pub icache_sets: SetHistogram,
    /// D-cache access totals.
    pub dcache: DCacheTotals,
}

impl CacheEvents {
    /// A collector for the given core configuration's I-cache geometry.
    #[must_use]
    pub fn new(cfg: &Sa1100Config) -> CacheEvents {
        CacheEvents {
            fetches: PcHistogram::new(TEXT_BASE, 4),
            icache_sets: SetHistogram::new(cfg.icache.sets(), cfg.icache.line_bytes),
            dcache: DCacheTotals::default(),
        }
    }
}

impl CacheEventObserver for CacheEvents {
    fn icache_access(&mut self, word_addr: u32, hit: bool) {
        self.fetches.record(word_addr);
        self.icache_sets.record(word_addr, hit);
    }

    fn dcache_access(&mut self, _addr: u32, write: bool, hit: bool) {
        if write {
            self.dcache.writes = self.dcache.writes.saturating_add(1);
        } else {
            self.dcache.reads = self.dcache.reads.saturating_add(1);
        }
        if !hit {
            self.dcache.misses = self.dcache.misses.saturating_add(1);
        }
    }
}

/// Everything one traced timed run collects beyond its [`SimResult`].
#[derive(Clone, Debug)]
pub struct SimTrace {
    /// Retired-instruction counts per PC (stride = the ISA's op size).
    pub retires: PcHistogram,
    /// Branch outcomes per branch site.
    pub branches: BranchHistogram,
    /// Cache-level events.
    pub cache: CacheEvents,
}

impl SimTrace {
    /// Dynamic instruction count seen by the trace.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retires.total()
    }
}

/// Runs `machine` to the exit trap under the SA-1100 timing model with the
/// trace collector attached, returning the functional output, the timing
/// statistics and the collected [`SimTrace`].
///
/// The `(RunOutput, SimResult)` pair is bit-identical to
/// [`Machine::run_timed`] with the same configuration — the collector rides
/// [`TimingModel::observe_with`], which accumulates exactly the counters of
/// the untraced [`TimingModel::observe`] path.
///
/// # Errors
///
/// Any [`SimError`] raised by execution or cache-geometry validation.
pub fn trace_timed_run<S: InstrSet>(
    machine: &mut Machine<S>,
    cfg: &Sa1100Config,
) -> Result<(RunOutput, SimResult, SimTrace), SimError> {
    let op_size = machine.instr_set().op_size();
    let mut timing = TimingModel::new(cfg)?;
    let mut retires = PcHistogram::new(TEXT_BASE, op_size);
    let mut branches = BranchHistogram::new(TEXT_BASE, op_size);
    let mut cache = CacheEvents::new(cfg);
    let output = machine.run_observed(|_, info| {
        retires.record(info.pc);
        if let Some(b) = &info.branch {
            // BTFNT, as the timing model predicts: backward predicted
            // taken, forward predicted not-taken.
            branches.record(info.pc, b.taken, b.taken != b.backward);
        }
        timing.observe_with(info, &mut cache);
    })?;
    let result = timing.finish_with(&mut cache);
    Ok((
        output,
        result,
        SimTrace {
            retires,
            branches,
            cache,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_kernels::kernels::{Kernel, Scale};
    use fits_sim::Ar32Set;

    #[test]
    fn trace_counts_are_consistent_with_sim_result() {
        let program = Kernel::Crc32.compile(Scale::test()).unwrap();
        let mut m = Machine::new(Ar32Set::load(&program));
        let cfg = Sa1100Config::icache_16k();
        let (out, sim, trace) = trace_timed_run(&mut m, &cfg).unwrap();

        assert_eq!(trace.retired(), out.steps, "one retire event per step");
        assert_eq!(trace.retired(), sim.retired);
        assert_eq!(
            trace.cache.fetches.total(),
            sim.icache.accesses,
            "one fetch event per I-cache access"
        );
        assert_eq!(
            trace.cache.icache_sets.total_accesses(),
            sim.icache.accesses
        );
        let set_misses: u64 = trace
            .cache
            .icache_sets
            .sets()
            .iter()
            .map(|s| s.misses)
            .sum();
        assert_eq!(set_misses, sim.icache.misses);
        assert_eq!(
            trace.cache.dcache.reads + trace.cache.dcache.writes,
            sim.dcache.accesses
        );
        assert_eq!(trace.cache.dcache.misses, sim.dcache.misses);
        let taken: u64 = trace.branches.iter().map(|(_, c)| c.taken).sum();
        let mis: u64 = trace.branches.iter().map(|(_, c)| c.mispredicted).sum();
        assert_eq!(taken, sim.branch.taken);
        assert_eq!(mis, sim.branch.mispredicted);
        assert_eq!(trace.retires.stray(), 0, "every PC maps into the text");
    }

    #[test]
    fn traced_run_is_bit_identical_to_untraced() {
        let program = Kernel::Bitcount.compile(Scale::test()).unwrap();
        let cfg = Sa1100Config::icache_8k();
        let (ref_out, ref_sim) = Machine::new(Ar32Set::load(&program))
            .run_timed(&cfg)
            .unwrap();
        let (out, sim, _trace) =
            trace_timed_run(&mut Machine::new(Ar32Set::load(&program)), &cfg).unwrap();
        assert_eq!(out, ref_out);
        assert_eq!(sim, ref_sim);
    }
}
