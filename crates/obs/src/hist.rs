//! Compact activity histograms: dense per-address counters and per-set
//! cache event counters.
//!
//! All counters saturate rather than wrap (like [`crate::span::Span`]):
//! tracing a pathological run clamps a counter at `u64::MAX` instead of
//! corrupting the report or panicking in the hot loop.

/// A dense histogram over a contiguous address range with a fixed stride
/// (4 for AR32 PCs and fetch words, 2 for FITS PCs).
///
/// The backing vector grows on demand, so the collector does not need to
/// know the text size up front; addresses below `base` or off-stride are
/// counted in a separate `stray` bucket rather than dropped silently.
#[derive(Clone, Debug)]
pub struct PcHistogram {
    base: u32,
    stride: u32,
    counts: Vec<u64>,
    stray: u64,
}

impl PcHistogram {
    /// An empty histogram over addresses `base + k * stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn new(base: u32, stride: u32) -> PcHistogram {
        assert!(stride > 0, "stride must be positive");
        PcHistogram {
            base,
            stride,
            counts: Vec::new(),
            stray: 0,
        }
    }

    /// The address stride between consecutive slots.
    #[must_use]
    pub fn stride(&self) -> u32 {
        self.stride
    }

    fn slot(&self, addr: u32) -> Option<usize> {
        if addr < self.base {
            return None;
        }
        let off = addr - self.base;
        if !off.is_multiple_of(self.stride) {
            return None;
        }
        Some((off / self.stride) as usize)
    }

    /// Counts one event at `addr` (saturating).
    pub fn record(&mut self, addr: u32) {
        self.add(addr, 1);
    }

    /// Counts `n` events at `addr` (saturating).
    pub fn add(&mut self, addr: u32, n: u64) {
        match self.slot(addr) {
            Some(i) => {
                if i >= self.counts.len() {
                    self.counts.resize(i + 1, 0);
                }
                self.counts[i] = self.counts[i].saturating_add(n);
            }
            None => self.stray = self.stray.saturating_add(n),
        }
    }

    /// The count at `addr` (0 when never recorded).
    #[must_use]
    pub fn get(&self, addr: u32) -> u64 {
        self.slot(addr)
            .and_then(|i| self.counts.get(i))
            .copied()
            .unwrap_or(0)
    }

    /// Events recorded at addresses outside the histogram's range/stride.
    #[must_use]
    pub fn stray(&self) -> u64 {
        self.stray
    }

    /// Sum of all in-range counts (saturating).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Iterates `(addr, count)` over the non-zero slots.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(move |(i, &c)| (self.base + (i as u32) * self.stride, c))
    }
}

/// Per-set cache event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SetCounters {
    /// Accesses that hit in the set.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Words filled into the set by misses.
    pub fill_words: u64,
}

/// Per-set histogram of cache activity, mirroring one cache's geometry.
///
/// A miss implies a line fill of `line_bytes / 4` words, exactly as in the
/// simulator's cache model, so `fill_words` can be derived without a
/// dedicated fill event.
#[derive(Clone, Debug)]
pub struct SetHistogram {
    line_bytes: u32,
    sets: Vec<SetCounters>,
}

impl SetHistogram {
    /// A histogram for a cache with `sets` sets of `line_bytes`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero (geometry is validated by the
    /// timing model before any event can fire).
    #[must_use]
    pub fn new(sets: u32, line_bytes: u32) -> SetHistogram {
        assert!(sets > 0 && line_bytes > 0, "degenerate cache geometry");
        SetHistogram {
            line_bytes,
            sets: vec![SetCounters::default(); sets as usize],
        }
    }

    /// The set index an address maps to.
    #[must_use]
    pub fn set_of(&self, addr: u32) -> usize {
        ((addr / self.line_bytes) as usize) % self.sets.len()
    }

    /// Records one access at `addr` (saturating); a miss also accounts the
    /// implied line fill.
    pub fn record(&mut self, addr: u32, hit: bool) {
        let fill = u64::from(self.line_bytes / 4);
        let idx = self.set_of(addr);
        let set = &mut self.sets[idx];
        if hit {
            set.hits = set.hits.saturating_add(1);
        } else {
            set.misses = set.misses.saturating_add(1);
            set.fill_words = set.fill_words.saturating_add(fill);
        }
    }

    /// The per-set counters, indexed by set.
    #[must_use]
    pub fn sets(&self) -> &[SetCounters] {
        &self.sets
    }

    /// Total accesses across all sets (saturating).
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.sets.iter().fold(0u64, |acc, s| {
            acc.saturating_add(s.hits).saturating_add(s.misses)
        })
    }

    /// The busiest set and its counters (by accesses), if any set was
    /// touched.
    #[must_use]
    pub fn hottest(&self) -> Option<(usize, SetCounters)> {
        self.sets
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.hits.saturating_add(s.misses))
            .filter(|(_, s)| s.hits > 0 || s.misses > 0)
            .map(|(i, s)| (i, *s))
    }
}

/// Per-branch-site outcome counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchCounts {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
    /// Static BTFNT mispredictions (taken ≠ backward).
    pub mispredicted: u64,
}

/// Dense per-PC branch-outcome histogram (same addressing scheme as
/// [`PcHistogram`]; branch sites are sparse but the per-slot cost is three
/// words, so dense storage stays small at kernel scale).
#[derive(Clone, Debug)]
pub struct BranchHistogram {
    base: u32,
    stride: u32,
    counts: Vec<BranchCounts>,
}

impl BranchHistogram {
    /// An empty histogram over addresses `base + k * stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn new(base: u32, stride: u32) -> BranchHistogram {
        assert!(stride > 0, "stride must be positive");
        BranchHistogram {
            base,
            stride,
            counts: Vec::new(),
        }
    }

    /// Records one resolved branch at `pc` (saturating). `mispredicted` is
    /// the BTFNT verdict the timing model already computed.
    pub fn record(&mut self, pc: u32, taken: bool, mispredicted: bool) {
        if pc < self.base || !(pc - self.base).is_multiple_of(self.stride) {
            return;
        }
        let i = ((pc - self.base) / self.stride) as usize;
        if i >= self.counts.len() {
            self.counts.resize(i + 1, BranchCounts::default());
        }
        let c = &mut self.counts[i];
        if taken {
            c.taken = c.taken.saturating_add(1);
        } else {
            c.not_taken = c.not_taken.saturating_add(1);
        }
        if mispredicted {
            c.mispredicted = c.mispredicted.saturating_add(1);
        }
    }

    /// The counters at `pc`.
    #[must_use]
    pub fn get(&self, pc: u32) -> BranchCounts {
        if pc < self.base || !(pc - self.base).is_multiple_of(self.stride) {
            return BranchCounts::default();
        }
        let i = ((pc - self.base) / self.stride) as usize;
        self.counts.get(i).copied().unwrap_or_default()
    }

    /// Iterates `(pc, counts)` over sites that resolved at least once.
    pub fn iter(&self) -> impl Iterator<Item = (u32, BranchCounts)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.taken > 0 || c.not_taken > 0)
            .map(move |(i, &c)| (self.base + (i as u32) * self.stride, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_histogram_counts_and_iterates() {
        let mut h = PcHistogram::new(0x8000, 4);
        h.record(0x8000);
        h.record(0x8008);
        h.record(0x8008);
        assert_eq!(h.get(0x8000), 1);
        assert_eq!(h.get(0x8004), 0);
        assert_eq!(h.get(0x8008), 2);
        assert_eq!(h.total(), 3);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(0x8000, 1), (0x8008, 2)]);
    }

    #[test]
    fn pc_histogram_strays_do_not_vanish() {
        let mut h = PcHistogram::new(0x8000, 4);
        h.record(0x7ffc); // below base
        h.record(0x8002); // off stride
        assert_eq!(h.stray(), 2);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn pc_histogram_saturates() {
        let mut h = PcHistogram::new(0, 4);
        h.add(0, u64::MAX - 1);
        h.add(0, 5);
        assert_eq!(h.get(0), u64::MAX);
        h.add(8, u64::MAX);
        assert_eq!(h.total(), u64::MAX, "total saturates too");
    }

    #[test]
    fn set_histogram_maps_and_fills() {
        let mut h = SetHistogram::new(4, 32);
        h.record(0, false);
        h.record(32, true); // next line -> next set
        h.record(4 * 32, true); // wraps back to set 0
        assert_eq!(h.sets()[0].misses, 1);
        assert_eq!(h.sets()[0].hits, 1);
        assert_eq!(h.sets()[0].fill_words, 8);
        assert_eq!(h.sets()[1].hits, 1);
        assert_eq!(h.total_accesses(), 3);
        assert_eq!(h.hottest().unwrap().0, 0);
    }

    #[test]
    fn set_histogram_saturates() {
        let mut h = SetHistogram::new(1, 32);
        for _ in 0..3 {
            h.record(0, true);
        }
        h.sets[0].hits = u64::MAX;
        h.record(0, true);
        assert_eq!(h.sets()[0].hits, u64::MAX);
    }

    #[test]
    fn branch_histogram_records_outcomes() {
        let mut h = BranchHistogram::new(0x8000, 4);
        h.record(0x8010, true, false);
        h.record(0x8010, false, true);
        let c = h.get(0x8010);
        assert_eq!(c.taken, 1);
        assert_eq!(c.not_taken, 1);
        assert_eq!(c.mispredicted, 1);
        assert_eq!(h.iter().count(), 1);
    }
}
