//! The power-attribution join: per-PC activity histograms × the
//! `fits-power` cache model, decomposed per basic block of the **native**
//! program and per source kernel function.
//!
//! Both ISAs are attributed against the same native blocks: the ARM run
//! maps PCs to text indices directly, and the FITS run maps each 16-bit
//! instruction back to the ARM instruction it translates through the
//! translator's expansion table ([`fits_to_arm`]). That shared ground truth
//! is what makes the ARM-vs-FITS side-by-side comparison meaningful — the
//! paper's per-figure claim ("switching drops because fetches halve,
//! leakage tracks runtime") becomes visible per loop body.
//!
//! ## Apportionment model
//!
//! The cache power model is linear in measured activity, which yields a
//! natural per-block split of each component:
//!
//! * **switching** — output-driver energy, per access (drivers + measured
//!   toggles): split by each block's share of I-cache *fetch accesses*;
//! * **internal** — array read energy per access plus fills and the
//!   size-proportional precharge/clock: split by fetch-access share as
//!   well (fills follow misses, which follow accesses at block grain);
//! * **leakage** — proportional to the operating interval: split by each
//!   block's share of *retired instructions*, the block-level proxy for
//!   occupancy of the run.

use fits_isa::{Instr, Program, TEXT_BASE};
use fits_power::CachePower;

use crate::trace::SimTrace;

/// One basic block of the native program, closed under the usual leader
/// rules (entry, branch targets, fall-throughs of control transfers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// First text index of the block.
    pub start: usize,
    /// One past the last text index.
    pub end: usize,
    /// The enclosing function (nearest preceding symbol; `"?"` when the
    /// program carries no symbols).
    pub func: String,
}

impl BasicBlock {
    /// The block's first instruction address.
    #[must_use]
    pub fn addr(&self) -> u32 {
        TEXT_BASE + (self.start as u32) * 4
    }

    /// Instruction count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never produced by [`basic_blocks`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// A compact display label: `func+0x10`.
    #[must_use]
    pub fn label(&self, func_start: usize) -> String {
        let off = (self.start - func_start) * 4;
        if off == 0 {
            self.func.clone()
        } else {
            format!("{}+{:#x}", self.func, off)
        }
    }
}

/// Whether an instruction ends a basic block: branches, traps, and
/// anything that writes the PC (indirect jumps, returns).
fn is_terminator(instr: &Instr) -> bool {
    matches!(instr, Instr::Branch { .. } | Instr::Swi { .. })
        || instr.writes().iter().any(|r| r.is_pc())
}

/// Partitions a program's text into basic blocks, in address order.
///
/// Leaders are the entry point, every branch target, and every instruction
/// following a terminator (branch, trap, PC write). Symbols name the
/// enclosing function of each block.
#[must_use]
pub fn basic_blocks(program: &Program) -> Vec<BasicBlock> {
    let n = program.text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut leader = vec![false; n];
    leader[0] = true;
    if program.entry < n {
        leader[program.entry] = true;
    }
    for (i, instr) in program.text.iter().enumerate() {
        if let Some(t) = program.branch_target(i) {
            leader[t] = true;
        }
        if is_terminator(instr) && i + 1 < n {
            leader[i + 1] = true;
        }
    }
    // Symbols are block boundaries too, so a block never spans functions.
    for (idx, _) in &program.symbols {
        if *idx < n {
            leader[*idx] = true;
        }
    }

    let mut symbols: Vec<(usize, &str)> = program
        .symbols
        .iter()
        .map(|(i, s)| (*i, s.as_str()))
        .collect();
    symbols.sort_by_key(|(i, _)| *i);
    let func_of = |idx: usize| -> String {
        symbols
            .iter()
            .rev()
            .find(|(i, _)| *i <= idx)
            .map_or_else(|| "?".to_string(), |(_, s)| (*s).to_string())
    };

    let mut blocks = Vec::new();
    let mut start = 0usize;
    for (i, &lead) in leader.iter().enumerate().skip(1) {
        if lead {
            blocks.push(BasicBlock {
                start,
                end: i,
                func: func_of(start),
            });
            start = i;
        }
    }
    blocks.push(BasicBlock {
        start,
        end: n,
        func: func_of(start),
    });
    blocks
}

/// Expands the translator's per-ARM-instruction expansion table into a FITS
/// instruction index → ARM text index map.
///
/// `expansion[i]` is the number of FITS instructions emitted for ARM
/// instruction `i` (the `MappingStats` of the accepted translation); the
/// returned vector has one entry per FITS instruction.
#[must_use]
pub fn fits_to_arm(expansion: &[u32]) -> Vec<u32> {
    let total: usize = expansion.iter().map(|&e| e as usize).sum();
    let mut map = Vec::with_capacity(total);
    for (arm_idx, &count) in expansion.iter().enumerate() {
        for _ in 0..count {
            map.push(arm_idx as u32);
        }
    }
    map
}

/// Activity and attributed I-cache energy of one basic block under one
/// configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BlockCost {
    /// Retired instructions attributed to the block.
    pub retired: u64,
    /// I-cache fetch accesses attributed to the block.
    pub fetches: u64,
    /// Attributed switching energy (J).
    pub switching_j: f64,
    /// Attributed internal energy (J).
    pub internal_j: f64,
    /// Attributed leakage energy (J).
    pub leakage_j: f64,
}

impl BlockCost {
    /// Total attributed I-cache energy (J).
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.switching_j + self.internal_j + self.leakage_j
    }
}

/// The ARM-vs-FITS per-block attribution for one kernel and one cache
/// geometry pair.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// The scenario (machine-description id) the traced runs simulated on,
    /// when the caller keys its traces by scenario — `None` for ad-hoc
    /// attributions outside a sweep.
    pub scenario: Option<String>,
    /// The native program's basic blocks, in address order.
    pub blocks: Vec<BasicBlock>,
    /// Per-block costs of the ARM run, parallel to `blocks`.
    pub arm: Vec<BlockCost>,
    /// Per-block costs of the FITS run, parallel to `blocks`.
    pub fits: Vec<BlockCost>,
}

impl Attribution {
    /// Builder-style scenario stamp (see the `scenario` field).
    #[must_use]
    pub fn with_scenario(mut self, id: &str) -> Attribution {
        self.scenario = Some(id.to_string());
        self
    }

    /// Block indices sorted hottest-first by combined attributed energy
    /// (ARM + FITS), truncated to `n`.
    #[must_use]
    pub fn top_n(&self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.blocks.len())
            .filter(|&i| self.arm[i].retired > 0 || self.fits[i].retired > 0)
            .collect();
        idx.sort_by(|&a, &b| {
            let ka = self.arm[a].total_j() + self.fits[a].total_j();
            let kb = self.arm[b].total_j() + self.fits[b].total_j();
            kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(n);
        idx
    }

    /// The display label of block `i` (function-relative offset).
    #[must_use]
    pub fn label(&self, i: usize) -> String {
        let block = &self.blocks[i];
        let func_start = self
            .blocks
            .iter()
            .filter(|b| b.func == block.func && b.start <= block.start)
            .map(|b| b.start)
            .min()
            .unwrap_or(block.start);
        block.label(func_start)
    }

    /// Aggregates per-block costs up to function grain: `(func, arm, fits)`
    /// triples in first-appearance order.
    #[must_use]
    pub fn by_function(&self) -> Vec<(String, BlockCost, BlockCost)> {
        let mut order: Vec<String> = Vec::new();
        let mut acc: std::collections::HashMap<String, (BlockCost, BlockCost)> =
            std::collections::HashMap::new();
        for (i, b) in self.blocks.iter().enumerate() {
            let entry = acc.entry(b.func.clone()).or_insert_with(|| {
                order.push(b.func.clone());
                (BlockCost::default(), BlockCost::default())
            });
            add_cost(&mut entry.0, &self.arm[i]);
            add_cost(&mut entry.1, &self.fits[i]);
        }
        order
            .into_iter()
            .map(|f| {
                let (a, s) = acc[&f];
                (f, a, s)
            })
            .collect()
    }
}

fn add_cost(into: &mut BlockCost, from: &BlockCost) {
    into.retired = into.retired.saturating_add(from.retired);
    into.fetches = into.fetches.saturating_add(from.fetches);
    into.switching_j += from.switching_j;
    into.internal_j += from.internal_j;
    into.leakage_j += from.leakage_j;
}

/// Attributes one traced run's I-cache power to the native basic blocks.
///
/// `block_of_arm` maps ARM text index → block index; `fits_map` (when the
/// run is a FITS run) maps FITS instruction index → ARM text index. Fetch
/// accesses of a packed FITS word are attributed to the block of the word's
/// first instruction — the same one-event-per-word convention the cache
/// model itself uses.
fn attribute_run(
    block_of_arm: &[usize],
    n_blocks: usize,
    fits_map: Option<&[u32]>,
    trace: &SimTrace,
    power: &CachePower,
) -> Vec<BlockCost> {
    let mut costs = vec![BlockCost::default(); n_blocks];
    let op_stride = trace.retires.stride();

    let block_of_op = |op_index: usize| -> Option<usize> {
        let arm_index = match fits_map {
            Some(map) => *map.get(op_index)? as usize,
            None => op_index,
        };
        block_of_arm.get(arm_index).copied()
    };

    for (pc, count) in trace.retires.iter() {
        let op_index = ((pc - TEXT_BASE) / op_stride) as usize;
        if let Some(b) = block_of_op(op_index) {
            costs[b].retired = costs[b].retired.saturating_add(count);
        }
    }
    for (word_addr, count) in trace.cache.fetches.iter() {
        // One fetched 32-bit word holds one AR32 instruction or two 16-bit
        // FITS instructions; the word's first op owns the event.
        let op_index = ((word_addr - TEXT_BASE) / op_stride) as usize;
        if let Some(b) = block_of_op(op_index) {
            costs[b].fetches = costs[b].fetches.saturating_add(count);
        }
    }

    let total_fetches: u64 = costs.iter().map(|c| c.fetches).sum();
    let total_retired: u64 = costs.iter().map(|c| c.retired).sum();
    for c in &mut costs {
        if total_fetches > 0 {
            let access_share = c.fetches as f64 / total_fetches as f64;
            c.switching_j = power.switching_j * access_share;
            c.internal_j = power.internal_j * access_share;
        }
        if total_retired > 0 {
            c.leakage_j = power.leakage_j * (c.retired as f64 / total_retired as f64);
        }
    }
    costs
}

/// The full ARM-vs-FITS attribution join for one kernel.
///
/// * `program` — the native program (defines blocks and functions);
/// * `expansion` — the accepted translation's per-ARM-instruction FITS
///   expansion counts (`MappingStats::expansion`);
/// * `arm`/`fits` — each ISA's traced run plus its I-cache power report
///   (from `fits_power::cache_power` over the run's `SimResult`).
#[must_use]
pub fn attribute_kernel(
    program: &Program,
    expansion: &[u32],
    arm: (&SimTrace, &CachePower),
    fits: (&SimTrace, &CachePower),
) -> Attribution {
    let blocks = basic_blocks(program);
    let mut block_of_arm = vec![0usize; program.text.len()];
    for (bi, b) in blocks.iter().enumerate() {
        for slot in &mut block_of_arm[b.start..b.end] {
            *slot = bi;
        }
    }
    let fits_map = fits_to_arm(expansion);
    let arm_costs = attribute_run(&block_of_arm, blocks.len(), None, arm.0, arm.1);
    let fits_costs = attribute_run(&block_of_arm, blocks.len(), Some(&fits_map), fits.0, fits.1);
    Attribution {
        scenario: None,
        blocks,
        arm: arm_costs,
        fits: fits_costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_isa::{Cond, DpOp, Operand2, Reg};

    fn program() -> Program {
        Program {
            text: vec![
                /* 0 main: */ Instr::mov(Reg::R0, Operand2::imm(3).unwrap()),
                /* 1 */ Instr::mov(Reg::R1, Operand2::imm(0).unwrap()),
                /* 2 loop: */ Instr::dp(DpOp::Add, Reg::R1, Reg::R1, Operand2::reg(Reg::R0)),
                /* 3 */
                Instr::Dp {
                    cond: Cond::Al,
                    op: DpOp::Sub,
                    set_flags: true,
                    rd: Reg::R0,
                    rn: Reg::R0,
                    op2: Operand2::imm(1).unwrap(),
                },
                /* 4 */ Instr::b(-4).with_cond(Cond::Ne),
                /* 5 exit: */ Instr::mov(Reg::R0, Operand2::reg(Reg::R1)),
                /* 6 */
                Instr::Swi {
                    cond: Cond::Al,
                    imm: 0,
                },
            ],
            symbols: vec![(0, "main".to_string())],
            ..Program::default()
        }
    }

    #[test]
    fn blocks_split_at_branches_and_targets() {
        let blocks = basic_blocks(&program());
        let spans: Vec<(usize, usize)> = blocks.iter().map(|b| (b.start, b.end)).collect();
        assert_eq!(spans, vec![(0, 2), (2, 5), (5, 7)]);
        assert!(blocks.iter().all(|b| b.func == "main"));
        assert_eq!(blocks[1].addr(), TEXT_BASE + 8);
        assert_eq!(blocks[1].label(0), "main+0x8");
    }

    #[test]
    fn fits_map_expands_counts() {
        let map = fits_to_arm(&[1, 2, 1]);
        assert_eq!(map, vec![0, 1, 1, 2]);
    }

    #[test]
    fn attribution_conserves_energy_and_counts() {
        use crate::trace::trace_timed_run;
        use fits_power::{cache_power, TechParams};
        use fits_sim::{Ar32Set, Machine, Sa1100Config};

        let p = program();
        let cfg = Sa1100Config::icache_16k();
        let (_, sim, trace) = trace_timed_run(&mut Machine::new(Ar32Set::load(&p)), &cfg).unwrap();
        let power = cache_power(&cfg.icache, &sim.icache, sim.cycles, &TechParams::sa1100());
        // Self-join: use the ARM trace on both sides with a 1-to-1 map.
        let expansion = vec![1u32; p.text.len()];
        let attr = attribute_kernel(&p, &expansion, (&trace, &power), (&trace, &power));

        let retired: u64 = attr.arm.iter().map(|c| c.retired).sum();
        assert_eq!(retired, sim.retired);
        let total_j: f64 = attr.arm.iter().map(BlockCost::total_j).sum();
        assert!(
            (total_j - power.total_j()).abs() < 1e-12 * power.total_j().max(1.0),
            "attribution must conserve total energy: {total_j} vs {}",
            power.total_j()
        );
        // The loop block dominates retires.
        let hot = attr.top_n(1)[0];
        assert_eq!(attr.blocks[hot].start, 2);
        // FITS side mirrors ARM under the identity map.
        assert_eq!(attr.arm[hot].retired, attr.fits[hot].retired);
        // Function rollup covers everything.
        let by_fn = attr.by_function();
        assert_eq!(by_fn.len(), 1);
        assert_eq!(by_fn[0].0, "main");
        assert_eq!(by_fn[0].1.retired, sim.retired);
    }
}
