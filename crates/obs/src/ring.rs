//! Flight recorder: a fixed-size in-memory ring of recent request
//! summaries plus a "slowest N" exemplar set that keeps each exemplar's
//! full span tree.
//!
//! The access log answers "what happened" after the fact, if it was
//! enabled and nothing dropped; the flight recorder answers "what is the
//! daemon doing *right now* and where did the recent slow requests spend
//! their time" from memory, with zero configuration and bounded cost. It
//! is dumped by `GET /debug/flight`, on shutdown, and from the panic
//! hook — the black box you read after the crash.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

use crate::json::Writer;
use crate::span::Span;

/// Schema identifier of the flight-recorder JSON dump.
pub const FLIGHT_SCHEMA: &str = "powerfits-flight-v1";

/// One completed request, summarized.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestSummary {
    /// Monotonic sequence number assigned by the recorder (1-based).
    pub seq: u64,
    /// Request trace id.
    pub trace: String,
    /// HTTP method.
    pub method: String,
    /// Normalized endpoint label.
    pub endpoint: String,
    /// Response status code.
    pub status: u16,
    /// Cache disposition: `hit`, `coalesced`, `miss`, or `-`.
    pub cache: String,
    /// Total latency in microseconds.
    pub us: u64,
}

#[derive(Debug, Default)]
struct FlightInner {
    seq: u64,
    recent: VecDeque<RequestSummary>,
    slowest: Vec<(RequestSummary, Vec<Span>)>,
}

/// The recorder: thread-safe, fixed memory, cheap to record into.
#[derive(Debug)]
pub struct FlightRecorder {
    recent_cap: usize,
    slowest_cap: usize,
    inner: Mutex<FlightInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(64, 8)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `recent_cap` summaries and the
    /// `slowest_cap` slowest requests (with span trees) seen so far.
    #[must_use]
    pub fn new(recent_cap: usize, slowest_cap: usize) -> FlightRecorder {
        FlightRecorder {
            recent_cap: recent_cap.max(1),
            slowest_cap: slowest_cap.max(1),
            inner: Mutex::new(FlightInner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FlightInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records one completed request. `spans` is the request's span
    /// forest (empty when tracing is off); it is retained only if the
    /// request earns a slowest-N slot.
    pub fn record(&self, mut summary: RequestSummary, spans: Vec<Span>) {
        let mut inner = self.lock();
        inner.seq = inner.seq.saturating_add(1);
        summary.seq = inner.seq;
        if inner.recent.len() == self.recent_cap {
            inner.recent.pop_front();
        }
        inner.recent.push_back(summary.clone());
        let earns_slot = inner.slowest.len() < self.slowest_cap
            || inner.slowest.last().is_some_and(|(s, _)| summary.us > s.us);
        if earns_slot {
            let at = inner
                .slowest
                .iter()
                .position(|(s, _)| summary.us > s.us)
                .unwrap_or(inner.slowest.len());
            inner.slowest.insert(at, (summary, spans));
            inner.slowest.truncate(self.slowest_cap);
        }
    }

    /// Total requests recorded over the recorder's lifetime.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.lock().seq
    }

    /// The slowest-N summaries currently held, fastest last.
    #[must_use]
    pub fn slowest(&self) -> Vec<RequestSummary> {
        self.lock().slowest.iter().map(|(s, _)| s.clone()).collect()
    }

    /// Renders the full dump as one `powerfits-flight-v1` JSON object.
    #[must_use]
    pub fn render_json(&self) -> String {
        let inner = self.lock();
        let mut w = Writer::new();
        w.begin_obj();
        w.field_str("schema", FLIGHT_SCHEMA);
        w.field_u64("total", inner.seq);
        w.key("recent");
        w.begin_arr();
        for s in &inner.recent {
            write_summary(&mut w, s);
        }
        w.end_arr();
        w.key("slowest");
        w.begin_arr();
        for (s, spans) in &inner.slowest {
            w.begin_obj();
            summary_fields(&mut w, s);
            w.key("spans");
            w.begin_arr();
            for span in spans {
                write_span(&mut w, span);
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

fn summary_fields(w: &mut Writer, s: &RequestSummary) {
    w.field_u64("seq", s.seq);
    w.field_str("trace", &s.trace);
    w.field_str("method", &s.method);
    w.field_str("endpoint", &s.endpoint);
    w.field_u64("status", u64::from(s.status));
    w.field_str("cache", &s.cache);
    w.field_u64("us", s.us);
}

fn write_summary(w: &mut Writer, s: &RequestSummary) {
    w.begin_obj();
    summary_fields(w, s);
    w.end_obj();
}

/// Recursive span-tree JSON: `{"name", "us", "count", "children": [...]}`.
fn write_span(w: &mut Writer, span: &Span) {
    w.begin_obj();
    w.field_str("name", &span.name);
    w.field_u64("us", span.nanos / 1_000);
    w.field_u64("count", span.count);
    w.key("children");
    w.begin_arr();
    for child in &span.children {
        write_span(w, child);
    }
    w.end_arr();
    w.end_obj();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn req(trace: &str, us: u64) -> RequestSummary {
        RequestSummary {
            seq: 0,
            trace: trace.to_string(),
            method: "POST".to_string(),
            endpoint: "/synthesize".to_string(),
            status: 200,
            cache: "miss".to_string(),
            us,
        }
    }

    fn spans(us: u64) -> Vec<Span> {
        vec![Span {
            name: "execute".to_string(),
            nanos: us * 1_000,
            count: 1,
            children: vec![Span {
                name: "profile".to_string(),
                nanos: us * 500,
                count: 1,
                children: Vec::new(),
            }],
        }]
    }

    #[test]
    fn ring_keeps_only_the_most_recent() {
        let fr = FlightRecorder::new(3, 2);
        for i in 0..5u64 {
            fr.record(req(&format!("t{i}"), 10), Vec::new());
        }
        assert_eq!(fr.total(), 5);
        let dump = parse(&fr.render_json()).expect("valid json");
        let Some(Value::Arr(recent)) = dump.get("recent").cloned() else {
            panic!("recent array");
        };
        assert_eq!(recent.len(), 3);
        // Oldest surviving entry is seq 3.
        assert_eq!(recent[0].get("seq").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn slowest_set_is_sorted_and_bounded_with_span_trees() {
        let fr = FlightRecorder::new(16, 2);
        fr.record(req("fast", 10), spans(10));
        fr.record(req("slow", 9_000), spans(9_000));
        fr.record(req("medium", 500), spans(500));
        fr.record(req("slowest", 20_000), spans(20_000));
        let slowest = fr.slowest();
        assert_eq!(slowest.len(), 2);
        assert_eq!(slowest[0].trace, "slowest");
        assert_eq!(slowest[1].trace, "slow");
        let dump = parse(&fr.render_json()).expect("valid json");
        assert_eq!(
            dump.get("schema").and_then(Value::as_str),
            Some(FLIGHT_SCHEMA)
        );
        let Some(Value::Arr(sl)) = dump.get("slowest").cloned() else {
            panic!("slowest array");
        };
        let Some(Value::Arr(tree)) = sl[0].get("spans").cloned() else {
            panic!("spans array");
        };
        let Some(Value::Arr(children)) = tree[0].get("children").cloned() else {
            panic!("children array");
        };
        assert_eq!(
            children[0].get("name").and_then(Value::as_str),
            Some("profile")
        );
    }

    #[test]
    fn ties_do_not_churn_the_slowest_set() {
        let fr = FlightRecorder::new(8, 1);
        fr.record(req("first", 100), Vec::new());
        fr.record(req("tie", 100), Vec::new());
        assert_eq!(fr.slowest()[0].trace, "first");
    }

    #[test]
    fn dump_escapes_hostile_strings() {
        let fr = FlightRecorder::new(4, 1);
        fr.record(req("a\"b\\c\n", 1), Vec::new());
        assert!(parse(&fr.render_json()).is_ok());
    }
}
