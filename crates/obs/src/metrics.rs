//! Lock-free service metrics: monotonic counters and a log-bucketed
//! latency histogram with quantile estimation.
//!
//! The span registry ([`crate::SpanRegistry`]) answers "where did the time
//! go inside one pipeline run"; this module answers the *service* questions
//! a long-lived daemon gets asked — how many requests, how many cache hits,
//! what is the p99 — with plain atomics so the hot path never takes a lock.
//! Counters saturate instead of wrapping, matching the crate's "degrade the
//! report, never the process" rule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A saturating monotonic counter, safe to bump from any thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two microsecond buckets: covers 1 µs to ~584000
/// years, so no observable duration falls off the top.
pub const BUCKETS: usize = 64;

/// A fixed-size log₂-bucketed latency histogram.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` microseconds
/// (bucket 0 additionally absorbs sub-microsecond observations), so
/// recording is a single atomic increment and quantiles are read by
/// scanning 64 cells. Quantile estimates are upper bucket bounds —
/// pessimistic by at most 2x, which is the right bias for a latency SLO.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: Counter,
    sum_us: Counter,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: Counter::new(),
            sum_us: Counter::new(),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        us.max(1).ilog2() as usize
    }

    /// Records one observation.
    pub fn record(&self, wall: Duration) {
        let us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.inc();
        self.sum_us.add(us);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Mean latency in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        let n = self.count.get();
        if n == 0 {
            0.0
        } else {
            self.sum_us.get() as f64 / n as f64
        }
    }

    /// Largest observed latency in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Sum of all observed latencies in microseconds (saturating).
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us.get()
    }

    /// Inclusive upper bound of bucket `index` in microseconds
    /// (`u64::MAX` for the final catch-all bucket). This is the `le`
    /// bound a Prometheus-style exposition reports for the bucket.
    #[must_use]
    pub const fn bucket_upper_us(index: usize) -> u64 {
        if index + 1 >= BUCKETS {
            u64::MAX
        } else {
            (1u64 << (index + 1)) - 1
        }
    }

    /// A point-in-time copy of the per-bucket counts, index-aligned with
    /// [`LatencyHistogram::bucket_upper_us`]. Cumulating these in order
    /// yields Prometheus `le` bucket values.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// The latency (µs) below which a fraction `q` of observations fall —
    /// reported as the upper bound of the containing bucket, clamped to the
    /// observed maximum. Returns 0 for an empty histogram; `q` is clamped
    /// to `[0, 1]`.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * total) observations must be covered, at least one.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let need = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= need {
                let upper = if i + 1 >= BUCKETS {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max_us());
            }
        }
        self.max_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let c = Counter::new();
        c.inc();
        c.add(u64::MAX - 1);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bound_the_observations() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        // 90 fast observations (~100 us), 10 slow (~50 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        assert!((100..=255).contains(&p50), "p50 {p50} brackets 100 us");
        assert!(p99 >= 50_000, "p99 {p99} must reach the slow tail");
        assert_eq!(h.max_us(), 50_000);
        assert!(p99 <= h.max_us(), "quantiles clamp to the observed max");
        assert!(h.mean_us() > 100.0 && h.mean_us() < 50_000.0);
    }

    #[test]
    fn bucket_snapshot_aligns_with_upper_bounds() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3)); // bucket 1: [2, 4)
        h.record(Duration::from_micros(1000)); // bucket 9: [512, 1024)
        let counts = h.bucket_counts();
        assert_eq!(counts[1], 1);
        assert_eq!(counts[9], 1);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(LatencyHistogram::bucket_upper_us(1), 3);
        assert_eq!(LatencyHistogram::bucket_upper_us(9), 1023);
        assert_eq!(LatencyHistogram::bucket_upper_us(BUCKETS - 1), u64::MAX);
        assert_eq!(h.sum_us(), 1003);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(Duration::from_micros(i));
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
    }
}
