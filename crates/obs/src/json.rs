//! A dependency-free JSON scanner, escaper and JSONL trace-schema
//! validator.
//!
//! The workspace is offline-buildable with zero external crates, so the
//! `fitstrace --json` export is hand-written — and hand-written emitters
//! rot silently. This module closes the loop: a small recursive-descent
//! parser ([`parse`]) plus a schema check ([`validate_trace_jsonl`]) that
//! the CLI runs over its *own* output before reporting success, and that
//! CI runs in the `fitstrace --smoke` step.
//!
//! ## Trace JSONL schema
//!
//! One JSON object per line; every object carries a string `"type"`:
//!
//! * `"meta"` — first line; `kernel`, `scale` (string), `icache` (string),
//!   `scenario` (string — the machine-description id the run simulated on);
//! * `"span"` — `path` (string), `ms` (number ≥ 0), `count` (number ≥ 1);
//! * `"block"` — `addr` (string, hex), `label` (string), `func` (string),
//!   and `arm` / `fits` objects each with numeric `retired`, `fetches`,
//!   `switching_j`, `internal_j`, `leakage_j`;
//! * `"summary"` — `isa` (string), numeric `cycles`, `retired`,
//!   `switching_j`, `internal_j`, `leakage_j`.

use std::fmt;

/// A parsed JSON value. Objects preserve key order (the emitter's order is
/// part of what the validator sees).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants or missing key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.to_string(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", byte as char))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return self.err("expected 4 hex digits"),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return self.err("lone high surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.err("lone high surrogate");
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // a char boundary is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                        offset: self.pos,
                        message: "invalid utf-8".to_string(),
                    })?;
                    let ch = match s.chars().next() {
                        Some(c) => c,
                        None => return self.err("unterminated string"),
                    };
                    if (ch as u32) < 0x20 {
                        return self.err("unescaped control character");
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            offset: start,
            message: "invalid utf-8 in number".to_string(),
        })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(JsonError {
                offset: start,
                message: format!("invalid number '{text}'"),
            }),
        }
    }
}

/// Parses one complete JSON value, rejecting trailing garbage.
///
/// # Errors
///
/// A [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after value");
    }
    Ok(value)
}

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------- writer

/// What the writer is currently inside of, and whether a separator is due.
#[derive(Clone, Copy, Debug)]
enum Frame {
    Obj { first: bool },
    Arr { first: bool },
}

/// A streaming JSON builder that makes escaping and nesting bugs
/// impossible by construction.
///
/// Every string value and key goes through [`escape`]; commas and braces
/// are managed by a frame stack, so an emitter built on this writer can
/// produce malformed output only by asking for an ill-formed *shape*
/// (e.g. a key at array level) — and those misuses are repaired rather
/// than panicking: a stray key is dropped, unclosed frames are closed by
/// [`Writer::finish`]. Hand-`format!`ed JSON throughout the workspace is
/// being replaced with this builder; the `fitsd` metrics snapshot and the
/// access-log event lines are built with it.
///
/// ```
/// use fits_obs::json::{parse, Writer};
/// let mut w = Writer::new();
/// w.begin_obj();
/// w.field_str("name", "needs \"escaping\"\n");
/// w.key("items");
/// w.begin_arr();
/// w.u64(1);
/// w.u64(2);
/// w.end_arr();
/// w.end_obj();
/// let text = w.finish();
/// assert!(parse(&text).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: String,
    stack: Vec<Frame>,
    /// A `key()` was written and awaits its value.
    pending_key: bool,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Emits the separator due before a new value in the current frame.
    fn separate(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return; // `key()` already wrote `"key":` — the value follows.
        }
        match self.stack.last_mut() {
            Some(Frame::Obj { first } | Frame::Arr { first }) => {
                if *first {
                    *first = false;
                } else {
                    self.buf.push(',');
                }
            }
            None => {}
        }
    }

    /// Writes an object key. Must be followed by exactly one value call;
    /// outside an object the key is dropped (the value still lands).
    pub fn key(&mut self, name: &str) {
        if !matches!(self.stack.last(), Some(Frame::Obj { .. })) || self.pending_key {
            return; // shape misuse: drop the key, keep the document valid
        }
        self.separate();
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\": ");
        self.pending_key = true;
    }

    /// Opens an object (as the current value).
    pub fn begin_obj(&mut self) {
        self.separate();
        self.buf.push('{');
        self.stack.push(Frame::Obj { first: true });
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) {
        if matches!(self.stack.last(), Some(Frame::Obj { .. })) {
            self.stack.pop();
            self.buf.push('}');
        }
    }

    /// Opens an array (as the current value).
    pub fn begin_arr(&mut self) {
        self.separate();
        self.buf.push('[');
        self.stack.push(Frame::Arr { first: true });
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) {
        if matches!(self.stack.last(), Some(Frame::Arr { .. })) {
            self.stack.pop();
            self.buf.push(']');
        }
    }

    /// Writes a string value (escaped).
    pub fn str(&mut self, v: &str) {
        self.separate();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.separate();
        self.buf.push_str(&v.to_string());
    }

    /// Writes a float value. Non-finite inputs (which JSON cannot
    /// represent) degrade to `0` — the report degrades, never the
    /// document.
    pub fn f64(&mut self, v: f64) {
        self.separate();
        if v.is_finite() {
            self.buf.push_str(&v.to_string());
        } else {
            self.buf.push('0');
        }
    }

    /// Writes a float value with fixed decimal precision.
    pub fn f64_prec(&mut self, v: f64, decimals: usize) {
        self.separate();
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.decimals$}"));
        } else {
            self.buf.push('0');
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.separate();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Embeds a pre-rendered JSON fragment verbatim (for composing with
    /// emitters that already validate their own output).
    pub fn raw(&mut self, json: &str) {
        self.separate();
        self.buf.push_str(json);
    }

    /// `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str(v);
    }

    /// `key` + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// `key` + float value (shortest representation).
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    /// `key` + float value with fixed precision.
    pub fn field_f64_prec(&mut self, k: &str, v: f64, decimals: usize) {
        self.key(k);
        self.f64_prec(v, decimals);
    }

    /// `key` + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool(v);
    }

    /// `key` + raw pre-rendered fragment.
    pub fn field_raw(&mut self, k: &str, json: &str) {
        self.key(k);
        self.raw(json);
    }

    /// Finishes the document, closing any frames left open, and returns
    /// the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        if self.pending_key {
            // A key with no value would be malformed; null it out.
            self.buf.push_str("null");
            self.pending_key = false;
        }
        while let Some(frame) = self.stack.pop() {
            self.buf.push(match frame {
                Frame::Obj { .. } => '}',
                Frame::Arr { .. } => ']',
            });
        }
        self.buf
    }
}

/// Line counts of a validated trace export, by event type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// `"meta"` lines (exactly 1).
    pub meta: usize,
    /// `"span"` lines.
    pub spans: usize,
    /// `"block"` lines.
    pub blocks: usize,
    /// `"summary"` lines (one per ISA).
    pub summaries: usize,
}

fn str_field(ctx: &str, v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Str(_)) => Ok(()),
        _ => Err(format!("{ctx}: missing string field \"{key}\"")),
    }
}

fn num_field(ctx: &str, v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Num(n)) if *n >= 0.0 => Ok(()),
        _ => Err(format!(
            "{ctx}: missing non-negative number field \"{key}\""
        )),
    }
}

fn require_str(line: usize, v: &Value, key: &str) -> Result<(), String> {
    str_field(&format!("line {line}"), v, key)
}

fn require_num(line: usize, v: &Value, key: &str) -> Result<(), String> {
    num_field(&format!("line {line}"), v, key)
}

fn require_costs(line: usize, v: &Value, key: &str) -> Result<(), String> {
    let side = v
        .get(key)
        .ok_or_else(|| format!("line {line}: missing object field \"{key}\""))?;
    if !matches!(side, Value::Obj(_)) {
        return Err(format!("line {line}: field \"{key}\" is not an object"));
    }
    for field in [
        "retired",
        "fetches",
        "switching_j",
        "internal_j",
        "leakage_j",
    ] {
        require_num(line, side, field)?;
    }
    Ok(())
}

/// Validates a `fitstrace --json` export against the trace JSONL schema.
///
/// # Errors
///
/// A description of the first offending line: a parse failure, an unknown
/// event type, a missing/ill-typed field, a `meta` line that is not first
/// or not unique, or a stream without a `summary`.
pub fn validate_trace_jsonl(text: &str) -> Result<TraceCounts, String> {
    let mut counts = TraceCounts::default();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {line}: missing string field \"type\""))?;
        match kind {
            "meta" => {
                if counts.meta > 0 || counts.spans + counts.blocks + counts.summaries > 0 {
                    return Err(format!(
                        "line {line}: \"meta\" must be the single first line"
                    ));
                }
                counts.meta += 1;
                for key in ["kernel", "scale", "icache", "scenario"] {
                    require_str(line, &v, key)?;
                }
            }
            "span" => {
                counts.spans += 1;
                require_str(line, &v, "path")?;
                require_num(line, &v, "ms")?;
                require_num(line, &v, "count")?;
            }
            "block" => {
                counts.blocks += 1;
                for key in ["addr", "label", "func"] {
                    require_str(line, &v, key)?;
                }
                require_costs(line, &v, "arm")?;
                require_costs(line, &v, "fits")?;
            }
            "summary" => {
                counts.summaries += 1;
                require_str(line, &v, "isa")?;
                for key in [
                    "cycles",
                    "retired",
                    "switching_j",
                    "internal_j",
                    "leakage_j",
                ] {
                    require_num(line, &v, key)?;
                }
            }
            other => return Err(format!("line {line}: unknown event type \"{other}\"")),
        }
    }
    if counts.meta != 1 {
        return Err("stream must start with exactly one \"meta\" line".to_string());
    }
    if counts.summaries == 0 {
        return Err("stream has no \"summary\" line".to_string());
    }
    Ok(counts)
}

/// Shape summary of a validated `SWEEP.json` document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepCounts {
    /// Kernels listed in the archive.
    pub kernels: usize,
    /// I-cache sizes on the grid axis.
    pub icache_sizes: usize,
    /// Tech nodes on the grid axis.
    pub tech_nodes: usize,
    /// Scenario records (must equal the grid product).
    pub scenarios: usize,
}

fn require_nonempty_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    match v.get(key) {
        Some(Value::Arr(items)) if !items.is_empty() => Ok(items),
        _ => Err(format!("missing non-empty array field \"{key}\"")),
    }
}

fn sweep_isa_ok(scenario: usize, v: &Value, key: &str) -> Result<(), String> {
    let side = v
        .get(key)
        .ok_or_else(|| format!("scenario {scenario}: missing object field \"{key}\""))?;
    if !matches!(side, Value::Obj(_)) {
        return Err(format!(
            "scenario {scenario}: field \"{key}\" is not an object"
        ));
    }
    for field in [
        "cycles",
        "icache_j",
        "icache_switching_j",
        "icache_internal_j",
        "icache_leakage_j",
        "chip_j",
        "peak_w",
    ] {
        num_field(&format!("scenario {scenario} \"{key}\""), side, field)?;
    }
    Ok(())
}

/// Validates a `fitssweep` archive against the `powerfits-sweep-v1`
/// schema: provenance meta, non-empty kernel list and grid axes, and one
/// well-formed scenario record per grid point (unique ids, per-ISA
/// aggregates, savings) — the grid product must match the scenario count.
///
/// # Errors
///
/// A description of the first violation (parse failure, missing or
/// ill-typed field, duplicate or miscounted scenarios).
pub fn validate_sweep_json(text: &str) -> Result<SweepCounts, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("powerfits-sweep-v1") => {}
        other => {
            return Err(format!(
                "schema must be \"powerfits-sweep-v1\", got {other:?}"
            ))
        }
    }
    let meta = doc
        .get("meta")
        .ok_or_else(|| "missing object field \"meta\"".to_string())?;
    for key in ["commit", "host", "os", "arch"] {
        str_field("meta", meta, key)?;
    }
    num_field("meta", meta, "timestamp_unix")?;
    num_field("document", &doc, "scale_n")?;
    num_field("document", &doc, "executions_per_kernel")?;

    let kernels = require_nonempty_arr(&doc, "kernels")?;
    if kernels.iter().any(|k| k.as_str().is_none()) {
        return Err("\"kernels\" must contain only strings".to_string());
    }
    let grid = doc
        .get("grid")
        .ok_or_else(|| "missing object field \"grid\"".to_string())?;
    let sizes = require_nonempty_arr(grid, "icache_bytes").map_err(|e| format!("grid: {e}"))?;
    if sizes.iter().any(|s| s.as_f64().is_none_or(|n| n <= 0.0)) {
        return Err("grid \"icache_bytes\" must contain positive numbers".to_string());
    }
    let tech = require_nonempty_arr(grid, "tech").map_err(|e| format!("grid: {e}"))?;
    if tech.iter().any(|t| t.as_str().is_none()) {
        return Err("grid \"tech\" must contain only strings".to_string());
    }

    let scenarios = require_nonempty_arr(&doc, "scenarios")?;
    if scenarios.len() != sizes.len() * tech.len() {
        return Err(format!(
            "scenario count {} must equal the grid product {} x {}",
            scenarios.len(),
            sizes.len(),
            tech.len()
        ));
    }
    let mut ids = Vec::with_capacity(scenarios.len());
    for (i, s) in scenarios.iter().enumerate() {
        let n = i + 1;
        let id = s
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("scenario {n}: missing string field \"id\""))?;
        if ids.contains(&id) {
            return Err(format!("scenario {n}: duplicate id \"{id}\""));
        }
        ids.push(id);
        num_field(&format!("scenario {n}"), s, "icache_bytes")?;
        str_field(&format!("scenario {n}"), s, "tech")?;
        sweep_isa_ok(n, s, "arm")?;
        sweep_isa_ok(n, s, "fits")?;
        for key in ["icache_saving", "chip_saving"] {
            // Savings may legitimately be negative (a configuration can
            // lose); only presence and type are schema concerns.
            match s.get(key) {
                Some(Value::Num(_)) => {}
                _ => return Err(format!("scenario {n}: missing number field \"{key}\"")),
            }
        }
    }
    Ok(SweepCounts {
        kernels: kernels.len(),
        icache_sizes: sizes.len(),
        tech_nodes: tech.len(),
        scenarios: scenarios.len(),
    })
}

/// Shape summary of a validated `powerfits-cache-bounds-v1` document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheBoundsCounts {
    /// Kernel records in the report.
    pub kernels: usize,
    /// Stream records carrying a dynamic `bounds` join (≤ 2 per kernel).
    pub traced_streams: usize,
    /// Soundness violations across all streams.
    pub violations: usize,
}

fn cache_bounds_stream(kernel: &str, side: &str, v: &Value) -> Result<(usize, usize), String> {
    let ctx = format!("kernel \"{kernel}\" {side}");
    let stream = v
        .get(side)
        .ok_or_else(|| format!("{ctx}: missing object field \"{side}\""))?;
    if !matches!(stream, Value::Obj(_)) {
        return Err(format!("{ctx}: field \"{side}\" is not an object"));
    }
    let words = stream
        .get("words")
        .ok_or_else(|| format!("{ctx}: missing object field \"words\""))?;
    for key in [
        "always_hit",
        "always_miss",
        "persistent",
        "unknown",
        "unreachable",
    ] {
        num_field(&format!("{ctx} words"), words, key)?;
    }
    num_field(&ctx, stream, "audit_findings")?;
    num_field(&ctx, stream, "blocks")?;
    let Some(bounds) = stream.get("bounds") else {
        return Ok((0, 0)); // static-only stream
    };
    if !matches!(bounds, Value::Obj(_)) {
        return Err(format!("{ctx}: field \"bounds\" is not an object"));
    }
    for key in ["accesses", "misses", "miss_min", "miss_max"] {
        num_field(&format!("{ctx} bounds"), bounds, key)?;
    }
    for key in ["energy_lo_j", "energy_hi_j"] {
        num_field(&format!("{ctx} bounds"), bounds, key)?;
    }
    let violations = match bounds.get("violations") {
        Some(Value::Arr(items)) if items.iter().all(|i| i.as_str().is_some()) => items.len(),
        _ => {
            return Err(format!(
                "{ctx}: bounds needs a \"violations\" array of strings"
            ))
        }
    };
    Ok((1, violations))
}

/// Validates a `fitslint --cache` report against the
/// `powerfits-cache-bounds-v1` schema: provenance fields, one record per
/// kernel with `arm`/`fits` stream summaries (word-class counts, audit
/// finding count, block count, and — when the run was traced — the
/// dynamic `bounds` join with its violation list), plus a `sound` verdict
/// that must agree with the violation count.
///
/// # Errors
///
/// A description of the first violation (parse failure, missing or
/// ill-typed field, or a `sound` flag contradicting the violations).
pub fn validate_cache_bounds_json(text: &str) -> Result<CacheBoundsCounts, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("powerfits-cache-bounds-v1") => {}
        other => {
            return Err(format!(
                "schema must be \"powerfits-cache-bounds-v1\", got {other:?}"
            ))
        }
    }
    for key in ["preset", "scale"] {
        str_field("document", &doc, key)?;
    }
    let kernels = require_nonempty_arr(&doc, "kernels")?;
    let mut counts = CacheBoundsCounts {
        kernels: kernels.len(),
        ..CacheBoundsCounts::default()
    };
    for k in kernels {
        let name = k
            .get("kernel")
            .and_then(Value::as_str)
            .ok_or_else(|| "kernel record: missing string field \"kernel\"".to_string())?;
        for side in ["arm", "fits"] {
            let (traced, violations) = cache_bounds_stream(name, side, k)?;
            counts.traced_streams += traced;
            counts.violations += violations;
        }
    }
    match doc.get("sound") {
        Some(Value::Bool(sound)) => {
            if *sound != (counts.violations == 0) {
                return Err(format!(
                    "\"sound\": {sound} contradicts {} recorded violation(s)",
                    counts.violations
                ));
            }
        }
        _ => return Err("missing boolean field \"sound\"".to_string()),
    }
    Ok(counts)
}

/// Shape summary of a validated `PARETO.json` document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParetoCounts {
    /// Member kernels of the synthesis set.
    pub kernels: usize,
    /// Accepted candidate points.
    pub points: usize,
    /// Frontier size.
    pub frontier: usize,
    /// Rejected candidates.
    pub rejected: usize,
}

/// Validates a `fitspareto` archive against the `powerfits-pareto-v1`
/// schema: provenance meta carrying both the catalog and merged-profile
/// hashes, non-empty kernel list, accepted candidate points with
/// per-member power records (one per kernel), and a non-empty `frontier`
/// index list that is *exactly* the non-dominated set over (code bytes,
/// I-cache energy, decoder slots) — dominance is recomputed here, so a
/// frontier that drifted from its points cannot validate.
///
/// # Errors
///
/// A description of the first violation (parse failure, missing or
/// ill-typed field, empty or wrong frontier).
pub fn validate_pareto_json(text: &str) -> Result<ParetoCounts, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("powerfits-pareto-v1") => {}
        other => {
            return Err(format!(
                "schema must be \"powerfits-pareto-v1\", got {other:?}"
            ))
        }
    }
    let meta = doc
        .get("meta")
        .ok_or_else(|| "missing object field \"meta\"".to_string())?;
    for key in ["commit", "host", "os", "arch", "isa", "merged_profile"] {
        str_field("meta", meta, key)?;
    }
    num_field("meta", meta, "timestamp_unix")?;
    num_field("document", &doc, "scale_n")?;
    match doc.get("epsilon") {
        Some(Value::Num(_)) => {}
        _ => return Err("missing number field \"epsilon\"".to_string()),
    }
    num_field("document", &doc, "solo_code_bytes")?;
    num_field("document", &doc, "solo_icache_j")?;

    let kernels = require_nonempty_arr(&doc, "kernels")?;
    if kernels.iter().any(|k| k.as_str().is_none()) {
        return Err("\"kernels\" must contain only strings".to_string());
    }

    let points = require_nonempty_arr(&doc, "points")?;
    let mut ids = Vec::with_capacity(points.len());
    let mut axes = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        let n = i + 1;
        let id = p
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("point {n}: missing string field \"id\""))?;
        if ids.contains(&id) {
            return Err(format!("point {n}: duplicate id \"{id}\""));
        }
        ids.push(id);
        for key in [
            "space_budget",
            "max_dict_bits",
            "code_bytes",
            "icache_j",
            "decoder_slots",
            "config_bits",
            "iterations",
        ] {
            num_field(&format!("point {n}"), p, key)?;
        }
        let members = require_nonempty_arr(p, "members").map_err(|e| format!("point {n}: {e}"))?;
        if members.len() != kernels.len() {
            return Err(format!(
                "point {n}: {} member records for {} kernels",
                members.len(),
                kernels.len()
            ));
        }
        for (j, m) in members.iter().enumerate() {
            let ctx = format!("point {n} member {}", j + 1);
            str_field(&ctx, m, "kernel")?;
            for key in [
                "solo_code_bytes",
                "shared_code_bytes",
                "solo_icache_j",
                "shared_icache_j",
                "solo_cycles",
                "shared_cycles",
            ] {
                num_field(&ctx, m, key)?;
            }
            // The regression may legitimately be negative (a shared ISA
            // can beat a per-app one on a member): type-check only.
            match m.get("regression") {
                Some(Value::Num(_)) => {}
                _ => return Err(format!("{ctx}: missing number field \"regression\"")),
            }
        }
        let axis = |key: &str| p.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        axes.push([axis("code_bytes"), axis("icache_j"), axis("decoder_slots")]);
    }

    let frontier = require_nonempty_arr(&doc, "frontier")
        .map_err(|_| "\"frontier\" must be a non-empty array".to_string())?;
    let mut frontier_set = Vec::with_capacity(frontier.len());
    for f in frontier {
        let idx = f
            .as_f64()
            .filter(|v| v.fract() == 0.0 && *v >= 0.0 && (*v as usize) < points.len())
            .ok_or_else(|| format!("frontier entry {f:?} is not a valid point index"))?
            as usize;
        if frontier_set.contains(&idx) {
            return Err(format!("frontier index {idx} listed twice"));
        }
        frontier_set.push(idx);
    }
    // Recompute the non-dominated set and demand exact agreement.
    let dominates =
        |a: &[f64; 3], b: &[f64; 3]| (0..3).all(|k| a[k] <= b[k]) && (0..3).any(|k| a[k] < b[k]);
    for (i, b) in axes.iter().enumerate() {
        let dominated = axes.iter().any(|a| dominates(a, b));
        if dominated && frontier_set.contains(&i) {
            return Err(format!("frontier point {i} is dominated"));
        }
        if !dominated && !frontier_set.contains(&i) {
            return Err(format!("non-dominated point {i} missing from the frontier"));
        }
    }

    let rejected = match doc.get("rejected") {
        Some(Value::Arr(items)) => {
            for (i, r) in items.iter().enumerate() {
                let ctx = format!("rejected {}", i + 1);
                str_field(&ctx, r, "id")?;
                str_field(&ctx, r, "reason")?;
            }
            items.len()
        }
        _ => return Err("missing array field \"rejected\"".to_string()),
    };

    Ok(ParetoCounts {
        kernels: kernels.len(),
        points: points.len(),
        frontier: frontier_set.len(),
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".to_string())
        );
        let v = parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        match v.get("a") {
            Some(Value::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "tru", "\"\x01\""] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let quoted = format!("\"{}\"", escape(original));
        assert_eq!(parse(&quoted).unwrap(), Value::Str(original.to_string()));
    }

    fn sample_lines() -> Vec<String> {
        vec![
            r#"{"type":"meta","kernel":"crc32","scale":"test","icache":"16k","scenario":"sa1100-i16k"}"#.to_string(),
            r#"{"type":"span","path":"flow/translate","ms":1.25,"count":1}"#.to_string(),
            format!(
                r#"{{"type":"block","addr":"0x8008","label":"main+0x8","func":"main","arm":{0},"fits":{0}}}"#,
                r#"{"retired":10,"fetches":4,"switching_j":1e-9,"internal_j":2e-9,"leakage_j":3e-12}"#
            ),
            r#"{"type":"summary","isa":"arm","cycles":100,"retired":80,"switching_j":1e-9,"internal_j":2e-9,"leakage_j":3e-12}"#.to_string(),
        ]
    }

    #[test]
    fn validates_a_wellformed_stream() {
        let text = sample_lines().join("\n");
        let counts = validate_trace_jsonl(&text).unwrap();
        assert_eq!(
            counts,
            TraceCounts {
                meta: 1,
                spans: 1,
                blocks: 1,
                summaries: 1
            }
        );
    }

    #[test]
    fn rejects_schema_violations() {
        let lines = sample_lines();
        // meta not first
        let swapped = format!("{}\n{}", lines[1], lines[0]);
        assert!(validate_trace_jsonl(&swapped).is_err());
        // missing summary
        assert!(validate_trace_jsonl(&lines[0]).is_err());
        // unknown type
        let unknown = format!("{}\n{{\"type\":\"bogus\"}}", lines[0]);
        assert!(validate_trace_jsonl(&unknown).is_err());
        // block without fits costs
        let bad_block = format!(
            "{}\n{}\n{}",
            lines[0],
            r#"{"type":"block","addr":"0x8000","label":"main","func":"main","arm":{"retired":1,"fetches":1,"switching_j":0,"internal_j":0,"leakage_j":0}}"#,
            lines[3]
        );
        let err = validate_trace_jsonl(&bad_block).unwrap_err();
        assert!(err.contains("fits"), "{err}");
    }

    fn cache_bounds_doc(sound: bool, violations: &str) -> String {
        let words =
            r#"{"always_hit":10,"always_miss":2,"persistent":1,"unknown":0,"unreachable":3}"#;
        let bounds = format!(
            r#"{{"accesses":100,"misses":4,"miss_min":2,"miss_max":8,"energy_lo_j":1e-9,"energy_hi_j":2e-9,"violations":{violations}}}"#
        );
        format!(
            r#"{{"schema":"powerfits-cache-bounds-v1","preset":"sa1100","scale":"test","kernels":[{{"kernel":"crc32","arm":{{"words":{words},"audit_findings":0,"blocks":7,"bounds":{bounds}}},"fits":{{"words":{words},"audit_findings":0,"blocks":9}}}}],"sound":{sound}}}"#
        )
    }

    #[test]
    fn validates_a_cache_bounds_report() {
        let counts = validate_cache_bounds_json(&cache_bounds_doc(true, "[]")).unwrap();
        assert_eq!(
            counts,
            CacheBoundsCounts {
                kernels: 1,
                traced_streams: 1,
                violations: 0
            }
        );
    }

    #[test]
    fn rejects_cache_bounds_violations() {
        // A report claiming soundness while recording a violation lies.
        let lying = cache_bounds_doc(true, r#"["set 0: out of bounds"]"#);
        let err = validate_cache_bounds_json(&lying).unwrap_err();
        assert!(err.contains("contradicts"), "{err}");
        // The honest version of the same document validates.
        let honest = cache_bounds_doc(false, r#"["set 0: out of bounds"]"#);
        assert_eq!(validate_cache_bounds_json(&honest).unwrap().violations, 1);
        // Wrong schema string.
        let bad = cache_bounds_doc(true, "[]").replace("cache-bounds-v1", "cache-bounds-v0");
        assert!(validate_cache_bounds_json(&bad).is_err());
        // Missing word-class field.
        let chopped = cache_bounds_doc(true, "[]").replace(r#""unknown":0,"#, "");
        assert!(validate_cache_bounds_json(&chopped).is_err());
    }
}
