//! Sliding-window metrics: log-bucketed latency histograms and sampled
//! gauges that answer "what happened in the last minute" next to the
//! lifetime aggregates of [`crate::metrics`].
//!
//! A lifetime histogram converges: after an hour of traffic, a p99
//! regression in the last thirty seconds is invisible in it. The windowed
//! variants here keep sixty one-second slots in a ring; each slot is
//! stamped with the absolute second it covers and is lazily reset the
//! first time a new second lands on it, so slots that aged out of the
//! window never contaminate a snapshot and there is no background reaper.
//!
//! All entry points take time from a private monotonic epoch, with
//! `*_at(sec, ..)` variants exposed for deterministic tests (the
//! acceptance test that proves windowed p50/p99 diverge from lifetime
//! after an induced latency change drives these directly).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Width of the sliding window, in seconds (and ring slots).
pub const WINDOW_SECS: u64 = 60;

/// Number of log₂ microsecond buckets per slot: covers 1 µs to ~18 min,
/// far beyond any request the daemon's I/O timeout lets live.
const WBUCKETS: usize = 40;

const SLOTS: usize = WINDOW_SECS as usize;

/// One second of histogram state. `stamp` is the covered second plus one
/// (zero means never written), so a fresh ring at second 0 is empty.
#[derive(Clone, Copy, Debug)]
struct Slot {
    stamp: u64,
    buckets: [u32; WBUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

const EMPTY_SLOT: Slot = Slot {
    stamp: 0,
    buckets: [0; WBUCKETS],
    count: 0,
    sum_us: 0,
    max_us: 0,
};

fn bucket_of(us: u64) -> usize {
    (us.max(1).ilog2() as usize).min(WBUCKETS - 1)
}

/// Inclusive upper bound (µs) of window bucket `index`, `u64::MAX` for
/// the catch-all top bucket.
const fn upper_us(index: usize) -> u64 {
    if index + 1 >= WBUCKETS {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

/// A sliding ~60 s latency histogram made of stamped one-second slots.
///
/// Recording takes the ring lock for a few adds — the slots are tiny and
/// the lock is per-histogram (per endpoint × status class in `fitsd`), so
/// contention is bounded by a single key's request rate.
#[derive(Debug)]
pub struct WindowedHistogram {
    epoch: Instant,
    slots: Mutex<[Slot; SLOTS]>,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new()
    }
}

impl WindowedHistogram {
    /// An empty window starting now.
    #[must_use]
    pub fn new() -> WindowedHistogram {
        WindowedHistogram {
            epoch: Instant::now(),
            slots: Mutex::new([EMPTY_SLOT; SLOTS]),
        }
    }

    fn lock(&self) -> MutexGuard<'_, [Slot; SLOTS]> {
        match self.slots.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records one observation at the current time.
    pub fn record(&self, wall: Duration) {
        self.record_at(self.now_sec(), wall);
    }

    /// Records one observation as if it happened during absolute second
    /// `sec` of this histogram's life. Test hook; production callers use
    /// [`WindowedHistogram::record`].
    pub fn record_at(&self, sec: u64, wall: Duration) {
        let us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        let mut slots = self.lock();
        let slot = &mut slots[(sec % WINDOW_SECS) as usize];
        if slot.stamp != sec + 1 {
            *slot = EMPTY_SLOT;
            slot.stamp = sec + 1;
        }
        slot.buckets[bucket_of(us)] = slot.buckets[bucket_of(us)].saturating_add(1);
        slot.count = slot.count.saturating_add(1);
        slot.sum_us = slot.sum_us.saturating_add(us);
        slot.max_us = slot.max_us.max(us);
    }

    /// Merges the slots still inside the window ending now.
    #[must_use]
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_sec())
    }

    /// Merges the slots whose covered second lies in
    /// `(now_sec - WINDOW_SECS, now_sec]`. Test hook companion to
    /// [`WindowedHistogram::record_at`].
    #[must_use]
    pub fn snapshot_at(&self, now_sec: u64) -> WindowSnapshot {
        let mut snap = WindowSnapshot::default();
        let oldest = now_sec.saturating_sub(WINDOW_SECS - 1);
        let slots = self.lock();
        for slot in slots.iter() {
            if slot.stamp == 0 {
                continue;
            }
            let sec = slot.stamp - 1;
            if sec < oldest || sec > now_sec {
                continue;
            }
            for (merged, &b) in snap.buckets.iter_mut().zip(slot.buckets.iter()) {
                *merged = merged.saturating_add(u64::from(b));
            }
            snap.count = snap.count.saturating_add(slot.count);
            snap.sum_us = snap.sum_us.saturating_add(slot.sum_us);
            snap.max_us = snap.max_us.max(slot.max_us);
        }
        snap
    }
}

/// A merged view over the slots inside one window.
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of latencies inside the window, µs.
    pub sum_us: u64,
    /// Largest latency inside the window, µs.
    pub max_us: u64,
    buckets: [u64; WBUCKETS],
}

impl Default for WindowSnapshot {
    fn default() -> Self {
        WindowSnapshot {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: [0; WBUCKETS],
        }
    }
}

impl WindowSnapshot {
    /// True when nothing landed inside the window.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean request rate over the window, per second.
    #[must_use]
    pub fn rate_per_sec(&self) -> f64 {
        self.count as f64 / WINDOW_SECS as f64
    }

    /// Mean latency inside the window, µs (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Same pessimistic log-bucket quantile as the lifetime histogram:
    /// the upper bound of the covering bucket, clamped to the window max.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let need = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= need {
                return upper_us(i).min(self.max_us);
            }
        }
        self.max_us
    }
}

/// A gauge sampled on a ticker (queue depth, cache entries, …): the last
/// value always readable lock-free, plus a 60-slot window of per-second
/// min/max/mean, using the same stamped-slot invalidation as
/// [`WindowedHistogram`].
#[derive(Debug)]
pub struct GaugeSeries {
    epoch: Instant,
    last: AtomicU64,
    slots: Mutex<[GaugeSlot; SLOTS]>,
}

#[derive(Clone, Copy, Debug)]
struct GaugeSlot {
    stamp: u64,
    min: u64,
    max: u64,
    sum: u64,
    n: u64,
}

const EMPTY_GAUGE: GaugeSlot = GaugeSlot {
    stamp: 0,
    min: u64::MAX,
    max: 0,
    sum: 0,
    n: 0,
};

impl Default for GaugeSeries {
    fn default() -> Self {
        GaugeSeries::new()
    }
}

impl GaugeSeries {
    /// An empty series starting now.
    #[must_use]
    pub fn new() -> GaugeSeries {
        GaugeSeries {
            epoch: Instant::now(),
            last: AtomicU64::new(0),
            slots: Mutex::new([EMPTY_GAUGE; SLOTS]),
        }
    }

    /// Records one sample at the current time.
    pub fn sample(&self, value: u64) {
        let sec = self.epoch.elapsed().as_secs();
        self.sample_at(sec, value);
    }

    /// Records one sample during absolute second `sec`. Test hook.
    pub fn sample_at(&self, sec: u64, value: u64) {
        self.last.store(value, Ordering::Relaxed);
        let mut slots = match self.slots.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let slot = &mut slots[(sec % WINDOW_SECS) as usize];
        if slot.stamp != sec + 1 {
            *slot = EMPTY_GAUGE;
            slot.stamp = sec + 1;
        }
        slot.min = slot.min.min(value);
        slot.max = slot.max.max(value);
        slot.sum = slot.sum.saturating_add(value);
        slot.n = slot.n.saturating_add(1);
    }

    /// The most recent sample, regardless of window.
    #[must_use]
    pub fn last(&self) -> u64 {
        self.last.load(Ordering::Relaxed)
    }

    /// Min/max/mean over the window ending now.
    #[must_use]
    pub fn snapshot(&self) -> GaugeSnapshot {
        self.snapshot_at(self.epoch.elapsed().as_secs())
    }

    /// Min/max/mean over the window ending at `now_sec`. Test hook.
    #[must_use]
    pub fn snapshot_at(&self, now_sec: u64) -> GaugeSnapshot {
        let mut out = GaugeSnapshot {
            last: self.last(),
            min: u64::MAX,
            max: 0,
            mean: 0.0,
            samples: 0,
        };
        let oldest = now_sec.saturating_sub(WINDOW_SECS - 1);
        let slots = match self.slots.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut sum = 0u64;
        for slot in slots.iter() {
            if slot.stamp == 0 {
                continue;
            }
            let sec = slot.stamp - 1;
            if sec < oldest || sec > now_sec {
                continue;
            }
            out.min = out.min.min(slot.min);
            out.max = out.max.max(slot.max);
            sum = sum.saturating_add(slot.sum);
            out.samples = out.samples.saturating_add(slot.n);
        }
        if out.samples == 0 {
            out.min = 0;
        } else {
            out.mean = sum as f64 / out.samples as f64;
        }
        out
    }
}

/// Windowed view of a [`GaugeSeries`].
#[derive(Clone, Copy, Debug, Default)]
pub struct GaugeSnapshot {
    /// Most recent sample (lifetime, not windowed).
    pub last: u64,
    /// Smallest sample inside the window (0 when empty).
    pub min: u64,
    /// Largest sample inside the window.
    pub max: u64,
    /// Mean of samples inside the window.
    pub mean: f64,
    /// Number of samples inside the window.
    pub samples: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sees_only_the_last_sixty_seconds() {
        let h = WindowedHistogram::new();
        h.record_at(0, Duration::from_micros(100));
        h.record_at(30, Duration::from_micros(200));
        h.record_at(65, Duration::from_micros(400));
        // At second 65 the slot for second 0 has NOT been overwritten
        // (65 % 60 = 5), but its stamp places it outside the window.
        let snap = h.snapshot_at(65);
        assert_eq!(snap.count, 2, "second-0 sample aged out");
        assert_eq!(snap.sum_us, 600);
        // The full history is still visible from a vantage inside it.
        assert_eq!(h.snapshot_at(59).count, 2);
    }

    #[test]
    fn slot_reuse_resets_stale_state() {
        let h = WindowedHistogram::new();
        h.record_at(3, Duration::from_micros(50));
        // Second 63 maps to the same slot (63 % 60 = 3) and must not
        // inherit second 3's counts.
        h.record_at(63, Duration::from_micros(800));
        let snap = h.snapshot_at(63);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum_us, 800);
        assert_eq!(snap.max_us, 800);
    }

    #[test]
    fn windowed_quantiles_diverge_from_lifetime_after_a_latency_change() {
        use crate::metrics::LatencyHistogram;
        let lifetime = LatencyHistogram::new();
        let window = WindowedHistogram::new();
        // A long fast history…
        for sec in 0..200u64 {
            for _ in 0..10 {
                let d = Duration::from_micros(100);
                lifetime.record(d);
                window.record_at(sec, d);
            }
        }
        // …then 40 seconds of slow requests — now most of the window.
        for sec in 200..240u64 {
            for _ in 0..10 {
                let d = Duration::from_millis(20);
                lifetime.record(d);
                window.record_at(sec, d);
            }
        }
        let win = window.snapshot_at(239);
        // Lifetime p50 still reflects the fast era; the window's does not.
        assert!(lifetime.quantile_us(0.5) < 1_000);
        assert!(win.quantile_us(0.5) >= 20_000);
        assert!(win.quantile_us(0.99) >= 20_000);
        assert!(win.rate_per_sec() > 0.0);
    }

    #[test]
    fn empty_window_is_empty() {
        let h = WindowedHistogram::new();
        let snap = h.snapshot_at(1000);
        assert!(snap.is_empty());
        assert_eq!(snap.quantile_us(0.99), 0);
        assert_eq!(snap.mean_us(), 0.0);
    }

    #[test]
    fn gauge_window_tracks_min_max_mean_and_ages_out() {
        let g = GaugeSeries::new();
        g.sample_at(0, 100);
        g.sample_at(10, 4);
        g.sample_at(10, 8);
        assert_eq!(g.last(), 8);
        let snap = g.snapshot_at(10);
        assert_eq!(snap.min, 4);
        assert_eq!(snap.max, 100);
        assert_eq!(snap.samples, 3);
        // Second 0 ages out of the window ending at 65.
        let later = g.snapshot_at(65);
        assert_eq!(later.max, 8);
        assert_eq!(later.samples, 2);
        assert_eq!(later.last, 8);
        // An untouched series reads zero, not MAX.
        assert_eq!(GaugeSeries::new().snapshot_at(5).min, 0);
    }

    #[test]
    fn huge_latencies_land_in_the_top_bucket() {
        let h = WindowedHistogram::new();
        h.record_at(0, Duration::from_secs(100_000));
        let snap = h.snapshot_at(0);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.quantile_us(1.0), snap.max_us);
    }
}
