//! The observability contract, enforced differentially: enabling trace
//! collection NEVER changes simulation results.
//!
//! Two layers of evidence:
//!
//! * end-to-end, real programs: for a grid of kernels × ISAs × I-cache
//!   sizes, [`trace_timed_run`]'s `(RunOutput, SimResult)` must be
//!   bit-identical to the untraced [`Machine::run_timed`];
//! * property-style, synthetic streams: for seeded random [`StepInfo`]
//!   streams (valid or not as real programs), `TimingModel::observe` and
//!   `observe_with(.., collector)` must accumulate identical results, and
//!   the collector's totals must agree with the model's counters.

#![allow(clippy::unwrap_used)]

use fits_core::FitsFlow;
use fits_isa::{InstrClass, Reg, TEXT_BASE};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::trace::CacheEvents;
use fits_obs::trace_timed_run;
use fits_rng::StdRng;
use fits_sim::{
    Ar32Set, BranchOutcome, Machine, MemAccess, Sa1100Config, SimResult, StepInfo, TimingModel,
};

fn configs() -> [Sa1100Config; 2] {
    [Sa1100Config::icache_16k(), Sa1100Config::icache_8k()]
}

#[test]
fn tracing_is_invisible_to_arm_runs() {
    for kernel in [Kernel::Crc32, Kernel::Bitcount, Kernel::AdpcmEnc] {
        let program = kernel.compile(Scale::test()).unwrap();
        for cfg in configs() {
            let (ref_out, ref_sim) = Machine::new(Ar32Set::load(&program))
                .run_timed(&cfg)
                .unwrap();
            let (out, sim, trace) =
                trace_timed_run(&mut Machine::new(Ar32Set::load(&program)), &cfg).unwrap();
            assert_eq!(out, ref_out, "{kernel:?}: RunOutput must be bit-identical");
            assert_eq!(sim, ref_sim, "{kernel:?}: SimResult must be bit-identical");
            assert_eq!(trace.retired(), sim.retired);
        }
    }
}

#[test]
fn tracing_is_invisible_to_fits_runs() {
    for kernel in [Kernel::Crc32, Kernel::Sha] {
        let program = kernel.compile(Scale::test()).unwrap();
        let flow = FitsFlow::new().run(&program).unwrap();
        for cfg in configs() {
            let load = || fits_core::FitsSet::load(&flow.fits).unwrap();
            let (ref_out, ref_sim) = Machine::new(load()).run_timed(&cfg).unwrap();
            let (out, sim, trace) = trace_timed_run(&mut Machine::new(load()), &cfg).unwrap();
            assert_eq!(out, ref_out, "{kernel:?}: RunOutput must be bit-identical");
            assert_eq!(sim, ref_sim, "{kernel:?}: SimResult must be bit-identical");
            assert_eq!(
                trace.cache.fetches.total(),
                sim.icache.accesses,
                "{kernel:?}: every I-cache access produced exactly one event"
            );
            // The FITS trace strides at 2 bytes; every retired PC must land
            // in the histogram, none in the stray bucket.
            assert_eq!(trace.retires.stray(), 0);
        }
    }
}

/// The compiled-replay path must be just as invisible as the interpreted
/// one: replaying a recorded trace with a [`CacheEvents`] observer attached
/// (`RecordedTrace::price_with`) must produce the same `SimResult` **and**
/// the same event stream as [`trace_timed_run`]'s interpreted collection.
#[test]
fn compiled_replay_events_match_interpreted_trace() {
    for kernel in [Kernel::Crc32, Kernel::Bitcount] {
        let program = kernel.compile(Scale::test()).unwrap();
        for cfg in configs() {
            let (ref_out, ref_sim, ref_trace) =
                trace_timed_run(&mut Machine::new(Ar32Set::load(&program)), &cfg).unwrap();

            let set = Ar32Set::load(&program);
            let compiled = fits_sim::CompiledProgram::compile(&set).unwrap();
            let trace = Machine::new(Ar32Set::load(&program))
                .run_recorded(&compiled)
                .unwrap();
            let mut events = CacheEvents::new(&cfg);
            let sim = trace.price_with(&compiled, &cfg, &mut events).unwrap();

            assert_eq!(trace.output, ref_out, "{kernel:?}: RunOutput diverged");
            assert_eq!(sim, ref_sim, "{kernel:?}: SimResult diverged");
            assert_eq!(
                events.fetches.iter().collect::<Vec<_>>(),
                ref_trace.cache.fetches.iter().collect::<Vec<_>>(),
                "{kernel:?}: per-word fetch events diverged"
            );
            assert_eq!(events.fetches.stray(), ref_trace.cache.fetches.stray());
            assert_eq!(
                events.icache_sets.sets(),
                ref_trace.cache.icache_sets.sets(),
                "{kernel:?}: per-set I-cache events diverged"
            );
            assert_eq!(
                events.dcache, ref_trace.cache.dcache,
                "{kernel:?}: D-cache totals diverged"
            );
        }
    }
}

/// A random but plausible retired-instruction record. Values need not form
/// a runnable program — the timing model only folds them into counters —
/// which lets the property cover states real kernels rarely reach
/// (unexecuted predicated memory ops, dense branch runs, stores to the
/// text range).
fn random_step(rng: &mut StdRng, pc: u32) -> StepInfo {
    let class = match rng.gen_range(0..10u32) {
        0..=5 => InstrClass::Operate,
        6..=7 => InstrClass::Memory,
        8 => InstrClass::Branch,
        _ => InstrClass::Trap,
    };
    let executed = rng.gen_range(0..10u32) != 0;
    let mem = (class == InstrClass::Memory && executed).then(|| MemAccess {
        addr: rng.gen_range(0u32..0x1_0000) & !3,
        size: 4,
        is_load: rng.gen_range(0..2u32) == 0,
        data: rng.gen(),
    });
    let branch = (class == InstrClass::Branch && executed).then(|| BranchOutcome {
        taken: rng.gen_range(0..2u32) == 0,
        backward: rng.gen_range(0..2u32) == 0,
    });
    let reg = |r: &mut StdRng| Some(Reg::new(r.gen_range(0..13u32) as u8));
    StepInfo {
        pc,
        size: 4,
        fetch_word_addr: pc & !3,
        fetch_word_value: rng.gen(),
        class,
        reg_reads: rng.gen_range(0..3u32),
        reg_writes: rng.gen_range(0..2u32),
        executed,
        mem,
        branch,
        is_mul: class == InstrClass::Operate && rng.gen_range(0..8u32) == 0,
        dests: [reg(rng), None],
        sources: [reg(rng), reg(rng), None],
        sets_flags: rng.gen_range(0..4u32) == 0,
        reads_flags: rng.gen_range(0..4u32) == 0,
    }
}

/// Drives one random stream through an untraced and a traced model and
/// returns both results plus the collector.
fn run_property_stream(seed: u64, steps: usize) -> (SimResult, SimResult, CacheEvents) {
    let cfg = if seed.is_multiple_of(2) {
        Sa1100Config::icache_16k()
    } else {
        Sa1100Config::icache_8k()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pc = TEXT_BASE;
    let stream: Vec<StepInfo> = (0..steps)
        .map(|_| {
            let info = random_step(&mut rng, pc);
            // Mostly sequential, with occasional jumps (taken branches).
            pc = if info.branch.is_some_and(|b| b.taken) {
                TEXT_BASE + rng.gen_range(0u32..4096) * 4
            } else {
                pc.wrapping_add(4)
            };
            info
        })
        .collect();

    let mut plain = TimingModel::new(&cfg).unwrap();
    let mut traced = TimingModel::new(&cfg).unwrap();
    let mut collector = CacheEvents::new(&cfg);
    for info in &stream {
        plain.observe(info);
        traced.observe_with(info, &mut collector);
    }
    (
        plain.finish(),
        traced.finish_with(&mut collector),
        collector,
    )
}

#[test]
fn property_observed_streams_match_unobserved() {
    for seed in 0..32u64 {
        let steps = 200 + (seed as usize) * 37 % 800;
        let (plain, traced, collector) = run_property_stream(seed, steps);
        assert_eq!(
            plain, traced,
            "seed {seed}: observer must not perturb the timing model"
        );
        assert_eq!(
            collector.fetches.total() + collector.fetches.stray(),
            traced.icache.accesses,
            "seed {seed}: one event per I-cache access"
        );
        assert_eq!(
            collector
                .icache_sets
                .sets()
                .iter()
                .map(|s| s.misses)
                .sum::<u64>(),
            traced.icache.misses,
            "seed {seed}: per-set misses sum to the model's total"
        );
        assert_eq!(
            collector.dcache.reads + collector.dcache.writes,
            traced.dcache.accesses,
            "seed {seed}: one event per D-cache access"
        );
        assert_eq!(collector.dcache.misses, traced.dcache.misses, "seed {seed}");
    }
}
