//! Micro-benchmarks of the reproduction's own components: simulator
//! throughput, cache model, encoder/decoder, profiler, synthesis and
//! translation. These benchmark the *tooling* (so regressions in the
//! infrastructure are visible), not the paper's results — those come from
//! `paper_figures` and the `powerfits-repro` binary.
//!
//! Uses a small self-contained timing harness (median of repeated timed
//! batches) so the workspace has no external benchmarking dependency.

#![allow(clippy::unwrap_used)]

use std::hint::black_box;
use std::time::Instant;

use fits_core::{profile, synthesize, translate, FitsSet, SynthOptions};
use fits_isa::Instr;
use fits_kernels::kernels::{Kernel, Scale};
use fits_sim::{Ar32Set, Cache as SimCache, CacheConfig, Machine, Sa1100Config};

/// Times `f` over `samples` batches of `iters` calls and prints the median
/// per-call latency, plus throughput when `elements` per call is known.
fn bench(group: &str, name: &str, elements: Option<u64>, mut f: impl FnMut()) {
    const SAMPLES: usize = 9;
    const MIN_ITERS: u32 = 3;
    // Calibrate the batch size to ~20ms so fast ops get enough iterations.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.02 / once) as u32).clamp(MIN_ITERS, 10_000);

    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() / f64::from(iters)
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[SAMPLES / 2];
    let rate = elements.map_or(String::new(), |n| {
        format!("  ({:.1} Melem/s)", n as f64 / median / 1e6)
    });
    println!("{group}/{name:<22} {:>10.3} us/iter{rate}", median * 1e6);
}

fn bench_simulator() {
    let program = Kernel::Crc32.compile(Scale { n: 64 }).unwrap();
    let steps = Machine::new(Ar32Set::load(&program)).run().unwrap().steps;

    bench("simulator", "functional_ar32", Some(steps), || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(m.run().unwrap());
    });
    bench("simulator", "timed_ar32", Some(steps), || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(m.run_timed(&Sa1100Config::icache_16k()).unwrap());
    });
    // Execute-once/replay-many: one functional execution feeding four timing
    // models — compare against 4x the timed_ar32 line to see the win.
    let multi_cfgs = [16 * 1024, 8 * 1024, 4 * 1024, 2 * 1024].map(|bytes| {
        Sa1100Config::icache_16k()
            .with_icache_bytes(bytes)
            .expect("sweep sizes divide the geometry")
    });
    bench("simulator", "timed_multi_ar32_x4", Some(steps), || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(m.run_timed_multi(&multi_cfgs).unwrap());
    });
    let flow = fits_core::FitsFlow::new().run(&program).unwrap();
    bench("simulator", "timed_fits", Some(steps), || {
        let mut m = Machine::new(FitsSet::load(&flow.fits).unwrap());
        black_box(m.run_timed(&Sa1100Config::icache_16k()).unwrap());
    });
}

fn bench_cache() {
    bench("cache", "access_10k", Some(10_000), || {
        let mut cache = SimCache::new(CacheConfig::sa1100_icache());
        let mut x: u32 = 1;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            cache.access((x >> 8) % (64 * 1024), false, x, i);
        }
        black_box(&cache);
    });
}

fn bench_isa() {
    let program = Kernel::Sha.compile(Scale { n: 64 }).unwrap();
    let words: Vec<u32> = program.text.iter().map(Instr::encode).collect();
    let n = program.text.len() as u64;
    bench("isa", "encode", Some(n), || {
        black_box(
            program
                .text
                .iter()
                .map(Instr::encode)
                .fold(0u32, |a, w| a ^ w),
        );
    });
    bench("isa", "decode", Some(n), || {
        black_box(
            words
                .iter()
                .map(|w| Instr::decode(*w).unwrap())
                .filter(Instr::sets_flags)
                .count(),
        );
    });
}

fn bench_synthesis() {
    let program = Kernel::Sha.compile(Scale { n: 64 }).unwrap();
    let prof = profile(&program).unwrap();
    bench("synthesis", "profile", None, || {
        black_box(profile(&program).unwrap());
    });
    bench("synthesis", "synthesize", None, || {
        black_box(synthesize(&prof, &SynthOptions::default()));
    });
    let synthesis = synthesize(&prof, &SynthOptions::default());
    bench("synthesis", "translate", None, || {
        black_box(translate(&program, &synthesis.config).unwrap());
    });
}

fn bench_kernels_compile() {
    bench("compiler", "compile_sha", None, || {
        black_box(Kernel::Sha.compile(Scale { n: 64 }).unwrap());
    });
    bench("compiler", "compile_susan_corners", None, || {
        black_box(Kernel::SusanCorners.compile(Scale { n: 64 }).unwrap());
    });
}

fn main() {
    bench_simulator();
    bench_cache();
    bench_isa();
    bench_synthesis();
    bench_kernels_compile();
}
