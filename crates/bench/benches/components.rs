//! Criterion micro-benchmarks of the reproduction's own components:
//! simulator throughput, cache model, encoder/decoder, profiler, synthesis
//! and translation. These benchmark the *tooling* (so regressions in the
//! infrastructure are visible), not the paper's results — those come from
//! `paper_figures` and the `powerfits-repro` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fits_core::{profile, synthesize, translate, FitsSet, SynthOptions};
use fits_isa::Instr;
use fits_kernels::kernels::{Kernel, Scale};
use fits_sim::{Ar32Set, Cache as SimCache, CacheConfig, Machine, Sa1100Config};

fn bench_simulator(c: &mut Criterion) {
    let program = Kernel::Crc32.compile(Scale { n: 64 }).unwrap();
    let steps = Machine::new(Ar32Set::load(&program)).run().unwrap().steps;

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("functional_ar32", |b| {
        b.iter_batched(
            || Machine::new(Ar32Set::load(&program)),
            |mut m| m.run().unwrap(),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("timed_ar32", |b| {
        b.iter_batched(
            || Machine::new(Ar32Set::load(&program)),
            |mut m| m.run_timed(&Sa1100Config::icache_16k()).unwrap(),
            BatchSize::SmallInput,
        );
    });
    let flow = fits_core::FitsFlow::new().run(&program).unwrap();
    g.bench_function("timed_fits", |b| {
        b.iter_batched(
            || Machine::new(FitsSet::load(&flow.fits).unwrap()),
            |mut m| m.run_timed(&Sa1100Config::icache_16k()).unwrap(),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("access_10k", |b| {
        b.iter_batched(
            || SimCache::new(CacheConfig::sa1100_icache()),
            |mut cache| {
                let mut x: u32 = 1;
                for i in 0..10_000u64 {
                    x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    cache.access((x >> 8) % (64 * 1024), false, x, i);
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_isa(c: &mut Criterion) {
    let program = Kernel::Sha.compile(Scale { n: 64 }).unwrap();
    let words: Vec<u32> = program.text.iter().map(Instr::encode).collect();
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(program.text.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            program
                .text
                .iter()
                .map(Instr::encode)
                .fold(0u32, |a, w| a ^ w)
        });
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            words
                .iter()
                .map(|w| Instr::decode(*w).unwrap())
                .filter(|i| i.sets_flags())
                .count()
        });
    });
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let program = Kernel::Sha.compile(Scale { n: 64 }).unwrap();
    let prof = profile(&program).unwrap();
    let mut g = c.benchmark_group("synthesis");
    g.bench_function("profile", |b| {
        b.iter(|| profile(&program).unwrap());
    });
    g.bench_function("synthesize", |b| {
        b.iter(|| synthesize(&prof, &SynthOptions::default()));
    });
    let synthesis = synthesize(&prof, &SynthOptions::default());
    g.bench_function("translate", |b| {
        b.iter(|| translate(&program, &synthesis.config).unwrap());
    });
    g.finish();
}

fn bench_kernels_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.bench_function("compile_sha", |b| {
        b.iter(|| Kernel::Sha.compile(Scale { n: 64 }).unwrap());
    });
    g.bench_function("compile_susan_corners", |b| {
        b.iter(|| Kernel::SusanCorners.compile(Scale { n: 64 }).unwrap());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator, bench_cache, bench_isa, bench_synthesis, bench_kernels_compile
}
criterion_main!(benches);
