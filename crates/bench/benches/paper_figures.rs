//! Regenerates every paper figure at reduced scale (fast enough for CI).
//! Run with `cargo bench -p fits-bench --bench paper_figures`; the full
//! reproduction is `cargo run -p fits-bench --bin powerfits-repro --release`.

use fits_bench::{figures, run_suite};
use fits_kernels::kernels::{Kernel, Scale};

fn main() {
    let scale = Scale { n: 256 };
    let suite = run_suite(Kernel::ALL, scale).expect("suite runs");
    println!("PowerFITS paper figures (reduced scale n={})", scale.n);
    for table in figures::all_figures(&suite) {
        println!("{table}");
    }
}
