//! Ablations of the synthesis design choices DESIGN.md calls out:
//!
//! * A1 — immediate-dictionary capacity (max index width 0–8 bits);
//! * A2 — toggle-aware opcode assignment on/off (measured fetch toggles);
//! * A3 — register-window width (4-bit vs 3-bit register fields);
//! * A4 — opcode-space budget (what a shared decode table costs).
//!
//! Run with `cargo bench -p fits-bench --bench ablations`.

use fits_bench::Artifacts;
use fits_core::{synthesize, translate, FitsSet, SynthOptions, TranslateError};
use fits_kernels::kernels::{Kernel, Scale};
use fits_sim::{Machine, Sa1100Config};

const KERNELS: &[Kernel] = &[
    Kernel::Crc32,
    Kernel::Sha,
    Kernel::SusanEdges,
    Kernel::AdpcmEnc,
    Kernel::Dijkstra,
];

fn main() {
    let scale = Scale { n: 192 };
    // One artifact cache for the whole process: each kernel is compiled and
    // profiled exactly once, no matter how many ablation points consume it.
    let artifacts = Artifacts::new();
    ablation_dict_bits(&artifacts, scale);
    ablation_toggle_aware(&artifacts, scale);
    ablation_register_window(&artifacts, scale);
    ablation_space_budget(&artifacts, scale);
}

/// A1: dictionary capacity vs mapping rate — the §3.3 immediate-synthesis
/// knob. Tiny dictionaries force 1-to-n constant construction.
fn ablation_dict_bits(artifacts: &Artifacts, scale: Scale) {
    println!("[A1] immediate-dictionary index width vs mapping rate");
    println!(
        "  {:<14} {:>6} {:>10} {:>10} {:>10}",
        "kernel", "bits", "static%", "dynamic%", "code"
    );
    for &kernel in KERNELS {
        let program = artifacts.program(kernel, scale).expect("compiles");
        let prof = artifacts.profile(kernel, scale).expect("profiles");
        for bits in [0u8, 2, 4, 6, 8] {
            let opts = SynthOptions {
                max_dict_bits: bits,
                ..SynthOptions::default()
            };
            let synthesis = synthesize(&prof, &opts);
            let t = translate(&program, &synthesis.config).expect("translates");
            println!(
                "  {:<14} {:>6} {:>10.1} {:>10.1} {:>10.3}",
                kernel.name(),
                bits,
                100.0 * t.stats.static_one_to_one_rate(),
                100.0 * t.stats.dynamic_one_to_one_rate(&prof.exec_counts),
                t.fits.code_bytes() as f64 / program.code_bytes() as f64,
            );
        }
    }
    println!();
}

/// A2: toggle-aware opcode-value assignment — measured I-cache output
/// toggles per fetch with the optimization on and off.
fn ablation_toggle_aware(artifacts: &Artifacts, scale: Scale) {
    println!("[A2] toggle-aware opcode assignment (fetch toggles per access)");
    println!(
        "  {:<14} {:>12} {:>12} {:>8}",
        "kernel", "gray-on", "gray-off", "delta%"
    );
    for &kernel in KERNELS {
        let program = artifacts.program(kernel, scale).expect("compiles");
        let prof = artifacts.profile(kernel, scale).expect("profiles");
        let mut per_access = [0.0f64; 2];
        for (i, toggle_aware) in [true, false].into_iter().enumerate() {
            let opts = SynthOptions {
                toggle_aware,
                ..SynthOptions::default()
            };
            let synthesis = synthesize(&prof, &opts);
            let t = translate(&program, &synthesis.config).expect("translates");
            let set = FitsSet::load(&t.fits).expect("loads");
            let mut m = Machine::new(set);
            let (_, sim) = m.run_timed(&Sa1100Config::icache_16k()).expect("runs");
            per_access[i] = sim.icache.output_toggles as f64 / sim.icache.accesses.max(1) as f64;
        }
        println!(
            "  {:<14} {:>12.3} {:>12.3} {:>7.2}%",
            kernel.name(),
            per_access[0],
            per_access[1],
            100.0 * (per_access[1] - per_access[0]) / per_access[1].max(1e-9),
        );
    }
    println!();
}

/// A3: the 8-register window. Our kernel compiler targets the full ARM
/// register set, so post-hoc translation into a 3-bit window fails on the
/// registers outside it — quantifying why the paper synthesizes the
/// register organization *with* the compiler rather than after it.
fn ablation_register_window(artifacts: &Artifacts, scale: Scale) {
    println!("[A3] register-window width (4-bit vs 3-bit fields)");
    println!(
        "  {:<14} {:>10} {:>34}",
        "kernel", "regs used", "3-bit window outcome"
    );
    for &kernel in KERNELS {
        let program = artifacts.program(kernel, scale).expect("compiles");
        let prof = artifacts.profile(kernel, scale).expect("profiles");
        let opts = SynthOptions {
            reg_bits: 3,
            ..SynthOptions::default()
        };
        let synthesis = synthesize(&prof, &opts);
        let outcome = match translate(&program, &synthesis.config) {
            Ok(t) => format!(
                "translates ({:.1}% static)",
                100.0 * t.stats.static_one_to_one_rate()
            ),
            Err(TranslateError::RegisterOutsideWindow { reg, .. }) => {
                format!("fails: r{reg} outside window")
            }
            Err(e) => format!("fails: {e}"),
        };
        println!(
            "  {:<14} {:>10} {:>34}",
            kernel.name(),
            prof.distinct_regs(),
            outcome
        );
    }
    println!();
}

/// A4: shrinking the opcode-space budget (e.g. sharing the decode table
/// between resident applications) versus expansion.
fn ablation_space_budget(artifacts: &Artifacts, scale: Scale) {
    println!("[A4] opcode-space budget vs dynamic mapping rate");
    println!(
        "  {:<14} {:>8} {:>10} {:>10}",
        "kernel", "budget", "dynamic%", "opcodes"
    );
    for &kernel in KERNELS {
        let program = artifacts.program(kernel, scale).expect("compiles");
        let prof = artifacts.profile(kernel, scale).expect("profiles");
        for budget in [0.25f64, 0.5, 0.75, 1.0] {
            let opts = SynthOptions {
                space_budget: budget,
                ..SynthOptions::default()
            };
            let synthesis = synthesize(&prof, &opts);
            let t = translate(&program, &synthesis.config).expect("translates");
            println!(
                "  {:<14} {:>8.2} {:>10.1} {:>10}",
                kernel.name(),
                budget,
                100.0 * t.stats.dynamic_one_to_one_rate(&prof.exec_counts),
                synthesis.config.ops.len(),
            );
        }
    }
    println!();
}
