//! Suite-wide soundness differential for the static I-cache analysis:
//! for **every** kernel of the benchmark suite, under **every** scenario
//! preset, for **both** instruction streams, a traced simulation's per-set
//! hit/miss counters must land inside the static `[miss_min, miss_max]`
//! intervals and the `CA` audit must come back clean.
//!
//! This is the empirical half of the soundness argument: the seeded-fault
//! tests in `fits-verify` prove the audit *can* catch a cooked analysis,
//! and this test proves the honest analysis never contradicts a real run
//! anywhere in the suite. CI gates on it.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use fits_bench::{kernel_cache_bounds, ArtifactsPool};
use fits_kernels::kernels::{Kernel, Scale};
use fits_scenario::ScenarioSpec;

const PRESETS: [&str; 3] = ["sa1100", "small-embedded", "modern-node"];

#[test]
fn static_bounds_hold_for_every_kernel_and_preset() {
    // One artifact cache per synthesis configuration: presets that share
    // synth options share compiled programs and flows.
    let pool = ArtifactsPool::new();
    let mut failures = Vec::new();
    for preset in PRESETS {
        let spec = ScenarioSpec::preset(preset).unwrap();
        let arts = pool.for_synth(&spec.synth);
        // Kernels are independent given the shared artifact cache: fan the
        // per-kernel traced runs out across threads.
        let results: Vec<std::thread::JoinHandle<_>> = Kernel::ALL
            .iter()
            .map(|&kernel| {
                let arts = Arc::clone(&arts);
                let spec = spec.clone();
                std::thread::spawn(move || {
                    let bounds = kernel_cache_bounds(&arts, kernel, &spec, Scale::test(), true)?;
                    let mut problems = Vec::new();
                    for (tag, stream) in [("arm", &bounds.arm), ("fits", &bounds.fits)] {
                        for d in &stream.audit {
                            problems.push(format!(
                                "{}/{}/{tag}: audit {}: {}",
                                spec.id(),
                                kernel.name(),
                                d.code,
                                d.message
                            ));
                        }
                        for v in &stream.check.as_ref().unwrap().violations {
                            problems.push(format!("{}/{}/{tag}: {v}", spec.id(), kernel.name()));
                        }
                    }
                    Ok::<Vec<String>, fits_bench::ExperimentError>(problems)
                })
            })
            .collect();
        for handle in results {
            match handle.join().expect("analysis thread panicked") {
                Ok(problems) => failures.extend(problems),
                Err(e) => failures.push(format!("{preset}: pipeline error: {e}")),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "static cache bounds violated:\n{}",
        failures.join("\n")
    );
}

/// The static analysis alone (no trace) still audits clean everywhere —
/// the cheap half the CLI's `--static-only` mode relies on.
#[test]
fn static_only_analyses_audit_clean_suite_wide() {
    let pool = ArtifactsPool::new();
    for preset in PRESETS {
        let spec = ScenarioSpec::preset(preset).unwrap();
        let arts = pool.for_synth(&spec.synth);
        for &kernel in Kernel::ALL {
            let bounds = kernel_cache_bounds(&arts, kernel, &spec, Scale::test(), false).unwrap();
            assert!(
                bounds.is_sound(),
                "{}/{}: audit findings",
                spec.id(),
                kernel.name()
            );
            assert!(bounds.arm.check.is_none() && bounds.fits.check.is_none());
        }
    }
}
