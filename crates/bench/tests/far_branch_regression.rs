//! Regression coverage for far-branch relaxation under tight budgets.
//!
//! A tight space budget drives the synthesizer toward wide dictionary
//! coverage, which shrinks the translated text enough that some call
//! displacements no longer fit their short field. The relaxation pass
//! once validated a far `bl` against the *non-link* `b` entry's wider
//! displacement field and then packed the displacement into the `bl`
//! entry's own (narrower) field, truncating the target into a wild
//! backward jump — the program then ran to the step ceiling instead of
//! terminating. `gsm` at a 0.7 space budget is the observed trigger;
//! every candidate here must translate CFI-clean and terminate fast.

#![cfg_attr(test, allow(clippy::unwrap_used))]

use fits_bench::{synthesize_candidate, CandidateSpec};
use fits_core::{profile, MultiMember};
use fits_kernels::kernels::{Kernel, Scale};

#[test]
fn tight_budget_gsm_translates_cfi_clean() {
    let program = Kernel::Gsm.compile(Scale::test()).unwrap();
    let prof = profile(&program).unwrap();
    let members = [MultiMember {
        name: "gsm",
        program: &program,
        profile: &prof,
    }];
    for (space_budget, max_dict_bits) in [
        (0.7, 4u8),
        (0.7, 6),
        (0.7, 8),
        (0.45, 4),
        (0.45, 6),
        (0.45, 8),
    ] {
        let spec = CandidateSpec {
            space_budget,
            max_dict_bits,
        };
        let outcome = synthesize_candidate(&members, spec, 1.0)
            .unwrap_or_else(|e| panic!("b{space_budget} d{max_dict_bits}: {e}"));
        let member = &outcome.members[0];
        let report = fits_verify::analyze(&program, &outcome.synthesis, &member.translation);
        assert!(
            report.is_clean(),
            "b{space_budget} d{max_dict_bits} must be CFI-clean:\n{}",
            report.render_text()
        );
    }
}
