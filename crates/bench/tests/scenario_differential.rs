//! Differential test for the scenario refactor: the `sa1100` preset driven
//! through the scenario plane reproduces the pre-refactor hard-coded
//! SA-1100 path **bit-identically** — every kernel of the suite, both
//! ISAs, both paper I-cache sizes, simulation statistics and power alike.
//!
//! The hard-coded side below deliberately spells out what the old code
//! baked in: `Sa1100Config::icache_16k()` resized by hand, one dedicated
//! `run_timed` per configuration, `TechParams::sa1100()` pricing.

use fits_bench::{run_suite_with, Artifacts, Config};
use fits_kernels::kernels::{Kernel, Scale};
use fits_power::{cache_power, chip_power_with, DecodeKind, TechParams};
use fits_sim::{Ar32Set, Machine, Sa1100Config};

fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

#[test]
fn sa1100_scenario_is_bit_identical_to_the_hard_coded_path() {
    let arts = Artifacts::new();
    let scale = Scale::test();
    let suite = run_suite_with(&arts, Kernel::ALL, scale).expect("suite runs");
    assert_eq!(suite.kernels.len(), Kernel::ALL.len());

    let tech = TechParams::sa1100();
    for r in &suite.kernels {
        let program = arts.program(r.kernel, scale).expect("program");
        let flow = arts.flow(r.kernel, scale).expect("flow");
        for cfg in Config::ALL {
            let bytes = match cfg {
                Config::Arm16 | Config::Fits16 => 16 * 1024,
                Config::Arm8 | Config::Fits8 => 8 * 1024,
            };
            let sa = Sa1100Config::icache_16k()
                .with_icache_bytes(bytes)
                .expect("paper sizes divide the SA-1100 geometry");
            let sim = if cfg.is_fits() {
                let set = fits_core::FitsSet::load(&flow.fits).expect("decode");
                Machine::new(set).run_timed(&sa).expect("fits run").1
            } else {
                Machine::new(Ar32Set::load(&program))
                    .run_timed(&sa)
                    .expect("arm run")
                    .1
            };

            let run = r.run(cfg);
            assert_eq!(
                run.sim,
                sim,
                "{}/{cfg}: scenario-driven SimResult must be bit-identical",
                r.kernel.name()
            );

            let icache = cache_power(&sa.icache, &sim.icache, sim.cycles, &tech);
            let decode = if cfg.is_fits() {
                DecodeKind::Programmable {
                    config_bits: flow.fits.config.config_bits(),
                }
            } else {
                DecodeKind::Fixed32
            };
            let chip = chip_power_with(&sim, &sa.icache, &sa.dcache, decode, &tech);
            for (name, ours, theirs) in [
                ("switching_j", run.icache.switching_j, icache.switching_j),
                ("internal_j", run.icache.internal_j, icache.internal_j),
                ("leakage_j", run.icache.leakage_j, icache.leakage_j),
                ("peak_w", run.icache.peak_w, icache.peak_w),
                ("seconds", run.icache.seconds, icache.seconds),
                ("chip total_j", run.chip.total_j(), chip.total_j()),
            ] {
                assert!(
                    bits_eq(ours, theirs),
                    "{}/{cfg}: {name} drifted: {ours:e} vs {theirs:e}",
                    r.kernel.name()
                );
            }
        }
    }
}
