//! Prints the THUMB/ARM static-size ratio per kernel.

#![allow(clippy::unwrap_used)]

use fits_isa::thumb;
use fits_kernels::kernels::{Kernel, Scale};
fn main() {
    let mut sum = 0.0;
    for k in Kernel::ALL {
        let p = k.compile(Scale::test()).unwrap();
        let low = [
            fits_isa::Reg::R4,
            fits_isa::Reg::R5,
            fits_isa::Reg::R6,
            fits_isa::Reg::R7,
        ];
        let tp =
            fits_kernels::codegen::compile_with_regs(&k.build_module(Scale::test()), &low).unwrap();
        let t = thumb::translate(&tp);
        let r = t.code_bytes() as f64 / p.code_bytes() as f64;
        sum += r;
        println!(
            "{:18} thumb/arm {:.3}  1:1 {:.2}",
            k.name(),
            r,
            t.one_to_one_rate()
        );
    }
    println!("avg {:.3}", sum / Kernel::ALL.len() as f64);
}
