//! Prints the THUMB/ARM static-size ratio per kernel.

#![allow(clippy::unwrap_used)]

use fits_bench::Artifacts;
use fits_kernels::kernels::{Kernel, Scale};

fn main() {
    let artifacts = Artifacts::new();
    let mut sum = 0.0;
    for &k in Kernel::ALL.iter() {
        let p = artifacts.program(k, Scale::test()).unwrap();
        let t = artifacts.thumb(k, Scale::test()).unwrap();
        let r = t.code_bytes() as f64 / p.code_bytes() as f64;
        sum += r;
        println!(
            "{:18} thumb/arm {:.3}  1:1 {:.2}",
            k.name(),
            r,
            t.one_to_one_rate()
        );
    }
    println!("avg {:.3}", sum / Kernel::ALL.len() as f64);
}
