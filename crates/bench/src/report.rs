//! Plain-text tables, one per paper figure.

use std::fmt;

/// One table row: a label and numeric cells.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (benchmark name or configuration).
    pub label: String,
    /// Cell values, one per column.
    pub values: Vec<f64>,
}

/// A figure-shaped table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Paper artifact id, e.g. `"fig7"`.
    pub id: &'static str,
    /// Title (the paper's caption).
    pub title: String,
    /// Unit/format hint: `"%"`, `"ratio"`, `"ppm"`, `"ipc"`, `"mW"`.
    pub unit: &'static str,
    /// The scenario (machine description) the numbers were measured on,
    /// shown in the header when set — `None` for tables that span several
    /// scenarios (each row then carries its scenario in its label).
    pub scenario: Option<String>,
    /// Column headers (after the label column).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Arithmetic-mean row over all rows (the paper reports suite
    /// averages for every figure).
    #[must_use]
    pub fn mean(&self) -> Row {
        let n = self.rows.len().max(1) as f64;
        let cols = self.columns.len();
        let mut sums = vec![0.0; cols];
        for row in &self.rows {
            for (s, v) in sums.iter_mut().zip(&row.values) {
                *s += v;
            }
        }
        Row {
            label: "average".to_string(),
            values: sums.into_iter().map(|s| s / n).collect(),
        }
    }

    /// A column's mean value.
    #[must_use]
    pub fn column_mean(&self, col: usize) -> f64 {
        self.mean().values.get(col).copied().unwrap_or(0.0)
    }

    fn fmt_value(&self, v: f64) -> String {
        match self.unit {
            // Percentages go through the workspace-wide rounding rule
            // (half-away-from-zero at one decimal) in `fits_obs::fmt`.
            "%" => fits_obs::fmt::fmt_percent(v, 8),
            "ratio" => format!("{v:8.3}"),
            "ppm" => format!("{v:8.0}"),
            "ipc" => format!("{v:8.3}"),
            "mW" => format!("{:8.2}", v * 1e3),
            _ => format!("{v:8.3}"),
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.scenario {
            Some(s) => writeln!(f, "[{}] {} ({}) @ {s}", self.id, self.title, self.unit)?,
            None => writeln!(f, "[{}] {} ({})", self.id, self.title, self.unit)?,
        }
        write!(f, "  {:<18}", "")?;
        for c in &self.columns {
            write!(f, "{c:>9}")?;
        }
        writeln!(f)?;
        for row in self.rows.iter().chain(std::iter::once(&self.mean())) {
            write!(f, "  {:<18}", row.label)?;
            for v in &row.values {
                write!(f, " {}", self.fmt_value(*v))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table {
            id: "figX",
            title: "Sample".to_string(),
            unit: "%",
            scenario: None,
            columns: vec!["A".to_string(), "B".to_string()],
            rows: vec![
                Row {
                    label: "k1".to_string(),
                    values: vec![0.5, 0.25],
                },
                Row {
                    label: "k2".to_string(),
                    values: vec![0.7, 0.35],
                },
            ],
        }
    }

    #[test]
    fn mean_row() {
        let t = sample();
        let m = t.mean();
        assert!((m.values[0] - 0.6).abs() < 1e-12);
        assert!((m.values[1] - 0.3).abs() < 1e-12);
        assert!((t.column_mean(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn renders_all_rows_plus_average() {
        let s = sample().to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("k1"));
        assert!(s.contains("average"));
        assert!(s.contains("60.0"), "{s}");
        assert!(!s.contains('@'), "no scenario stamp unless set: {s}");
    }

    #[test]
    fn scenario_stamp_appears_in_the_header() {
        let mut t = sample();
        t.scenario = Some("sa1100-i16k".to_string());
        let header = t.to_string().lines().next().unwrap_or_default().to_string();
        assert!(
            header.contains("@ sa1100-i16k"),
            "scenario must be in the header: {header}"
        );
    }

    #[test]
    fn percent_cells_use_the_shared_rounding_rule() {
        let mut t = sample();
        t.rows = vec![Row {
            label: "tie".to_string(),
            // 12.25% is the tie case: `{:.1}` alone renders 12.2
            // (ties-to-even); the shared rule rounds half away from zero.
            values: vec![0.1225, 0.1225],
        }];
        let s = t.to_string();
        assert!(s.contains("12.3"), "half-away-from-zero expected in:\n{s}");
        assert!(!s.contains("12.2"), "{s}");
    }
}
