//! Scenario sweeps: the kernel suite over a cache-geometry × tech-node
//! grid, on the execute-once/replay-many engine.
//!
//! A sweep answers the question the paper's single machine point cannot:
//! does the FITS win survive away from the SA-1100 — at smaller caches,
//! and at nodes where leakage rivals dynamic power? The cost discipline is
//! the whole point of the engine: every kernel executes **twice** (one
//! native run, one FITS run) no matter how many grid points are measured;
//! geometries replay the retired-instruction stream, tech nodes are free
//! re-pricings of an existing replay.
//!
//! [`run_sweep_with`] produces [`SweepResults`]; [`sweep_table`] renders
//! the per-scenario summary and [`sweep_json`] serializes the schema the
//! `fitssweep` CLI archives as `SWEEP.json` (validated by
//! [`fits_obs::json::validate_sweep_json`] before it is written).

use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::json::escape;
use fits_scenario::ScenarioMatrix;

use crate::experiment::{kernels_in_parallel, run_kernel_scenarios, ExperimentError};
use crate::report::{Row, Table};
use crate::{stamp, ConfigRun};

/// Suite-level totals for one ISA under one scenario.
#[derive(Clone, Copy, Debug, Default)]
pub struct IsaAggregate {
    /// Total cycles across the suite.
    pub cycles: u64,
    /// Total I-cache switching energy (J).
    pub icache_switching_j: f64,
    /// Total I-cache internal energy (J).
    pub icache_internal_j: f64,
    /// Total I-cache leakage energy (J).
    pub icache_leakage_j: f64,
    /// Total chip task energy (J).
    pub chip_j: f64,
    /// Worst per-kernel I-cache peak power (W).
    pub peak_w: f64,
}

impl IsaAggregate {
    /// Total I-cache task energy (J).
    #[must_use]
    pub fn icache_j(&self) -> f64 {
        self.icache_switching_j + self.icache_internal_j + self.icache_leakage_j
    }

    /// The aggregate of a single run — how one kernel's [`ConfigRun`] is
    /// reported in the same shape as a suite total (the `fitsd`
    /// `/simulate` response reuses the sweep's per-ISA schema).
    #[must_use]
    pub fn from_run(run: &ConfigRun) -> IsaAggregate {
        let mut agg = IsaAggregate::default();
        agg.absorb(run);
        agg
    }

    fn absorb(&mut self, run: &ConfigRun) {
        self.cycles += run.sim.cycles;
        self.icache_switching_j += run.icache.switching_j;
        self.icache_internal_j += run.icache.internal_j;
        self.icache_leakage_j += run.icache.leakage_j;
        self.chip_j += run.chip.total_j();
        self.peak_w = self.peak_w.max(run.icache.peak_w);
    }
}

/// One grid point: both ISAs aggregated over the whole suite.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Scenario id (`{tech}-i{size}`).
    pub id: String,
    /// I-cache capacity at this point.
    pub icache_bytes: u32,
    /// Tech-node name at this point.
    pub tech_name: String,
    /// Native-ISA suite totals.
    pub arm: IsaAggregate,
    /// FITS-ISA suite totals.
    pub fits: IsaAggregate,
}

impl SweepPoint {
    /// Fractional FITS-vs-ARM I-cache energy saving at this point.
    #[must_use]
    pub fn icache_saving(&self) -> f64 {
        saving(self.fits.icache_j(), self.arm.icache_j())
    }

    /// Fractional FITS-vs-ARM chip energy saving at this point.
    #[must_use]
    pub fn chip_saving(&self) -> f64 {
        saving(self.fits.chip_j, self.arm.chip_j)
    }

    /// The ARM run's I-cache leakage share — the "is this node
    /// leakage-dominated?" indicator the modern-node scenarios exist for.
    #[must_use]
    pub fn arm_leakage_share(&self) -> f64 {
        let total = self.arm.icache_j();
        if total == 0.0 {
            0.0
        } else {
            self.arm.icache_leakage_j / total
        }
    }
}

fn saving(ours: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        1.0 - ours / base
    }
}

/// A completed sweep: the grid axes and one [`SweepPoint`] per scenario.
#[derive(Clone, Debug)]
pub struct SweepResults {
    /// The workload scale every point ran at.
    pub scale: Scale,
    /// The kernels of the suite, in run order.
    pub kernels: Vec<Kernel>,
    /// Distinct I-cache sizes of the grid, in sweep order.
    pub icache_sizes: Vec<u32>,
    /// Distinct tech-node names of the grid, in sweep order.
    pub tech_names: Vec<String>,
    /// One aggregate per scenario, in matrix order.
    pub points: Vec<SweepPoint>,
    /// Functional executions performed per kernel (always 2: one native,
    /// one FITS — recorded so the archive documents the engine's cost).
    pub executions_per_kernel: u64,
}

/// Runs the suite over every scenario of `matrix`, one worker per CPU,
/// sharing `artifacts` (so each kernel compiles, profiles and synthesizes
/// once) and aggregating per scenario.
///
/// # Errors
///
/// Fails if any kernel fails (kernels are expected to be infallible; an
/// error indicates a regression).
///
/// # Panics
///
/// Re-raises the first worker panic in kernel order, like
/// [`crate::run_suite`].
pub fn run_sweep_with(
    artifacts: &crate::Artifacts,
    kernels: &[Kernel],
    scale: Scale,
    matrix: &ScenarioMatrix,
) -> Result<SweepResults, ExperimentError> {
    let per_kernel = kernels_in_parallel(kernels, |kernel| {
        run_kernel_scenarios(artifacts, kernel, scale, matrix)
    })?;

    let mut points: Vec<SweepPoint> = matrix
        .scenarios
        .iter()
        .map(|spec| SweepPoint {
            id: spec.id().to_string(),
            icache_bytes: spec.icache.size_bytes,
            tech_name: spec.tech_name.clone(),
            arm: IsaAggregate::default(),
            fits: IsaAggregate::default(),
        })
        .collect();
    for runs in &per_kernel {
        for (point, run) in points.iter_mut().zip(runs) {
            point.arm.absorb(&run.arm);
            point.fits.absorb(&run.fits);
        }
    }

    let mut icache_sizes = Vec::new();
    let mut tech_names = Vec::new();
    for p in &points {
        if !icache_sizes.contains(&p.icache_bytes) {
            icache_sizes.push(p.icache_bytes);
        }
        if !tech_names.contains(&p.tech_name) {
            tech_names.push(p.tech_name.clone());
        }
    }

    Ok(SweepResults {
        scale,
        kernels: kernels.to_vec(),
        icache_sizes,
        tech_names,
        points,
        executions_per_kernel: 2,
    })
}

/// The per-scenario summary table: FITS-vs-ARM savings and the node's
/// leakage share, one row per grid point.
#[must_use]
pub fn sweep_table(results: &SweepResults) -> Table {
    Table {
        id: "sweep",
        title: format!(
            "FITS vs ARM across the scenario grid ({} kernels, n={})",
            results.kernels.len(),
            results.scale.n
        ),
        unit: "%",
        scenario: None,
        columns: vec![
            "i$ total".to_string(),
            "i$ sw".to_string(),
            "i$ leak".to_string(),
            "chip".to_string(),
            "leak%".to_string(),
        ],
        rows: results
            .points
            .iter()
            .map(|p| Row {
                label: p.id.clone(),
                values: vec![
                    p.icache_saving(),
                    saving(p.fits.icache_switching_j, p.arm.icache_switching_j),
                    saving(p.fits.icache_leakage_j, p.arm.icache_leakage_j),
                    p.chip_saving(),
                    p.arm_leakage_share(),
                ],
            })
            .collect(),
    }
}

/// Serializes one per-ISA aggregate as the sweep schema's `"arm"`/`"fits"`
/// object — shared with the `fitsd` response bodies so every service that
/// reports per-ISA numbers speaks one schema.
#[must_use]
pub fn isa_json(agg: &IsaAggregate) -> String {
    format!(
        "{{\"cycles\": {}, \"icache_j\": {}, \"icache_switching_j\": {}, \
         \"icache_internal_j\": {}, \"icache_leakage_j\": {}, \"chip_j\": {}, \
         \"peak_w\": {}}}",
        agg.cycles,
        stamp::json_f64(agg.icache_j()),
        stamp::json_f64(agg.icache_switching_j),
        stamp::json_f64(agg.icache_internal_j),
        stamp::json_f64(agg.icache_leakage_j),
        stamp::json_f64(agg.chip_j),
        stamp::json_f64(agg.peak_w),
    )
}

/// Serializes a sweep into the `powerfits-sweep-v1` JSON schema (see
/// [`fits_obs::json::validate_sweep_json`]).
#[must_use]
pub fn sweep_json(results: &SweepResults) -> String {
    let kernels: Vec<String> = results
        .kernels
        .iter()
        .map(|k| format!("\"{}\"", escape(k.name())))
        .collect();
    let sizes: Vec<String> = results
        .icache_sizes
        .iter()
        .map(ToString::to_string)
        .collect();
    let tech: Vec<String> = results
        .tech_names
        .iter()
        .map(|t| format!("\"{}\"", escape(t)))
        .collect();
    let scenarios: Vec<String> = results
        .points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"id\": \"{id}\",\n      \"icache_bytes\": {bytes},\n      \
                 \"tech\": \"{tech}\",\n      \"arm\": {arm},\n      \"fits\": {fits},\n      \
                 \"icache_saving\": {isave},\n      \"chip_saving\": {csave}\n    }}",
                id = escape(&p.id),
                bytes = p.icache_bytes,
                tech = escape(&p.tech_name),
                arm = isa_json(&p.arm),
                fits = isa_json(&p.fits),
                isave = stamp::json_f64(p.icache_saving()),
                csave = stamp::json_f64(p.chip_saving()),
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"powerfits-sweep-v1\",\n  \"meta\": {meta},\n  \
         \"scale_n\": {n},\n  \"executions_per_kernel\": {execs},\n  \
         \"kernels\": [{kernels}],\n  \"grid\": {{\n    \"icache_bytes\": [{sizes}],\n    \
         \"tech\": [{tech}]\n  }},\n  \"scenarios\": [\n{scenarios}\n  ]\n}}\n",
        meta = stamp::meta_json("  "),
        n = results.scale.n,
        execs = results.executions_per_kernel,
        kernels = kernels.join(", "),
        sizes = sizes.join(", "),
        tech = tech.join(", "),
        scenarios = scenarios.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_obs::json::validate_sweep_json;
    use fits_power::TechParams;
    use fits_scenario::ScenarioSpec;

    fn tiny_sweep() -> SweepResults {
        let matrix = ScenarioMatrix::grid(
            &ScenarioSpec::sa1100(),
            &[16 * 1024, 8 * 1024],
            &[
                ("sa1100".to_string(), TechParams::sa1100()),
                ("65nm".to_string(), TechParams::modern_65nm()),
            ],
        )
        .expect("valid grid");
        let kernels = [Kernel::Crc32, Kernel::Bitcount];
        run_sweep_with(&crate::Artifacts::new(), &kernels, Scale::test(), &matrix)
            .expect("sweep runs")
    }

    #[test]
    fn sweep_aggregates_and_serializes_schema_valid_json() {
        let results = tiny_sweep();
        assert_eq!(results.points.len(), 4);
        assert_eq!(results.icache_sizes, vec![16 * 1024, 8 * 1024]);
        assert_eq!(results.tech_names, vec!["sa1100", "65nm"]);
        for p in &results.points {
            assert!(p.arm.cycles > 0 && p.fits.cycles > 0);
            assert!(
                p.icache_saving() > 0.05,
                "{}: FITS must still win ({:.3})",
                p.id,
                p.icache_saving()
            );
        }
        // The modern node is leakage-dominated relative to 0.35 um.
        let old = &results.points[0];
        let new = &results.points[2];
        assert_eq!(old.id, "sa1100-i16k");
        assert_eq!(new.id, "65nm-i16k");
        assert!(new.arm_leakage_share() > 2.0 * old.arm_leakage_share());
        // Tech re-pricing shares the replayed counts.
        assert_eq!(old.arm.cycles, new.arm.cycles);

        let json = sweep_json(&results);
        let counts = validate_sweep_json(&json).expect("schema-valid");
        assert_eq!(counts.scenarios, 4);

        let table = sweep_table(&results);
        assert_eq!(table.rows.len(), 4);
        assert!(table.to_string().contains("sa1100-i16k"));
    }
}
