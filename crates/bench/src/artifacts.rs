//! Shared, thread-safe cache of per-`(kernel, scale)` experiment artifacts.
//!
//! Every sweep in the harness (the §5 repro, the ablations, the THUMB size
//! study) starts from the same expensive inputs: the compiled native
//! [`Program`], its stage-1 [`Profile`], the accepted [`FlowOutcome`] and
//! the T16 recompilation. Before this cache each sweep point recompiled and
//! re-profiled from scratch — ablation A1 alone re-derived 5 kernels × 5
//! dictionary widths from identical profiles. An [`Artifacts`] instance
//! computes each artifact once and hands out `Arc`s; create one per process
//! (or per suite run, when measurement passes must stay independent) and
//! share it freely across worker threads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use fits_core::{
    profile_with, FitsSet, FlowError, FlowObserver, FlowOutcome, FlowStage, Profile, SynthOptions,
};
use fits_isa::spec::{Ar32Tables, SpecCatalog};
use fits_isa::thumb::{self, T16Program};
use fits_isa::{Program, Reg};
use fits_kernels::kernels::{Kernel, Scale};
use fits_sim::{Ar32Set, CompiledProgram};

use crate::experiment::ExperimentError;

/// The low-register window the THUMB baseline recompiles for (r0–r3 stay
/// scratch; r4–r7 are allocatable), reproducing the §6.2 register-pressure
/// effect.
const THUMB_REGS: [Reg; 4] = [Reg::R4, Reg::R5, Reg::R6, Reg::R7];

type Key = (Kernel, u32);

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // The maps are only ever mutated under short, panic-free insertions;
    // recover the guard rather than propagating a poison error.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn get_or_compute<V>(
    map: &Mutex<HashMap<Key, Arc<V>>>,
    key: Key,
    compute: impl FnOnce() -> Result<V, ExperimentError>,
) -> Result<Arc<V>, ExperimentError> {
    if let Some(v) = locked(map).get(&key) {
        return Ok(Arc::clone(v));
    }
    // Computed outside the lock so distinct keys build in parallel; a racing
    // duplicate of the same key is deterministic and the first insert wins.
    let value = Arc::new(compute()?);
    Ok(Arc::clone(locked(map).entry(key).or_insert(value)))
}

/// A cache of compiled programs, profiles, flow outcomes and THUMB
/// translations, keyed by `(kernel, scale)`.
#[derive(Default)]
pub struct Artifacts {
    programs: Mutex<HashMap<Key, Arc<Program>>>,
    profiles: Mutex<HashMap<Key, Arc<Profile>>>,
    flows: Mutex<HashMap<Key, Arc<FlowOutcome>>>,
    thumbs: Mutex<HashMap<Key, Arc<T16Program>>>,
    /// Block-compiled replay descriptors for the native binary. Only the
    /// *static* compilation is cached — recorded traces scale with dynamic
    /// instruction count and are deliberately never retained here.
    compiled_arm: Mutex<HashMap<Key, Arc<CompiledProgram>>>,
    /// Block-compiled replay descriptors for the synthesized FITS binary.
    compiled_fits: Mutex<HashMap<Key, Arc<CompiledProgram>>>,
    /// Optional stage-timing observer installed on every flow this cache
    /// builds (and notified of cached profiling runs). `None` leaves the
    /// pre-observability code paths untouched.
    flow_observer: Option<Arc<dyn FlowObserver>>,
    /// Synthesis options every flow this cache builds runs under. Flows
    /// are keyed by `(kernel, scale)` only, so one cache serves one synth
    /// configuration — sweeps that vary synthesis options use one
    /// `Artifacts` per option set (a `ScenarioMatrix` grid shares its base
    /// scenario's options, so the suite-level sweeps need just one).
    synth: Option<SynthOptions>,
    /// ISA spec catalog every artifact this cache builds resolves against.
    /// `None` (and the shipped catalog) use the static built-in tables; a
    /// user-supplied catalog compiles its own AR32 tables once, lazily.
    isa: Option<Arc<SpecCatalog>>,
    ar32_tables: std::sync::OnceLock<Result<Arc<Ar32Tables>, fits_isa::spec::SpecError>>,
}

impl std::fmt::Debug for Artifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Artifacts")
            .field("programs", &self.programs)
            .field("profiles", &self.profiles)
            .field("flows", &self.flows)
            .field("thumbs", &self.thumbs)
            .field("compiled_arm", &self.compiled_arm)
            .field("compiled_fits", &self.compiled_fits)
            .field(
                "flow_observer",
                &self.flow_observer.as_ref().map(|_| "<dyn>"),
            )
            .field("synth", &self.synth)
            .field("isa", &self.isa.as_ref().map(|c| c.hash_hex()))
            .finish()
    }
}

impl Artifacts {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Artifacts {
        Artifacts::default()
    }

    /// An empty cache whose flows report stage timings to `observer`.
    ///
    /// Only *computations* are observed: a cache hit returns the stored
    /// artifact without re-notifying, so span counts reflect work actually
    /// performed.
    #[must_use]
    pub fn with_flow_observer(mut self, observer: Arc<dyn FlowObserver>) -> Artifacts {
        self.flow_observer = Some(observer);
        self
    }

    /// An empty cache whose flows synthesize under `options` — how a
    /// scenario's [`SynthOptions`] (`ScenarioSpec::synth`) reach the FITS
    /// flow. Call before the first `flow()` lookup: flows are cached by
    /// `(kernel, scale)` under one option set per cache.
    #[must_use]
    pub fn with_synth(mut self, options: SynthOptions) -> Artifacts {
        self.synth = Some(options);
        self
    }

    /// An empty cache whose artifacts resolve against `isa` instead of the
    /// shipped spec catalog: profiles and replay descriptors encode the
    /// native binary through the catalog's AR32 tables, and flow outcomes
    /// carry its hash. Like [`Artifacts::with_synth`], one cache serves
    /// one catalog — callers with varying catalogs use an
    /// [`ArtifactsPool`].
    #[must_use]
    pub fn with_isa(mut self, isa: Arc<SpecCatalog>) -> Artifacts {
        self.isa = Some(isa);
        self
    }

    /// The AR32 tables this cache's artifacts are built with: the static
    /// built-ins unless a non-builtin catalog was installed, in which case
    /// the catalog's tables are compiled once and shared.
    fn tables(&self) -> Result<&Ar32Tables, ExperimentError> {
        let Some(catalog) = &self.isa else {
            return Ok(Ar32Tables::builtin());
        };
        if catalog.is_builtin() {
            return Ok(Ar32Tables::builtin());
        }
        self.ar32_tables
            .get_or_init(|| Ar32Tables::from_spec(&catalog.ar32).map(Arc::new))
            .as_deref()
            .map_err(|e| ExperimentError::Flow(FlowError::Spec(e.clone())))
    }

    /// The compiled native program.
    ///
    /// # Errors
    ///
    /// Propagates kernel compilation failures (unexpected for shipped
    /// kernels).
    pub fn program(&self, kernel: Kernel, scale: Scale) -> Result<Arc<Program>, ExperimentError> {
        get_or_compute(&self.programs, (kernel, scale.n), || {
            kernel.compile(scale).map_err(ExperimentError::Compile)
        })
    }

    /// The stage-1 profile of the native program (includes the reference
    /// functional run).
    ///
    /// # Errors
    ///
    /// Propagates compilation and simulation failures.
    pub fn profile(&self, kernel: Kernel, scale: Scale) -> Result<Arc<Profile>, ExperimentError> {
        let program = self.program(kernel, scale)?;
        let tables = self.tables()?;
        get_or_compute(&self.profiles, (kernel, scale.n), || {
            let start = std::time::Instant::now();
            let prof = profile_with(&program, tables).map_err(ExperimentError::Sim)?;
            // The flow below skips stage 1 (it consumes this cached
            // profile), so the profiling execution is reported here.
            if let Some(obs) = &self.flow_observer {
                obs.stage(FlowStage::Profile, start.elapsed());
            }
            Ok(prof)
        })
    }

    /// The accepted (and statically verified) flow outcome, built from the
    /// cached profile so the profiling execution happens once per
    /// `(kernel, scale)` no matter how many sweeps consume it.
    ///
    /// # Errors
    ///
    /// Propagates compilation, profiling and flow failures.
    pub fn flow(&self, kernel: Kernel, scale: Scale) -> Result<Arc<FlowOutcome>, ExperimentError> {
        let program = self.program(kernel, scale)?;
        let prof = self.profile(kernel, scale)?;
        get_or_compute(&self.flows, (kernel, scale.n), || {
            let mut flow = fits_verify::verified_flow();
            if let Some(options) = self.synth.clone() {
                flow = flow.with_options(options);
            }
            if let Some(isa) = &self.isa {
                flow.isa = Arc::clone(isa);
            }
            if let Some(obs) = &self.flow_observer {
                flow = flow.with_observer(Arc::clone(obs));
            }
            flow.run_profiled(&program, (*prof).clone())
                .map_err(ExperimentError::Flow)
        })
    }

    /// The block-compiled replay descriptor for the native program — basic
    /// blocks, per-op step templates and pre-resolved successors, shared by
    /// every sweep that records or replays the kernel's AR32 binary.
    ///
    /// # Errors
    ///
    /// Propagates compilation and block-lifting failures.
    pub fn compiled_arm(
        &self,
        kernel: Kernel,
        scale: Scale,
    ) -> Result<Arc<CompiledProgram>, ExperimentError> {
        let program = self.program(kernel, scale)?;
        let tables = self.tables()?;
        get_or_compute(&self.compiled_arm, (kernel, scale.n), || {
            CompiledProgram::compile(&Ar32Set::load_with(&program, tables))
                .map_err(ExperimentError::Sim)
        })
    }

    /// The block-compiled replay descriptor for the synthesized FITS
    /// binary (built from the cached flow outcome).
    ///
    /// # Errors
    ///
    /// Propagates flow, decode and block-lifting failures.
    pub fn compiled_fits(
        &self,
        kernel: Kernel,
        scale: Scale,
    ) -> Result<Arc<CompiledProgram>, ExperimentError> {
        let flow = self.flow(kernel, scale)?;
        get_or_compute(&self.compiled_fits, (kernel, scale.n), || {
            let set = FitsSet::load(&flow.fits).map_err(ExperimentError::Decode)?;
            CompiledProgram::compile(&set).map_err(ExperimentError::Sim)
        })
    }

    /// The T16 (Thumb-like) translation of the 8-register recompilation —
    /// the Figure-5 code-size baseline.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures.
    pub fn thumb(&self, kernel: Kernel, scale: Scale) -> Result<Arc<T16Program>, ExperimentError> {
        get_or_compute(&self.thumbs, (kernel, scale.n), || {
            let thumb_program =
                fits_kernels::codegen::compile_with_regs(&kernel.build_module(scale), &THUMB_REGS)
                    .map_err(ExperimentError::Compile)?;
            Ok(thumb::translate(&thumb_program))
        })
    }
}

/// A canonical, order-stable text key for a synthesis option set — the
/// piece of an [`ArtifactsPool`] (and of a `fitsd` request hash) that
/// captures "same flow configuration". Two option sets with equal keys
/// produce identical flows.
#[must_use]
pub fn synth_key(options: &SynthOptions) -> String {
    format!(
        "toggle:{},reg:{},space:{:.6},dict:{}",
        u8::from(options.toggle_aware),
        options.reg_bits,
        options.space_budget,
        options.max_dict_bits,
    )
}

/// A pool of [`Artifacts`] caches, one per synthesis configuration.
///
/// One `Artifacts` is keyed by `(kernel, scale)` under a *single* synth
/// option set; a long-lived server seeing requests with varying options
/// needs one cache per distinct set. The pool interns caches by
/// [`synth_key`], so concurrent requests with equal options share every
/// compiled program, profile, flow and THUMB translation.
#[derive(Default)]
pub struct ArtifactsPool {
    slots: Mutex<HashMap<String, Arc<Artifacts>>>,
    /// Observer installed on every cache this pool creates — how a host
    /// (the `fitsd` daemon) sees engine-stage timings for pool-served
    /// work regardless of which synth configuration a request lands on.
    flow_observer: Option<Arc<dyn FlowObserver>>,
}

impl std::fmt::Debug for ArtifactsPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactsPool")
            .field("slots", &self.slots)
            .field(
                "flow_observer",
                &self.flow_observer.as_ref().map(|_| "<dyn>"),
            )
            .finish()
    }
}

impl ArtifactsPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> ArtifactsPool {
        ArtifactsPool::default()
    }

    /// An empty pool whose caches report stage timings to `observer`
    /// (see [`Artifacts::with_flow_observer`]). Install before the first
    /// [`ArtifactsPool::for_synth`] lookup — already-interned caches keep
    /// the observer they were created with.
    #[must_use]
    pub fn with_flow_observer(mut self, observer: Arc<dyn FlowObserver>) -> ArtifactsPool {
        self.flow_observer = Some(observer);
        self
    }

    /// The shared cache for `options`, created (configured with
    /// [`Artifacts::with_synth`]) on first use.
    #[must_use]
    pub fn for_synth(&self, options: &SynthOptions) -> Arc<Artifacts> {
        self.for_config(options, None)
    }

    /// The shared cache for `(options, isa)`. The slot key combines
    /// [`synth_key`] with the catalog's content hash, so requests that
    /// resolve against different machine descriptions never share
    /// artifacts even when their synthesis options agree. `None` (and the
    /// shipped catalog, which hashes identically) lands on the built-in
    /// slot.
    #[must_use]
    pub fn for_config(
        &self,
        options: &SynthOptions,
        isa: Option<&Arc<SpecCatalog>>,
    ) -> Arc<Artifacts> {
        let mut key = synth_key(options);
        if let Some(catalog) = isa {
            key.push_str("|isa=");
            key.push_str(&catalog.hash_hex());
        } else {
            key.push_str("|isa=");
            key.push_str(&SpecCatalog::default().hash_hex());
        }
        let mut slots = locked(&self.slots);
        Arc::clone(slots.entry(key).or_insert_with(|| {
            let mut arts = Artifacts::new().with_synth(options.clone());
            if let Some(catalog) = isa {
                arts = arts.with_isa(Arc::clone(catalog));
            }
            if let Some(obs) = &self.flow_observer {
                arts = arts.with_flow_observer(Arc::clone(obs));
            }
            Arc::new(arts)
        }))
    }

    /// Number of distinct synthesis configurations seen so far.
    #[must_use]
    pub fn len(&self) -> usize {
        locked(&self.slots).len()
    }

    /// Whether no configuration has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_cached_and_shared() {
        let arts = Artifacts::new();
        let a = arts.program(Kernel::Crc32, Scale::test()).unwrap();
        let b = arts.program(Kernel::Crc32, Scale::test()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let f1 = arts.flow(Kernel::Crc32, Scale::test()).unwrap();
        let f2 = arts.flow(Kernel::Crc32, Scale::test()).unwrap();
        assert!(Arc::ptr_eq(&f1, &f2));
        // The flow consumed the cached profile, not a fresh one.
        let p = arts.profile(Kernel::Crc32, Scale::test()).unwrap();
        assert_eq!(f1.profile.dyn_total, p.dyn_total);
    }

    #[test]
    fn scenario_synth_options_reach_the_flow() {
        // A scenario with a narrower dictionary must change the synthesized
        // ISA (ablation A1's effect), proving the options are not dropped
        // on the way to the flow.
        let spec = fits_scenario::ScenarioSpec::sa1100();
        let default_flow = Artifacts::new()
            .with_synth(spec.synth.clone())
            .flow(Kernel::Sha, Scale::test())
            .unwrap();
        let narrow = SynthOptions {
            max_dict_bits: 0,
            ..spec.synth
        };
        let narrow_flow = Artifacts::new()
            .with_synth(narrow)
            .flow(Kernel::Sha, Scale::test())
            .unwrap();
        assert!(
            narrow_flow.dynamic_rate() < default_flow.dynamic_rate(),
            "a zero-width dictionary must hurt the dynamic mapping rate              ({} vs {})",
            narrow_flow.dynamic_rate(),
            default_flow.dynamic_rate()
        );
    }

    #[test]
    fn pool_interns_caches_by_synth_options() {
        let pool = ArtifactsPool::new();
        let a = pool.for_synth(&SynthOptions::default());
        let b = pool.for_synth(&SynthOptions::default());
        assert!(Arc::ptr_eq(&a, &b), "equal options share one cache");
        let narrow = SynthOptions {
            max_dict_bits: 2,
            ..SynthOptions::default()
        };
        let c = pool.for_synth(&narrow);
        assert!(!Arc::ptr_eq(&a, &c), "distinct options get distinct caches");
        assert_eq!(pool.len(), 2);
        assert_ne!(
            synth_key(&SynthOptions::default()),
            synth_key(&narrow),
            "keys must separate the configurations"
        );
    }

    #[test]
    fn pool_observer_reaches_created_caches() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Default)]
        struct Count(AtomicUsize);
        impl FlowObserver for Count {
            fn stage(&self, _stage: FlowStage, _wall: std::time::Duration) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let counter = Arc::new(Count::default());
        let pool =
            ArtifactsPool::new().with_flow_observer(Arc::clone(&counter) as Arc<dyn FlowObserver>);
        let arts = pool.for_synth(&SynthOptions::default());
        arts.profile(Kernel::Crc32, Scale::test()).unwrap();
        assert_eq!(counter.0.load(Ordering::Relaxed), 1, "profile observed");
        // A cache hit must not re-notify.
        arts.profile(Kernel::Crc32, Scale::test()).unwrap();
        assert_eq!(counter.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_separates_catalogs_by_content_hash() {
        use fits_isa::spec::{IsaSpec, AR32_SPEC_TEXT};

        let pool = ArtifactsPool::new();
        let builtin_slot = pool.for_synth(&SynthOptions::default());
        // The shipped catalog hashes identically to the default slot.
        let shipped = Arc::new(SpecCatalog::default());
        let same = pool.for_config(&SynthOptions::default(), Some(&shipped));
        assert!(Arc::ptr_eq(&builtin_slot, &same));
        // A content-different (but semantically equivalent) spec gets its
        // own slot.
        let respelled = IsaSpec::load(&AR32_SPEC_TEXT.replace(
            "# --- branches and traps ---",
            "# --- branches and traps (respelled) ---",
        ))
        .unwrap();
        let custom = Arc::new(SpecCatalog {
            ar32: Arc::new(respelled),
            ..SpecCatalog::default()
        });
        let other = pool.for_config(&SynthOptions::default(), Some(&custom));
        assert!(!Arc::ptr_eq(&builtin_slot, &other));
        assert_eq!(pool.len(), 2);
        // The custom cache's flows carry the catalog's hash.
        let flow = other.flow(Kernel::Crc32, Scale::test()).unwrap();
        assert_eq!(flow.isa_hash, custom.hash_hex());
        let builtin_flow = builtin_slot.flow(Kernel::Crc32, Scale::test()).unwrap();
        assert_ne!(flow.isa_hash, builtin_flow.isa_hash);
        // Same machine description, different spelling: identical results.
        assert_eq!(flow.profile.dyn_total, builtin_flow.profile.dyn_total);
        assert_eq!(flow.fits.instrs, builtin_flow.fits.instrs);
    }

    #[test]
    fn distinct_scales_are_distinct_entries() {
        let arts = Artifacts::new();
        let a = arts.program(Kernel::Crc32, Scale { n: 64 }).unwrap();
        let b = arts.program(Kernel::Crc32, Scale { n: 96 }).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
    }
}
