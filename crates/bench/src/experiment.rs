//! The §5 experimental setup: four processor configurations (ARM16, ARM8,
//! FITS16, FITS8 — ISA × I-cache size, everything else fixed at the
//! SA-1100 model) swept over the benchmark suite.
//!
//! The four timed configurations are measured with the
//! execute-once/replay-many engine ([`Machine::run_timed_multi`]): each
//! kernel's native binary executes **once** feeding both ARM cache
//! geometries, and its FITS binary executes **once** feeding both FITS
//! geometries — the per-configuration [`SimResult`]s are bit-identical to
//! separate per-configuration runs.

use std::cell::Cell;
use std::fmt;

use fits_core::FlowError;
use fits_kernels::kernels::{Kernel, Scale};
use fits_power::{cache_power, chip_power_with, CachePower, ChipPower, DecodeKind};
use fits_scenario::{ScenarioMatrix, ScenarioSpec};
use fits_sim::{Ar32Set, Machine, SimResult};

use crate::artifacts::Artifacts;

/// One of the paper's four simulated configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Config {
    /// Native ISA, 16 KB I-cache (the baseline).
    Arm16,
    /// Native ISA, 8 KB I-cache.
    Arm8,
    /// FITS ISA, 16 KB I-cache.
    Fits16,
    /// FITS ISA, 8 KB I-cache.
    Fits8,
}

impl Config {
    /// All four configurations in the paper's order.
    pub const ALL: [Config; 4] = [Config::Arm16, Config::Arm8, Config::Fits16, Config::Fits8];

    /// The machine description this configuration simulates on: the
    /// SA-1100 preset scenario, resized to the configuration's I-cache
    /// capacity. The enum is now only a *name* for a point on the scenario
    /// plane — every geometry, latency and tech constant comes from the
    /// spec.
    #[must_use]
    pub fn scenario(self) -> ScenarioSpec {
        let base = ScenarioSpec::sa1100();
        match self {
            Config::Arm16 | Config::Fits16 => base,
            Config::Arm8 | Config::Fits8 => base
                .with_icache_bytes(8 * 1024)
                .expect("8 KB divides the fixed SA-1100 geometry"),
        }
    }

    /// I-cache capacity for the configuration (from its scenario).
    #[must_use]
    pub fn icache_bytes(self) -> u32 {
        self.scenario().icache.size_bytes
    }

    /// Whether this configuration runs the synthesized ISA.
    #[must_use]
    pub fn is_fits(self) -> bool {
        matches!(self, Config::Fits16 | Config::Fits8)
    }

    fn index(self) -> usize {
        Config::ALL.iter().position(|c| *c == self).expect("known")
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Config::Arm16 => "ARM16",
            Config::Arm8 => "ARM8",
            Config::Fits16 => "FITS16",
            Config::Fits8 => "FITS8",
        };
        f.write_str(s)
    }
}

/// One timed run of one kernel under one configuration.
#[derive(Clone, Debug)]
pub struct ConfigRun {
    /// Microarchitectural statistics.
    pub sim: SimResult,
    /// I-cache power report.
    pub icache: CachePower,
    /// Chip-wide power report.
    pub chip: ChipPower,
}

/// Everything measured for one kernel.
#[derive(Clone, Debug)]
pub struct KernelResults {
    /// The kernel.
    pub kernel: Kernel,
    /// Native code size in bytes.
    pub arm_code_bytes: usize,
    /// T16 (Thumb-like) translation size in bytes (Figure 5 baseline).
    pub thumb_code_bytes: usize,
    /// FITS code size in bytes.
    pub fits_code_bytes: usize,
    /// Static 1-to-1 mapping rate (Figure 3).
    pub mapping_static: f64,
    /// Dynamic 1-to-1 mapping rate (Figure 4).
    pub mapping_dynamic: f64,
    /// Programmable-decoder configuration size in bits.
    pub config_bits: usize,
    /// Timed runs, indexed by [`Config::ALL`] order.
    pub runs: Vec<ConfigRun>,
}

impl KernelResults {
    /// The run for one configuration.
    #[must_use]
    pub fn run(&self, cfg: Config) -> &ConfigRun {
        &self.runs[cfg.index()]
    }
}

/// Whole-suite results.
#[derive(Clone, Debug)]
pub struct SuiteResults {
    /// Per-kernel measurements, in [`Kernel::ALL`] order (for the kernels
    /// that were requested).
    pub kernels: Vec<KernelResults>,
    /// The workload scale used.
    pub scale: Scale,
}

/// Experiment failure for one kernel.
#[derive(Debug)]
pub enum ExperimentError {
    /// Kernel compilation failed (a kernel bug).
    Compile(fits_kernels::codegen::CompileError),
    /// The FITS flow failed.
    Flow(FlowError),
    /// A timed simulation failed.
    Sim(fits_sim::SimError),
    /// The FITS binary failed to load.
    Decode(fits_core::exec::FitsDecodeError),
    /// A multi-application synthesis failed (merge, translation or
    /// regression bound).
    Multi(fits_core::MultiError),
    /// A shared-ISA translation failed static verification — a
    /// translator bug surfaced as a diagnostic instead of a runaway
    /// simulation.
    Verify {
        /// The member kernel whose translation failed verification.
        kernel: String,
        /// The rendered verifier report.
        report: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "compile: {e}"),
            ExperimentError::Flow(e) => write!(f, "flow: {e}"),
            ExperimentError::Sim(e) => write!(f, "sim: {e}"),
            ExperimentError::Decode(e) => write!(f, "decode: {e}"),
            ExperimentError::Multi(e) => write!(f, "multi: {e}"),
            ExperimentError::Verify { kernel, report } => {
                write!(f, "verify({kernel}): {report}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

thread_local! {
    static TIMED_EXECUTIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of timed program executions this thread has performed through
/// [`run_kernel`]/[`run_kernel_with`] — instrumentation for the tests that
/// assert the execute-once/replay-many collapse (one ARM execution plus one
/// FITS execution per kernel, regardless of how many cache configurations
/// are measured).
#[must_use]
pub fn timed_executions_on_this_thread() -> u64 {
    TIMED_EXECUTIONS.with(Cell::get)
}

/// Counts one timed execution on this thread (shared with the Pareto
/// pricer, whose per-candidate member runs are timed executions too).
pub(crate) fn note_timed_execution() {
    TIMED_EXECUTIONS.with(|c| c.set(c.get() + 1));
}

/// Runs all four configurations for one kernel, using a private artifact
/// cache. Sweeps that revisit kernels should prefer [`run_kernel_with`] and
/// share an [`Artifacts`].
///
/// # Errors
///
/// Propagates compilation, synthesis, translation and simulation failures
/// (none are expected for the shipped kernels).
pub fn run_kernel(kernel: Kernel, scale: Scale) -> Result<KernelResults, ExperimentError> {
    run_kernel_with(&Artifacts::new(), kernel, scale)
}

/// Runs all four configurations for one kernel against a shared artifact
/// cache: one native execution feeds both ARM cache geometries and one FITS
/// execution feeds both FITS geometries.
///
/// This is [`run_kernel_scenarios`] over [`paper_matrix`] — the §5 quad is
/// just the two SA-1100 scenario points, each measured under both ISAs.
///
/// # Errors
///
/// Propagates compilation, synthesis, translation and simulation failures
/// (none are expected for the shipped kernels).
pub fn run_kernel_with(
    artifacts: &Artifacts,
    kernel: Kernel,
    scale: Scale,
) -> Result<KernelResults, ExperimentError> {
    let program = artifacts.program(kernel, scale)?;
    let flow = artifacts.flow(kernel, scale)?;
    // The THUMB baseline is a recompilation for the 8-register window
    // (r0-r3 scratch + r4-r7 allocatable): higher register pressure, more
    // spill code — the §6.2 effect — then a structural translation into
    // the 16-bit T16 encodings.
    let t16 = artifacts.thumb(kernel, scale)?;

    let mut points = run_kernel_scenarios(artifacts, kernel, scale, &paper_matrix())?;
    let eight = points.pop().expect("paper matrix has two scenarios");
    let sixteen = points.pop().expect("paper matrix has two scenarios");
    // [`Config::ALL`] order: ARM16, ARM8, FITS16, FITS8.
    let runs = vec![sixteen.arm, eight.arm, sixteen.fits, eight.fits];

    Ok(KernelResults {
        kernel,
        arm_code_bytes: program.code_bytes(),
        thumb_code_bytes: t16.code_bytes(),
        fits_code_bytes: flow.fits.code_bytes(),
        mapping_static: flow.mapping.static_one_to_one_rate(),
        mapping_dynamic: flow.dynamic_rate(),
        config_bits: flow.fits.config.config_bits(),
        runs,
    })
}

/// The paper's two machine points (SA-1100 with 16 KB and with 8 KB
/// I-cache) as a scenario matrix.
#[must_use]
pub fn paper_matrix() -> ScenarioMatrix {
    ScenarioMatrix {
        scenarios: vec![Config::Arm16.scenario(), Config::Arm8.scenario()],
    }
}

/// Both ISAs measured at one scenario point of a sweep.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The machine description this point simulated on.
    pub scenario: ScenarioSpec,
    /// The native-ISA run under the scenario.
    pub arm: ConfigRun,
    /// The FITS-ISA run under the scenario.
    pub fits: ConfigRun,
}

/// Prices one replayed simulation under a scenario's tech node.
pub(crate) fn priced(spec: &ScenarioSpec, sim: SimResult, decode: DecodeKind) -> ConfigRun {
    let icache = cache_power(&spec.icache, &sim.icache, sim.cycles, &spec.tech);
    let chip = chip_power_with(&sim, &spec.icache, &spec.dcache, decode, &spec.tech);
    ConfigRun { sim, icache, chip }
}

/// Measures every scenario of a matrix for one kernel, under both ISAs,
/// with the execute-once/replay-many engine: the native binary executes
/// **once** and the FITS binary executes **once**, each feeding one timing
/// model per *distinct machine* in the matrix ([`ScenarioMatrix::machines`]
/// — tech nodes that only re-price an existing geometry share its replay).
/// Every timing replay is then priced under each scenario's own tech
/// parameters, which is pure post-processing on the [`SimResult`].
///
/// # Errors
///
/// Propagates compilation, synthesis, translation and simulation failures.
pub fn run_kernel_scenarios(
    artifacts: &Artifacts,
    kernel: Kernel,
    scale: Scale,
    matrix: &ScenarioMatrix,
) -> Result<Vec<ScenarioRun>, ExperimentError> {
    let program = artifacts.program(kernel, scale)?;
    // The verified flow statically validates the accepted triple (encoding
    // soundness, CFI, dataflow, translation validation) before execution.
    let flow = artifacts.flow(kernel, scale)?;
    let (machines, machine_of) = matrix.machines();

    // Execute once per ISA through the block-compiled recorder (the static
    // compilation is cached in `artifacts`; the recorded trace is local to
    // this call), then price all distinct machines in one replay pass.
    let arm_sims = {
        let compiled = artifacts.compiled_arm(kernel, scale)?;
        let mut m = Machine::new(Ar32Set::load(&program));
        TIMED_EXECUTIONS.with(|c| c.set(c.get() + 1));
        let trace = m.run_recorded(&compiled).map_err(ExperimentError::Sim)?;
        trace
            .price_all(&compiled, &machines)
            .map_err(ExperimentError::Sim)?
    };
    let fits_sims = {
        let compiled = artifacts.compiled_fits(kernel, scale)?;
        let set = fits_core::FitsSet::load(&flow.fits).map_err(ExperimentError::Decode)?;
        let mut m = Machine::new(set);
        TIMED_EXECUTIONS.with(|c| c.set(c.get() + 1));
        let trace = m.run_recorded(&compiled).map_err(ExperimentError::Sim)?;
        trace
            .price_all(&compiled, &machines)
            .map_err(ExperimentError::Sim)?
    };

    let mut runs = Vec::with_capacity(matrix.len());
    for (spec, &m) in matrix.scenarios.iter().zip(&machine_of) {
        let decode = DecodeKind::Programmable {
            config_bits: flow.fits.config.config_bits(),
        };
        runs.push(ScenarioRun {
            scenario: spec.clone(),
            arm: priced(spec, arm_sims[m].clone(), DecodeKind::Fixed32),
            fits: priced(spec, fits_sims[m].clone(), decode),
        });
    }
    Ok(runs)
}

/// Runs the whole suite, one worker thread per CPU, sharing one artifact
/// cache across workers.
///
/// Results are collected over a channel (no shared lock), so a panicking
/// worker cannot poison the collection path and take the other workers
/// down with it: panics are caught per kernel, the remaining kernels keep
/// running, and the first failure in kernel order — panic or error — is
/// surfaced afterwards.
///
/// # Errors
///
/// Fails if any kernel fails (kernels are expected to be infallible; an
/// error indicates a regression).
///
/// # Panics
///
/// Re-raises the first worker panic (in kernel order) once all workers have
/// drained, preserving the original payload.
pub fn run_suite(kernels: &[Kernel], scale: Scale) -> Result<SuiteResults, ExperimentError> {
    run_suite_with(&Artifacts::new(), kernels, scale)
}

/// [`run_suite`] against a caller-supplied artifact cache — the way to run
/// the suite with a flow observer installed
/// ([`Artifacts::with_flow_observer`]) or to share artifacts across several
/// sweeps.
///
/// # Errors
///
/// Fails if any kernel fails, like [`run_suite`].
///
/// # Panics
///
/// Re-raises the first worker panic (in kernel order), like [`run_suite`].
pub fn run_suite_with(
    artifacts: &Artifacts,
    kernels: &[Kernel],
    scale: Scale,
) -> Result<SuiteResults, ExperimentError> {
    let out = kernels_in_parallel(kernels, |kernel| run_kernel_with(artifacts, kernel, scale))?;
    Ok(SuiteResults {
        kernels: out,
        scale,
    })
}

/// Runs `run` for every kernel on a worker pool (one thread per CPU),
/// collecting results over a channel in kernel order — the shared engine
/// behind [`run_suite_with`] and the scenario sweeps.
///
/// Panics are caught per kernel so one poisoned worker cannot take the
/// others down; the first failure in kernel order — panic or error — is
/// surfaced after every worker drains.
pub(crate) fn kernels_in_parallel<T: Send>(
    kernels: &[Kernel],
    run: impl Fn(Kernel) -> Result<T, ExperimentError> + Sync,
) -> Result<Vec<T>, ExperimentError> {
    type Outcome<T> = Result<Result<T, ExperimentError>, Box<dyn std::any::Any + Send>>;

    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Outcome<T>)>();

    std::thread::scope(|s| {
        for _ in 0..workers.min(kernels.len()) {
            let tx = tx.clone();
            let next = &next;
            let run = &run;
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= kernels.len() {
                    break;
                }
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(kernels[i])));
                if tx.send((i, outcome)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<Outcome<T>>> = (0..kernels.len()).map(|_| None).collect();
    for (i, outcome) in rx {
        slots[i] = Some(outcome);
    }
    let mut out = Vec::with_capacity(kernels.len());
    for slot in slots {
        match slot.expect("every kernel index was sent exactly once") {
            Ok(Ok(results)) => out.push(results),
            Ok(Err(error)) => return Err(error),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kernel_all_configs() {
        let r = run_kernel(Kernel::Crc32, Scale::test()).unwrap();
        assert_eq!(r.runs.len(), 4);
        // FITS configurations fetch roughly half as many I-cache words.
        let arm = &r.run(Config::Arm16).sim;
        let fits = &r.run(Config::Fits16).sim;
        let ratio = fits.icache.accesses as f64 / arm.icache.accesses as f64;
        assert!(
            (0.45..=0.62).contains(&ratio),
            "FITS fetch ratio {ratio:.3} should be near one half"
        );
        // Retired instructions are close (high 1-to-1 mapping).
        let inflate = fits.retired as f64 / arm.retired as f64;
        assert!((0.99..=1.15).contains(&inflate), "inflation {inflate:.3}");
        // Code sizes: FITS ~half of ARM, T16 in between.
        assert!(r.fits_code_bytes * 10 < r.arm_code_bytes * 6);
        assert!(r.thumb_code_bytes < r.arm_code_bytes);
        assert!(r.thumb_code_bytes > r.fits_code_bytes);
    }

    #[test]
    fn suite_runs_in_parallel() {
        let suite = run_suite(&[Kernel::Crc32, Kernel::Bitcount], Scale::test()).unwrap();
        assert_eq!(suite.kernels.len(), 2);
        assert_eq!(suite.kernels[0].kernel, Kernel::Crc32);
        assert_eq!(suite.kernels[1].kernel, Kernel::Bitcount);
    }

    /// A scenario grid costs the same two functional executions as the
    /// paper quad, no matter how many geometry × tech points it has, and
    /// tech nodes re-price without changing the microarchitectural counts.
    #[test]
    fn scenario_grid_reuses_one_execution_per_isa() {
        let matrix = ScenarioMatrix::grid(
            &ScenarioSpec::sa1100(),
            &[16 * 1024, 8 * 1024, 4 * 1024],
            &[
                ("sa1100".to_string(), fits_power::TechParams::sa1100()),
                ("65nm".to_string(), fits_power::TechParams::modern_65nm()),
            ],
        )
        .unwrap();
        let arts = Artifacts::new();
        let before = timed_executions_on_this_thread();
        let runs = run_kernel_scenarios(&arts, Kernel::Crc32, Scale::test(), &matrix).unwrap();
        assert_eq!(
            timed_executions_on_this_thread() - before,
            2,
            "six scenarios must cost one ARM + one FITS execution"
        );
        assert_eq!(runs.len(), 6);
        // Same geometry under another tech node: identical counts (the
        // node is power post-processing), different pricing.
        let (old, new) = (&runs[0], &runs[3]);
        assert_eq!(old.scenario.id(), "sa1100-i16k");
        assert_eq!(new.scenario.id(), "65nm-i16k");
        assert_eq!(old.arm.sim.cycles, new.arm.sim.cycles);
        assert_eq!(old.arm.sim.icache, new.arm.sim.icache);
        let lk_old = old.arm.icache.leakage_j / old.arm.icache.total_j();
        let lk_new = new.arm.icache.leakage_j / new.arm.icache.total_j();
        assert!(
            lk_new > 2.0 * lk_old,
            "65 nm leakage share {lk_new:.3} must dwarf 0.35 um {lk_old:.3}"
        );
    }

    /// The execute-once/replay-many contract: `run_kernel` performs exactly
    /// one ARM execution and one FITS execution for its four timed
    /// configurations, and each configuration's statistics are bit-identical
    /// to a dedicated per-configuration `run_timed` call.
    #[test]
    fn run_kernel_executes_once_per_isa() {
        let before = timed_executions_on_this_thread();
        let r = run_kernel(Kernel::Sha, Scale::test()).unwrap();
        assert_eq!(
            timed_executions_on_this_thread() - before,
            2,
            "four timed configurations must cost one ARM + one FITS execution"
        );

        // Old-style independent runs, one execution per configuration.
        let arts = Artifacts::new();
        let program = arts.program(Kernel::Sha, Scale::test()).unwrap();
        let flow = arts.flow(Kernel::Sha, Scale::test()).unwrap();
        for cfg in Config::ALL {
            let sa = cfg.scenario().machine_config();
            let sim = if cfg.is_fits() {
                let set = fits_core::FitsSet::load(&flow.fits).unwrap();
                Machine::new(set).run_timed(&sa).unwrap().1
            } else {
                Machine::new(Ar32Set::load(&program))
                    .run_timed(&sa)
                    .unwrap()
                    .1
            };
            assert_eq!(
                r.run(cfg).sim,
                sim,
                "{cfg}: replayed statistics must be bit-identical to a per-config run"
            );
        }
    }
}
