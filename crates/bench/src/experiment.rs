//! The §5 experimental setup: four processor configurations (ARM16, ARM8,
//! FITS16, FITS8 — ISA × I-cache size, everything else fixed at the
//! SA-1100 model) swept over the benchmark suite.

use std::fmt;

use fits_core::FlowError;
use fits_isa::thumb;
use fits_kernels::kernels::{Kernel, Scale};
use fits_power::{cache_power, chip_power_with, CachePower, ChipPower, DecodeKind, TechParams};
use fits_sim::{Ar32Set, Machine, Sa1100Config, SimResult};

/// One of the paper's four simulated configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Config {
    /// Native ISA, 16 KB I-cache (the baseline).
    Arm16,
    /// Native ISA, 8 KB I-cache.
    Arm8,
    /// FITS ISA, 16 KB I-cache.
    Fits16,
    /// FITS ISA, 8 KB I-cache.
    Fits8,
}

impl Config {
    /// All four configurations in the paper's order.
    pub const ALL: [Config; 4] = [Config::Arm16, Config::Arm8, Config::Fits16, Config::Fits8];

    /// I-cache capacity for the configuration.
    #[must_use]
    pub fn icache_bytes(self) -> u32 {
        match self {
            Config::Arm16 | Config::Fits16 => 16 * 1024,
            Config::Arm8 | Config::Fits8 => 8 * 1024,
        }
    }

    /// Whether this configuration runs the synthesized ISA.
    #[must_use]
    pub fn is_fits(self) -> bool {
        matches!(self, Config::Fits16 | Config::Fits8)
    }

    fn index(self) -> usize {
        Config::ALL.iter().position(|c| *c == self).expect("known")
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Config::Arm16 => "ARM16",
            Config::Arm8 => "ARM8",
            Config::Fits16 => "FITS16",
            Config::Fits8 => "FITS8",
        };
        f.write_str(s)
    }
}

/// One timed run of one kernel under one configuration.
#[derive(Clone, Debug)]
pub struct ConfigRun {
    /// Microarchitectural statistics.
    pub sim: SimResult,
    /// I-cache power report.
    pub icache: CachePower,
    /// Chip-wide power report.
    pub chip: ChipPower,
}

/// Everything measured for one kernel.
#[derive(Clone, Debug)]
pub struct KernelResults {
    /// The kernel.
    pub kernel: Kernel,
    /// Native code size in bytes.
    pub arm_code_bytes: usize,
    /// T16 (Thumb-like) translation size in bytes (Figure 5 baseline).
    pub thumb_code_bytes: usize,
    /// FITS code size in bytes.
    pub fits_code_bytes: usize,
    /// Static 1-to-1 mapping rate (Figure 3).
    pub mapping_static: f64,
    /// Dynamic 1-to-1 mapping rate (Figure 4).
    pub mapping_dynamic: f64,
    /// Programmable-decoder configuration size in bits.
    pub config_bits: usize,
    /// Timed runs, indexed by [`Config::ALL`] order.
    pub runs: Vec<ConfigRun>,
}

impl KernelResults {
    /// The run for one configuration.
    #[must_use]
    pub fn run(&self, cfg: Config) -> &ConfigRun {
        &self.runs[cfg.index()]
    }
}

/// Whole-suite results.
#[derive(Clone, Debug)]
pub struct SuiteResults {
    /// Per-kernel measurements, in [`Kernel::ALL`] order (for the kernels
    /// that were requested).
    pub kernels: Vec<KernelResults>,
    /// The workload scale used.
    pub scale: Scale,
}

/// Experiment failure for one kernel.
#[derive(Debug)]
pub enum ExperimentError {
    /// Kernel compilation failed (a kernel bug).
    Compile(fits_kernels::codegen::CompileError),
    /// The FITS flow failed.
    Flow(FlowError),
    /// A timed simulation failed.
    Sim(fits_sim::SimError),
    /// The FITS binary failed to load.
    Decode(fits_core::exec::FitsDecodeError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "compile: {e}"),
            ExperimentError::Flow(e) => write!(f, "flow: {e}"),
            ExperimentError::Sim(e) => write!(f, "sim: {e}"),
            ExperimentError::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Runs all four configurations for one kernel.
///
/// # Errors
///
/// Propagates compilation, synthesis, translation and simulation failures
/// (none are expected for the shipped kernels).
pub fn run_kernel(kernel: Kernel, scale: Scale) -> Result<KernelResults, ExperimentError> {
    let tech = TechParams::sa1100();
    let program = kernel.compile(scale).map_err(ExperimentError::Compile)?;
    // The verified flow statically validates the accepted triple (encoding
    // soundness, CFI, dataflow, translation validation) before execution.
    let flow = fits_verify::verified_flow()
        .run(&program)
        .map_err(ExperimentError::Flow)?;
    // The THUMB baseline is a recompilation for the 8-register window
    // (r0-r3 scratch + r4-r7 allocatable): higher register pressure, more
    // spill code — the §6.2 effect — then a structural translation into
    // the 16-bit T16 encodings.
    let low_regs = [
        fits_isa::Reg::R4,
        fits_isa::Reg::R5,
        fits_isa::Reg::R6,
        fits_isa::Reg::R7,
    ];
    let thumb_program =
        fits_kernels::codegen::compile_with_regs(&kernel.build_module(scale), &low_regs)
            .map_err(ExperimentError::Compile)?;
    let t16 = thumb::translate(&thumb_program);

    let mut runs = Vec::with_capacity(4);
    for cfg in Config::ALL {
        let sa = Sa1100Config::icache_16k().with_icache_bytes(cfg.icache_bytes());
        let sim = if cfg.is_fits() {
            let set = fits_core::FitsSet::load(&flow.fits).map_err(ExperimentError::Decode)?;
            let mut m = Machine::new(set);
            let (_, sim) = m.run_timed(&sa).map_err(ExperimentError::Sim)?;
            sim
        } else {
            let mut m = Machine::new(Ar32Set::load(&program));
            let (_, sim) = m.run_timed(&sa).map_err(ExperimentError::Sim)?;
            sim
        };
        let icache = cache_power(&sa.icache, &sim.icache, sim.cycles, &tech);
        let decode = if cfg.is_fits() {
            DecodeKind::Programmable {
                config_bits: flow.fits.config.config_bits(),
            }
        } else {
            DecodeKind::Fixed32
        };
        let chip = chip_power_with(&sim, &sa.icache, &sa.dcache, decode, &tech);
        runs.push(ConfigRun { sim, icache, chip });
    }

    Ok(KernelResults {
        kernel,
        arm_code_bytes: program.code_bytes(),
        thumb_code_bytes: t16.code_bytes(),
        fits_code_bytes: flow.fits.code_bytes(),
        mapping_static: flow.mapping.static_one_to_one_rate(),
        mapping_dynamic: flow.dynamic_rate(),
        config_bits: flow.fits.config.config_bits(),
        runs,
    })
}

/// Runs the whole suite, one worker thread per CPU.
///
/// # Errors
///
/// Fails if any kernel fails (kernels are expected to be infallible; an
/// error indicates a regression).
pub fn run_suite(kernels: &[Kernel], scale: Scale) -> Result<SuiteResults, ExperimentError> {
    let slots: std::sync::Mutex<Vec<Option<Result<KernelResults, ExperimentError>>>> =
        std::sync::Mutex::new((0..kernels.len()).map(|_| None).collect());
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers.min(kernels.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= kernels.len() {
                    break;
                }
                let result = run_kernel(kernels[i], scale);
                slots.lock().expect("no worker panicked")[i] = Some(result);
            });
        }
    });

    let slots = slots.into_inner().expect("no worker panicked");
    let mut out = Vec::with_capacity(kernels.len());
    for slot in slots {
        out.push(slot.expect("every slot filled")?);
    }
    Ok(SuiteResults {
        kernels: out,
        scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kernel_all_configs() {
        let r = run_kernel(Kernel::Crc32, Scale::test()).unwrap();
        assert_eq!(r.runs.len(), 4);
        // FITS configurations fetch roughly half as many I-cache words.
        let arm = &r.run(Config::Arm16).sim;
        let fits = &r.run(Config::Fits16).sim;
        let ratio = fits.icache.accesses as f64 / arm.icache.accesses as f64;
        assert!(
            (0.45..=0.62).contains(&ratio),
            "FITS fetch ratio {ratio:.3} should be near one half"
        );
        // Retired instructions are close (high 1-to-1 mapping).
        let inflate = fits.retired as f64 / arm.retired as f64;
        assert!((0.99..=1.15).contains(&inflate), "inflation {inflate:.3}");
        // Code sizes: FITS ~half of ARM, T16 in between.
        assert!(r.fits_code_bytes * 10 < r.arm_code_bytes * 6);
        assert!(r.thumb_code_bytes < r.arm_code_bytes);
        assert!(r.thumb_code_bytes > r.fits_code_bytes);
    }

    #[test]
    fn suite_runs_in_parallel() {
        let suite = run_suite(&[Kernel::Crc32, Kernel::Bitcount], Scale::test()).unwrap();
        assert_eq!(suite.kernels.len(), 2);
        assert_eq!(suite.kernels[0].kernel, Kernel::Crc32);
        assert_eq!(suite.kernels[1].kernel, Kernel::Bitcount);
    }
}
