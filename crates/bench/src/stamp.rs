//! Provenance stamps for archived JSON records (`BENCH.json`,
//! `SWEEP.json`): git commit, timestamp, host — so numbers stay
//! attributable after they leave the working tree.

use fits_obs::json::escape;

/// The current git commit hash, or `"unknown"` outside a work tree.
#[must_use]
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Best-effort host name: `/etc/hostname`, then `$HOSTNAME`, then
/// `uname -n`.
#[must_use]
pub fn hostname() -> String {
    std::fs::read_to_string("/etc/hostname")
        .ok()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
        .or_else(|| {
            std::process::Command::new("uname")
                .arg("-n")
                .output()
                .ok()
                .filter(|out| out.status.success())
                .and_then(|out| String::from_utf8(out.stdout).ok())
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Seconds since the Unix epoch (0 if the clock is before it).
#[must_use]
pub fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// A finite `f64` rendered as a JSON number with fixed precision, `null`
/// otherwise.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

/// The shared `"meta"` object of the archived records. `isa` is the
/// content hash of the ISA spec catalog the numbers were produced under
/// (the shipped catalog unless a record says otherwise), so results stay
/// comparable across machine-description changes.
#[must_use]
pub fn meta_json(indent: &str) -> String {
    meta_json_with(indent, &[])
}

/// [`meta_json`] extended with record-specific fields — each `(key,
/// value)` pair is appended verbatim, so the value must already be valid
/// JSON (quote strings with [`escape`]). `PARETO.json` uses this to stamp
/// the merged-profile hash next to the catalog hash.
#[must_use]
pub fn meta_json_with(indent: &str, extra: &[(&str, String)]) -> String {
    let extra: String = extra
        .iter()
        .map(|(key, value)| format!(",\n{indent}  \"{}\": {value}", escape(key)))
        .collect();
    format!(
        "{{\n{indent}  \"commit\": \"{commit}\",\n{indent}  \"timestamp_unix\": {stamp},\n\
         {indent}  \"host\": \"{host}\",\n{indent}  \"os\": \"{os}\",\n\
         {indent}  \"arch\": \"{arch}\",\n{indent}  \"isa\": \"{isa}\"{extra}\n{indent}}}",
        commit = escape(&git_commit()),
        stamp = unix_timestamp(),
        host = escape(&hostname()),
        os = escape(std::env::consts::OS),
        arch = escape(std::env::consts::ARCH),
        isa = fits_isa::spec::SpecCatalog::default().hash_hex(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_is_valid_json_with_required_fields() {
        let v = fits_obs::json::parse(&meta_json("  ")).unwrap();
        for key in ["commit", "host", "os", "arch", "isa"] {
            assert!(v.get(key).and_then(fits_obs::json::Value::as_str).is_some());
        }
        assert!(v.get("timestamp_unix").and_then(|t| t.as_f64()).is_some());
        let isa = v
            .get("isa")
            .and_then(fits_obs::json::Value::as_str)
            .unwrap();
        assert_eq!(isa.len(), 48, "three 16-hex spec hashes joined");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.500000");
    }
}
