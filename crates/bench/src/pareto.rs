//! The multi-application Pareto frontier: shared FITS ISAs over a kernel
//! set, enumerated across a synthesis-knob grid and priced on the
//! execute-once/replay-many engine.
//!
//! The paper synthesizes one ISA per program; a product ships one
//! programmable decoder for its whole workload. This module answers the
//! question that raises: how much I-cache power does a *shared* FITS ISA
//! leave on the table versus a bespoke ISA per kernel? Each candidate is
//! one merged-profile synthesis ([`fits_core::synthesize_multi`]) of the
//! whole set under one `(space_budget, max_dict_bits)` knob setting;
//! accepted candidates are priced at the SA-1100 reference scenario —
//! one FITS recording per member kernel per candidate, replay-priced —
//! and the non-dominated set over (total code size, total I-cache fetch
//! energy, decoder opcode slots) is the frontier
//! ([`fits_core::pareto_frontier`]).
//!
//! [`run_pareto_with`] produces [`ParetoResults`]; [`pareto_table`] /
//! [`pareto_member_table`] render the summaries and [`pareto_json`]
//! serializes the `powerfits-pareto-v1` schema the `fitspareto` CLI
//! archives as `PARETO.json` (validated by
//! [`fits_obs::json::validate_pareto_json`] before it is written).

use fits_core::{
    synthesize_multi, FitsProgram, MultiMember, MultiOptions, MultiOutcome, Profile, SynthOptions,
};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::json::escape;
use fits_power::DecodeKind;
use fits_scenario::{ScenarioMatrix, ScenarioSpec};
use fits_sim::{CompiledProgram, Machine};

use crate::experiment::{
    kernels_in_parallel, note_timed_execution, priced, run_kernel_scenarios, ExperimentError,
};
use crate::report::{Row, Table};
use crate::{stamp, Artifacts, ConfigRun};

/// One synthesis-knob setting of the candidate grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateSpec {
    /// Opcode-space budget passed to the synthesizer.
    pub space_budget: f64,
    /// Dictionary-index width ceiling passed to the synthesizer.
    pub max_dict_bits: u8,
}

impl CandidateSpec {
    /// Stable candidate id, e.g. `b100-d6` for budget 1.0 and 6 bits.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "b{:03}-d{}",
            (self.space_budget * 100.0).round() as u32,
            self.max_dict_bits
        )
    }

    /// The synthesis options this candidate runs under.
    #[must_use]
    pub fn synth(&self) -> SynthOptions {
        SynthOptions {
            space_budget: self.space_budget,
            max_dict_bits: self.max_dict_bits,
            ..SynthOptions::default()
        }
    }
}

/// The default candidate grid: opcode-space budgets × dictionary widths.
/// Tight budgets trade decoder slots (and configuration bits) against
/// code size and fetch energy, which is what gives the frontier its
/// spread.
#[must_use]
pub fn default_candidates() -> Vec<CandidateSpec> {
    let mut grid = Vec::new();
    for &space_budget in &[1.0, 0.7, 0.45] {
        for &max_dict_bits in &[4u8, 6, 8] {
            grid.push(CandidateSpec {
                space_budget,
                max_dict_bits,
            });
        }
    }
    grid
}

/// Per-app vs. shared-ISA measurements for one member kernel at one
/// candidate, both priced at the same reference scenario.
#[derive(Clone, Debug)]
pub struct MemberPower {
    /// Kernel name.
    pub kernel: String,
    /// Code size under the kernel's own per-app ISA (bytes).
    pub solo_code_bytes: usize,
    /// Code size under the shared ISA (bytes).
    pub shared_code_bytes: usize,
    /// I-cache task energy under the per-app ISA (J).
    pub solo_icache_j: f64,
    /// I-cache task energy under the shared ISA (J).
    pub shared_icache_j: f64,
    /// Cycles under the per-app ISA.
    pub solo_cycles: u64,
    /// Cycles under the shared ISA.
    pub shared_cycles: u64,
    /// Dynamic-expansion regression vs. the per-app optimum (the bound
    /// the synthesis enforced).
    pub regression: f64,
}

/// One accepted candidate: the shared synthesis plus its suite totals on
/// the three frontier axes.
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// Candidate id ([`CandidateSpec::id`]).
    pub id: String,
    /// The knob setting.
    pub spec: CandidateSpec,
    /// Total shared-ISA code size across the suite (bytes) — axis 1.
    pub code_bytes: usize,
    /// Total shared-ISA I-cache task energy across the suite (J) — axis 2.
    pub icache_j: f64,
    /// Shared decoder opcode slots — axis 3.
    pub decoder_slots: usize,
    /// Shared configuration size in bits.
    pub config_bits: usize,
    /// Iterations the shared synthesis used.
    pub iterations: usize,
    /// Per-member breakdown, in suite order.
    pub members: Vec<MemberPower>,
}

impl ParetoPoint {
    /// The point's coordinates on the minimized axes.
    #[must_use]
    pub fn axes(&self) -> [f64; 3] {
        [
            self.code_bytes as f64,
            self.icache_j,
            self.decoder_slots as f64,
        ]
    }
}

/// A candidate the synthesis rejected (regression bound or translation
/// failure) — recorded so the archive documents the grid's full extent.
#[derive(Clone, Debug)]
pub struct Rejection {
    /// Candidate id.
    pub id: String,
    /// The knob setting.
    pub spec: CandidateSpec,
    /// Why the candidate was rejected.
    pub reason: String,
}

/// A completed Pareto enumeration.
#[derive(Clone, Debug)]
pub struct ParetoResults {
    /// The workload scale every candidate ran at.
    pub scale: Scale,
    /// The member kernels, in run order.
    pub kernels: Vec<Kernel>,
    /// The per-kernel regression bound the synthesis enforced.
    pub epsilon: f64,
    /// Canonical hash of the merged profile every candidate synthesized
    /// from (equal weights; stamped into the archive meta).
    pub merged_hash: String,
    /// Accepted candidates, in grid order.
    pub points: Vec<ParetoPoint>,
    /// Indices into `points` of the non-dominated frontier.
    pub frontier: Vec<usize>,
    /// Rejected candidates, in grid order.
    pub rejected: Vec<Rejection>,
    /// Total per-app code size across the suite (bytes).
    pub solo_code_bytes: usize,
    /// Total per-app I-cache task energy across the suite (J).
    pub solo_icache_j: f64,
}

impl ParetoResults {
    /// The frontier point with the lowest I-cache energy (the natural
    /// reference for the per-app vs. shared table), if any candidate was
    /// accepted.
    #[must_use]
    pub fn best_energy_point(&self) -> Option<&ParetoPoint> {
        self.frontier
            .iter()
            .map(|&i| &self.points[i])
            .min_by(|a, b| a.icache_j.total_cmp(&b.icache_j))
    }
}

/// Prices one member's shared-ISA binary at a scenario: compile the FITS
/// set, execute once through the recorder, replay-price under the
/// scenario's machine and tech node. This is the exact path the solo
/// measurements take, so library and service results are bit-identical
/// by construction.
///
/// # Errors
///
/// Propagates load, compile and simulation failures.
pub fn price_shared_member(
    fits: &FitsProgram,
    scenario: &ScenarioSpec,
) -> Result<ConfigRun, ExperimentError> {
    let set = fits_core::FitsSet::load(fits).map_err(ExperimentError::Decode)?;
    let compiled = CompiledProgram::compile(&set).map_err(ExperimentError::Sim)?;
    let mut machine = Machine::new(set);
    note_timed_execution();
    let trace = machine
        .run_recorded(&compiled)
        .map_err(ExperimentError::Sim)?;
    let sim = trace
        .price(&compiled, &scenario.machine_config())
        .map_err(ExperimentError::Sim)?;
    let decode = DecodeKind::Programmable {
        config_bits: fits.config.config_bits(),
    };
    Ok(priced(scenario, sim, decode))
}

/// Runs one shared synthesis over the kernel set.
///
/// # Errors
///
/// Propagates merge, translation and regression-bound failures.
pub fn synthesize_candidate(
    members: &[MultiMember<'_>],
    spec: CandidateSpec,
    epsilon: f64,
) -> Result<MultiOutcome, fits_core::MultiError> {
    let options = MultiOptions {
        synth: spec.synth(),
        epsilon,
        ..MultiOptions::default()
    };
    let weights = vec![1.0; members.len()];
    synthesize_multi(members, &weights, &options)
}

/// Enumerates the candidate grid over `kernels` at `scale`, pricing every
/// accepted candidate at the SA-1100 reference scenario, and returns the
/// accepted points with their non-dominated frontier.
///
/// Costs: the solo baselines reuse the shared artifact cache (one
/// native plus one FITS recording per kernel, total); each accepted
/// candidate adds one FITS recording per kernel — every machine/tech
/// re-pricing of a point is free replay.
///
/// # Errors
///
/// Fails on kernel compilation, profiling or simulation errors, and on
/// any accepted member translation that fails static verification (not
/// on candidate rejection, which is recorded in
/// [`ParetoResults::rejected`]).
///
/// # Panics
///
/// Re-raises worker panics like [`crate::run_suite`].
pub fn run_pareto_with(
    artifacts: &Artifacts,
    kernels: &[Kernel],
    scale: Scale,
    epsilon: f64,
    candidates: &[CandidateSpec],
) -> Result<ParetoResults, ExperimentError> {
    let scenario = ScenarioSpec::sa1100();
    let matrix = ScenarioMatrix {
        scenarios: vec![scenario.clone()],
    };

    // Per-app baselines: one native + one FITS recording per kernel,
    // shared with everything else that uses `artifacts`.
    let solo: Vec<(usize, ConfigRun)> = kernels_in_parallel(kernels, |kernel| {
        let runs = run_kernel_scenarios(artifacts, kernel, scale, &matrix)?;
        let run = runs.into_iter().next().expect("matrix has one scenario");
        let flow = artifacts.flow(kernel, scale)?;
        Ok((flow.fits.code_bytes(), run.fits))
    })?;

    // The merge members (programs + profiles from the artifact cache).
    let programs: Vec<_> = kernels
        .iter()
        .map(|&k| artifacts.program(k, scale))
        .collect::<Result<_, _>>()?;
    let profiles: Vec<_> = kernels
        .iter()
        .map(|&k| artifacts.profile(k, scale))
        .collect::<Result<_, _>>()?;
    let members: Vec<MultiMember<'_>> = kernels
        .iter()
        .zip(&programs)
        .zip(&profiles)
        .map(|((kernel, program), profile)| MultiMember {
            name: kernel.name(),
            program,
            profile,
        })
        .collect();

    // All candidates share one merged profile (the knobs only steer the
    // synthesis): hash it once for the archive meta.
    let weighted: Vec<(&Profile, f64)> = profiles.iter().map(|p| (&**p, 1.0)).collect();
    let merged =
        Profile::merge_weighted(&weighted).map_err(|e| ExperimentError::Multi(e.into()))?;
    let merged_hash = fits_core::profile_hash(&merged.profile);

    let mut points = Vec::new();
    let mut rejected = Vec::new();
    for &spec in candidates {
        let outcome = match synthesize_candidate(&members, spec, epsilon) {
            Ok(outcome) => outcome,
            Err(e) => {
                rejected.push(Rejection {
                    id: spec.id(),
                    spec,
                    reason: e.to_string(),
                });
                continue;
            }
        };
        debug_assert_eq!(outcome.merged_hash, merged_hash);

        // Statically verify every member translation before pricing it:
        // a truncated branch displacement must fail here as a diagnostic,
        // not run to the simulator's step ceiling.
        for (member, program) in outcome.members.iter().zip(&programs) {
            let report = fits_verify::analyze(program, &outcome.synthesis, &member.translation);
            if !report.is_clean() {
                return Err(ExperimentError::Verify {
                    kernel: member.name.clone(),
                    report: report.render_text(),
                });
            }
        }

        // One FITS recording per member kernel for this candidate.
        let shared_runs: Vec<ConfigRun> = kernels_in_parallel(kernels, |kernel| {
            let member = outcome
                .members
                .iter()
                .find(|m| m.name == kernel.name())
                .expect("equal positive weights drop no member");
            price_shared_member(&member.translation.fits, &scenario)
        })?;

        let member_powers: Vec<MemberPower> = outcome
            .members
            .iter()
            .zip(&solo)
            .zip(&shared_runs)
            .map(|((m, (solo_code, solo_run)), shared_run)| MemberPower {
                kernel: m.name.clone(),
                solo_code_bytes: *solo_code,
                shared_code_bytes: m.translation.fits.code_bytes(),
                solo_icache_j: solo_run.icache.total_j(),
                shared_icache_j: shared_run.icache.total_j(),
                solo_cycles: solo_run.sim.cycles,
                shared_cycles: shared_run.sim.cycles,
                regression: m.regression,
            })
            .collect();

        points.push(ParetoPoint {
            id: spec.id(),
            spec,
            code_bytes: member_powers.iter().map(|m| m.shared_code_bytes).sum(),
            icache_j: member_powers.iter().map(|m| m.shared_icache_j).sum(),
            decoder_slots: outcome.synthesis.config.ops.len(),
            config_bits: outcome.synthesis.config.config_bits(),
            iterations: outcome.iterations,
            members: member_powers,
        });
    }

    let axes: Vec<[f64; 3]> = points.iter().map(ParetoPoint::axes).collect();
    let frontier = fits_core::pareto_frontier(&axes);

    Ok(ParetoResults {
        scale,
        kernels: kernels.to_vec(),
        epsilon,
        merged_hash,
        points,
        frontier,
        rejected,
        solo_code_bytes: solo.iter().map(|(code, _)| *code).sum(),
        solo_icache_j: solo.iter().map(|(_, run)| run.icache.total_j()).sum(),
    })
}

/// The candidate summary table: shared-vs-solo code and energy ratios,
/// decoder slots, and frontier membership, one row per accepted
/// candidate.
#[must_use]
pub fn pareto_table(results: &ParetoResults) -> Table {
    Table {
        id: "pareto",
        title: format!(
            "Shared-ISA candidates over {} kernels (n={}, epsilon={})",
            results.kernels.len(),
            results.scale.n,
            results.epsilon,
        ),
        unit: "ratio",
        scenario: Some(ScenarioSpec::sa1100().id().to_string()),
        columns: vec![
            "code/solo".to_string(),
            "i$/solo".to_string(),
            "slots".to_string(),
            "frontier".to_string(),
        ],
        rows: results
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| Row {
                label: p.id.clone(),
                values: vec![
                    ratio(p.code_bytes as f64, results.solo_code_bytes as f64),
                    ratio(p.icache_j, results.solo_icache_j),
                    p.decoder_slots as f64,
                    f64::from(u8::from(results.frontier.contains(&i))),
                ],
            })
            .collect(),
    }
}

/// The per-app vs. shared-ISA power table at the frontier's lowest-energy
/// point: solo and shared I-cache energy per kernel plus the enforced
/// regression, one row per member. Empty when every candidate was
/// rejected.
#[must_use]
pub fn pareto_member_table(results: &ParetoResults) -> Table {
    let (title, rows) = match results.best_energy_point() {
        Some(p) => (
            format!("Per-app vs shared ISA at {} (uJ I-cache)", p.id),
            p.members
                .iter()
                .map(|m| Row {
                    label: m.kernel.clone(),
                    values: vec![m.solo_icache_j * 1e6, m.shared_icache_j * 1e6, m.regression],
                })
                .collect(),
        ),
        None => (
            "Per-app vs shared ISA (no accepted candidate)".to_string(),
            Vec::new(),
        ),
    };
    Table {
        id: "pareto-members",
        title,
        unit: "uJ",
        scenario: Some(ScenarioSpec::sa1100().id().to_string()),
        columns: vec![
            "solo uJ".to_string(),
            "shared uJ".to_string(),
            "regress".to_string(),
        ],
        rows,
    }
}

fn ratio(ours: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        ours / base
    }
}

fn member_json(m: &MemberPower) -> String {
    format!(
        "{{\"kernel\": \"{kernel}\", \"solo_code_bytes\": {scb}, \
         \"shared_code_bytes\": {hcb}, \"solo_icache_j\": {sij}, \
         \"shared_icache_j\": {hij}, \"solo_cycles\": {sc}, \
         \"shared_cycles\": {hc}, \"regression\": {reg}}}",
        kernel = escape(&m.kernel),
        scb = m.solo_code_bytes,
        hcb = m.shared_code_bytes,
        sij = stamp::json_f64(m.solo_icache_j),
        hij = stamp::json_f64(m.shared_icache_j),
        sc = m.solo_cycles,
        hc = m.shared_cycles,
        reg = stamp::json_f64(m.regression),
    )
}

/// Serializes a Pareto enumeration into the `powerfits-pareto-v1` JSON
/// schema (see [`fits_obs::json::validate_pareto_json`]). The meta block
/// carries the ISA catalog hash *and* the merged-profile hash, so a
/// frontier stays attributable to the exact profile population it was
/// synthesized from.
#[must_use]
pub fn pareto_json(results: &ParetoResults) -> String {
    let kernels: Vec<String> = results
        .kernels
        .iter()
        .map(|k| format!("\"{}\"", escape(k.name())))
        .collect();
    let points: Vec<String> = results
        .points
        .iter()
        .map(|p| {
            let members: Vec<String> = p
                .members
                .iter()
                .map(|m| format!("        {}", member_json(m)))
                .collect();
            format!(
                "    {{\n      \"id\": \"{id}\",\n      \"space_budget\": {budget},\n      \
                 \"max_dict_bits\": {bits},\n      \"code_bytes\": {code},\n      \
                 \"icache_j\": {energy},\n      \"decoder_slots\": {slots},\n      \
                 \"config_bits\": {cfg},\n      \"iterations\": {iters},\n      \
                 \"members\": [\n{members}\n      ]\n    }}",
                id = escape(&p.id),
                budget = stamp::json_f64(p.spec.space_budget),
                bits = p.spec.max_dict_bits,
                code = p.code_bytes,
                energy = stamp::json_f64(p.icache_j),
                slots = p.decoder_slots,
                cfg = p.config_bits,
                iters = p.iterations,
                members = members.join(",\n"),
            )
        })
        .collect();
    let rejected: Vec<String> = results
        .rejected
        .iter()
        .map(|r| {
            format!(
                "    {{\"id\": \"{id}\", \"space_budget\": {budget}, \
                 \"max_dict_bits\": {bits}, \"reason\": \"{reason}\"}}",
                id = escape(&r.id),
                budget = stamp::json_f64(r.spec.space_budget),
                bits = r.spec.max_dict_bits,
                reason = escape(&r.reason),
            )
        })
        .collect();
    let frontier: Vec<String> = results.frontier.iter().map(ToString::to_string).collect();
    let meta = stamp::meta_json_with(
        "  ",
        &[(
            "merged_profile",
            format!("\"{}\"", escape(&results.merged_hash)),
        )],
    );
    format!(
        "{{\n  \"schema\": \"powerfits-pareto-v1\",\n  \"meta\": {meta},\n  \
         \"scale_n\": {n},\n  \"epsilon\": {eps},\n  \"kernels\": [{kernels}],\n  \
         \"solo_code_bytes\": {scode},\n  \"solo_icache_j\": {senergy},\n  \
         \"points\": [\n{points}\n  ],\n  \"frontier\": [{frontier}],\n  \
         \"rejected\": [{rejected}]\n}}\n",
        n = results.scale.n,
        eps = stamp::json_f64(results.epsilon),
        kernels = kernels.join(", "),
        scode = results.solo_code_bytes,
        senergy = stamp::json_f64(results.solo_icache_j),
        points = points.join(",\n"),
        frontier = frontier.join(", "),
        rejected = if results.rejected.is_empty() {
            String::new()
        } else {
            format!("\n{}\n  ", rejected.join(",\n"))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_obs::json::validate_pareto_json;

    fn tiny_pareto() -> ParetoResults {
        let kernels = [Kernel::Crc32, Kernel::Bitcount, Kernel::Sha];
        run_pareto_with(
            &Artifacts::new(),
            &kernels,
            Scale::test(),
            1.0,
            &default_candidates(),
        )
        .expect("pareto runs")
    }

    #[test]
    fn pareto_enumerates_prices_and_serializes_schema_valid_json() {
        let results = tiny_pareto();
        assert!(!results.points.is_empty(), "grid must accept candidates");
        assert!(!results.frontier.is_empty());
        assert_eq!(results.merged_hash.len(), 16);
        for p in &results.points {
            assert_eq!(p.members.len(), 3);
            assert!(p.icache_j > 0.0 && p.code_bytes > 0 && p.decoder_slots > 0);
            for m in &p.members {
                assert!(m.shared_icache_j > 0.0 && m.solo_icache_j > 0.0);
                assert!(m.regression <= results.epsilon);
            }
        }
        // Frontier points are mutually non-dominated (strict recheck).
        for &i in &results.frontier {
            for &j in &results.frontier {
                if i == j {
                    continue;
                }
                let (a, b) = (results.points[i].axes(), results.points[j].axes());
                let dominates = (0..3).all(|k| a[k] <= b[k]) && (0..3).any(|k| a[k] < b[k]);
                assert!(!dominates, "frontier point {j} dominated by {i}");
            }
        }

        let json = pareto_json(&results);
        let counts = validate_pareto_json(&json).expect("schema-valid");
        assert_eq!(counts.points, results.points.len());
        assert_eq!(counts.frontier, results.frontier.len());
        assert_eq!(counts.kernels, 3);

        let table = pareto_table(&results);
        assert_eq!(table.rows.len(), results.points.len());
        let members = pareto_member_table(&results);
        assert_eq!(members.rows.len(), 3);
    }

    #[test]
    fn negative_epsilon_rejects_every_candidate() {
        let kernels = [Kernel::Crc32, Kernel::Bitcount];
        let results = run_pareto_with(
            &Artifacts::new(),
            &kernels,
            Scale::test(),
            -0.5,
            &default_candidates()[..2],
        )
        .expect("pareto runs");
        assert!(results.points.is_empty());
        assert_eq!(results.rejected.len(), 2);
        assert!(results.frontier.is_empty());
        for r in &results.rejected {
            assert!(r.reason.contains("degrades beyond epsilon"), "{}", r.reason);
        }
        // The archive still validates: an all-rejected grid is a
        // legitimate (if alarming) record.
        let json = pareto_json(&results);
        assert!(
            validate_pareto_json(&json).is_err(),
            "empty frontier must not validate"
        );
    }
}
