//! One table builder per paper figure (the DESIGN.md experiment index).

use fits_power::ChipComponent;
use fits_scenario::ScenarioSpec;

use crate::experiment::{Config, SuiteResults};
use crate::report::{Row, Table};

/// The scenario stamp every paper figure carries: the figures all run on
/// the SA-1100 machine family (both of its I-cache sizes), so the stamp
/// names the family rather than one grid point.
fn paper_scenario() -> Option<String> {
    Some(ScenarioSpec::sa1100().tech_name.clone())
}

fn saving_columns() -> Vec<String> {
    vec![
        "FITS16".to_string(),
        "FITS8".to_string(),
        "ARM8".to_string(),
    ]
}

fn config_columns() -> Vec<String> {
    Config::ALL.iter().map(ToString::to_string).collect()
}

/// Figure 3: ARM→FITS static one-to-one mapping rate per benchmark.
#[must_use]
pub fn fig3_static_mapping(suite: &SuiteResults) -> Table {
    Table {
        id: "fig3",
        title: "ARM-to-FITS Static Mapping (1-to-1 rate)".to_string(),
        unit: "%",
        scenario: paper_scenario(),
        columns: vec!["static".to_string()],
        rows: suite
            .kernels
            .iter()
            .map(|k| Row {
                label: k.kernel.name().to_string(),
                values: vec![k.mapping_static],
            })
            .collect(),
    }
}

/// Figure 4: dynamic one-to-one mapping rate.
#[must_use]
pub fn fig4_dynamic_mapping(suite: &SuiteResults) -> Table {
    Table {
        id: "fig4",
        title: "ARM-to-FITS Dynamic Mapping (1-to-1 rate)".to_string(),
        unit: "%",
        scenario: paper_scenario(),
        columns: vec!["dynamic".to_string()],
        rows: suite
            .kernels
            .iter()
            .map(|k| Row {
                label: k.kernel.name().to_string(),
                values: vec![k.mapping_dynamic],
            })
            .collect(),
    }
}

/// Figure 5: code-size footprint normalized to ARM (= 1.0).
#[must_use]
pub fn fig5_code_size(suite: &SuiteResults) -> Table {
    Table {
        id: "fig5",
        title: "Code Size Footprint (normalized to ARM)".to_string(),
        unit: "ratio",
        scenario: paper_scenario(),
        columns: vec!["ARM".to_string(), "THUMB".to_string(), "FITS".to_string()],
        rows: suite
            .kernels
            .iter()
            .map(|k| {
                let arm = k.arm_code_bytes as f64;
                Row {
                    label: k.kernel.name().to_string(),
                    values: vec![
                        1.0,
                        k.thumb_code_bytes as f64 / arm,
                        k.fits_code_bytes as f64 / arm,
                    ],
                }
            })
            .collect(),
    }
}

/// Figure 6: I-cache power breakdown per configuration (suite averages of
/// the switching/internal/leakage shares).
#[must_use]
pub fn fig6_power_breakdown(suite: &SuiteResults) -> Table {
    let mut rows = Vec::new();
    for cfg in Config::ALL {
        let mut sw = 0.0;
        let mut int = 0.0;
        let mut lk = 0.0;
        for k in &suite.kernels {
            let (s, i, l) = k.run(cfg).icache.breakdown();
            sw += s;
            int += i;
            lk += l;
        }
        let n = suite.kernels.len().max(1) as f64;
        rows.push(Row {
            label: cfg.to_string(),
            values: vec![sw / n, int / n, lk / n],
        });
    }
    Table {
        id: "fig6",
        title: "I-Cache Power Breakdown (suite average)".to_string(),
        unit: "%",
        scenario: paper_scenario(),
        columns: vec![
            "switching".to_string(),
            "internal".to_string(),
            "leakage".to_string(),
        ],
        rows,
    }
}

fn savings_table(
    id: &'static str,
    title: &str,
    suite: &SuiteResults,
    pick: impl Fn(&crate::experiment::ConfigRun, &crate::experiment::ConfigRun) -> f64,
) -> Table {
    Table {
        id,
        title: title.to_string(),
        unit: "%",
        scenario: paper_scenario(),
        columns: saving_columns(),
        rows: suite
            .kernels
            .iter()
            .map(|k| {
                let base = k.run(Config::Arm16);
                Row {
                    label: k.kernel.name().to_string(),
                    values: [Config::Fits16, Config::Fits8, Config::Arm8]
                        .iter()
                        .map(|c| pick(k.run(*c), base))
                        .collect(),
                }
            })
            .collect(),
    }
}

/// Figure 7: I-cache switching-power saving vs ARM16.
#[must_use]
pub fn fig7_switching_saving(suite: &SuiteResults) -> Table {
    savings_table(
        "fig7",
        "I-Cache Switching Power Saving",
        suite,
        |run, base| run.icache.saving_vs(&base.icache).switching,
    )
}

/// Figure 8: I-cache internal-power saving.
#[must_use]
pub fn fig8_internal_saving(suite: &SuiteResults) -> Table {
    savings_table(
        "fig8",
        "I-Cache Internal Power Saving",
        suite,
        |run, base| run.icache.saving_vs(&base.icache).internal,
    )
}

/// Figure 9: I-cache leakage-power saving.
#[must_use]
pub fn fig9_leakage_saving(suite: &SuiteResults) -> Table {
    savings_table(
        "fig9",
        "I-Cache Leakage Power Saving",
        suite,
        |run, base| run.icache.saving_vs(&base.icache).leakage,
    )
}

/// Figure 10: I-cache peak-power saving.
#[must_use]
pub fn fig10_peak_saving(suite: &SuiteResults) -> Table {
    savings_table("fig10", "I-Cache Peak Power Saving", suite, |run, base| {
        run.icache.saving_vs(&base.icache).peak
    })
}

/// Figure 11: total I-cache power saving.
#[must_use]
pub fn fig11_total_saving(suite: &SuiteResults) -> Table {
    savings_table("fig11", "Total I-Cache Power Saving", suite, |run, base| {
        run.icache.saving_vs(&base.icache).total
    })
}

/// Figure 12: total chip power saving.
#[must_use]
pub fn fig12_chip_saving(suite: &SuiteResults) -> Table {
    savings_table("fig12", "Total Chip Power Saving", suite, |run, base| {
        run.chip.saving_vs(&base.chip)
    })
}

/// Figure 13: I-cache misses per million accesses, all four configurations.
#[must_use]
pub fn fig13_miss_rate(suite: &SuiteResults) -> Table {
    Table {
        id: "fig13",
        title: "Instruction Cache Miss Rate (misses per million accesses)".to_string(),
        unit: "ppm",
        scenario: paper_scenario(),
        columns: config_columns(),
        rows: suite
            .kernels
            .iter()
            .map(|k| Row {
                label: k.kernel.name().to_string(),
                values: Config::ALL
                    .iter()
                    .map(|c| k.run(*c).sim.icache.misses_per_million())
                    .collect(),
            })
            .collect(),
    }
}

/// Figure 14: IPC for all four configurations (dual-issue, max 2).
#[must_use]
pub fn fig14_ipc(suite: &SuiteResults) -> Table {
    Table {
        id: "fig14",
        title: "Instructions Per Cycle".to_string(),
        unit: "ipc",
        scenario: paper_scenario(),
        columns: config_columns(),
        rows: suite
            .kernels
            .iter()
            .map(|k| Row {
                label: k.kernel.name().to_string(),
                values: Config::ALL.iter().map(|c| k.run(*c).sim.ipc()).collect(),
            })
            .collect(),
    }
}

/// Supplementary: chip-power component shares for the ARM16 baseline (the
/// calibration view backing Figure 12's mapping; compare with the
/// StrongARM breakdown the paper cites).
#[must_use]
pub fn chip_breakdown(suite: &SuiteResults) -> Table {
    let n = suite.kernels.len().max(1) as f64;
    let mut rows = Vec::new();
    for cfg in Config::ALL {
        let mut shares = vec![0.0; ChipComponent::ALL.len()];
        for k in &suite.kernels {
            for (s, c) in shares.iter_mut().zip(ChipComponent::ALL) {
                *s += k.run(cfg).chip.share(c);
            }
        }
        rows.push(Row {
            label: cfg.to_string(),
            values: shares.into_iter().map(|s| s / n).collect(),
        });
    }
    Table {
        id: "chip",
        title: "Chip Power Breakdown by Component (suite average)".to_string(),
        unit: "%",
        scenario: paper_scenario(),
        columns: ChipComponent::ALL.iter().map(ToString::to_string).collect(),
        rows,
    }
}

/// All figure tables, in paper order.
#[must_use]
pub fn all_figures(suite: &SuiteResults) -> Vec<Table> {
    vec![
        fig3_static_mapping(suite),
        fig4_dynamic_mapping(suite),
        fig5_code_size(suite),
        fig6_power_breakdown(suite),
        fig7_switching_saving(suite),
        fig8_internal_saving(suite),
        fig9_leakage_saving(suite),
        fig10_peak_saving(suite),
        fig11_total_saving(suite),
        fig12_chip_saving(suite),
        fig13_miss_rate(suite),
        fig14_ipc(suite),
        chip_breakdown(suite),
    ]
}
