//! # fits-bench — the PowerFITS experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation (§5–6):
//! four simulated SA-1100 configurations (ARM16/ARM8/FITS16/FITS8) swept
//! over the 21-kernel MiBench-like suite, with one table builder per
//! figure ([`figures`]), a parallel suite runner ([`experiment`]) and a
//! plain-text reporter ([`report`]).
//!
//! Entry points:
//!
//! * `cargo run -p fits-bench --bin powerfits-repro --release` — the full
//!   reproduction at experiment scale.
//! * `cargo bench -p fits-bench` — the same tables at reduced scale
//!   (`paper_figures`), design-choice ablations (`ablations`) and
//!   micro-benchmarks (`components`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod artifacts;
pub mod cachebounds;
pub mod experiment;
pub mod figures;
pub mod pareto;
pub mod report;
pub mod stamp;
pub mod sweep;

pub use artifacts::{synth_key, Artifacts, ArtifactsPool};
pub use cachebounds::{
    cache_bounds_report, cache_bounds_report_with, kernel_cache_bounds, CacheBoundsReport,
    KernelCacheBounds, StreamBounds,
};
pub use experiment::{
    paper_matrix, run_kernel, run_kernel_scenarios, run_kernel_with, run_suite, run_suite_with,
    Config, ConfigRun, ExperimentError, KernelResults, ScenarioRun, SuiteResults,
};
pub use pareto::{
    default_candidates, pareto_json, pareto_member_table, pareto_table, price_shared_member,
    run_pareto_with, synthesize_candidate, CandidateSpec, MemberPower, ParetoPoint, ParetoResults,
    Rejection,
};
pub use report::{Row, Table};
pub use sweep::{
    isa_json, run_sweep_with, sweep_json, sweep_table, IsaAggregate, SweepPoint, SweepResults,
};
