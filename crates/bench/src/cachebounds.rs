//! Static I-cache bounds for whole kernels: the `CA` analysis from
//! `fits-verify` run over both instruction streams of every kernel,
//! audited, joined against a traced simulation, and rendered as text or as
//! a `powerfits-cache-bounds-v1` JSON report.
//!
//! This is the orchestration layer behind `fitslint --cache`: for one
//! [`ScenarioSpec`] it analyzes the native AR32 binary and the synthesized
//! FITS binary of each kernel against the scenario's I-cache geometry,
//! audits each analysis against independently rebuilt ground truth
//! (`CA001`–`CA003`), and — unless running static-only — executes a traced
//! simulation and checks the observed per-set hit/miss counters against
//! the static miss intervals ([`fits_obs::check_bounds`]). The per-access
//! energy extremes of the scenario's cache and tech node turn those
//! intervals into `[lower, upper]` fetch-energy envelopes per kernel and
//! per basic block — power bounds obtained without (or validated against)
//! simulation.

use fits_core::{decode_word, FitsOp, FitsSet};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::{check_bounds, trace_timed_run, BoundsCheck};
use fits_power::{access_energy_bounds, AccessEnergyBounds};
use fits_scenario::ScenarioSpec;
use fits_sim::{Ar32Set, Machine};
use fits_verify::{
    analyze_fits_cache, analyze_native_cache, audit, fits_cfg, json_string, native_cfg,
    CacheAnalysis, Diagnostic,
};

use fits_obs::fmt::fmt_energy;

use crate::artifacts::Artifacts;
use crate::experiment::ExperimentError;

/// Full-precision JSON float; scientific notation keeps nano-joule block
/// energies exact (and is valid JSON), where fixed 6-decimal formatting
/// would flush them to zero.
fn json_energy(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_owned()
    }
}

/// One instruction stream's analysis, audit and (optional) dynamic join.
#[derive(Clone, Debug)]
pub struct StreamBounds {
    /// The static cache analysis.
    pub analysis: CacheAnalysis,
    /// `CA` audit findings against rebuilt ground truth (empty = sound).
    pub audit: Vec<Diagnostic>,
    /// The dynamic-vs-static join, when the run was traced.
    pub check: Option<BoundsCheck>,
}

impl StreamBounds {
    /// Whether the audit is clean and every traced observation landed
    /// inside its static interval.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.audit.is_empty() && self.check.as_ref().is_none_or(BoundsCheck::is_sound)
    }
}

/// Both streams of one kernel under one scenario.
#[derive(Clone, Debug)]
pub struct KernelCacheBounds {
    /// The kernel.
    pub kernel: Kernel,
    /// The native AR32 stream.
    pub arm: StreamBounds,
    /// The synthesized FITS stream.
    pub fits: StreamBounds,
}

impl KernelCacheBounds {
    /// Whether both streams are sound.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.arm.is_sound() && self.fits.is_sound()
    }
}

/// The full `fitslint --cache` report: every requested kernel analyzed
/// under one scenario, with the scenario's per-access energy extremes.
#[derive(Clone, Debug)]
pub struct CacheBoundsReport {
    /// The scenario id the analyses ran against.
    pub scenario: String,
    /// Kernel input scale.
    pub scale: Scale,
    /// Per-access fetch-energy extremes of the scenario's I-cache.
    pub energy: AccessEnergyBounds,
    /// Per-kernel results.
    pub kernels: Vec<KernelCacheBounds>,
}

/// Analyzes one kernel's two instruction streams under `spec`.
///
/// With `traced`, each stream is additionally executed under the
/// scenario's timing model with the trace collector attached and the
/// observed per-set counters are checked against the static bounds.
///
/// # Errors
///
/// Any [`ExperimentError`] from compilation, the FITS flow, binary
/// loading, or the traced simulation.
pub fn kernel_cache_bounds(
    arts: &Artifacts,
    kernel: Kernel,
    spec: &ScenarioSpec,
    scale: Scale,
    traced: bool,
) -> Result<KernelCacheBounds, ExperimentError> {
    let program = arts.program(kernel, scale)?;
    let flow = arts.flow(kernel, scale)?;
    let params = spec.icache_abstract();
    let cfg = spec.machine_config();

    let arm_analysis = analyze_native_cache(&program, params);
    let arm_audit = audit(&arm_analysis, &native_cfg(&program), &spec.icache);
    let arm_check = if traced {
        let mut m = Machine::new(Ar32Set::load(&program));
        let (_, _, trace) = trace_timed_run(&mut m, &cfg).map_err(ExperimentError::Sim)?;
        Some(check_bounds(
            &arm_analysis,
            &trace.cache.fetches,
            &trace.cache.icache_sets,
        ))
    } else {
        None
    };

    let ops: Vec<Option<FitsOp>> = flow
        .fits
        .instrs
        .iter()
        .enumerate()
        .map(|(j, &w)| decode_word(&flow.fits.config, w, j).ok())
        .collect();
    let targets = &flow.fits.config.dicts.target;
    let fits_analysis = analyze_fits_cache(&ops, flow.fits.entry, targets, params);
    let fits_audit = audit(
        &fits_analysis,
        &fits_cfg(&ops, flow.fits.entry, targets),
        &spec.icache,
    );
    let fits_check = if traced {
        let set = FitsSet::load(&flow.fits).map_err(ExperimentError::Decode)?;
        let mut m = Machine::new(set);
        let (_, _, trace) = trace_timed_run(&mut m, &cfg).map_err(ExperimentError::Sim)?;
        Some(check_bounds(
            &fits_analysis,
            &trace.cache.fetches,
            &trace.cache.icache_sets,
        ))
    } else {
        None
    };

    Ok(KernelCacheBounds {
        kernel,
        arm: StreamBounds {
            analysis: arm_analysis,
            audit: arm_audit,
            check: arm_check,
        },
        fits: StreamBounds {
            analysis: fits_analysis,
            audit: fits_audit,
            check: fits_check,
        },
    })
}

/// Analyzes a set of kernels under one scenario and assembles the report.
///
/// # Errors
///
/// The first [`ExperimentError`] any kernel raises.
pub fn cache_bounds_report(
    kernels: &[Kernel],
    spec: &ScenarioSpec,
    scale: Scale,
    traced: bool,
) -> Result<CacheBoundsReport, ExperimentError> {
    let arts = Artifacts::new().with_synth(spec.synth.clone());
    cache_bounds_report_with(&arts, kernels, spec, scale, traced)
}

/// [`cache_bounds_report`] against a caller-supplied artifact cache —
/// the entry point for callers that pool artifacts across requests (the
/// `fitsd` daemon's `/analyze` endpoint).
///
/// # Errors
///
/// The first [`ExperimentError`] any kernel raises.
pub fn cache_bounds_report_with(
    arts: &Artifacts,
    kernels: &[Kernel],
    spec: &ScenarioSpec,
    scale: Scale,
    traced: bool,
) -> Result<CacheBoundsReport, ExperimentError> {
    let mut out = Vec::with_capacity(kernels.len());
    for &kernel in kernels {
        out.push(kernel_cache_bounds(arts, kernel, spec, scale, traced)?);
    }
    Ok(CacheBoundsReport {
        scenario: spec.id().to_string(),
        scale,
        energy: access_energy_bounds(&spec.icache, &spec.tech),
        kernels: out,
    })
}

impl CacheBoundsReport {
    /// Whether every kernel's every stream is sound.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.kernels.iter().all(KernelCacheBounds::is_sound)
    }

    /// Total audit findings plus dynamic bound violations.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.kernels
            .iter()
            .flat_map(|k| [&k.arm, &k.fits])
            .map(|s| s.audit.len() + s.check.as_ref().map_or(0, |c| c.violations.len()))
            .sum()
    }

    /// Renders the report as human-readable text.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "cache bounds [{}] scale n={}, {} kernel(s)\n",
            self.scenario,
            self.scale.n,
            self.kernels.len()
        );
        for k in &self.kernels {
            out.push_str(&format!("{}\n", k.kernel.name()));
            for (tag, stream) in [("arm ", &k.arm), ("fits", &k.fits)] {
                out.push_str(&render_stream_text(tag, stream, &self.energy));
            }
        }
        out.push_str(&format!(
            "summary: {} ({} violation(s))\n",
            if self.is_sound() { "sound" } else { "UNSOUND" },
            self.violation_count()
        ));
        out
    }

    /// Renders the report as a `powerfits-cache-bounds-v1` JSON document.
    #[must_use]
    pub fn render_json(&self) -> String {
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| {
                format!(
                    "{{\"kernel\":{},\"arm\":{},\"fits\":{}}}",
                    json_string(k.kernel.name()),
                    render_stream_json(&k.arm, &self.energy),
                    render_stream_json(&k.fits, &self.energy)
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"powerfits-cache-bounds-v1\",\"preset\":{},\"scale\":{},\
             \"kernels\":[{}],\"sound\":{}}}",
            json_string(&self.scenario),
            json_string(&self.scale.n.to_string()),
            kernels.join(","),
            self.is_sound()
        )
    }
}

fn render_stream_text(tag: &str, stream: &StreamBounds, energy: &AccessEnergyBounds) -> String {
    let (hit, miss, persist, unknown, unreach) = stream.analysis.word_counts();
    let mut out = format!(
        "  {tag}: words {} = {hit} hit / {miss} miss / {persist} persistent / \
         {unknown} unknown / {unreach} unreachable; blocks {}; audit {}\n",
        stream.analysis.words.len(),
        stream.analysis.blocks.len(),
        if stream.audit.is_empty() {
            "clean".to_string()
        } else {
            format!("{} finding(s)", stream.audit.len())
        }
    );
    for d in &stream.audit {
        out.push_str(&format!("        {}: {}\n", d.code, d.message));
    }
    if let Some(check) = &stream.check {
        let (lo, hi) = check.miss_interval();
        let (e_lo, e_hi) = check.energy_envelope(energy);
        out.push_str(&format!(
            "        observed {} accesses, {} misses in [{lo}, {hi}]; \
             fetch energy [{}, {}]\n",
            check.accesses(),
            check.misses(),
            fmt_energy(e_lo),
            fmt_energy(e_hi)
        ));
        for v in &check.violations {
            out.push_str(&format!("        VIOLATION: {v}\n"));
        }
    }
    // The three widest per-execution block envelopes: where static
    // uncertainty concentrates.
    let mut widest: Vec<(u32, f64, f64)> = stream
        .analysis
        .block_envelopes(energy)
        .into_iter()
        .zip(&stream.analysis.blocks)
        .filter(|(_, b)| b.reachable)
        .map(|((lo, hi), b)| (b.addr, lo, hi))
        .collect();
    widest.sort_by(|a, b| (b.2 - b.1).total_cmp(&(a.2 - a.1)));
    widest.truncate(3);
    if !widest.is_empty() {
        let items: Vec<String> = widest
            .iter()
            .map(|(addr, lo, hi)| format!("{addr:#x} [{}, {}]", fmt_energy(*lo), fmt_energy(*hi)))
            .collect();
        out.push_str(&format!(
            "        widest block envelopes (per execution): {}\n",
            items.join(", ")
        ));
    }
    out
}

fn render_stream_json(stream: &StreamBounds, energy: &AccessEnergyBounds) -> String {
    let (hit, miss, persist, unknown, unreach) = stream.analysis.word_counts();
    let mut out = format!(
        "{{\"words\":{{\"always_hit\":{hit},\"always_miss\":{miss},\
         \"persistent\":{persist},\"unknown\":{unknown},\"unreachable\":{unreach}}},\
         \"audit_findings\":{},\"blocks\":{}",
        stream.audit.len(),
        stream.analysis.blocks.len()
    );
    if let Some(check) = &stream.check {
        let (lo, hi) = check.miss_interval();
        let (e_lo, e_hi) = check.energy_envelope(energy);
        let violations: Vec<String> = check.violations.iter().map(|v| json_string(v)).collect();
        out.push_str(&format!(
            ",\"bounds\":{{\"accesses\":{},\"misses\":{},\"miss_min\":{lo},\"miss_max\":{hi},\
             \"energy_lo_j\":{},\"energy_hi_j\":{},\"violations\":[{}]}}",
            check.accesses(),
            check.misses(),
            json_energy(e_lo),
            json_energy(e_hi),
            violations.join(",")
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_obs::json::validate_cache_bounds_json;

    #[test]
    fn report_is_sound_and_its_json_validates() {
        let spec = ScenarioSpec::sa1100();
        let report =
            cache_bounds_report(&Kernel::ALL[..2], &spec, Scale::test(), true).expect("report");
        assert!(report.is_sound(), "text:\n{}", report.render_text());
        let counts = validate_cache_bounds_json(&report.render_json()).expect("schema");
        assert_eq!(counts.kernels, 2);
        assert_eq!(counts.traced_streams, 4);
        assert_eq!(counts.violations, 0);
    }

    #[test]
    fn static_only_report_omits_the_dynamic_join() {
        let spec = ScenarioSpec::small_embedded();
        let report =
            cache_bounds_report(&Kernel::ALL[..1], &spec, Scale::test(), false).expect("report");
        assert!(report.kernels[0].arm.check.is_none());
        let counts = validate_cache_bounds_json(&report.render_json()).expect("schema");
        assert_eq!(counts.traced_streams, 0);
    }
}
