//! `fitstrace` — end-to-end trace of one kernel through the FITS flow.
//!
//! Runs the full pipeline (compile → profile → synthesize → translate →
//! verify → execute) with `fits-obs` span timing attached, then traces one
//! ARM run and one FITS run under the SA-1100 timing model and joins the
//! per-PC histograms against the I-cache power model. The report answers
//! "where does the power go": a per-phase timing tree, an ARM-vs-FITS
//! summary, a per-function energy rollup and the top-N hot basic blocks
//! with attributed switching/internal/leakage energy for both ISAs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fits-bench --bin fitstrace -- crc32
//! cargo run --release -p fits-bench --bin fitstrace -- sha --scale 256 --top 15
//! cargo run --release -p fits-bench --bin fitstrace -- crc32 --icache 8k \
//!     --json trace.jsonl
//! cargo run --release -p fits-bench --bin fitstrace -- crc32 --scenario 65nm
//! cargo run --release -p fits-bench --bin fitstrace -- --smoke   # CI check
//! ```
//!
//! `--json` writes a JSONL event stream (`meta`, `span`, `block`,
//! `summary` lines) and re-validates it with `fits_obs::json` before
//! reporting success; `--smoke` is the CI mode — a small fixed run whose
//! export must pass schema validation.

use std::sync::Arc;

use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::fmt::{fmt_count, fmt_energy};
use fits_obs::json::{escape, validate_trace_jsonl};
use fits_obs::{attribute_kernel, trace_timed_run, Attribution, SpanRegistry};
use fits_power::{cache_power, CachePower};
use fits_scenario::ScenarioSpec;
use fits_sim::{Ar32Set, Machine, SimResult};

struct Options {
    kernel: Kernel,
    scale: Scale,
    scenario: ScenarioSpec,
    top: usize,
    json: Option<String>,
    smoke: bool,
}

fn parse_args() -> Options {
    let mut kernel = None;
    let mut icache_bytes = None;
    let mut opts = Options {
        kernel: Kernel::Crc32,
        scale: Scale::experiment(),
        scenario: ScenarioSpec::sa1100(),
        top: 10,
        json: None,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--scale needs a value"));
                let n = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --scale value: {v}")));
                opts.scale = Scale { n };
            }
            "--icache" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--icache needs 8k or 16k"));
                icache_bytes = match v.as_str() {
                    "8k" => Some(8 * 1024),
                    "16k" => Some(16 * 1024),
                    other => usage(&format!("invalid --icache value: {other} (use 8k or 16k)")),
                };
            }
            "--scenario" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--scenario needs a preset name"));
                opts.scenario = match ScenarioSpec::preset(&v) {
                    Some(spec) => spec,
                    None => usage(&format!(
                        "unknown scenario preset: {v} (presets: {})",
                        fits_scenario::PRESET_NAMES.join(" ")
                    )),
                };
            }
            "--top" => {
                let v = args.next().unwrap_or_else(|| usage("--top needs a count"));
                opts.top = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --top value: {v}")));
            }
            "--json" => {
                opts.json = Some(args.next().unwrap_or_else(|| usage("--json needs a path")));
            }
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => usage(""),
            name => {
                let k = Kernel::from_name(name)
                    .unwrap_or_else(|| usage(&format!("unknown kernel: {name}")));
                kernel = Some(k);
            }
        }
    }
    match kernel {
        Some(k) => opts.kernel = k,
        None if opts.smoke => {} // smoke defaults to crc32
        None => usage("a kernel name is required (or --smoke)"),
    }
    if opts.smoke {
        // Small, fast, deterministic: the CI gate checks the machinery and
        // the export schema, not the numbers.
        opts.scale = Scale::test();
        opts.top = opts.top.min(5);
    }
    if let Some(bytes) = icache_bytes {
        opts.scenario = opts
            .scenario
            .with_icache_bytes(bytes)
            .unwrap_or_else(|e| usage(&format!("--icache {bytes} does not fit the scenario: {e}")));
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("fitstrace: {err}");
    }
    eprintln!(
        "usage: fitstrace KERNEL [--scale N] [--icache 8k|16k] [--scenario PRESET] \
         [--top N] [--json PATH] [--smoke]"
    );
    eprintln!("kernels: {}", kernel_names().join(" "));
    eprintln!("scenarios: {}", fits_scenario::PRESET_NAMES.join(" "));
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn kernel_names() -> Vec<&'static str> {
    Kernel::ALL.iter().map(|k| k.name()).collect()
}

fn fail(what: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("fitstrace: {what}: {err}");
    std::process::exit(1);
}

/// A finite `f64` as a JSON number (full float round-trip precision).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "0".to_owned()
    }
}

struct IsaReport {
    isa: &'static str,
    sim: SimResult,
    power: CachePower,
}

fn main() {
    let opts = parse_args();
    let sa = opts.scenario.machine_config();
    let tech = opts.scenario.tech.clone();
    let reg = SpanRegistry::new();

    eprintln!(
        "fitstrace: {} at n={}, scenario {}",
        opts.kernel.name(),
        opts.scale.n,
        opts.scenario.id()
    );

    // --- Traced pipeline ----------------------------------------------
    let outer = reg.enter("fitstrace");
    let program = reg.time("compile", || opts.kernel.compile(opts.scale));
    let program = match program {
        Ok(p) => p,
        Err(e) => fail("compile", &e),
    };
    let flow_outcome = {
        let _flow = reg.enter("flow");
        fits_verify::verified_flow()
            .with_observer(Arc::new(reg.clone()))
            .run(&program)
    };
    let flow_outcome = match flow_outcome {
        Ok(f) => f,
        Err(e) => fail("flow", &e),
    };

    let (arm, fits) = {
        let _sim = reg.enter("simulate");
        let arm = reg.time("arm", || {
            trace_timed_run(&mut Machine::new(Ar32Set::load(&program)), &sa)
        });
        let fits = reg.time("fits", || {
            let set = match fits_core::FitsSet::load(&flow_outcome.fits) {
                Ok(s) => s,
                Err(e) => fail("fits decode", &e),
            };
            trace_timed_run(&mut Machine::new(set), &sa)
        });
        (arm, fits)
    };
    let (_, arm_sim, arm_trace) = match arm {
        Ok(r) => r,
        Err(e) => fail("arm simulation", &e),
    };
    let (_, fits_sim, fits_trace) = match fits {
        Ok(r) => r,
        Err(e) => fail("fits simulation", &e),
    };

    let (attr, arm_rep, fits_rep) = reg.time("power", || {
        let arm_power = cache_power(&sa.icache, &arm_sim.icache, arm_sim.cycles, &tech);
        let fits_power = cache_power(&sa.icache, &fits_sim.icache, fits_sim.cycles, &tech);
        let attr = attribute_kernel(
            &program,
            &flow_outcome.mapping.expansion,
            (&arm_trace, &arm_power),
            (&fits_trace, &fits_power),
        )
        .with_scenario(opts.scenario.id());
        (
            attr,
            IsaReport {
                isa: "arm",
                sim: arm_sim,
                power: arm_power,
            },
            IsaReport {
                isa: "fits",
                sim: fits_sim,
                power: fits_power,
            },
        )
    });
    drop(outer);

    // --- Text report ---------------------------------------------------
    println!(
        "fitstrace: {} (n={}, scenario {}, ARM vs FITS)",
        opts.kernel.name(),
        opts.scale.n,
        opts.scenario.id(),
    );
    println!("\nphase timings:");
    print!("{}", indent(&reg.render(), 2));

    println!("\nper-ISA summary (I-cache power):");
    println!(
        "  {:<5} {:>14} {:>14} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "isa", "cycles", "retired", "i$ accesses", "i$ misses", "switching", "internal", "leakage"
    );
    for rep in [&arm_rep, &fits_rep] {
        println!(
            "  {:<5} {:>14} {:>14} {:>12} {:>10} {:>12} {:>12} {:>12}",
            rep.isa,
            fmt_count(rep.sim.cycles),
            fmt_count(rep.sim.retired),
            fmt_count(rep.sim.icache.accesses),
            fmt_count(rep.sim.icache.misses),
            fmt_energy(rep.power.switching_j),
            fmt_energy(rep.power.internal_j),
            fmt_energy(rep.power.leakage_j),
        );
    }

    println!("\nper-function energy (total attributed I-cache energy):");
    for (func, a, f) in attr.by_function() {
        if a.retired == 0 && f.retired == 0 {
            continue;
        }
        println!(
            "  {:<18} arm {:>12}  fits {:>12}",
            func,
            fmt_energy(a.total_j()),
            fmt_energy(f.total_j()),
        );
    }

    let top = attr.top_n(opts.top);
    println!(
        "\ntop {} hot blocks (by attributed I-cache energy, both ISAs):",
        top.len()
    );
    println!(
        "  {:<10} {:<18} {:>12} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "addr",
        "block",
        "retired",
        "sw(arm)",
        "int(arm)",
        "lk(arm)",
        "sw(fits)",
        "int(fits)",
        "lk(fits)"
    );
    for &i in &top {
        let (a, f) = (&attr.arm[i], &attr.fits[i]);
        println!(
            "  {:<10} {:<18} {:>12} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            format!("{:#x}", attr.blocks[i].addr()),
            attr.label(i),
            fmt_count(a.retired),
            fmt_energy(a.switching_j),
            fmt_energy(a.internal_j),
            fmt_energy(a.leakage_j),
            fmt_energy(f.switching_j),
            fmt_energy(f.internal_j),
            fmt_energy(f.leakage_j),
        );
    }

    // --- JSONL export --------------------------------------------------
    let json_path = opts.json.clone().or_else(|| {
        opts.smoke.then(|| {
            std::env::temp_dir()
                .join("fitstrace-smoke.jsonl")
                .to_string_lossy()
                .into_owned()
        })
    });
    if let Some(path) = json_path {
        let text = export_jsonl(&opts, &reg, &attr, &arm_rep, &fits_rep);
        match validate_trace_jsonl(&text) {
            Ok(counts) => {
                if let Err(e) = std::fs::write(&path, &text) {
                    fail(&format!("write {path}"), &e);
                }
                eprintln!(
                    "fitstrace: wrote {path} ({} spans, {} blocks, {} summaries; schema ok)",
                    counts.spans, counts.blocks, counts.summaries
                );
                if opts.smoke {
                    println!("fitstrace: smoke ok");
                }
            }
            Err(e) => fail("JSONL schema validation", &e),
        }
    }
}

fn indent(text: &str, by: usize) -> String {
    text.lines()
        .map(|l| format!("{:by$}{l}\n", ""))
        .collect::<String>()
}

fn cost_json(c: &fits_obs::BlockCost) -> String {
    format!(
        "{{\"retired\":{},\"fetches\":{},\"switching_j\":{},\"internal_j\":{},\"leakage_j\":{}}}",
        c.retired,
        c.fetches,
        jnum(c.switching_j),
        jnum(c.internal_j),
        jnum(c.leakage_j)
    )
}

fn export_jsonl(
    opts: &Options,
    reg: &SpanRegistry,
    attr: &Attribution,
    arm: &IsaReport,
    fits: &IsaReport,
) -> String {
    let mut lines = Vec::new();
    lines.push(format!(
        "{{\"type\":\"meta\",\"kernel\":\"{}\",\"scale\":\"{}\",\
         \"icache\":\"{}\",\"scenario\":\"{}\"}}",
        escape(opts.kernel.name()),
        opts.scale.n,
        opts.scenario.icache.size_bytes,
        escape(opts.scenario.id())
    ));
    reg.visit(|path, span| {
        lines.push(format!(
            "{{\"type\":\"span\",\"path\":\"{}\",\"ms\":{},\"count\":{}}}",
            escape(path),
            jnum(span.nanos as f64 / 1.0e6),
            span.count
        ));
    });
    for i in 0..attr.blocks.len() {
        let (a, f) = (&attr.arm[i], &attr.fits[i]);
        if a.retired == 0 && f.retired == 0 {
            continue;
        }
        lines.push(format!(
            "{{\"type\":\"block\",\"addr\":\"{:#x}\",\"label\":\"{}\",\"func\":\"{}\",\"arm\":{},\"fits\":{}}}",
            attr.blocks[i].addr(),
            escape(&attr.label(i)),
            escape(&attr.blocks[i].func),
            cost_json(a),
            cost_json(f)
        ));
    }
    for rep in [arm, fits] {
        lines.push(format!(
            "{{\"type\":\"summary\",\"isa\":\"{}\",\"cycles\":{},\"retired\":{},\
             \"switching_j\":{},\"internal_j\":{},\"leakage_j\":{}}}",
            rep.isa,
            rep.sim.cycles,
            rep.sim.retired,
            jnum(rep.power.switching_j),
            jnum(rep.power.internal_j),
            jnum(rep.power.leakage_j)
        ));
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}
