//! The full PowerFITS reproduction: every figure at experiment scale.
//!
//! `--trace` additionally times every flow stage across the suite with a
//! `fits-obs` span registry and prints the merged tree afterwards.

use std::sync::Arc;

use fits_bench::{figures, run_suite_with, Artifacts};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::SpanRegistry;

fn main() {
    let mut trace = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--trace" => trace = true,
            "--help" | "-h" => {
                eprintln!("usage: powerfits-repro [--trace]");
                return;
            }
            other => {
                eprintln!("powerfits-repro: unknown argument: {other}");
                eprintln!("usage: powerfits-repro [--trace]");
                std::process::exit(2);
            }
        }
    }

    let start = std::time::Instant::now();
    let scale = Scale::experiment();
    eprintln!(
        "running {} kernels x 4 configurations at scale n={} ...",
        Kernel::ALL.len(),
        scale.n
    );
    let reg = trace.then(SpanRegistry::new);
    let artifacts = match &reg {
        Some(reg) => Artifacts::new().with_flow_observer(Arc::new(reg.clone())),
        None => Artifacts::new(),
    };
    let suite = match run_suite_with(&artifacts, Kernel::ALL, scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "PowerFITS reproduction — all paper figures (scale n={})",
        scale.n
    );
    println!("================================================================");
    for table in figures::all_figures(&suite) {
        println!("{table}");
    }
    if let Some(reg) = &reg {
        eprintln!(
            "flow stage timings (suite-wide, merged by stage):\n{}",
            reg.render()
        );
    }
    eprintln!("done in {:.1}s", start.elapsed().as_secs_f64());
}
