//! The full PowerFITS reproduction: every figure at experiment scale.

use fits_bench::{figures, run_suite};
use fits_kernels::kernels::{Kernel, Scale};

fn main() {
    let start = std::time::Instant::now();
    let scale = Scale::experiment();
    eprintln!(
        "running {} kernels x 4 configurations at scale n={} ...",
        Kernel::ALL.len(),
        scale.n
    );
    let suite = match run_suite(Kernel::ALL, scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "PowerFITS reproduction — all paper figures (scale n={})",
        scale.n
    );
    println!("================================================================");
    for table in figures::all_figures(&suite) {
        println!("{table}");
    }
    eprintln!("done in {:.1}s", start.elapsed().as_secs_f64());
}
