//! `fitspareto` — the multi-application Pareto frontier report.
//!
//! Synthesizes one *shared* FITS ISA per candidate knob setting over the
//! kernel suite (merged equal-weight profile, per-kernel regression
//! bounds), prices every accepted candidate at the SA-1100 reference
//! scenario on the execute-once/replay-many engine, and reports the
//! non-dominated frontier over (total code size, total I-cache fetch
//! energy, decoder slots) next to the per-app baselines.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fits-bench --bin fitspareto -- --suite   # 21 kernels
//! cargo run --release -p fits-bench --bin fitspareto -- --scale 256
//! cargo run --release -p fits-bench --bin fitspareto -- --epsilon 0.5
//! cargo run --release -p fits-bench --bin fitspareto -- --out pareto.json
//! cargo run --release -p fits-bench --bin fitspareto -- --smoke  # CI gate
//! ```
//!
//! `--suite` (the default) runs the full 21-kernel suite at test scale
//! over the 3×3 (space budget × dictionary width) candidate grid;
//! `--smoke` shrinks it to three kernels and four candidates. The
//! candidate and per-app-vs-shared tables print to stdout and the
//! archive is written to `PARETO.json` (`powerfits-pareto-v1`),
//! schema-validated — including a frontier dominance recheck — before
//! the write.

use fits_bench::{
    default_candidates, pareto_json, pareto_member_table, pareto_table, run_pareto_with, Artifacts,
};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::json::validate_pareto_json;

struct Options {
    scale: Scale,
    epsilon: f64,
    out: String,
    smoke: bool,
    kernels: Option<Vec<Kernel>>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: Scale::test(),
        epsilon: 1.0,
        out: "PARETO.json".to_owned(),
        smoke: false,
        kernels: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--suite" => {} // the default; accepted for self-describing CI lines
            "--scale" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--scale needs a value"));
                let n = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --scale value: {v}")));
                opts.scale = Scale { n };
            }
            "--epsilon" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--epsilon needs a value"));
                opts.epsilon = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --epsilon value: {v}")));
            }
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| usage("--out needs a path"));
            }
            "--kernels" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--kernels needs a comma-separated list"));
                let kernels: Vec<Kernel> = v
                    .split(',')
                    .map(|name| {
                        Kernel::from_name(name.trim())
                            .unwrap_or_else(|| usage(&format!("unknown kernel {name:?}")))
                    })
                    .collect();
                opts.kernels = Some(kernels);
            }
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("fitspareto: {err}");
    }
    eprintln!(
        "usage: fitspareto [--suite] [--scale N] [--epsilon E] [--out PATH] \
         [--kernels a,b,c] [--smoke]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn fail(what: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("fitspareto: {what}: {err}");
    std::process::exit(1);
}

fn main() {
    let opts = parse_args();
    let kernels: &[Kernel] = match (&opts.kernels, opts.smoke) {
        (Some(list), _) => list,
        (None, true) => &[Kernel::Crc32, Kernel::Bitcount, Kernel::Sha],
        (None, false) => Kernel::ALL,
    };
    let candidates = if opts.smoke {
        default_candidates().into_iter().take(4).collect()
    } else {
        default_candidates()
    };

    eprintln!(
        "fitspareto: {} kernels x {} candidates at n={} (epsilon {})",
        kernels.len(),
        candidates.len(),
        opts.scale.n,
        opts.epsilon,
    );

    let started = std::time::Instant::now();
    let results = match run_pareto_with(
        &Artifacts::new(),
        kernels,
        opts.scale,
        opts.epsilon,
        &candidates,
    ) {
        Ok(r) => r,
        Err(e) => fail("pareto enumeration", &e),
    };
    eprintln!(
        "fitspareto: {} accepted, {} rejected, frontier {} in {:.2?} (merged profile {})",
        results.points.len(),
        results.rejected.len(),
        results.frontier.len(),
        started.elapsed(),
        results.merged_hash,
    );

    println!("{}", pareto_table(&results));
    println!("{}", pareto_member_table(&results));

    let json = pareto_json(&results);
    match validate_pareto_json(&json) {
        Ok(counts) => {
            if let Err(e) = std::fs::write(&opts.out, &json) {
                fail(&format!("write {}", opts.out), &e);
            }
            eprintln!(
                "fitspareto: wrote {} ({} kernels, {} points, frontier {}; schema ok)",
                opts.out, counts.kernels, counts.points, counts.frontier
            );
            if opts.smoke {
                println!("fitspareto: smoke ok");
            }
        }
        Err(e) => fail("PARETO.json schema validation", &e),
    }
}
