//! `fitssweep` — the kernel suite over a scenario grid.
//!
//! Sweeps FITS-vs-ARM energy across a cache-geometry × tech-node grid on
//! the execute-once/replay-many engine: each kernel runs **twice**
//! functionally (one native run, one FITS run) no matter how many grid
//! points are measured — geometries are timing replays of the retired
//! stream, tech nodes are free re-pricings of an existing replay.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fits-bench --bin fitssweep          # full grid
//! cargo run --release -p fits-bench --bin fitssweep -- --scale 256
//! cargo run --release -p fits-bench --bin fitssweep -- --out sweep.json
//! cargo run --release -p fits-bench --bin fitssweep -- --smoke   # CI gate
//! ```
//!
//! The default grid is three I-cache sizes (16k / 8k / 4k) × two tech
//! nodes (`sa1100` 0.35 um, `65nm`) over the full 21-kernel suite at
//! experiment scale; `--smoke` shrinks it to a 2×2 grid at test scale.
//! The summary table prints to stdout and the archive is written to
//! `SWEEP.json` (`powerfits-sweep-v1`), schema-validated before the write.

use fits_bench::{run_sweep_with, sweep_json, sweep_table, Artifacts};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::json::validate_sweep_json;
use fits_power::TechParams;
use fits_scenario::{ScenarioMatrix, ScenarioSpec};

struct Options {
    scale: Scale,
    out: String,
    smoke: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: Scale::experiment(),
        out: "SWEEP.json".to_owned(),
        smoke: false,
    };
    let mut scale_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--scale needs a value"));
                let n = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --scale value: {v}")));
                opts.scale = Scale { n };
                scale_set = true;
            }
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| usage("--out needs a path"));
            }
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if opts.smoke && !scale_set {
        opts.scale = Scale::test();
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("fitssweep: {err}");
    }
    eprintln!("usage: fitssweep [--scale N] [--out PATH] [--smoke]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn fail(what: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("fitssweep: {what}: {err}");
    std::process::exit(1);
}

fn grid(smoke: bool) -> ScenarioMatrix {
    let sizes: &[u32] = if smoke {
        &[16 * 1024, 8 * 1024]
    } else {
        &[16 * 1024, 8 * 1024, 4 * 1024]
    };
    let tech = [
        ("sa1100".to_owned(), TechParams::sa1100()),
        ("65nm".to_owned(), TechParams::modern_65nm()),
    ];
    match ScenarioMatrix::grid(&ScenarioSpec::sa1100(), sizes, &tech) {
        Ok(m) => m,
        Err(e) => fail("grid construction", &e),
    }
}

fn main() {
    let opts = parse_args();
    let matrix = grid(opts.smoke);
    let kernels = Kernel::ALL;

    eprintln!(
        "fitssweep: {} kernels x {} scenarios at n={} ({} functional executions per kernel)",
        kernels.len(),
        matrix.len(),
        opts.scale.n,
        2
    );

    let started = std::time::Instant::now();
    let results = match run_sweep_with(&Artifacts::new(), kernels, opts.scale, &matrix) {
        Ok(r) => r,
        Err(e) => fail("sweep", &e),
    };
    eprintln!("fitssweep: sweep done in {:.2?}", started.elapsed());

    println!("{}", sweep_table(&results));

    let json = sweep_json(&results);
    match validate_sweep_json(&json) {
        Ok(counts) => {
            if let Err(e) = std::fs::write(&opts.out, &json) {
                fail(&format!("write {}", opts.out), &e);
            }
            eprintln!(
                "fitssweep: wrote {} ({} kernels, {} scenarios; schema ok)",
                opts.out, counts.kernels, counts.scenarios
            );
            if opts.smoke {
                println!("fitssweep: smoke ok");
            }
        }
        Err(e) => fail("SWEEP.json schema validation", &e),
    }
}
