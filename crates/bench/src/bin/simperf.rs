//! `simperf` — simulator throughput and suite wall-clock harness.
//!
//! Measures what the experiment harness actually pays for: functional
//! simulation speed (MIPS), trace-driven timing speed (single model and the
//! execute-once/replay-many path), and the wall-clock of a full 21-kernel ×
//! 4-configuration suite run at test scale. Results are written to
//! `BENCH.json` (hand-rolled JSON; the workspace has no serde) so CI can
//! archive a throughput record per commit without gating on the numbers,
//! and one compact line per run is appended to `BENCH_history.jsonl` —
//! the cumulative, commit-stamped record regressions are hunted in.
//! Each record carries a `meta` stamp (git commit, Unix timestamp, host,
//! OS, arch) so archived numbers stay attributable.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fits-bench --bin simperf              # full run
//! cargo run --release -p fits-bench --bin simperf -- --smoke   # quick CI run
//! cargo run --release -p fits-bench --bin simperf -- \
//!     --baseline-seconds 1.135                                 # print speedup
//! cargo run --release -p fits-bench --bin simperf -- --out bench/BENCH.json
//! cargo run --release -p fits-bench --bin simperf -- --trace   # stage timings
//! cargo run --release -p fits-bench --bin simperf -- --no-history
//! cargo run --release -p fits-bench --bin simperf -- \
//!     --compare --max-regress 0.15      # gate on the previous history entry
//! ```
//!
//! `--compare` reads the last same-mode line of `BENCH_history.jsonl`
//! *before* appending this run, prints the per-metric MIPS deltas, and
//! exits nonzero when any metric fell by more than `--max-regress`
//! (default 0.1 = 10%). With no previous entry the gate passes trivially.
//!
//! Every suite pass constructs a fresh [`Artifacts`] cache (inside
//! [`run_suite`]), so repeated passes measure the same cold-cache work and
//! stay comparable across commits.

use std::fmt;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use fits_bench::stamp::{git_commit, hostname, json_f64, meta_json, unix_timestamp};
use fits_bench::{run_suite, run_suite_with, Artifacts, ExperimentError};
use fits_core::{FitsFlow, FitsSet};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::json::escape;
use fits_obs::SpanRegistry;
use fits_scenario::{ScenarioError, ScenarioSpec};
use fits_sim::{Ar32Set, CompiledProgram, Machine, Sa1100Config};

/// The kernel the MIPS probes execute. SHA has the largest dynamic
/// instruction count per unit of compile time in the suite.
const PROBE_KERNEL: Kernel = Kernel::Sha;

/// Everything that can stop a `simperf` run. Failures exit with code 1
/// and a one-line diagnosis; they never panic.
#[derive(Debug)]
enum SimperfError {
    /// A pipeline stage failed (compile, flow, simulation, decode).
    Pipeline(ExperimentError),
    /// A scenario could not be derived (bad sweep geometry).
    Scenario(ScenarioError),
    /// An archive file could not be written.
    Io { path: String, err: std::io::Error },
    /// `--compare` found a throughput regression beyond `--max-regress`.
    Regression(Vec<String>),
}

impl fmt::Display for SimperfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimperfError::Pipeline(e) => write!(f, "pipeline: {e}"),
            SimperfError::Scenario(e) => write!(f, "scenario: {e}"),
            SimperfError::Io { path, err } => write!(f, "write {path}: {err}"),
            SimperfError::Regression(lines) => {
                write!(f, "throughput regression:\n  {}", lines.join("\n  "))
            }
        }
    }
}

impl std::error::Error for SimperfError {}

struct Options {
    smoke: bool,
    out: String,
    history: Option<String>,
    baseline_seconds: Option<f64>,
    trace: bool,
    compare: bool,
    max_regress: f64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        out: "BENCH.json".to_owned(),
        history: Some("BENCH_history.jsonl".to_owned()),
        baseline_seconds: None,
        trace: false,
        compare: false,
        max_regress: 0.1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--trace" => opts.trace = true,
            "--out" => opts.out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--history" => {
                opts.history = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--history needs a path")),
                );
            }
            "--no-history" => opts.history = None,
            "--compare" => opts.compare = true,
            "--max-regress" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--max-regress needs a fraction"));
                opts.max_regress = v
                    .parse()
                    .ok()
                    .filter(|f: &f64| f.is_finite() && *f >= 0.0)
                    .unwrap_or_else(|| usage(&format!("invalid --max-regress value: {v}")));
            }
            "--baseline-seconds" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--baseline-seconds needs a value"));
                opts.baseline_seconds =
                    Some(v.parse().unwrap_or_else(|_| {
                        usage(&format!("invalid --baseline-seconds value: {v}"))
                    }));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("simperf: {err}");
    }
    eprintln!(
        "usage: simperf [--smoke] [--trace] [--out PATH] [--history PATH] [--no-history] \
         [--baseline-seconds SECS] [--compare] [--max-regress FRAC]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Runs `f` repeatedly until `budget_secs` of wall time elapse (at least
/// once) and returns (total seconds, calls); a failing call aborts the
/// measurement.
fn measure(
    budget_secs: f64,
    mut f: impl FnMut() -> Result<(), SimperfError>,
) -> Result<(f64, u32), SimperfError> {
    let start = Instant::now();
    let mut calls = 0u32;
    loop {
        f()?;
        calls += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= budget_secs {
            return Ok((elapsed, calls));
        }
    }
}

fn main() {
    let opts = parse_args();
    if let Err(e) = run(&opts) {
        eprintln!("simperf: {e}");
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_lines)]
fn run(opts: &Options) -> Result<(), SimperfError> {
    let scale = Scale::test();
    let scenario = ScenarioSpec::sa1100();
    let budget = if opts.smoke { 0.05 } else { 0.4 };
    let suite_passes = if opts.smoke { 1 } else { 3 };

    eprintln!(
        "simperf: probe kernel {} at n={} ({} mode)",
        PROBE_KERNEL.name(),
        scale.n,
        if opts.smoke { "smoke" } else { "full" }
    );

    // --- Simulator throughput probes ----------------------------------
    let program = PROBE_KERNEL
        .compile(scale)
        .map_err(|e| SimperfError::Pipeline(ExperimentError::Compile(e)))?;
    let steps = Machine::new(Ar32Set::load(&program))
        .run()
        .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?
        .steps;
    let multi_cfgs: Vec<Sa1100Config> = [16 * 1024, 8 * 1024, 4 * 1024, 2 * 1024]
        .into_iter()
        .map(|bytes| {
            scenario
                .with_icache_bytes(bytes)
                .map(|s| s.machine_config())
                .map_err(|e| SimperfError::Scenario(e.into()))
        })
        .collect::<Result<_, _>>()?;

    let (secs, calls) = measure(budget, || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(
            m.run()
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    let functional_mips = steps as f64 * f64::from(calls) / secs / 1e6;

    let (secs, calls) = measure(budget, || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(
            m.run_timed(&Sa1100Config::icache_16k())
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    let timed_mips = steps as f64 * f64::from(calls) / secs / 1e6;

    // Block-compile once; the recorder probe re-executes per call, the
    // replay probe prices a pre-recorded trace without re-executing.
    let probe_set = Ar32Set::load(&program);
    let compiled = CompiledProgram::compile(&probe_set)
        .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?;
    let (secs, calls) = measure(budget, || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(
            m.run_recorded(&compiled)
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    let record_mips = steps as f64 * f64::from(calls) / secs / 1e6;

    let probe_trace = Machine::new(probe_set)
        .run_recorded(&compiled)
        .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?;
    let (secs, calls) = measure(budget, || {
        black_box(
            probe_trace
                .price_all(&compiled, &multi_cfgs)
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    // Retired instructions observed by all four models per wall second,
    // replaying the recorded trace (the sweep hot path: record once,
    // price every configuration from the trace).
    let replay4_mips = steps as f64 * 4.0 * f64::from(calls) / secs / 1e6;

    let flow = FitsFlow::new()
        .run(&program)
        .map_err(|e| SimperfError::Pipeline(ExperimentError::Flow(e)))?;
    let (secs, calls) = measure(budget, || {
        let set = FitsSet::load(&flow.fits)
            .map_err(|e| SimperfError::Pipeline(ExperimentError::Decode(e)))?;
        let mut m = Machine::new(set);
        black_box(
            m.run_timed(&Sa1100Config::icache_16k())
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    let fits_steps = flow.fits_run.as_ref().map_or(steps, |r| r.steps);
    let fits_timed_mips = fits_steps as f64 * f64::from(calls) / secs / 1e6;

    // --- Whole-suite replay probe --------------------------------------
    // One recorded AR32 trace per kernel, then each call replays *all* of
    // them over the four sweep configurations — the shape of work a grid
    // sweep actually feeds the engine.
    let mut suite_traces = Vec::with_capacity(Kernel::ALL.len());
    let mut suite_steps: u64 = 0;
    for &kernel in Kernel::ALL {
        let p = kernel
            .compile(scale)
            .map_err(|e| SimperfError::Pipeline(ExperimentError::Compile(e)))?;
        let set = Ar32Set::load(&p);
        let c = CompiledProgram::compile(&set)
            .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?;
        let t = Machine::new(set)
            .run_recorded(&c)
            .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?;
        suite_steps += t.output.steps;
        suite_traces.push((c, t));
    }
    // Per-kernel pricing latencies land in a sliding-window histogram (the
    // same type `fitsd`'s windowed metrics use); the probe runs well inside
    // one window, so the snapshot is the whole distribution — per-call
    // p50/p99 that a MIPS aggregate can't show.
    let pricing = fits_obs::WindowedHistogram::new();
    let (secs, calls) = measure(budget, || {
        for (c, t) in &suite_traces {
            let call = Instant::now();
            black_box(
                t.price_all(c, &multi_cfgs)
                    .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
            );
            pricing.record(call.elapsed());
        }
        Ok(())
    })?;
    let suite_replay_mips = suite_steps as f64 * 4.0 * f64::from(calls) / secs / 1e6;
    let pricing = pricing.snapshot();
    eprintln!(
        "simperf: per-kernel pricing p50 {} us, p99 {} us, max {} us over {} calls",
        pricing.quantile_us(0.5),
        pricing.quantile_us(0.99),
        pricing.max_us,
        pricing.count,
    );
    drop(suite_traces);

    eprintln!(
        "simperf: functional {functional_mips:.1} MIPS, timed {timed_mips:.1} MIPS, \
         record {record_mips:.1} MIPS, replay-x4 {replay4_mips:.1} MIPS, \
         suite-replay {suite_replay_mips:.1} MIPS, fits timed {fits_timed_mips:.1} MIPS"
    );

    // --- Full-suite wall-clock ----------------------------------------
    let trace_reg = opts.trace.then(SpanRegistry::new);
    let mut suite_seconds = Vec::with_capacity(suite_passes);
    for pass in 0..suite_passes {
        let t = Instant::now();
        // Each pass builds a fresh artifact cache so repeated passes stay
        // cold-cache comparable; with --trace the flows additionally report
        // stage timings into the shared span registry.
        let suite = match &trace_reg {
            Some(reg) => {
                let guard = reg.enter("suite");
                let arts = Artifacts::new().with_flow_observer(Arc::new(reg.clone()));
                let suite =
                    run_suite_with(&arts, Kernel::ALL, scale).map_err(SimperfError::Pipeline)?;
                drop(guard);
                suite
            }
            None => run_suite(Kernel::ALL, scale).map_err(SimperfError::Pipeline)?,
        };
        let elapsed = t.elapsed().as_secs_f64();
        black_box(&suite);
        eprintln!("simperf: suite pass {}: {elapsed:.3}s", pass + 1);
        suite_seconds.push(elapsed);
    }
    if let Some(reg) = &trace_reg {
        eprintln!(
            "simperf: flow stage timings (all passes merged):\n{}",
            reg.render()
        );
    }
    let suite_best = suite_seconds.iter().copied().fold(f64::INFINITY, f64::min);
    let speedup = opts.baseline_seconds.map(|b| b / suite_best);
    if let (Some(baseline), Some(ratio)) = (opts.baseline_seconds, speedup) {
        eprintln!("simperf: suite best {suite_best:.3}s vs baseline {baseline:.3}s = {ratio:.2}x");
    } else {
        eprintln!("simperf: suite best {suite_best:.3}s");
    }

    // --- BENCH.json ----------------------------------------------------
    let all: Vec<String> = suite_seconds.iter().map(|s| json_f64(*s)).collect();
    let json = format!(
        "{{\n  \"schema\": \"powerfits-bench-v1\",\n  \"meta\": {meta},\n  \
         \"mode\": \"{mode}\",\n  \"scenario\": \"{scenario_id}\",\n  \
         \"probe_kernel\": \"{probe}\",\n  \"scale_n\": {n},\n  \"simulator\": {{\n    \
         \"steps_per_run\": {steps},\n    \"functional_mips\": {fm},\n    \
         \"timed_mips\": {tm},\n    \"record_mips\": {recm},\n    \
         \"replay4_mips\": {rm},\n    \"suite_replay_mips\": {srm},\n    \
         \"fits_timed_mips\": {ftm},\n    \"pricing_p50_us\": {pp50},\n    \
         \"pricing_p99_us\": {pp99},\n    \"pricing_max_us\": {pmax}\n  }},\n  \"suite\": {{\n    \
         \"kernels\": {kernels},\n    \"configs\": 4,\n    \"passes\": {passes},\n    \
         \"seconds_best\": {best},\n    \"seconds_all\": [{all}]\n  }},\n  \
         \"baseline_seconds\": {base},\n  \"speedup_vs_baseline\": {ratio}\n}}\n",
        meta = meta_json("  "),
        scenario_id = scenario.id(),
        mode = if opts.smoke { "smoke" } else { "full" },
        probe = PROBE_KERNEL.name(),
        n = scale.n,
        steps = steps,
        fm = json_f64(functional_mips),
        tm = json_f64(timed_mips),
        recm = json_f64(record_mips),
        rm = json_f64(replay4_mips),
        srm = json_f64(suite_replay_mips),
        ftm = json_f64(fits_timed_mips),
        pp50 = pricing.quantile_us(0.5),
        pp99 = pricing.quantile_us(0.99),
        pmax = pricing.max_us,
        kernels = Kernel::ALL.len(),
        passes = suite_passes,
        best = json_f64(suite_best),
        all = all.join(", "),
        base = opts.baseline_seconds.map_or("null".to_owned(), json_f64),
        ratio = speedup.map_or("null".to_owned(), json_f64),
    );
    std::fs::write(&opts.out, &json).map_err(|err| SimperfError::Io {
        path: opts.out.clone(),
        err,
    })?;
    eprintln!("simperf: wrote {}", opts.out);

    // --- --compare: diff against the previous same-mode history entry --
    // Read BEFORE appending this run, so a run always compares against its
    // predecessor, never against itself.
    let mode = if opts.smoke { "smoke" } else { "full" };
    let regressions = if opts.compare {
        let prev = opts
            .history
            .as_deref()
            .and_then(|path| last_history_entry(path, mode));
        match prev {
            None => {
                eprintln!(
                    "simperf: --compare: no previous \"{mode}\" entry in {}; nothing to gate",
                    opts.history.as_deref().unwrap_or("<no history>")
                );
                Vec::new()
            }
            Some(prev) => compare_metrics(
                &prev,
                &[
                    ("functional_mips", functional_mips),
                    ("timed_mips", timed_mips),
                    ("record_mips", record_mips),
                    ("replay4_mips", replay4_mips),
                    ("suite_replay_mips", suite_replay_mips),
                    ("fits_timed_mips", fits_timed_mips),
                ],
                opts.max_regress,
            ),
        }
    } else {
        Vec::new()
    };

    // --- BENCH_history.jsonl -------------------------------------------
    // One compact line per run, append-only: the cumulative record that
    // lets `grep`/`jq` chart throughput across commits.
    if let Some(history) = &opts.history {
        let line = format!(
            "{{\"schema\": \"powerfits-bench-history-v1\", \"commit\": \"{commit}\", \
             \"timestamp_unix\": {stamp}, \"host\": \"{host}\", \"mode\": \"{mode}\", \
             \"scenario\": \"{scenario_id}\", \"scale_n\": {n}, \
             \"functional_mips\": {fm}, \"timed_mips\": {tm}, \"record_mips\": {recm}, \
             \"replay4_mips\": {rm}, \"suite_replay_mips\": {srm}, \
             \"fits_timed_mips\": {ftm}, \"suite_passes\": {passes}, \
             \"suite_seconds_best\": {best}}}\n",
            commit = escape(&git_commit()),
            stamp = unix_timestamp(),
            host = escape(&hostname()),
            scenario_id = scenario.id(),
            n = scale.n,
            fm = json_f64(functional_mips),
            tm = json_f64(timed_mips),
            recm = json_f64(record_mips),
            rm = json_f64(replay4_mips),
            srm = json_f64(suite_replay_mips),
            ftm = json_f64(fits_timed_mips),
            passes = suite_passes,
            best = json_f64(suite_best),
        );
        use std::io::Write;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(history)
            .and_then(|mut f| f.write_all(line.as_bytes()))
            .map_err(|err| SimperfError::Io {
                path: history.clone(),
                err,
            })?;
        eprintln!("simperf: appended to {history}");
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(SimperfError::Regression(regressions))
    }
}

/// The last history line whose `mode` matches, parsed. Unreadable files or
/// malformed lines are skipped silently — history is advisory, and a fresh
/// checkout with no file simply has nothing to compare against.
fn last_history_entry(path: &str, mode: &str) -> Option<fits_obs::json::Value> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines().rev().find_map(|line| {
        let v = fits_obs::json::parse(line).ok()?;
        (v.get("mode")?.as_str()? == mode).then_some(v)
    })
}

/// Prints the delta of every metric present in the previous entry and
/// returns one line per metric that regressed by more than `max_regress`
/// (fractional; 0.1 = tolerate a 10% drop).
fn compare_metrics(
    prev: &fits_obs::json::Value,
    now: &[(&str, f64)],
    max_regress: f64,
) -> Vec<String> {
    let commit = prev.get("commit").and_then(|v| v.as_str()).unwrap_or("?");
    eprintln!(
        "simperf: --compare vs commit {commit} (max regress {:.1}%)",
        max_regress * 100.0
    );
    let mut failures = Vec::new();
    for &(key, current) in now {
        let Some(before) = prev.get(key).and_then(fits_obs::json::Value::as_f64) else {
            eprintln!("simperf:   {key}: no previous value (new metric)");
            continue;
        };
        if before <= 0.0 {
            continue;
        }
        let delta = current / before - 1.0;
        eprintln!(
            "simperf:   {key}: {before:.2} -> {current:.2} MIPS ({:+.1}%)",
            delta * 100.0
        );
        if delta < -max_regress {
            failures.push(format!(
                "{key} fell {:.1}% ({before:.2} -> {current:.2} MIPS), beyond --max-regress {:.1}%",
                -delta * 100.0,
                max_regress * 100.0
            ));
        }
    }
    failures
}
