//! `simperf` — simulator throughput and suite wall-clock harness.
//!
//! Measures what the experiment harness actually pays for: functional
//! simulation speed (MIPS), trace-driven timing speed (single model and the
//! execute-once/replay-many path), and the wall-clock of a full 21-kernel ×
//! 4-configuration suite run at test scale. Results are written to
//! `BENCH.json` (hand-rolled JSON; the workspace has no serde) so CI can
//! archive a throughput record per commit without gating on the numbers,
//! and one compact line per run is appended to `BENCH_history.jsonl` —
//! the cumulative, commit-stamped record regressions are hunted in.
//! Each record carries a `meta` stamp (git commit, Unix timestamp, host,
//! OS, arch) so archived numbers stay attributable.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fits-bench --bin simperf              # full run
//! cargo run --release -p fits-bench --bin simperf -- --smoke   # quick CI run
//! cargo run --release -p fits-bench --bin simperf -- \
//!     --baseline-seconds 1.135                                 # print speedup
//! cargo run --release -p fits-bench --bin simperf -- --out bench/BENCH.json
//! cargo run --release -p fits-bench --bin simperf -- --trace   # stage timings
//! cargo run --release -p fits-bench --bin simperf -- --no-history
//! ```
//!
//! Every suite pass constructs a fresh [`Artifacts`] cache (inside
//! [`run_suite`]), so repeated passes measure the same cold-cache work and
//! stay comparable across commits.

use std::fmt;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use fits_bench::stamp::{git_commit, hostname, json_f64, meta_json, unix_timestamp};
use fits_bench::{run_suite, run_suite_with, Artifacts, ExperimentError};
use fits_core::{FitsFlow, FitsSet};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::json::escape;
use fits_obs::SpanRegistry;
use fits_scenario::{ScenarioError, ScenarioSpec};
use fits_sim::{Ar32Set, Machine, Sa1100Config};

/// The kernel the MIPS probes execute. SHA has the largest dynamic
/// instruction count per unit of compile time in the suite.
const PROBE_KERNEL: Kernel = Kernel::Sha;

/// Everything that can stop a `simperf` run. Failures exit with code 1
/// and a one-line diagnosis; they never panic.
#[derive(Debug)]
enum SimperfError {
    /// A pipeline stage failed (compile, flow, simulation, decode).
    Pipeline(ExperimentError),
    /// A scenario could not be derived (bad sweep geometry).
    Scenario(ScenarioError),
    /// An archive file could not be written.
    Io { path: String, err: std::io::Error },
}

impl fmt::Display for SimperfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimperfError::Pipeline(e) => write!(f, "pipeline: {e}"),
            SimperfError::Scenario(e) => write!(f, "scenario: {e}"),
            SimperfError::Io { path, err } => write!(f, "write {path}: {err}"),
        }
    }
}

impl std::error::Error for SimperfError {}

struct Options {
    smoke: bool,
    out: String,
    history: Option<String>,
    baseline_seconds: Option<f64>,
    trace: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        out: "BENCH.json".to_owned(),
        history: Some("BENCH_history.jsonl".to_owned()),
        baseline_seconds: None,
        trace: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--trace" => opts.trace = true,
            "--out" => opts.out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--history" => {
                opts.history = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--history needs a path")),
                );
            }
            "--no-history" => opts.history = None,
            "--baseline-seconds" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--baseline-seconds needs a value"));
                opts.baseline_seconds =
                    Some(v.parse().unwrap_or_else(|_| {
                        usage(&format!("invalid --baseline-seconds value: {v}"))
                    }));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("simperf: {err}");
    }
    eprintln!(
        "usage: simperf [--smoke] [--trace] [--out PATH] [--history PATH] [--no-history] \
         [--baseline-seconds SECS]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Runs `f` repeatedly until `budget_secs` of wall time elapse (at least
/// once) and returns (total seconds, calls); a failing call aborts the
/// measurement.
fn measure(
    budget_secs: f64,
    mut f: impl FnMut() -> Result<(), SimperfError>,
) -> Result<(f64, u32), SimperfError> {
    let start = Instant::now();
    let mut calls = 0u32;
    loop {
        f()?;
        calls += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= budget_secs {
            return Ok((elapsed, calls));
        }
    }
}

fn main() {
    let opts = parse_args();
    if let Err(e) = run(&opts) {
        eprintln!("simperf: {e}");
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_lines)]
fn run(opts: &Options) -> Result<(), SimperfError> {
    let scale = Scale::test();
    let scenario = ScenarioSpec::sa1100();
    let budget = if opts.smoke { 0.05 } else { 0.4 };
    let suite_passes = if opts.smoke { 1 } else { 3 };

    eprintln!(
        "simperf: probe kernel {} at n={} ({} mode)",
        PROBE_KERNEL.name(),
        scale.n,
        if opts.smoke { "smoke" } else { "full" }
    );

    // --- Simulator throughput probes ----------------------------------
    let program = PROBE_KERNEL
        .compile(scale)
        .map_err(|e| SimperfError::Pipeline(ExperimentError::Compile(e)))?;
    let steps = Machine::new(Ar32Set::load(&program))
        .run()
        .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?
        .steps;
    let multi_cfgs: Vec<Sa1100Config> = [16 * 1024, 8 * 1024, 4 * 1024, 2 * 1024]
        .into_iter()
        .map(|bytes| {
            scenario
                .with_icache_bytes(bytes)
                .map(|s| s.machine_config())
                .map_err(|e| SimperfError::Scenario(e.into()))
        })
        .collect::<Result<_, _>>()?;

    let (secs, calls) = measure(budget, || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(
            m.run()
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    let functional_mips = steps as f64 * f64::from(calls) / secs / 1e6;

    let (secs, calls) = measure(budget, || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(
            m.run_timed(&Sa1100Config::icache_16k())
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    let timed_mips = steps as f64 * f64::from(calls) / secs / 1e6;

    let (secs, calls) = measure(budget, || {
        let mut m = Machine::new(Ar32Set::load(&program));
        black_box(
            m.run_timed_multi(&multi_cfgs)
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    // Retired instructions observed by all four models per wall second.
    let replay4_mips = steps as f64 * 4.0 * f64::from(calls) / secs / 1e6;

    let flow = FitsFlow::new()
        .run(&program)
        .map_err(|e| SimperfError::Pipeline(ExperimentError::Flow(e)))?;
    let (secs, calls) = measure(budget, || {
        let set = FitsSet::load(&flow.fits)
            .map_err(|e| SimperfError::Pipeline(ExperimentError::Decode(e)))?;
        let mut m = Machine::new(set);
        black_box(
            m.run_timed(&Sa1100Config::icache_16k())
                .map_err(|e| SimperfError::Pipeline(ExperimentError::Sim(e)))?,
        );
        Ok(())
    })?;
    let fits_steps = flow.fits_run.as_ref().map_or(steps, |r| r.steps);
    let fits_timed_mips = fits_steps as f64 * f64::from(calls) / secs / 1e6;

    eprintln!(
        "simperf: functional {functional_mips:.1} MIPS, timed {timed_mips:.1} MIPS, \
         replay-x4 {replay4_mips:.1} MIPS, fits timed {fits_timed_mips:.1} MIPS"
    );

    // --- Full-suite wall-clock ----------------------------------------
    let trace_reg = opts.trace.then(SpanRegistry::new);
    let mut suite_seconds = Vec::with_capacity(suite_passes);
    for pass in 0..suite_passes {
        let t = Instant::now();
        // Each pass builds a fresh artifact cache so repeated passes stay
        // cold-cache comparable; with --trace the flows additionally report
        // stage timings into the shared span registry.
        let suite = match &trace_reg {
            Some(reg) => {
                let guard = reg.enter("suite");
                let arts = Artifacts::new().with_flow_observer(Arc::new(reg.clone()));
                let suite =
                    run_suite_with(&arts, Kernel::ALL, scale).map_err(SimperfError::Pipeline)?;
                drop(guard);
                suite
            }
            None => run_suite(Kernel::ALL, scale).map_err(SimperfError::Pipeline)?,
        };
        let elapsed = t.elapsed().as_secs_f64();
        black_box(&suite);
        eprintln!("simperf: suite pass {}: {elapsed:.3}s", pass + 1);
        suite_seconds.push(elapsed);
    }
    if let Some(reg) = &trace_reg {
        eprintln!(
            "simperf: flow stage timings (all passes merged):\n{}",
            reg.render()
        );
    }
    let suite_best = suite_seconds.iter().copied().fold(f64::INFINITY, f64::min);
    let speedup = opts.baseline_seconds.map(|b| b / suite_best);
    if let (Some(baseline), Some(ratio)) = (opts.baseline_seconds, speedup) {
        eprintln!("simperf: suite best {suite_best:.3}s vs baseline {baseline:.3}s = {ratio:.2}x");
    } else {
        eprintln!("simperf: suite best {suite_best:.3}s");
    }

    // --- BENCH.json ----------------------------------------------------
    let all: Vec<String> = suite_seconds.iter().map(|s| json_f64(*s)).collect();
    let json = format!(
        "{{\n  \"schema\": \"powerfits-bench-v1\",\n  \"meta\": {meta},\n  \
         \"mode\": \"{mode}\",\n  \"scenario\": \"{scenario_id}\",\n  \
         \"probe_kernel\": \"{probe}\",\n  \"scale_n\": {n},\n  \"simulator\": {{\n    \
         \"steps_per_run\": {steps},\n    \"functional_mips\": {fm},\n    \
         \"timed_mips\": {tm},\n    \"replay4_mips\": {rm},\n    \
         \"fits_timed_mips\": {ftm}\n  }},\n  \"suite\": {{\n    \
         \"kernels\": {kernels},\n    \"configs\": 4,\n    \"passes\": {passes},\n    \
         \"seconds_best\": {best},\n    \"seconds_all\": [{all}]\n  }},\n  \
         \"baseline_seconds\": {base},\n  \"speedup_vs_baseline\": {ratio}\n}}\n",
        meta = meta_json("  "),
        scenario_id = scenario.id(),
        mode = if opts.smoke { "smoke" } else { "full" },
        probe = PROBE_KERNEL.name(),
        n = scale.n,
        steps = steps,
        fm = json_f64(functional_mips),
        tm = json_f64(timed_mips),
        rm = json_f64(replay4_mips),
        ftm = json_f64(fits_timed_mips),
        kernels = Kernel::ALL.len(),
        passes = suite_passes,
        best = json_f64(suite_best),
        all = all.join(", "),
        base = opts.baseline_seconds.map_or("null".to_owned(), json_f64),
        ratio = speedup.map_or("null".to_owned(), json_f64),
    );
    std::fs::write(&opts.out, &json).map_err(|err| SimperfError::Io {
        path: opts.out.clone(),
        err,
    })?;
    eprintln!("simperf: wrote {}", opts.out);

    // --- BENCH_history.jsonl -------------------------------------------
    // One compact line per run, append-only: the cumulative record that
    // lets `grep`/`jq` chart throughput across commits.
    if let Some(history) = &opts.history {
        let line = format!(
            "{{\"schema\": \"powerfits-bench-history-v1\", \"commit\": \"{commit}\", \
             \"timestamp_unix\": {stamp}, \"host\": \"{host}\", \"mode\": \"{mode}\", \
             \"scenario\": \"{scenario_id}\", \"scale_n\": {n}, \
             \"functional_mips\": {fm}, \"timed_mips\": {tm}, \"replay4_mips\": {rm}, \
             \"fits_timed_mips\": {ftm}, \"suite_passes\": {passes}, \
             \"suite_seconds_best\": {best}}}\n",
            commit = escape(&git_commit()),
            stamp = unix_timestamp(),
            host = escape(&hostname()),
            mode = if opts.smoke { "smoke" } else { "full" },
            scenario_id = scenario.id(),
            n = scale.n,
            fm = json_f64(functional_mips),
            tm = json_f64(timed_mips),
            rm = json_f64(replay4_mips),
            ftm = json_f64(fits_timed_mips),
            passes = suite_passes,
            best = json_f64(suite_best),
        );
        use std::io::Write;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(history)
            .and_then(|mut f| f.write_all(line.as_bytes()))
            .map_err(|err| SimperfError::Io {
                path: history.clone(),
                err,
            })?;
        eprintln!("simperf: appended to {history}");
    }
    Ok(())
}
