//! `fitslint` — static verification of synthesized FITS instruction sets
//! and static I-cache bounds.
//!
//! Three modes share one CLI:
//!
//! * **lint** (default): runs the `fits-verify` analysis families (`ENC`,
//!   `CFI`, `DF`, `TV`) over kernels from the benchmark suite and reports
//!   rustc-style diagnostics or machine-readable JSON.
//! * **`--cache`**: runs the `CA` abstract-interpretation cache analysis
//!   over both instruction streams of each kernel, audits it against
//!   rebuilt ground truth, joins it with a traced simulation (skip the
//!   trace with `--static-only`) and reports per-kernel hit/miss and
//!   fetch-energy bounds — text or `powerfits-cache-bounds-v1` JSON.
//! * **`--isa`**: lints `powerfits-isa-v1` spec documents (the `ISA`
//!   family) — ambiguous form overlap, non-round-tripping forms, dead
//!   entries, specs that do not compile into a decode engine. Accepts
//!   file paths or the shipped spec names `ar32`, `t16`, `fits`.
//!
//! ```text
//! fitslint --all [--format text|json] [--scale N]
//! fitslint KERNEL [KERNEL...] [--format text|json] [--scale N]
//! fitslint --cache --all [--preset NAME] [--static-only] [--out PATH]
//! fitslint --isa SPEC [--isa SPEC...] [--format text|json] [--out PATH]
//! ```
//!
//! JSON output is validated against its own schema before the process
//! reports success, so a drifting emitter fails loudly in CI instead of
//! producing silently unparseable artifacts.
//!
//! Exits 0 when every linted kernel is clean (and every bound holds),
//! 1 on findings, violations or pipeline failures, and 2 on usage errors.

use std::fmt;
use std::process::ExitCode;

use fits_bench::{cache_bounds_report, ExperimentError};
use fits_isa::spec::{AR32_SPEC_TEXT, FITS_SPEC_TEXT, T16_SPEC_TEXT};
use fits_kernels::kernels::{Kernel, Scale};
use fits_scenario::ScenarioSpec;
use fits_verify::{json_string, lint_kernel, lint_spec_text};

/// Everything that can stop a `fitslint` run (exit code 1). Usage errors
/// are handled separately (exit code 2); findings are not errors.
#[derive(Debug)]
enum LintError {
    /// The kernel pipeline failed (compile, flow, simulation, decode).
    Pipeline(ExperimentError),
    /// The tool's own JSON output failed its schema validation.
    InvalidJson(String),
    /// A report or spec file could not be written or read.
    Io { path: String, err: std::io::Error },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Pipeline(e) => write!(f, "pipeline: {e}"),
            LintError::InvalidJson(e) => write!(f, "self-validation of JSON output failed: {e}"),
            LintError::Io { path, err } => write!(f, "{path}: {err}"),
        }
    }
}

impl std::error::Error for LintError {}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    kernels: Vec<Kernel>,
    format: Format,
    scale: Scale,
    cache: bool,
    preset: String,
    static_only: bool,
    out: Option<String>,
    isa: Vec<String>,
}

fn usage() -> String {
    let mut names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
    names.sort_unstable();
    format!(
        "usage: fitslint (--all | KERNEL...) [--format text|json] [--scale N]\n\
         \x20      [--cache [--preset NAME] [--static-only]] [--out PATH]\n\
         \x20      [--isa SPEC...]\n\
         \n\
         Statically verifies the synthesized instruction set and translated\n\
         binary of each kernel: encoding soundness (ENC), control-flow\n\
         integrity (CFI), dataflow (DF) and translation validation (TV).\n\
         \n\
         With --cache, instead runs the abstract-interpretation I-cache\n\
         analysis (CA) on both instruction streams, audits it, checks a\n\
         traced run against the static bounds (unless --static-only) and\n\
         reports per-kernel hit/miss and fetch-energy envelopes.\n\
         \n\
         With --isa, instead lints powerfits-isa-v1 spec documents (the\n\
         ISA family: ambiguous overlap, round-trip, dead entries, engine\n\
         compilation). SPEC is a file path or a shipped name (ar32 t16\n\
         fits).\n\
         \n\
         presets: sa1100 small-embedded modern-node\n\
         kernels: {}",
        names.join(" ")
    )
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        kernels: Vec::new(),
        format: Format::Text,
        scale: Scale::test(),
        cache: false,
        preset: "sa1100".to_string(),
        static_only: false,
        out: None,
        isa: Vec::new(),
    };
    let mut all = false;
    let mut preset_given = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--cache" => args.cache = true,
            "--static-only" => args.static_only = true,
            "--format" => {
                args.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some(other) => {
                        return Err(format!("--format expects 'text' or 'json', got '{other}'"))
                    }
                    None => return Err("--format expects 'text' or 'json'".to_string()),
                };
            }
            "--scale" => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--scale expects a positive integer".to_string())?;
                args.scale = Scale { n };
            }
            "--preset" => {
                let name = it
                    .next()
                    .ok_or_else(|| "--preset expects a scenario name".to_string())?;
                if ScenarioSpec::preset(name).is_none() {
                    return Err(format!(
                        "unknown preset '{name}' (try sa1100, small-embedded, modern-node)"
                    ));
                }
                args.preset = name.clone();
                preset_given = true;
            }
            "--out" => {
                args.out = Some(
                    it.next()
                        .ok_or_else(|| "--out expects a path".to_string())?
                        .clone(),
                );
            }
            "--isa" => {
                args.isa.push(
                    it.next()
                        .ok_or_else(|| "--isa expects a spec path or shipped name".to_string())?
                        .clone(),
                );
            }
            "--help" | "-h" => return Err(String::new()),
            name if !name.starts_with('-') => {
                let kernel = Kernel::ALL
                    .iter()
                    .copied()
                    .find(|k| k.name() == name)
                    .ok_or_else(|| format!("unknown kernel '{name}'"))?;
                args.kernels.push(kernel);
            }
            flag => return Err(format!("unknown flag '{flag}'")),
        }
    }
    if !args.cache && (args.static_only || preset_given) {
        return Err("--preset and --static-only require --cache".to_string());
    }
    if !args.isa.is_empty() {
        if args.cache || all || !args.kernels.is_empty() {
            return Err("--isa lints spec documents and takes no kernels or --cache".to_string());
        }
        return Ok(args);
    }
    if all {
        args.kernels = Kernel::ALL.to_vec();
    }
    if args.kernels.is_empty() {
        return Err("no kernels selected (pass --all or kernel names)".to_string());
    }
    Ok(args)
}

/// Writes the rendered report to `--out`, when requested.
fn write_out(out: Option<&str>, rendered: &str) -> Result<(), LintError> {
    let Some(path) = out else { return Ok(()) };
    std::fs::write(path, rendered).map_err(|err| LintError::Io {
        path: path.to_string(),
        err,
    })?;
    eprintln!("fitslint: wrote {path}");
    Ok(())
}

/// The classic lint mode: `ENC`/`CFI`/`DF`/`TV` families per kernel.
/// Returns whether every kernel came back clean.
fn run_lint(args: &Args) -> Result<bool, LintError> {
    let mut all_clean = true;
    let mut text = String::new();
    let mut json_entries = Vec::new();
    for kernel in &args.kernels {
        match lint_kernel(*kernel, args.scale) {
            Ok(report) => {
                if !report.is_clean() {
                    all_clean = false;
                }
                match args.format {
                    Format::Text => {
                        if report.diagnostics.is_empty() {
                            text.push_str(&format!("{}: clean\n", report.name));
                        } else {
                            text.push_str(&report.render_text());
                        }
                    }
                    Format::Json => json_entries.push(report.render_json()),
                }
            }
            Err(err) => {
                all_clean = false;
                match args.format {
                    Format::Text => eprintln!("fitslint: {err}"),
                    Format::Json => json_entries.push(format!(
                        "{{\"name\":{},\"clean\":false,\"error\":{}}}",
                        json_string(kernel.name()),
                        json_string(&err)
                    )),
                }
            }
        }
    }
    let rendered = match args.format {
        Format::Text => text,
        Format::Json => {
            let doc = format!(
                "{{\"kernels\":[{}],\"clean\":{all_clean}}}\n",
                json_entries.join(",")
            );
            // The aggregate is hand-rolled: prove it parses before CI
            // archives it.
            fits_obs::json::parse(&doc).map_err(|e| LintError::InvalidJson(e.to_string()))?;
            doc
        }
    };
    print!("{rendered}");
    write_out(args.out.as_deref(), &rendered)?;
    Ok(all_clean)
}

/// Resolves one `--isa` operand: a shipped spec name or a file path.
fn isa_source(operand: &str) -> Result<String, LintError> {
    match operand {
        "ar32" => Ok(AR32_SPEC_TEXT.to_string()),
        "t16" => Ok(T16_SPEC_TEXT.to_string()),
        "fits" => Ok(FITS_SPEC_TEXT.to_string()),
        path => std::fs::read_to_string(path).map_err(|err| LintError::Io {
            path: path.to_string(),
            err,
        }),
    }
}

/// The `--isa` mode: the `ISA` family per spec document. Load failures
/// (parse or structural) count as findings, not usage errors. Returns
/// whether every spec came back clean.
fn run_isa(args: &Args) -> Result<bool, LintError> {
    let mut all_clean = true;
    let mut text = String::new();
    let mut json_entries = Vec::new();
    for operand in &args.isa {
        let source = isa_source(operand)?;
        match lint_spec_text(&source) {
            Ok(report) => {
                if !report.is_clean() {
                    all_clean = false;
                }
                match args.format {
                    Format::Text => {
                        if report.diagnostics.is_empty() {
                            text.push_str(&format!("{}: clean\n", report.name));
                        } else {
                            text.push_str(&report.render_text());
                        }
                    }
                    Format::Json => json_entries.push(report.render_json()),
                }
            }
            Err(err) => {
                all_clean = false;
                match args.format {
                    Format::Text => text.push_str(&format!("{operand}: {err}\n")),
                    Format::Json => json_entries.push(format!(
                        "{{\"name\":{},\"clean\":false,\"error\":{}}}",
                        json_string(operand),
                        json_string(&err.to_string())
                    )),
                }
            }
        }
    }
    let rendered = match args.format {
        Format::Text => text,
        Format::Json => {
            let doc = format!(
                "{{\"specs\":[{}],\"clean\":{all_clean}}}\n",
                json_entries.join(",")
            );
            fits_obs::json::parse(&doc).map_err(|e| LintError::InvalidJson(e.to_string()))?;
            doc
        }
    };
    print!("{rendered}");
    write_out(args.out.as_deref(), &rendered)?;
    Ok(all_clean)
}

/// The `--cache` mode: `CA` bounds per kernel under one preset scenario.
/// Returns whether every analysis was sound.
fn run_cache(args: &Args) -> Result<bool, LintError> {
    let Some(spec) = ScenarioSpec::preset(&args.preset) else {
        // parse_args validated the name; a miss here is a programming
        // error surfaced as a pipeline-level failure, not a panic.
        return Err(LintError::InvalidJson(format!(
            "preset '{}' vanished between parsing and execution",
            args.preset
        )));
    };
    let report = cache_bounds_report(&args.kernels, &spec, args.scale, !args.static_only)
        .map_err(LintError::Pipeline)?;
    let rendered = match args.format {
        Format::Text => report.render_text(),
        Format::Json => {
            let doc = format!("{}\n", report.render_json());
            fits_obs::json::validate_cache_bounds_json(&doc).map_err(LintError::InvalidJson)?;
            doc
        }
    };
    print!("{rendered}");
    write_out(args.out.as_deref(), &rendered)?;
    Ok(report.is_sound())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("fitslint: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let clean = if !args.isa.is_empty() {
        run_isa(&args)
    } else if args.cache {
        run_cache(&args)
    } else {
        run_lint(&args)
    };
    match clean {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("fitslint: {e}");
            ExitCode::from(1)
        }
    }
}
