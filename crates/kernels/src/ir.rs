//! The kernel intermediate representation.
//!
//! Benchmarks are written against a small structured IR — virtual registers,
//! explicit loads/stores, and nested `if`/`while` blocks — and compiled to
//! AR32 by this crate's code generator. The IR deliberately mirrors what a
//! simple embedded C compiler would produce, so the statistical properties
//! FITS synthesis feeds on (opcode mix, immediate distributions, register
//! pressure) look like compiled MiBench code rather than hand-scheduled
//! assembly.

use std::fmt;

/// A virtual register. Functions may use an unbounded number; the register
/// allocator maps them onto `r4`–`r11` with stack spills.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Val(pub(crate) u32);

impl Val {
    /// The virtual register's index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Memory access width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// 32-bit word.
    W,
    /// 16-bit halfword.
    H,
    /// 8-bit byte.
    B,
}

impl Width {
    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::W => 4,
            Width::H => 2,
            Width::B => 1,
        }
    }
}

/// Unary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise NOT.
    Not,
    /// Two's-complement negation.
    Neg,
}

/// Binary operations. All arithmetic is 32-bit wrapping, matching both the
/// AR32 datapath and the Rust reference implementations (which use
/// `wrapping_*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bit clear (`a & !b`).
    Bic,
    /// Logical shift left (amount taken mod 256, ARM register-shift rules).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Rotate right.
    Ror,
    /// 32-bit multiply (low word).
    Mul,
}

/// Comparison operators for conditional control flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    LtS,
    /// Signed less-or-equal.
    LeS,
    /// Signed greater-than.
    GtS,
    /// Signed greater-or-equal.
    GeS,
    /// Unsigned less-than.
    LtU,
    /// Unsigned less-or-equal.
    LeU,
    /// Unsigned greater-than.
    GtU,
    /// Unsigned greater-or-equal.
    GeU,
}

impl CmpOp {
    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    #[must_use]
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::LtS => CmpOp::GtS,
            CmpOp::LeS => CmpOp::GeS,
            CmpOp::GtS => CmpOp::LtS,
            CmpOp::GeS => CmpOp::LeS,
            CmpOp::LtU => CmpOp::GtU,
            CmpOp::LeU => CmpOp::GeU,
            CmpOp::GtU => CmpOp::LtU,
            CmpOp::GeU => CmpOp::LeU,
        }
    }

    /// The logical negation (`a < b` ⇔ `!(a >= b)`).
    #[must_use]
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::LtS => CmpOp::GeS,
            CmpOp::LeS => CmpOp::GtS,
            CmpOp::GtS => CmpOp::LeS,
            CmpOp::GeS => CmpOp::LtS,
            CmpOp::LtU => CmpOp::GeU,
            CmpOp::LeU => CmpOp::GtU,
            CmpOp::GtU => CmpOp::LeU,
            CmpOp::GeU => CmpOp::LtU,
        }
    }

    /// Evaluates the comparison (used by the IR interpreter in tests).
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::LtS => sa < sb,
            CmpOp::LeS => sa <= sb,
            CmpOp::GtS => sa > sb,
            CmpOp::GeS => sa >= sb,
            CmpOp::LtU => a < b,
            CmpOp::LeU => a <= b,
            CmpOp::GtU => a > b,
            CmpOp::GeU => a >= b,
        }
    }
}

/// A register-or-immediate right-hand operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual register.
    Val(Val),
    /// A 32-bit constant.
    Imm(u32),
}

impl From<Val> for Operand {
    fn from(v: Val) -> Operand {
        Operand::Val(v)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Operand {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v as u32)
    }
}

/// A branch condition: one comparison between a register and an operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cond {
    /// The comparison.
    pub op: CmpOp,
    /// Left operand.
    pub a: Val,
    /// Right operand.
    pub b: Operand,
}

impl Cond {
    /// Builds a condition.
    pub fn new(op: CmpOp, a: Val, b: impl Into<Operand>) -> Cond {
        Cond { op, a, b: b.into() }
    }
}

/// The right-hand side of an assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rvalue {
    /// A constant.
    Imm(u32),
    /// A copy of another virtual register.
    Copy(Val),
    /// A unary operation.
    Unary(UnOp, Val),
    /// A binary operation.
    Binary(BinOp, Val, Operand),
    /// A load: `*(base + disp)`, optionally sign-extended.
    Load {
        /// Access width.
        width: Width,
        /// Sign-extend sub-word loads.
        signed: bool,
        /// Base address register.
        base: Val,
        /// Constant displacement in bytes.
        disp: i32,
    },
    /// A conditional select: `if cond { 1 } else { 0 }` — lowered to a
    /// compare plus predicated moves (keeps AR32's conditional execution
    /// exercised, which matters for the FITS condition-code analysis).
    SetCond(Cond),
}

/// One IR statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `dst = rvalue`.
    Assign(Val, Rvalue),
    /// `*(base + disp) = src` at the given width.
    Store {
        /// Access width.
        width: Width,
        /// Base address register.
        base: Val,
        /// Constant displacement in bytes.
        disp: i32,
        /// Value to store.
        src: Val,
    },
    /// Two-way conditional.
    If {
        /// Condition.
        cond: Cond,
        /// Taken block.
        then: Vec<Stmt>,
        /// Else block (may be empty).
        els: Vec<Stmt>,
    },
    /// Top-tested loop.
    While {
        /// Loop condition, re-evaluated each iteration.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Call to another function in the module. Up to four arguments.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments (at most four).
        args: Vec<Val>,
        /// Destination of the return value, if used.
        ret: Option<Val>,
    },
    /// Passes a word to the simulator's output stream (SWI 1).
    Emit(Val),
    /// Returns from the function (`main`'s return value is the exit code).
    Return(Option<Val>),
}

/// A function: a parameter count and a structured body.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Number of parameters (≤ 4), pre-assigned to the first virtual regs.
    pub params: u32,
    /// Number of virtual registers used.
    pub vregs: u32,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A compilation unit: functions plus an initialized data image.
///
/// The function named `main` is the entry point; its `Return` becomes the
/// simulator exit trap.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// The functions; `main` must be present.
    pub funcs: Vec<Function>,
    /// Initialized data, loaded at `DATA_BASE`.
    pub data: Vec<u8>,
}

impl Module {
    /// Looks up a function by name.
    #[must_use]
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total IR statement count (structured statements, recursively).
    #[must_use]
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { then, els, .. } => 1 + count(then) + count(els),
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.funcs.iter().map(|f| count(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negation_and_swap() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::LtS,
            CmpOp::LeS,
            CmpOp::GtS,
            CmpOp::GeS,
            CmpOp::LtU,
            CmpOp::LeU,
            CmpOp::GtU,
            CmpOp::GeU,
        ] {
            for (a, b) in [(0u32, 0u32), (1, 2), (2, 1), (u32::MAX, 1), (1, u32::MAX)] {
                assert_eq!(op.eval(a, b), !op.negated().eval(a, b), "{op:?} {a} {b}");
                assert_eq!(op.eval(a, b), op.swapped().eval(b, a), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn operand_conversions() {
        let v = Val(3);
        assert_eq!(Operand::from(v), Operand::Val(v));
        assert_eq!(Operand::from(7u32), Operand::Imm(7));
        assert_eq!(Operand::from(-1i32), Operand::Imm(u32::MAX));
    }

    #[test]
    fn module_stmt_count_recurses() {
        let m = Module {
            funcs: vec![Function {
                name: "main".into(),
                params: 0,
                vregs: 1,
                body: vec![
                    Stmt::Assign(Val(0), Rvalue::Imm(0)),
                    Stmt::While {
                        cond: Cond::new(CmpOp::LtU, Val(0), 4u32),
                        body: vec![Stmt::Assign(
                            Val(0),
                            Rvalue::Binary(BinOp::Add, Val(0), Operand::Imm(1)),
                        )],
                    },
                    Stmt::Return(Some(Val(0))),
                ],
            }],
            data: Vec::new(),
        };
        assert_eq!(m.stmt_count(), 4);
        assert!(m.func("main").is_some());
        assert!(m.func("nope").is_none());
    }
}
