//! Linear-scan register allocation over LIR.
//!
//! Virtual registers are mapped onto the callee-saved set `r4`–`r11`
//! (`r0`–`r3` are the argument/scratch registers of the calling convention,
//! `r12` is reserved for the ARM→FITS translator, `sp`/`lr`/`pc` are
//! architectural). Intervals are mention spans extended over backward
//! branches — the classic conservative loop-extension — so a value live
//! around a loop is never assigned a register that the loop body reuses.

use fits_isa::Reg;

use crate::lower::{def, uses, LFunction, LInst};

/// Where a virtual register lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// A physical register (`r4`–`r11`).
    Reg(Reg),
    /// A stack spill slot (index into the frame's spill area).
    Slot(u32),
}

/// The result of allocation for one function.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Location of each virtual register, indexed by vreg number.
    pub locs: Vec<Loc>,
    /// Number of spill slots used.
    pub slots: u32,
    /// The callee-saved physical registers actually used, ascending.
    pub used_regs: Vec<Reg>,
}

/// The allocatable physical registers.
pub const ALLOCATABLE: [Reg; 8] = [
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
];

#[derive(Clone, Copy, Debug)]
struct Interval {
    vreg: u32,
    start: u32,
    end: u32,
}

/// Computes mention-span live intervals, extended to cover every loop
/// (backward branch span) they intersect.
fn intervals(f: &LFunction) -> Vec<Interval> {
    let n = f.vregs as usize;
    let mut start = vec![u32::MAX; n];
    let mut end = vec![0u32; n];
    let touch = |v: u32, p: u32, start: &mut Vec<u32>, end: &mut Vec<u32>| {
        start[v as usize] = start[v as usize].min(p);
        end[v as usize] = end[v as usize].max(p);
    };
    // Parameters are defined at entry.
    for p in 0..f.params {
        touch(p, 0, &mut start, &mut end);
    }
    let mut label_pos = std::collections::HashMap::new();
    for (i, inst) in f.code.iter().enumerate() {
        if let LInst::Lbl(l) = inst {
            label_pos.insert(*l, i as u32);
        }
    }
    for (i, inst) in f.code.iter().enumerate() {
        let p = i as u32;
        for v in uses(inst) {
            touch(v.index(), p, &mut start, &mut end);
        }
        if let Some(v) = def(inst) {
            touch(v.index(), p, &mut start, &mut end);
        }
    }
    // Backward-branch spans.
    let mut loops: Vec<(u32, u32)> = Vec::new();
    for (i, inst) in f.code.iter().enumerate() {
        let target = match inst {
            LInst::Br(l) | LInst::CmpBr(_, l) => Some(*l),
            _ => None,
        };
        if let Some(l) = target {
            let t = label_pos[&l];
            if t <= i as u32 {
                loops.push((t, i as u32));
            }
        }
    }
    // Extend until fixpoint (spans can chain through nested loops).
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if start[v] == u32::MAX {
                continue;
            }
            for &(lo, hi) in &loops {
                // The interval intersects the loop span but doesn't cover it.
                if start[v] <= hi && end[v] >= lo && (start[v] > lo || end[v] < hi) {
                    // Only values live across iterations need the extension:
                    // a value both defined and fully used inside the span is
                    // still safe to keep short, but detecting that needs
                    // real liveness; extend conservatively.
                    if start[v] < lo || end[v] > hi {
                        let ns = start[v].min(lo);
                        let ne = end[v].max(hi);
                        if ns != start[v] || ne != end[v] {
                            start[v] = ns;
                            end[v] = ne;
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    let mut out: Vec<Interval> = (0..n)
        .filter(|&v| start[v] != u32::MAX)
        .map(|v| Interval {
            vreg: v as u32,
            start: start[v],
            end: end[v],
        })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.vreg));
    out
}

/// Allocates registers for a lowered function using the default
/// eight-register callee-saved set.
#[must_use]
pub fn allocate(f: &LFunction) -> Allocation {
    allocate_with(f, &ALLOCATABLE)
}

/// Allocates registers from an explicit allocatable set. Shrinking the set
/// raises register pressure and spill traffic — how a 16-bit target with a
/// narrow register window (like Thumb's 8 visible registers) pays for its
/// encoding (§6.2 of the paper).
#[must_use]
pub fn allocate_with(f: &LFunction, allocatable: &[Reg]) -> Allocation {
    let ivs = intervals(f);
    let mut locs = vec![Loc::Slot(u32::MAX); f.vregs as usize];
    let mut slots: u32 = 0;
    let mut free: Vec<Reg> = allocatable.iter().rev().copied().collect();
    let mut active: Vec<Interval> = Vec::new(); // sorted by end ascending
    let mut used = [false; 16];

    for iv in ivs {
        // Expire.
        active.retain(|a| {
            if a.end < iv.start {
                if let Loc::Reg(r) = locs[a.vreg as usize] {
                    free.push(r);
                }
                false
            } else {
                true
            }
        });
        if let Some(r) = free.pop() {
            locs[iv.vreg as usize] = Loc::Reg(r);
            used[r.index() as usize] = true;
            active.push(iv);
            active.sort_by_key(|a| a.end);
        } else {
            // Spill the interval that ends last.
            let last = active.last().copied();
            match last {
                Some(victim) if victim.end > iv.end => {
                    let r = match locs[victim.vreg as usize] {
                        Loc::Reg(r) => r,
                        Loc::Slot(_) => unreachable!("active interval must own a register"),
                    };
                    locs[victim.vreg as usize] = Loc::Slot(slots);
                    slots += 1;
                    locs[iv.vreg as usize] = Loc::Reg(r);
                    active.pop();
                    active.push(iv);
                    active.sort_by_key(|a| a.end);
                }
                _ => {
                    locs[iv.vreg as usize] = Loc::Slot(slots);
                    slots += 1;
                }
            }
        }
    }

    // Registers listed in `used` may have been freed and reused; collect the
    // final set actually appearing in locs plus any that were ever used
    // (they were clobbered at some point, so must be saved).
    let used_regs: Vec<Reg> = allocatable
        .iter()
        .copied()
        .filter(|r| used[r.index() as usize])
        .collect();

    Allocation {
        locs,
        slots,
        used_regs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FnBuilder;
    use crate::ir::CmpOp;
    use crate::lower::lower;

    #[test]
    fn few_values_all_get_registers() {
        let mut f = FnBuilder::new("main", 0);
        let a = f.imm(1u32);
        let b = f.imm(2u32);
        let c = f.add(a, b);
        f.ret(Some(c));
        let alloc = allocate(&lower(&f.finish()));
        assert_eq!(alloc.slots, 0);
        assert!(alloc
            .locs
            .iter()
            .all(|l| matches!(l, Loc::Reg(_) | Loc::Slot(u32::MAX))));
    }

    #[test]
    fn pressure_forces_spills() {
        let mut f = FnBuilder::new("main", 0);
        let vals: Vec<_> = (0..12).map(|i| f.imm(i as u32)).collect();
        // Sum them all so every value stays live to the end.
        let mut acc = f.imm(0u32);
        for v in &vals {
            acc = f.add(acc, *v);
        }
        f.ret(Some(acc));
        let alloc = allocate(&lower(&f.finish()));
        assert!(alloc.slots > 0, "12 simultaneously-live values must spill");
        assert_eq!(alloc.used_regs.len(), ALLOCATABLE.len());
    }

    #[test]
    fn loop_variables_stay_pinned_across_the_loop() {
        let mut f = FnBuilder::new("main", 0);
        let i = f.imm(0u32);
        let acc = f.imm(0u32);
        f.while_(f.cmp(CmpOp::LtU, i, 100u32), |f| {
            // Lots of short-lived temporaries inside the loop.
            let mut t = f.add(i, 1u32);
            for _ in 0..20 {
                t = f.add(t, 1u32);
            }
            let a2 = f.add(acc, t);
            f.copy(acc, a2);
            let n = f.add(i, 1u32);
            f.copy(i, n);
        });
        f.ret(Some(acc));
        let lf = lower(&f.finish());
        let alloc = allocate(&lf);
        // The loop counter and accumulator intervals span the whole loop, so
        // whatever locations they got, no temporary may alias them.
        let i_loc = alloc.locs[i.index() as usize];
        let acc_loc = alloc.locs[acc.index() as usize];
        assert_ne!(i_loc, acc_loc);
    }

    #[test]
    fn disjoint_intervals_share_registers() {
        let mut f = FnBuilder::new("main", 0);
        let mut sum = f.imm(0u32);
        for k in 0..40 {
            let t = f.imm(k as u32);
            sum = f.add(sum, t);
        }
        f.ret(Some(sum));
        let alloc = allocate(&lower(&f.finish()));
        // 40 short temporaries but almost no concurrent liveness.
        assert_eq!(alloc.slots, 0);
    }
}
