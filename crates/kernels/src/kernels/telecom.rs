//! Telecom kernels: `crc32`, `adpcm.enc`, `adpcm.dec`, `fft`, `gsm`.

use super::util::{audio_samples, random_bytes, DataBuilder, RefSink};
use super::{RefOutput, Scale};
use crate::builder::{FnBuilder, ModuleBuilder};
use crate::ir::{BinOp, CmpOp, Module, Val};

/// Mixes a word into a running fold the same way on both sides:
/// `acc = rotl(acc, 1) ^ v`.
fn fold(acc: u32, v: u32) -> u32 {
    acc.rotate_left(1) ^ v
}

/// IR version of [`fold`], updating `acc` in place.
fn ir_fold(f: &mut FnBuilder, acc: Val, v: Val) {
    // rotl(acc, 1) == ror(acc, 31)
    let r = f.bin(BinOp::Ror, acc, 31u32);
    f.bin_into(acc, BinOp::Xor, r, v);
}

// --------------------------------------------------------------------------
// crc32
// --------------------------------------------------------------------------

const CRC_POLY: u32 = 0xedb8_8320;

fn crc_table() -> Vec<u32> {
    (0..256u32)
        .map(|mut c| {
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    (c >> 1) ^ CRC_POLY
                } else {
                    c >> 1
                };
            }
            c
        })
        .collect()
}

fn crc32_len(scale: Scale) -> usize {
    ((scale.n as usize * 16).max(64) + 7) & !7
}

/// Table-driven CRC-32 over a buffer (8-byte unrolled inner loop), plus a
/// bitwise CRC over a prefix — the two classic implementations MiBench's
/// `crc32` exercises.
pub(super) fn build_crc32(scale: Scale) -> Module {
    let len = crc32_len(scale);
    let mut d = DataBuilder::new();
    let tab = d.words(&crc_table());
    let buf = d.bytes(&random_bytes(0xc3c3, len));

    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);

    let tabv = f.imm(tab);
    let bufv = f.imm(buf);
    let crc = f.imm(0xffff_ffffu32);
    let i = f.imm(0u32);
    f.while_(f.cmp(CmpOp::LtU, i, len as u32), |f| {
        let p = f.add(bufv, i);
        for k in 0..8 {
            let b = f.load_b(p, k);
            let x = f.xor(crc, b);
            let idx = f.and(x, 0xffu32);
            let off = f.shl(idx, 2u32);
            let ep = f.add(tabv, off);
            let e = f.load_w(ep, 0);
            let hi = f.shr(crc, 8u32);
            f.bin_into(crc, BinOp::Xor, hi, e);
        }
        let next = f.add(i, 8u32);
        f.copy(i, next);
    });
    let table_crc = f.not(crc);
    f.emit(table_crc);

    // Bitwise variant over the first 256 bytes.
    let prefix = (len.min(256)) as u32;
    let crc2 = f.imm(0xffff_ffffu32);
    let j = f.imm(0u32);
    f.while_(f.cmp(CmpOp::LtU, j, prefix), |f| {
        let p = f.add(bufv, j);
        let b = f.load_b(p, 0);
        let x = f.xor(crc2, b);
        f.copy(crc2, x);
        for _ in 0..8 {
            let bit = f.and(crc2, 1u32);
            let sh = f.shr(crc2, 1u32);
            f.copy(crc2, sh);
            f.if_(f.cmp(CmpOp::Ne, bit, 0u32), |f| {
                let t = f.xor(crc2, CRC_POLY);
                f.copy(crc2, t);
            });
        }
        let next = f.add(j, 1u32);
        f.copy(j, next);
    });
    let bit_crc = f.not(crc2);
    f.emit(bit_crc);

    let total = f.add(table_crc, bit_crc);
    f.ret(Some(total));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_crc32(scale: Scale) -> RefOutput {
    let len = crc32_len(scale);
    let tab = crc_table();
    let buf = random_bytes(0xc3c3, len);
    let mut sink = RefSink::new();

    let mut crc: u32 = 0xffff_ffff;
    for &b in &buf {
        crc = (crc >> 8) ^ tab[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    let table_crc = !crc;
    sink.emit(table_crc);

    let mut crc2: u32 = 0xffff_ffff;
    for &b in &buf[..len.min(256)] {
        crc2 ^= u32::from(b);
        for _ in 0..8 {
            crc2 = if crc2 & 1 != 0 {
                (crc2 >> 1) ^ CRC_POLY
            } else {
                crc2 >> 1
            };
        }
    }
    let bit_crc = !crc2;
    sink.emit(bit_crc);

    RefOutput {
        exit_code: table_crc.wrapping_add(bit_crc),
        emitted: sink.into_words(),
    }
}

// --------------------------------------------------------------------------
// adpcm (IMA)
// --------------------------------------------------------------------------

const STEP_TAB: [u32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

const INDEX_TAB: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

fn adpcm_len(scale: Scale) -> usize {
    ((scale.n as usize * 8).max(32) + 1) & !1
}

/// Reference IMA-ADPCM encoder, also used to produce the decoder kernel's
/// input stream.
fn ima_encode(samples: &[i16]) -> Vec<u8> {
    let mut valpred: i32 = 0;
    let mut index: i32 = 0;
    let mut out = Vec::with_capacity(samples.len() / 2);
    let mut pending: Option<u8> = None;
    for &s in samples {
        let mut diff = i32::from(s).wrapping_sub(valpred);
        let sign: u32 = if diff < 0 { 8 } else { 0 };
        if sign != 0 {
            diff = -diff;
        }
        let mut step = STEP_TAB[index as usize] as i32;
        let mut delta: u32 = 0;
        let mut vpdiff = step >> 3;
        if diff >= step {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 1;
            vpdiff += step;
        }
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = valpred.clamp(-32768, 32767);
        let code = (delta | sign) as u8;
        index += INDEX_TAB[code as usize];
        index = index.clamp(0, 88);
        match pending.take() {
            None => pending = Some(code),
            Some(lo) => out.push(lo | (code << 4)),
        }
    }
    if let Some(lo) = pending {
        out.push(lo);
    }
    out
}

/// Reference IMA-ADPCM decoder.
fn ima_decode(codes: &[u8], nsamples: usize) -> Vec<i32> {
    let mut valpred: i32 = 0;
    let mut index: i32 = 0;
    let mut out = Vec::with_capacity(nsamples);
    for k in 0..nsamples {
        let byte = codes[k / 2];
        let code = if k % 2 == 0 { byte & 0xf } else { byte >> 4 };
        let sign = code & 8;
        let delta = i32::from(code & 7);
        let step = STEP_TAB[index as usize] as i32;
        let mut vpdiff = step >> 3;
        if delta & 4 != 0 {
            vpdiff += step;
        }
        if delta & 2 != 0 {
            vpdiff += step >> 1;
        }
        if delta & 1 != 0 {
            vpdiff += step >> 2;
        }
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = valpred.clamp(-32768, 32767);
        index += INDEX_TAB[code as usize];
        index = index.clamp(0, 88);
        out.push(valpred);
    }
    out
}

/// Emits IR that clamps the signed value in `v` to `[lo, hi]` in place.
fn ir_clamp(f: &mut FnBuilder, v: Val, lo: i32, hi: i32) {
    f.if_(f.cmp(CmpOp::GtS, v, hi), |f| f.set_imm(v, hi as u32));
    f.if_(f.cmp(CmpOp::LtS, v, lo), |f| f.set_imm(v, lo as u32));
}

pub(super) fn build_adpcm_enc(scale: Scale) -> Module {
    let n = adpcm_len(scale);
    let samples = audio_samples(0xada0, n);
    let mut d = DataBuilder::new();
    let steps = d.words(&STEP_TAB);
    let idxs = d.words(&INDEX_TAB.map(|v| v as u32));
    let inp = d.halves(&samples);
    let out = d.zeroed(n / 2 + 1, 4);

    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let stepsv = f.imm(steps);
    let idxsv = f.imm(idxs);
    let inpv = f.imm(inp);
    let outv = f.imm(out);
    let valpred = f.imm(0u32);
    let index = f.imm(0u32);
    let k = f.imm(0u32);
    let fold_acc = f.imm(0u32);

    // Process two samples per iteration, packing one output byte.
    f.while_(f.cmp(CmpOp::LtU, k, n as u32), |f| {
        let mut codes: Vec<Val> = Vec::new();
        for half in 0..2u32 {
            let off = f.add(k, half);
            let addr2 = f.shl(off, 1u32);
            let p = f.add(inpv, addr2);
            let sample = f.load_sh(p, 0);
            let diff = f.sub(sample, valpred);
            let sign = f.imm(0u32);
            f.if_(f.cmp(CmpOp::LtS, diff, 0u32), |f| {
                f.set_imm(sign, 8);
                let nd = f.neg(diff);
                f.copy(diff, nd);
            });
            let idx4 = f.shl(index, 2u32);
            let sp = f.add(stepsv, idx4);
            let step = f.load_w(sp, 0);
            let delta = f.imm(0u32);
            let vpdiff = f.sar(step, 3u32);
            f.if_(f.cmp(CmpOp::GeS, diff, step), |f| {
                f.set_imm(delta, 4);
                let nd = f.sub(diff, step);
                f.copy(diff, nd);
                let nv = f.add(vpdiff, step);
                f.copy(vpdiff, nv);
            });
            let s1 = f.sar(step, 1u32);
            f.copy(step, s1);
            f.if_(f.cmp(CmpOp::GeS, diff, step), |f| {
                let d2 = f.or(delta, 2u32);
                f.copy(delta, d2);
                let nd = f.sub(diff, step);
                f.copy(diff, nd);
                let nv = f.add(vpdiff, step);
                f.copy(vpdiff, nv);
            });
            let s2 = f.sar(step, 1u32);
            f.copy(step, s2);
            f.if_(f.cmp(CmpOp::GeS, diff, step), |f| {
                let d1 = f.or(delta, 1u32);
                f.copy(delta, d1);
                let nv = f.add(vpdiff, step);
                f.copy(vpdiff, nv);
            });
            f.if_else(
                f.cmp(CmpOp::Ne, sign, 0u32),
                |f| {
                    let nv = f.sub(valpred, vpdiff);
                    f.copy(valpred, nv);
                },
                |f| {
                    let nv = f.add(valpred, vpdiff);
                    f.copy(valpred, nv);
                },
            );
            ir_clamp(f, valpred, -32768, 32767);
            let code = f.or(delta, sign);
            let c4 = f.shl(code, 2u32);
            let ip = f.add(idxsv, c4);
            let adj = f.load_w(ip, 0);
            let ni = f.add(index, adj);
            f.copy(index, ni);
            ir_clamp(f, index, 0, 88);
            codes.push(code);
        }
        let hi = f.shl(codes[1], 4u32);
        let byte = f.or(codes[0], hi);
        let k2 = f.shr(k, 1u32);
        let op = f.add(outv, k2);
        f.store_b(op, 0, byte);
        ir_fold(f, fold_acc, byte);
        let nk = f.add(k, 2u32);
        f.copy(k, nk);
    });
    f.emit(fold_acc);
    f.ret(Some(fold_acc));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_adpcm_enc(scale: Scale) -> RefOutput {
    let n = adpcm_len(scale);
    let samples = audio_samples(0xada0, n);
    let encoded = ima_encode(&samples);
    let mut acc: u32 = 0;
    for &b in &encoded {
        acc = fold(acc, u32::from(b));
    }
    RefOutput {
        exit_code: acc,
        emitted: vec![acc],
    }
}

pub(super) fn build_adpcm_dec(scale: Scale) -> Module {
    let n = adpcm_len(scale);
    let samples = audio_samples(0xada0, n);
    let encoded = ima_encode(&samples);
    let mut d = DataBuilder::new();
    let steps = d.words(&STEP_TAB);
    let idxs = d.words(&INDEX_TAB.map(|v| v as u32));
    let inp = d.bytes(&encoded);

    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let stepsv = f.imm(steps);
    let idxsv = f.imm(idxs);
    let inpv = f.imm(inp);
    let valpred = f.imm(0u32);
    let index = f.imm(0u32);
    let k = f.imm(0u32);
    let acc = f.imm(0u32);

    f.while_(f.cmp(CmpOp::LtU, k, n as u32), |f| {
        let k2 = f.shr(k, 1u32);
        let bp = f.add(inpv, k2);
        let byte = f.load_b(bp, 0);
        for half in 0..2u32 {
            let code = if half == 0 {
                f.and(byte, 0xfu32)
            } else {
                f.shr(byte, 4u32)
            };
            let sign = f.and(code, 8u32);
            let delta = f.and(code, 7u32);
            let idx4 = f.shl(index, 2u32);
            let sp = f.add(stepsv, idx4);
            let step = f.load_w(sp, 0);
            let vpdiff = f.sar(step, 3u32);
            let b4 = f.and(delta, 4u32);
            f.if_(f.cmp(CmpOp::Ne, b4, 0u32), |f| {
                let nv = f.add(vpdiff, step);
                f.copy(vpdiff, nv);
            });
            let b2 = f.and(delta, 2u32);
            f.if_(f.cmp(CmpOp::Ne, b2, 0u32), |f| {
                let half_step = f.sar(step, 1u32);
                let nv = f.add(vpdiff, half_step);
                f.copy(vpdiff, nv);
            });
            let b1 = f.and(delta, 1u32);
            f.if_(f.cmp(CmpOp::Ne, b1, 0u32), |f| {
                let quarter = f.sar(step, 2u32);
                let nv = f.add(vpdiff, quarter);
                f.copy(vpdiff, nv);
            });
            f.if_else(
                f.cmp(CmpOp::Ne, sign, 0u32),
                |f| {
                    let nv = f.sub(valpred, vpdiff);
                    f.copy(valpred, nv);
                },
                |f| {
                    let nv = f.add(valpred, vpdiff);
                    f.copy(valpred, nv);
                },
            );
            ir_clamp(f, valpred, -32768, 32767);
            let c4 = f.shl(code, 2u32);
            let ip = f.add(idxsv, c4);
            let adj = f.load_w(ip, 0);
            let ni = f.add(index, adj);
            f.copy(index, ni);
            ir_clamp(f, index, 0, 88);
            ir_fold(f, acc, valpred);
        }
        let nk = f.add(k, 2u32);
        f.copy(k, nk);
    });
    f.emit(acc);
    f.ret(Some(acc));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_adpcm_dec(scale: Scale) -> RefOutput {
    let n = adpcm_len(scale);
    let samples = audio_samples(0xada0, n);
    let encoded = ima_encode(&samples);
    let decoded = ima_decode(&encoded, n);
    let mut acc: u32 = 0;
    for v in decoded {
        acc = fold(acc, v as u32);
    }
    RefOutput {
        exit_code: acc,
        emitted: vec![acc],
    }
}

// --------------------------------------------------------------------------
// fft (fixed-point radix-2)
// --------------------------------------------------------------------------

fn fft_size(scale: Scale) -> usize {
    (scale.n as usize * 2).next_power_of_two().clamp(64, 4096)
}

fn twiddles(size: usize) -> (Vec<i16>, Vec<i16>) {
    let mut wr = Vec::with_capacity(size / 2);
    let mut wi = Vec::with_capacity(size / 2);
    for j in 0..size / 2 {
        let ang = -2.0 * std::f64::consts::PI * j as f64 / size as f64;
        wr.push((ang.cos() * 32767.0) as i16);
        wi.push((ang.sin() * 32767.0) as i16);
    }
    (wr, wi)
}

fn bitrev(v: usize, bits: u32) -> usize {
    let mut r = 0usize;
    let mut x = v;
    for _ in 0..bits {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    r
}

pub(super) fn build_fft(scale: Scale) -> Module {
    let size = fft_size(scale);
    let bits = size.trailing_zeros();
    let samples = audio_samples(0xff7, size);
    let (wr, wi) = twiddles(size);

    let mut d = DataBuilder::new();
    let wr_a = d.halves(&wr);
    let wi_a = d.halves(&wi);
    let re_init: Vec<u32> = samples.iter().map(|&s| i32::from(s) as u32).collect();
    let re_a = d.words(&re_init);
    let im_a = d.zeroed(size * 4, 4);

    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let re = f.imm(re_a);
    let im = f.imm(im_a);
    let wrv = f.imm(wr_a);
    let wiv = f.imm(wi_a);

    // Bit-reversal permutation.
    f.repeat(size as u32, |f, i| {
        // j = bitrev(i)
        let j = f.imm(0u32);
        let x = f.imm(0u32);
        f.copy(x, i);
        for _ in 0..bits {
            let j1 = f.shl(j, 1u32);
            let lsb = f.and(x, 1u32);
            f.bin_into(j, BinOp::Or, j1, lsb);
            let xs = f.shr(x, 1u32);
            f.copy(x, xs);
        }
        f.if_(f.cmp(CmpOp::LtU, i, j), |f| {
            let i4 = f.shl(i, 2u32);
            let j4 = f.shl(j, 2u32);
            for arr in [re, im] {
                let pa = f.add(arr, i4);
                let pb = f.add(arr, j4);
                let a = f.load_w(pa, 0);
                let b = f.load_w(pb, 0);
                f.store_w(pa, 0, b);
                f.store_w(pb, 0, a);
            }
        });
    });

    // Butterfly passes.
    let len = f.imm(2u32);
    f.while_(f.cmp(CmpOp::LeU, len, size as u32), |f| {
        let half = f.shr(len, 1u32);
        // tstep = size / len
        let lg = f.imm(0u32);
        let tmp = f.imm(1u32);
        f.while_(f.cmp(CmpOp::LtU, tmp, len), |f| {
            let t2 = f.shl(tmp, 1u32);
            f.copy(tmp, t2);
            let l1 = f.add(lg, 1u32);
            f.copy(lg, l1);
        });
        let tstep = f.imm(size as u32);
        let ts = f.shr(tstep, lg);
        f.copy(tstep, ts);

        let i = f.imm(0u32);
        f.while_(f.cmp(CmpOp::LtU, i, size as u32), |f| {
            let j = f.imm(0u32);
            f.while_(f.cmp(CmpOp::LtU, j, half), |f| {
                let widx = f.mul(j, tstep);
                let w2 = f.shl(widx, 1u32);
                let wrp = f.add(wrv, w2);
                let wip = f.add(wiv, w2);
                let w_re = f.load_sh(wrp, 0);
                let w_im = f.load_sh(wip, 0);
                let a = f.add(i, j);
                let b = f.add(a, half);
                let a4 = f.shl(a, 2u32);
                let b4 = f.shl(b, 2u32);
                let rea_p = f.add(re, a4);
                let reb_p = f.add(re, b4);
                let ima_p = f.add(im, a4);
                let imb_p = f.add(im, b4);
                let re_b = f.load_w(reb_p, 0);
                let im_b = f.load_w(imb_p, 0);
                let m1 = f.mul(w_re, re_b);
                let m2 = f.mul(w_im, im_b);
                let t_re_raw = f.sub(m1, m2);
                let t_re = f.sar(t_re_raw, 15u32);
                let m3 = f.mul(w_re, im_b);
                let m4 = f.mul(w_im, re_b);
                let t_im_raw = f.add(m3, m4);
                let t_im = f.sar(t_im_raw, 15u32);
                let re_a_v = f.load_w(rea_p, 0);
                let im_a_v = f.load_w(ima_p, 0);
                let nb_re = f.sub(re_a_v, t_re);
                let nb_im = f.sub(im_a_v, t_im);
                f.store_w(reb_p, 0, nb_re);
                f.store_w(imb_p, 0, nb_im);
                let na_re = f.add(re_a_v, t_re);
                let na_im = f.add(im_a_v, t_im);
                f.store_w(rea_p, 0, na_re);
                f.store_w(ima_p, 0, na_im);
                let nj = f.add(j, 1u32);
                f.copy(j, nj);
            });
            let ni = f.add(i, len);
            f.copy(i, ni);
        });
        let nl = f.shl(len, 1u32);
        f.copy(len, nl);
    });

    // Fold the spectrum; emit a few bins.
    let acc = f.imm(0u32);
    f.repeat(size as u32, |f, i| {
        let i4 = f.shl(i, 2u32);
        let rp = f.add(re, i4);
        let ip = f.add(im, i4);
        let rv = f.load_w(rp, 0);
        let iv = f.load_w(ip, 0);
        ir_fold(f, acc, rv);
        ir_fold(f, acc, iv);
    });
    for bin in [0usize, 1, size / 4, size / 2] {
        let p = f.imm(re_a + (bin as u32) * 4);
        let v = f.load_w(p, 0);
        f.emit(v);
    }
    f.emit(acc);
    f.ret(Some(acc));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_fft(scale: Scale) -> RefOutput {
    let size = fft_size(scale);
    let bits = size.trailing_zeros();
    let samples = audio_samples(0xff7, size);
    let (wr, wi) = twiddles(size);
    let mut re: Vec<u32> = samples.iter().map(|&s| i32::from(s) as u32).collect();
    let mut im: Vec<u32> = vec![0; size];

    for i in 0..size {
        let j = bitrev(i, bits);
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2usize;
    while len <= size {
        let half = len / 2;
        let tstep = size / len;
        let mut i = 0usize;
        while i < size {
            for j in 0..half {
                let widx = j * tstep;
                let w_re = i32::from(wr[widx]) as u32;
                let w_im = i32::from(wi[widx]) as u32;
                let a = i + j;
                let b = a + half;
                let t_re = ((w_re
                    .wrapping_mul(re[b])
                    .wrapping_sub(w_im.wrapping_mul(im[b]))) as i32
                    >> 15) as u32;
                let t_im = ((w_re
                    .wrapping_mul(im[b])
                    .wrapping_add(w_im.wrapping_mul(re[b]))) as i32
                    >> 15) as u32;
                let (ra, ia) = (re[a], im[a]);
                re[b] = ra.wrapping_sub(t_re);
                im[b] = ia.wrapping_sub(t_im);
                re[a] = ra.wrapping_add(t_re);
                im[a] = ia.wrapping_add(t_im);
            }
            i += len;
        }
        len <<= 1;
    }

    let mut sink = RefSink::new();
    let mut acc: u32 = 0;
    for i in 0..size {
        acc = fold(acc, re[i]);
        acc = fold(acc, im[i]);
    }
    for bin in [0usize, 1, size / 4, size / 2] {
        sink.emit(re[bin]);
    }
    sink.emit(acc);
    RefOutput {
        exit_code: acc,
        emitted: sink.into_words(),
    }
}

// --------------------------------------------------------------------------
// gsm (short-term lattice filtering + long-term lag search)
// --------------------------------------------------------------------------

const GSM_FRAME: usize = 160;
const GSM_STAGES: usize = 8;

fn gsm_frames(scale: Scale) -> usize {
    (scale.n as usize / 32).max(1)
}

fn gsm_coeffs(frames: usize) -> Vec<i16> {
    let mut r = super::util::rng(0x65a1);
    (0..frames * GSM_STAGES)
        .map(|_| r.gen_range(-28000i32..28000) as i16)
        .collect()
}

pub(super) fn build_gsm(scale: Scale) -> Module {
    let frames = gsm_frames(scale);
    let nsamples = frames * GSM_FRAME;
    let samples = audio_samples(0x65a2, nsamples);
    let coeffs = gsm_coeffs(frames);

    let mut d = DataBuilder::new();
    let rp_a = d.halves(&coeffs);
    let in_a = d.halves(&samples);
    let u_a = d.zeroed(GSM_STAGES * 4, 4);

    let mut mb = ModuleBuilder::new();

    // Short-term analysis lattice over one frame.
    // args: sample base, rp base; returns folded output.
    let mut st = FnBuilder::new("short_term", 2);
    let sbase = st.param(0);
    let rbase = st.param(1);
    let uv = st.imm(u_a);
    // Load the 8 reflection coefficients once.
    let rp: Vec<Val> = (0..GSM_STAGES)
        .map(|j| st.load_sh(rbase, (j * 2) as i32))
        .collect();
    let acc = st.imm(0u32);
    st.repeat(GSM_FRAME as u32, |f, k| {
        let k2 = f.shl(k, 1u32);
        let sp = f.add(sbase, k2);
        let di = f.load_sh(sp, 0);
        let sav = f.imm(0u32);
        f.copy(sav, di);
        for (j, rpj) in rp.iter().enumerate() {
            let ui = f.load_w(uv, (j * 4) as i32);
            f.store_w(uv, (j * 4) as i32, sav);
            let m1 = f.mul(*rpj, di);
            let s1 = f.sar(m1, 15u32);
            let nsav = f.add(ui, s1);
            f.copy(sav, nsav);
            let m2 = f.mul(*rpj, ui);
            let s2 = f.sar(m2, 15u32);
            let ndi = f.add(di, s2);
            f.copy(di, ndi);
        }
        ir_fold(f, acc, di);
    });
    st.ret(Some(acc));
    mb.push(st.finish());

    // Long-term lag search: best cross-correlation lag in [40, 120).
    let mut lt = FnBuilder::new("lag_search", 1);
    let base = lt.param(0);
    let best_lag = lt.imm(40u32);
    let best_corr = lt.imm(0u32);
    let lag = lt.imm(40u32);
    lt.while_(lt.cmp(CmpOp::LtU, lag, 120u32), |f| {
        let corr = f.imm(0u32);
        let i = f.imm(120u32);
        f.while_(f.cmp(CmpOp::LtU, i, GSM_FRAME as u32), |f| {
            let i2 = f.shl(i, 1u32);
            let p1 = f.add(base, i2);
            let s1 = f.load_sh(p1, 0);
            let back = f.sub(i, lag);
            let b2 = f.shl(back, 1u32);
            let p2 = f.add(base, b2);
            let s2 = f.load_sh(p2, 0);
            let m = f.mul(s1, s2);
            let scaled = f.sar(m, 6u32);
            let nc = f.add(corr, scaled);
            f.copy(corr, nc);
            let ni = f.add(i, 1u32);
            f.copy(i, ni);
        });
        f.if_(f.cmp(CmpOp::GtS, corr, best_corr), |f| {
            f.copy(best_corr, corr);
            f.copy(best_lag, lag);
        });
        let nl = f.add(lag, 1u32);
        f.copy(lag, nl);
    });
    lt.ret(Some(best_lag));
    mb.push(lt.finish());

    let mut f = FnBuilder::new("main", 0);
    let total = f.imm(0u32);
    f.repeat(frames as u32, |f, fr| {
        let off = f.mul(fr, (GSM_FRAME * 2) as u32);
        let in_base_c = f.imm(in_a);
        let sbase = f.add(in_base_c, off);
        let roff = f.mul(fr, (GSM_STAGES * 2) as u32);
        let rp_base_c = f.imm(rp_a);
        let rbase = f.add(rp_base_c, roff);
        let st_out = f.call("short_term", &[sbase, rbase]);
        let lag = f.call("lag_search", &[sbase]);
        f.emit(lag);
        let mixed = f.xor(st_out, lag);
        ir_fold(f, total, mixed);
    });
    f.emit(total);
    f.ret(Some(total));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_gsm(scale: Scale) -> RefOutput {
    let frames = gsm_frames(scale);
    let nsamples = frames * GSM_FRAME;
    let samples = audio_samples(0x65a2, nsamples);
    let coeffs = gsm_coeffs(frames);
    let mut sink = RefSink::new();
    let mut total: u32 = 0;
    let mut u = [0u32; GSM_STAGES];

    for fr in 0..frames {
        let frame = &samples[fr * GSM_FRAME..(fr + 1) * GSM_FRAME];
        let rp = &coeffs[fr * GSM_STAGES..(fr + 1) * GSM_STAGES];
        // Short-term lattice (note: `u` persists across frames, matching the
        // kernel's statically-allocated state array).
        let mut acc: u32 = 0;
        for &s in frame {
            let mut di = i32::from(s) as u32;
            let mut sav = di;
            for j in 0..GSM_STAGES {
                let ui = u[j];
                u[j] = sav;
                let rpj = i32::from(rp[j]) as u32;
                sav = ui.wrapping_add(((rpj.wrapping_mul(di)) as i32 >> 15) as u32);
                di = di.wrapping_add(((rpj.wrapping_mul(ui)) as i32 >> 15) as u32);
            }
            acc = fold(acc, di);
        }
        // Lag search.
        let mut best_lag: u32 = 40;
        let mut best_corr: i32 = 0;
        for lag in 40..120usize {
            let mut corr: i32 = 0;
            for i in 120..GSM_FRAME {
                let s1 = i32::from(frame[i]) as u32;
                let s2 = i32::from(frame[i - lag]) as u32;
                corr = corr.wrapping_add((s1.wrapping_mul(s2) as i32) >> 6);
            }
            if corr > best_corr {
                best_corr = corr;
                best_lag = lag as u32;
            }
        }
        sink.emit(best_lag);
        total = fold(total, acc ^ best_lag);
    }
    sink.emit(total);
    RefOutput {
        exit_code: total,
        emitted: sink.into_words(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::differential;
    use super::*;

    #[test]
    fn crc32_matches_reference() {
        differential(build_crc32, ref_crc32);
    }

    #[test]
    fn adpcm_enc_matches_reference() {
        differential(build_adpcm_enc, ref_adpcm_enc);
    }

    #[test]
    fn adpcm_dec_matches_reference() {
        differential(build_adpcm_dec, ref_adpcm_dec);
    }

    #[test]
    fn fft_matches_reference() {
        differential(build_fft, ref_fft);
    }

    #[test]
    fn gsm_matches_reference() {
        differential(build_gsm, ref_gsm);
    }

    #[test]
    fn crc32_known_value_for_empty_poly_table() {
        // The table's first entries are the classic CRC-32 constants.
        let t = crc_table();
        assert_eq!(t[0], 0);
        assert_eq!(t[1], 0x7707_3096);
        assert_eq!(t[255], 0x2d02_ef8d);
    }

    #[test]
    fn ima_codec_round_trip_tracks_signal() {
        let samples = audio_samples(1, 256);
        let enc = ima_encode(&samples);
        let dec = ima_decode(&enc, 256);
        // ADPCM is lossy but must track the waveform loosely.
        let mut err: i64 = 0;
        for (s, d) in samples.iter().zip(&dec) {
            err += (i64::from(*s) - i64::from(*d)).abs();
        }
        assert!((err / 256) < 2000, "mean abs error too high: {}", err / 256);
    }
}
