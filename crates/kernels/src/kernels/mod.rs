//! The 21 MiBench-like benchmark kernels.
//!
//! Each kernel is written in the crate's IR and compiled to AR32, and also
//! has a pure-Rust reference implementation producing the same exit code and
//! emit stream; differential tests hold the two (and the FITS-translated
//! binary) to byte-identical behaviour.
//!
//! The selection mirrors the MiBench categories the paper evaluates
//! (§5: "a representative subset of the MiBench suite", 21 programs after
//! dropping `basicmath` and `gsm.encode`):
//!
//! | Category   | Kernels |
//! |------------|---------|
//! | automotive | `bitcount`, `qsort`, `susan.smoothing`, `susan.edges`, `susan.corners` |
//! | consumer   | `jpeg.dct`, `lame.filter` |
//! | network    | `dijkstra`, `patricia` |
//! | office     | `stringsearch`, `ispell` |
//! | security   | `blowfish.enc`, `blowfish.dec`, `rijndael.enc`, `rijndael.dec`, `sha` |
//! | telecom    | `adpcm.enc`, `adpcm.dec`, `crc32`, `fft`, `gsm` |
//!
//! Each kernel's hot code footprint is tuned (via unrolling, the way an
//! embedded compiler at `-O3 -funroll-loops` would) so the suite's text
//! sizes straddle the paper's 8 KB / 16 KB I-cache sizes — that spread is
//! what produces the ARM8-thrashes / FITS8-fits crossover of Figures 13/14.

mod auto;
mod consumer;
mod network;
mod office;
mod security;
mod telecom;
pub mod util;

use crate::codegen::{compile, CompileError};
use crate::ir::Module;
use fits_isa::Program;

/// Workload scale: `n` is the kernel-specific input-size knob.
///
/// The text footprint does not depend on `n` (code is fixed at build time);
/// only the dynamic instruction count does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Input-size knob (elements, bytes, blocks — kernel-specific).
    pub n: u32,
}

impl Scale {
    /// A small scale for unit/differential tests (runs in milliseconds).
    #[must_use]
    pub fn test() -> Scale {
        Scale { n: 64 }
    }

    /// The scale used by the paper-figure experiments (millions of dynamic
    /// instructions per kernel).
    #[must_use]
    pub fn experiment() -> Scale {
        Scale { n: 4096 }
    }
}

/// Reference-implementation output: what the simulated binary must match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefOutput {
    /// Expected exit code (`r0` at the exit trap).
    pub exit_code: u32,
    /// Expected emit stream (`SWI 1` words, in order).
    pub emitted: Vec<u32>,
}

/// MiBench benchmark category.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Automotive and industrial control.
    Automotive,
    /// Consumer devices.
    Consumer,
    /// Networking.
    Network,
    /// Office automation.
    Office,
    /// Security.
    Security,
    /// Telecommunications.
    Telecom,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::Automotive => "auto",
            Category::Consumer => "consumer",
            Category::Network => "network",
            Category::Office => "office",
            Category::Security => "security",
            Category::Telecom => "telecom",
        };
        f.write_str(s)
    }
}

macro_rules! kernels {
    ($( $variant:ident => ($name:literal, $cat:ident, $build:path, $reference:path) ),+ $(,)?) => {
        /// One of the 21 benchmark kernels.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Kernel {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl Kernel {
            /// All kernels, in suite order.
            pub const ALL: &'static [Kernel] = &[ $(Kernel::$variant),+ ];

            /// The kernel's MiBench-style name.
            #[must_use]
            pub fn name(self) -> &'static str {
                match self { $(Kernel::$variant => $name),+ }
            }

            /// The kernel's benchmark category.
            #[must_use]
            pub fn category(self) -> Category {
                match self { $(Kernel::$variant => Category::$cat),+ }
            }

            /// Builds the kernel's IR module at the given scale.
            #[must_use]
            pub fn build_module(self, scale: Scale) -> Module {
                match self { $(Kernel::$variant => $build(scale)),+ }
            }

            /// Runs the pure-Rust reference implementation.
            #[must_use]
            pub fn reference(self, scale: Scale) -> RefOutput {
                match self { $(Kernel::$variant => $reference(scale)),+ }
            }
        }
    };
}

kernels! {
    Bitcount       => ("bitcount",        Automotive, auto::build_bitcount,        auto::ref_bitcount),
    Qsort          => ("qsort",           Automotive, auto::build_qsort,           auto::ref_qsort),
    SusanSmoothing => ("susan.smoothing", Automotive, auto::build_susan_smoothing, auto::ref_susan_smoothing),
    SusanEdges     => ("susan.edges",     Automotive, auto::build_susan_edges,     auto::ref_susan_edges),
    SusanCorners   => ("susan.corners",   Automotive, auto::build_susan_corners,   auto::ref_susan_corners),
    JpegDct        => ("jpeg.dct",        Consumer,   consumer::build_jpeg_dct,    consumer::ref_jpeg_dct),
    LameFilter     => ("lame.filter",     Consumer,   consumer::build_lame_filter, consumer::ref_lame_filter),
    Dijkstra       => ("dijkstra",        Network,    network::build_dijkstra,     network::ref_dijkstra),
    Patricia       => ("patricia",        Network,    network::build_patricia,     network::ref_patricia),
    StringSearch   => ("stringsearch",    Office,     office::build_stringsearch,  office::ref_stringsearch),
    Ispell         => ("ispell",          Office,     office::build_ispell,        office::ref_ispell),
    BlowfishEnc    => ("blowfish.enc",    Security,   security::build_blowfish_enc, security::ref_blowfish_enc),
    BlowfishDec    => ("blowfish.dec",    Security,   security::build_blowfish_dec, security::ref_blowfish_dec),
    RijndaelEnc    => ("rijndael.enc",    Security,   security::build_rijndael_enc, security::ref_rijndael_enc),
    RijndaelDec    => ("rijndael.dec",    Security,   security::build_rijndael_dec, security::ref_rijndael_dec),
    Sha            => ("sha",             Security,   security::build_sha,          security::ref_sha),
    AdpcmEnc       => ("adpcm.enc",       Telecom,    telecom::build_adpcm_enc,    telecom::ref_adpcm_enc),
    AdpcmDec       => ("adpcm.dec",       Telecom,    telecom::build_adpcm_dec,    telecom::ref_adpcm_dec),
    Crc32          => ("crc32",           Telecom,    telecom::build_crc32,        telecom::ref_crc32),
    Fft            => ("fft",             Telecom,    telecom::build_fft,          telecom::ref_fft),
    Gsm            => ("gsm",             Telecom,    telecom::build_gsm,          telecom::ref_gsm),
}

impl Kernel {
    /// Compiles the kernel to an AR32 program.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] (an internal bug if it ever fires — the
    /// kernels are fixed code).
    pub fn compile(self, scale: Scale) -> Result<Program, CompileError> {
        compile(&self.build_module(scale))
    }

    /// A small scale for tests.
    #[must_use]
    pub fn test_scale() -> Scale {
        Scale::test()
    }

    /// Looks a kernel up by its MiBench-style name (the inverse of
    /// [`Kernel::name`]) — how CLIs and the `fitsd` request parser turn
    /// user-supplied strings into suite members.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared differential-test harness: compiled-and-simulated kernel output
/// must equal the pure-Rust reference.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use fits_sim::{Ar32Set, Machine};

    pub(crate) fn differential(build: fn(Scale) -> Module, reference: fn(Scale) -> RefOutput) {
        let scale = Scale::test();
        let program = compile(&build(scale)).expect("kernel compiles");
        let mut m = Machine::new(Ar32Set::load(&program));
        let out = m.run().expect("kernel runs");
        let expect = reference(scale);
        assert_eq!(out.exit_code, expect.exit_code, "exit code mismatch");
        assert_eq!(
            out.emitted,
            fits_sim::fold_emitted(&expect.emitted),
            "emit stream mismatch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(Kernel::ALL.len(), 21, "the paper evaluates 21 benchmarks");
        let mut names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21, "kernel names are unique");
    }

    #[test]
    fn from_name_round_trips() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::from_name(k.name()), Some(*k));
        }
        assert_eq!(Kernel::from_name("no-such-kernel"), None);
    }

    #[test]
    fn every_category_represented() {
        use std::collections::BTreeSet;
        let cats: BTreeSet<Category> = Kernel::ALL.iter().map(|k| k.category()).collect();
        assert_eq!(cats.len(), 6);
    }
}
