//! Office kernels: `stringsearch` (Boyer–Moore–Horspool) and `ispell`
//! (hash-table dictionary lookups).

use super::util::{rng, DataBuilder, RefSink};
use super::{RefOutput, Scale};
use crate::builder::{FnBuilder, ModuleBuilder};
use crate::ir::{BinOp, CmpOp, Module, Val};

fn fold(acc: u32, v: u32) -> u32 {
    acc.rotate_left(1) ^ v
}

fn ir_fold(f: &mut FnBuilder, acc: Val, v: Val) {
    let r = f.bin(BinOp::Ror, acc, 31u32);
    f.bin_into(acc, BinOp::Xor, r, v);
}

// --------------------------------------------------------------------------
// stringsearch — BMH over a lowercase text for a mixed hit/miss pattern set.
// --------------------------------------------------------------------------

const NPATTERNS: usize = 12;

fn text_len(scale: Scale) -> usize {
    (scale.n as usize * 64).max(1024)
}

fn search_data(scale: Scale) -> (Vec<u8>, Vec<Vec<u8>>) {
    let len = text_len(scale);
    let mut r = rng(0x5ea5);
    // Lowercase text with a small alphabet so patterns repeat.
    let text: Vec<u8> = (0..len).map(|_| b'a' + r.gen_range(0..6u8)).collect();
    let mut patterns = Vec::with_capacity(NPATTERNS);
    for i in 0..NPATTERNS {
        if i % 3 != 2 {
            // Sampled substring (guaranteed at least one hit).
            let plen = r.gen_range(4..=10usize);
            let start = r.gen_range(0..len - plen);
            patterns.push(text[start..start + plen].to_vec());
        } else {
            // Random pattern (usually a miss) over a wider alphabet.
            let plen = r.gen_range(4..=10usize);
            patterns.push((0..plen).map(|_| b'a' + r.gen_range(0..26u8)).collect());
        }
    }
    (text, patterns)
}

pub(super) fn build_stringsearch(scale: Scale) -> Module {
    let (text, patterns) = search_data(scale);
    let tlen = text.len();
    let mut d = DataBuilder::new();
    let text_a = d.bytes(&text);
    // Pattern table: (addr, len) word pairs, then the bytes.
    let mut pat_entries = Vec::new();
    for p in &patterns {
        let addr = d.bytes(p);
        pat_entries.push(addr);
        pat_entries.push(p.len() as u32);
    }
    let pat_tab = d.words(&pat_entries);
    let skip_a = d.zeroed(256 * 4, 4);

    let mut mb = ModuleBuilder::new();

    // bmh(pat, plen) -> match count in the global text.
    let mut f = FnBuilder::new("bmh", 2);
    let pat = f.param(0);
    let plen = f.param(1);
    let skip = f.imm(skip_a);
    let textv = f.imm(text_a);
    // Build the skip table: default plen, then len-1-j for each prefix char.
    f.repeat(256u32, |f, c| {
        let c4 = f.shl(c, 2u32);
        let sp = f.add(skip, c4);
        f.store_w(sp, 0, plen);
    });
    let last = f.sub(plen, 1u32);
    f.repeat(last, |f, j| {
        let pp = f.add(pat, j);
        let ch = f.load_b(pp, 0);
        let c4 = f.shl(ch, 2u32);
        let sp = f.add(skip, c4);
        let dist = f.sub(last, j);
        f.store_w(sp, 0, dist);
    });
    // Scan.
    let count = f.imm(0u32);
    let i = f.imm(0u32);
    let limit = f.imm(tlen as u32);
    let lim = f.sub(limit, plen);
    f.while_(f.cmp(CmpOp::LeU, i, lim), |f| {
        let tp = f.add(textv, i);
        // Compare backwards from the last character.
        let j = f.imm(0u32);
        f.copy(j, last);
        let matched = f.imm(1u32);
        let run = f.imm(1u32);
        f.while_(f.cmp(CmpOp::Ne, run, 0u32), |f| {
            let tcp = f.add(tp, j);
            let tc = f.load_b(tcp, 0);
            let pcp = f.add(pat, j);
            let pc = f.load_b(pcp, 0);
            f.if_else(
                f.cmp(CmpOp::Ne, tc, pc),
                |f| {
                    f.set_imm(matched, 0);
                    f.set_imm(run, 0);
                },
                |f| {
                    f.if_else(
                        f.cmp(CmpOp::Eq, j, 0u32),
                        |f| f.set_imm(run, 0),
                        |f| {
                            let nj = f.sub(j, 1u32);
                            f.copy(j, nj);
                        },
                    );
                },
            );
        });
        let nc = f.add(count, matched);
        f.copy(count, nc);
        // Advance by the skip of the window's last character.
        let lcp = f.add(tp, last);
        let lc = f.load_b(lcp, 0);
        let c4 = f.shl(lc, 2u32);
        let sp = f.add(skip, c4);
        let s = f.load_w(sp, 0);
        let ni = f.add(i, s);
        f.copy(i, ni);
    });
    f.ret(Some(count));
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    let tab = f.imm(pat_tab);
    let total = f.imm(0u32);
    for k in 0..NPATTERNS {
        let addr = f.load_w(tab, (k * 8) as i32);
        let len = f.load_w(tab, (k * 8 + 4) as i32);
        let c = f.call("bmh", &[addr, len]);
        f.emit(c);
        ir_fold(&mut f, total, c);
    }
    f.ret(Some(total));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_stringsearch(scale: Scale) -> RefOutput {
    let (text, patterns) = search_data(scale);
    let mut sink = RefSink::new();
    let mut total: u32 = 0;
    for pat in &patterns {
        let plen = pat.len();
        let mut skip = [plen as u32; 256];
        for (j, &c) in pat[..plen - 1].iter().enumerate() {
            skip[c as usize] = (plen - 1 - j) as u32;
        }
        let mut count: u32 = 0;
        let mut i = 0usize;
        while i <= text.len() - plen {
            if text[i..i + plen] == pat[..] {
                count += 1;
            }
            i += skip[text[i + plen - 1] as usize] as usize;
        }
        sink.emit(count);
        total = fold(total, count);
    }
    RefOutput {
        exit_code: total,
        emitted: sink.into_words(),
    }
}

// --------------------------------------------------------------------------
// ispell — djb2-hashed dictionary with linear probing: build the table,
// then check a query stream (half present, half single-char mutations).
// --------------------------------------------------------------------------

fn dict_size(scale: Scale) -> usize {
    (scale.n as usize).max(64)
}

/// Word records are `[len][bytes...]`; returns (record blob, offsets).
fn dictionary(scale: Scale) -> (Vec<u8>, Vec<u32>, Vec<u32>) {
    let n = dict_size(scale);
    let mut r = rng(0x15be);
    let mut blob = Vec::new();
    let mut offsets = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while offsets.len() < n {
        let len = r.gen_range(4..=10usize);
        let w: Vec<u8> = (0..len).map(|_| b'a' + r.gen_range(0..26u8)).collect();
        if !seen.insert(w.clone()) {
            continue;
        }
        offsets.push(blob.len() as u32);
        blob.push(len as u8);
        blob.extend_from_slice(&w);
    }
    // Queries: offsets into a second blob of query records.
    let mut qblob = Vec::new();
    let mut qoffsets = Vec::with_capacity(2 * n);
    for i in 0..2 * n {
        let off = offsets[r.gen_range(0..n)] as usize;
        let len = blob[off] as usize;
        let mut w = blob[off + 1..off + 1 + len].to_vec();
        if i % 2 == 1 {
            // Mutate one character (usually a miss).
            let k = r.gen_range(0..len);
            w[k] = b'a' + r.gen_range(0..26u8);
        }
        qoffsets.push(qblob.len() as u32);
        qblob.push(len as u8);
        qblob.extend_from_slice(&w);
    }
    let mut all = blob;
    let qbase = all.len() as u32;
    all.extend_from_slice(&qblob);
    let qoffsets = qoffsets.iter().map(|o| o + qbase).collect();
    (all, offsets, qoffsets)
}

fn djb2(word: &[u8]) -> u32 {
    word.iter().fold(5381u32, |h, &c| {
        h.wrapping_mul(33).wrapping_add(u32::from(c))
    })
}

pub(super) fn build_ispell(scale: Scale) -> Module {
    let n = dict_size(scale);
    let (blob, offsets, qoffsets) = dictionary(scale);
    let slots = (4 * n).next_power_of_two();
    let mask = (slots - 1) as u32;

    let mut d = DataBuilder::new();
    let blob_a = d.bytes(&blob);
    let dict_tab = d.words(&offsets.iter().map(|o| o + blob_a).collect::<Vec<_>>());
    let qry_tab = d.words(&qoffsets.iter().map(|o| o + blob_a).collect::<Vec<_>>());
    let table_a = d.zeroed(slots * 4, 4);

    let mut mb = ModuleBuilder::new();

    // hash(rec) over a [len][bytes] record.
    let mut f = FnBuilder::new("hash_word", 1);
    let rec = f.param(0);
    let len = f.load_b(rec, 0);
    let h = f.imm(5381u32);
    f.repeat(len, |f, j| {
        let cp = f.add(rec, j);
        let c = f.load_b(cp, 1);
        let h33 = f.mul(h, 33u32);
        f.bin_into(h, BinOp::Add, h33, c);
    });
    f.ret(Some(h));
    mb.push(f.finish());

    // words_equal(a, b) over two records.
    let mut f = FnBuilder::new("words_equal", 2);
    let a = f.param(0);
    let b = f.param(1);
    let la = f.load_b(a, 0);
    let lb = f.load_b(b, 0);
    let eq = f.imm(0u32);
    f.if_(f.cmp(CmpOp::Eq, la, lb), |f| {
        f.set_imm(eq, 1);
        f.repeat(la, |f, j| {
            let pa = f.add(a, j);
            let ca = f.load_b(pa, 1);
            let pb = f.add(b, j);
            let cb = f.load_b(pb, 1);
            f.if_(f.cmp(CmpOp::Ne, ca, cb), |f| f.set_imm(eq, 0));
        });
    });
    f.ret(Some(eq));
    mb.push(f.finish());

    // insert(rec): linear probe for a free slot, store rec address.
    let mut f = FnBuilder::new("dict_insert", 1);
    let rec = f.param(0);
    let table = f.imm(table_a);
    let h = f.call("hash_word", &[rec]);
    let slot = f.and(h, mask);
    let run = f.imm(1u32);
    f.while_(f.cmp(CmpOp::Ne, run, 0u32), |f| {
        let s4 = f.shl(slot, 2u32);
        let sp = f.add(table, s4);
        let v = f.load_w(sp, 0);
        f.if_else(
            f.cmp(CmpOp::Eq, v, 0u32),
            |f| {
                f.store_w(sp, 0, rec);
                f.set_imm(run, 0);
            },
            |f| {
                let ns = f.add(slot, 1u32);
                let wrapped = f.and(ns, mask);
                f.copy(slot, wrapped);
            },
        );
    });
    f.ret(None);
    mb.push(f.finish());

    // lookup(rec) -> 1 if present.
    let mut f = FnBuilder::new("dict_lookup", 1);
    let rec = f.param(0);
    let table = f.imm(table_a);
    let h = f.call("hash_word", &[rec]);
    let slot = f.and(h, mask);
    let run = f.imm(1u32);
    let found = f.imm(0u32);
    f.while_(f.cmp(CmpOp::Ne, run, 0u32), |f| {
        let s4 = f.shl(slot, 2u32);
        let sp = f.add(table, s4);
        let v = f.load_w(sp, 0);
        f.if_else(
            f.cmp(CmpOp::Eq, v, 0u32),
            |f| f.set_imm(run, 0),
            |f| {
                let eq = f.call("words_equal", &[v, rec]);
                f.if_else(
                    f.cmp(CmpOp::Ne, eq, 0u32),
                    |f| {
                        f.set_imm(found, 1);
                        f.set_imm(run, 0);
                    },
                    |f| {
                        let ns = f.add(slot, 1u32);
                        let wrapped = f.and(ns, mask);
                        f.copy(slot, wrapped);
                    },
                );
            },
        );
    });
    f.ret(Some(found));
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    let dictv = f.imm(dict_tab);
    f.repeat(n as u32, |f, i| {
        let i4 = f.shl(i, 2u32);
        let p = f.add(dictv, i4);
        let rec = f.load_w(p, 0);
        f.call_void("dict_insert", &[rec]);
    });
    let qryv = f.imm(qry_tab);
    let hits = f.imm(0u32);
    f.repeat((2 * n) as u32, |f, i| {
        let i4 = f.shl(i, 2u32);
        let p = f.add(qryv, i4);
        let rec = f.load_w(p, 0);
        let r = f.call("dict_lookup", &[rec]);
        let nh = f.add(hits, r);
        f.copy(hits, nh);
    });
    f.emit(hits);
    f.ret(Some(hits));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_ispell(scale: Scale) -> RefOutput {
    let n = dict_size(scale);
    let (blob, offsets, qoffsets) = dictionary(scale);
    let slots = (4 * n).next_power_of_two();
    let mask = (slots - 1) as u32;
    let word = |off: u32| -> &[u8] {
        let off = off as usize;
        let len = blob[off] as usize;
        &blob[off + 1..off + 1 + len]
    };
    let mut table: Vec<Option<u32>> = vec![None; slots];
    for &off in &offsets {
        let mut slot = djb2(word(off)) & mask;
        while table[slot as usize].is_some() {
            slot = (slot + 1) & mask;
        }
        table[slot as usize] = Some(off);
    }
    let mut hits: u32 = 0;
    for &q in &qoffsets {
        let w = word(q);
        let mut slot = djb2(w) & mask;
        loop {
            match table[slot as usize] {
                None => break,
                Some(off) => {
                    if word(off) == w {
                        hits += 1;
                        break;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }
    RefOutput {
        exit_code: hits,
        emitted: vec![hits],
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::differential;
    use super::*;

    #[test]
    fn stringsearch_matches_reference() {
        differential(build_stringsearch, ref_stringsearch);
    }

    #[test]
    fn ispell_matches_reference() {
        differential(build_ispell, ref_ispell);
    }

    #[test]
    fn sampled_patterns_hit() {
        let out = ref_stringsearch(Scale::test());
        // Two of every three patterns are sampled from the text.
        let hits = out.emitted.iter().filter(|&&c| c > 0).count();
        assert!(hits >= NPATTERNS * 2 / 3, "only {hits} patterns hit");
    }

    #[test]
    fn ispell_hits_at_least_the_real_words() {
        let out = ref_ispell(Scale::test());
        let n = dict_size(Scale::test()) as u32;
        assert!(out.exit_code >= n, "hits {} < {n}", out.exit_code);
    }

    #[test]
    fn djb2_known_values() {
        assert_eq!(djb2(b""), 5381);
        assert_eq!(djb2(b"a"), 5381u32.wrapping_mul(33) + u32::from(b'a'));
    }
}
