//! Security kernels: `blowfish.enc`/`blowfish.dec` (16-round Feistel over
//! precomputed boxes), `rijndael.enc`/`rijndael.dec` (AES-128 via T-tables),
//! and `sha` (SHA-1).
//!
//! Cipher key schedules and tables are computed host-side and placed in the
//! data segment — the embedded-systems usage the paper's security benchmarks
//! model (schedule once, encrypt a stream). The Blowfish boxes are generated
//! from a seeded RNG instead of the π-digit schedule: the table-lookup
//! datapath (what the I-cache experiments measure) is identical, only the
//! key-setup ceremony is skipped. AES uses the real FIPS-197 S-box and is
//! validated against the standard test vector.

use super::util::{random_bytes, rng, DataBuilder, RefSink};
use super::{RefOutput, Scale};
use crate::builder::{FnBuilder, ModuleBuilder};
use crate::ir::{BinOp, Module, Val};

fn fold(acc: u32, v: u32) -> u32 {
    acc.rotate_left(1) ^ v
}

fn ir_fold(f: &mut FnBuilder, acc: Val, v: Val) {
    let r = f.bin(BinOp::Ror, acc, 31u32);
    f.bin_into(acc, BinOp::Xor, r, v);
}

// --------------------------------------------------------------------------
// blowfish
// --------------------------------------------------------------------------

const BF_ROUNDS: usize = 16;

struct BfBoxes {
    p: [u32; 18],
    s: [[u32; 256]; 4],
}

fn bf_boxes() -> BfBoxes {
    let mut r = rng(0xb1f);
    let mut p = [0u32; 18];
    for v in p.iter_mut() {
        *v = r.gen();
    }
    let mut s = [[0u32; 256]; 4];
    for sbox in s.iter_mut() {
        for v in sbox.iter_mut() {
            *v = r.gen();
        }
    }
    BfBoxes { p, s }
}

fn bf_f(b: &BfBoxes, x: u32) -> u32 {
    let a = b.s[0][(x >> 24) as usize];
    let bb = b.s[1][((x >> 16) & 0xff) as usize];
    let c = b.s[2][((x >> 8) & 0xff) as usize];
    let d = b.s[3][(x & 0xff) as usize];
    a.wrapping_add(bb) ^ c.wrapping_add(d) // note: ^ binds looser than +
}

fn bf_encrypt(b: &BfBoxes, mut l: u32, mut r: u32) -> (u32, u32) {
    for i in 0..BF_ROUNDS {
        l ^= b.p[i];
        r ^= bf_f(b, l);
        std::mem::swap(&mut l, &mut r);
    }
    std::mem::swap(&mut l, &mut r);
    r ^= b.p[16];
    l ^= b.p[17];
    (l, r)
}

fn bf_decrypt(b: &BfBoxes, mut l: u32, mut r: u32) -> (u32, u32) {
    for i in (2..18).rev() {
        l ^= b.p[i];
        r ^= bf_f(b, l);
        std::mem::swap(&mut l, &mut r);
    }
    std::mem::swap(&mut l, &mut r);
    r ^= b.p[1];
    l ^= b.p[0];
    (l, r)
}

fn bf_blocks(scale: Scale) -> usize {
    (scale.n as usize / 2).max(16)
}

/// Plaintext as (l, r) word pairs.
fn bf_plain(scale: Scale) -> Vec<(u32, u32)> {
    let n = bf_blocks(scale);
    let mut r = rng(0xb1f2);
    (0..n).map(|_| (r.gen(), r.gen())).collect()
}

const BF_IV: (u32, u32) = (0x0123_4567, 0x89ab_cdef);

/// Emits the IR for `F(x)` given the four S-box base registers.
fn ir_bf_f(f: &mut FnBuilder, sboxes: &[Val; 4], x: Val) -> Val {
    let i0 = f.shr(x, 24u32);
    let o0 = f.shl(i0, 2u32);
    let p0 = f.add(sboxes[0], o0);
    let a = f.load_w(p0, 0);

    let i1s = f.shr(x, 16u32);
    let i1 = f.and(i1s, 0xffu32);
    let o1 = f.shl(i1, 2u32);
    let p1 = f.add(sboxes[1], o1);
    let b = f.load_w(p1, 0);

    let i2s = f.shr(x, 8u32);
    let i2 = f.and(i2s, 0xffu32);
    let o2 = f.shl(i2, 2u32);
    let p2 = f.add(sboxes[2], o2);
    let c = f.load_w(p2, 0);

    let i3 = f.and(x, 0xffu32);
    let o3 = f.shl(i3, 2u32);
    let p3 = f.add(sboxes[3], o3);
    let dd = f.load_w(p3, 0);

    let ab = f.add(a, b);
    let cd = f.add(c, dd);
    f.xor(ab, cd)
}

fn build_blowfish(scale: Scale, decrypt: bool) -> Module {
    let boxes = bf_boxes();
    let plain = bf_plain(scale);
    let n = plain.len();

    // CBC encrypt host-side to produce the decryption kernel's input.
    let mut cipher = Vec::with_capacity(n);
    let (mut pl, mut pr) = BF_IV;
    for &(l, r) in &plain {
        let (cl, cr) = bf_encrypt(&boxes, l ^ pl, r ^ pr);
        cipher.push((cl, cr));
        (pl, pr) = (cl, cr);
    }

    let mut d = DataBuilder::new();
    let p_a = d.words(&boxes.p);
    let s_a: Vec<u32> = boxes.s.iter().map(|sb| d.words(sb)).collect();
    let input: Vec<u32> = if decrypt { &cipher } else { &plain }
        .iter()
        .flat_map(|&(l, r)| [l, r])
        .collect();
    let in_a = d.words(&input);
    let out_a = d.zeroed(n * 8, 4);

    let mut mb = ModuleBuilder::new();
    let fname = if decrypt {
        "bf_decrypt_block"
    } else {
        "bf_encrypt_block"
    };

    // block cipher primitive: (l, r) -> packed via memory. Takes l, r,
    // returns l'; writes r' to a fixed scratch slot.
    let scratch = d.zeroed(8, 4);
    let mut f = FnBuilder::new(fname, 2);
    let l = f.imm(0u32);
    {
        let p0 = f.param(0);
        f.copy(l, p0);
    }
    let r = f.imm(0u32);
    {
        let p1 = f.param(1);
        f.copy(r, p1);
    }
    let pv = f.imm(p_a);
    let sboxes = [f.imm(s_a[0]), f.imm(s_a[1]), f.imm(s_a[2]), f.imm(s_a[3])];
    if !decrypt {
        for i in 0..BF_ROUNDS {
            let pk = f.load_w(pv, (i * 4) as i32);
            let nl = f.xor(l, pk);
            f.copy(l, nl);
            let fx = ir_bf_f(&mut f, &sboxes, l);
            let nr = f.xor(r, fx);
            // swap: l <- nr, r <- l
            let old_l = f.imm(0u32);
            f.copy(old_l, l);
            f.copy(l, nr);
            f.copy(r, old_l);
        }
    } else {
        for i in (2..18).rev() {
            let pk = f.load_w(pv, i * 4);
            let nl = f.xor(l, pk);
            f.copy(l, nl);
            let fx = ir_bf_f(&mut f, &sboxes, l);
            let nr = f.xor(r, fx);
            let old_l = f.imm(0u32);
            f.copy(old_l, l);
            f.copy(l, nr);
            f.copy(r, old_l);
        }
    }
    // Undo the final swap, then whiten.
    let old_l = f.imm(0u32);
    f.copy(old_l, l);
    f.copy(l, r);
    f.copy(r, old_l);
    let (wa, wb) = if decrypt { (1usize, 0usize) } else { (16, 17) };
    let pk_r = f.load_w(pv, (wa * 4) as i32);
    let nr = f.xor(r, pk_r);
    f.copy(r, nr);
    let pk_l = f.load_w(pv, (wb * 4) as i32);
    let nl = f.xor(l, pk_l);
    f.copy(l, nl);
    let scr = f.imm(scratch);
    f.store_w(scr, 0, r);
    f.ret(Some(l));
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    let inv = f.imm(in_a);
    let outv = f.imm(out_a);
    let scr = f.imm(scratch);
    let acc = f.imm(0u32);
    let prev_l = f.imm(BF_IV.0);
    let prev_r = f.imm(BF_IV.1);
    let ok = f.imm(0u32);
    f.repeat(n as u32, |f, blk| {
        let off = f.shl(blk, 3u32);
        let ip = f.add(inv, off);
        let op = f.add(outv, off);
        let xl = f.load_w(ip, 0);
        let xr = f.load_w(ip, 4);
        if !decrypt {
            // CBC: whiten with previous ciphertext, encrypt, chain.
            let wl = f.xor(xl, prev_l);
            let wr = f.xor(xr, prev_r);
            let cl = f.call(fname, &[wl, wr]);
            let cr = f.load_w(scr, 0);
            f.store_w(op, 0, cl);
            f.store_w(op, 4, cr);
            f.copy(prev_l, cl);
            f.copy(prev_r, cr);
            ir_fold(f, acc, cl);
            ir_fold(f, acc, cr);
        } else {
            // CBC decrypt: decrypt, un-whiten with previous ciphertext.
            let dl = f.call(fname, &[xl, xr]);
            let dr = f.load_w(scr, 0);
            let pl2 = f.xor(dl, prev_l);
            let pr2 = f.xor(dr, prev_r);
            f.store_w(op, 0, pl2);
            f.store_w(op, 4, pr2);
            f.copy(prev_l, xl);
            f.copy(prev_r, xr);
            ir_fold(f, acc, pl2);
            ir_fold(f, acc, pr2);
            let _ = ok;
        }
    });
    f.emit(acc);
    f.ret(Some(acc));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn build_blowfish_enc(scale: Scale) -> Module {
    build_blowfish(scale, false)
}

pub(super) fn build_blowfish_dec(scale: Scale) -> Module {
    build_blowfish(scale, true)
}

pub(super) fn ref_blowfish_enc(scale: Scale) -> RefOutput {
    let boxes = bf_boxes();
    let plain = bf_plain(scale);
    let mut acc: u32 = 0;
    let (mut pl, mut pr) = BF_IV;
    for &(l, r) in &plain {
        let (cl, cr) = bf_encrypt(&boxes, l ^ pl, r ^ pr);
        acc = fold(acc, cl);
        acc = fold(acc, cr);
        (pl, pr) = (cl, cr);
    }
    RefOutput {
        exit_code: acc,
        emitted: vec![acc],
    }
}

pub(super) fn ref_blowfish_dec(scale: Scale) -> RefOutput {
    let boxes = bf_boxes();
    let plain = bf_plain(scale);
    let mut cipher = Vec::new();
    let (mut pl, mut pr) = BF_IV;
    for &(l, r) in &plain {
        let (cl, cr) = bf_encrypt(&boxes, l ^ pl, r ^ pr);
        cipher.push((cl, cr));
        (pl, pr) = (cl, cr);
    }
    let mut acc: u32 = 0;
    let (mut pl, mut pr) = BF_IV;
    for &(cl, cr) in &cipher {
        let (dl, dr) = bf_decrypt(&boxes, cl, cr);
        acc = fold(acc, dl ^ pl);
        acc = fold(acc, dr ^ pr);
        (pl, pr) = (cl, cr);
    }
    RefOutput {
        exit_code: acc,
        emitted: vec![acc],
    }
}

// --------------------------------------------------------------------------
// rijndael (AES-128, T-table form with rotations)
// --------------------------------------------------------------------------

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1b } else { 0 })
}

fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// The FIPS-197 S-box, computed from the multiplicative inverse plus affine
/// transform (no 256-entry literal to mistype).
fn aes_sbox() -> [u8; 256] {
    // Build inverses by brute force.
    let mut inv = [0u8; 256];
    for a in 1..=255u8 {
        for b in 1..=255u8 {
            if gmul(a, b) == 1 {
                inv[a as usize] = b;
                break;
            }
        }
    }
    let mut sbox = [0u8; 256];
    for (i, s) in sbox.iter_mut().enumerate() {
        let x = inv[i];
        let mut y = x;
        let mut res = x;
        for _ in 0..4 {
            y = y.rotate_left(1);
            res ^= y;
        }
        *s = res ^ 0x63;
    }
    sbox
}

fn aes_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in sbox.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// Encryption T-table: `Te[x] = (2s, s, s, 3s)` packed big-endian-style into
/// a word; other columns come from rotations.
fn aes_te(sbox: &[u8; 256]) -> Vec<u32> {
    sbox.iter()
        .map(|&s| u32::from_be_bytes([gmul(s, 2), s, s, gmul(s, 3)]))
        .collect()
}

/// Decryption T-table over the inverse S-box with (14, 9, 13, 11).
fn aes_td(inv_sbox: &[u8; 256]) -> Vec<u32> {
    inv_sbox
        .iter()
        .map(|&s| u32::from_be_bytes([gmul(s, 14), gmul(s, 9), gmul(s, 13), gmul(s, 11)]))
        .collect()
}

const AES_ROUNDS: usize = 10;

/// AES-128 key expansion (44 words).
fn aes_expand_key(key: &[u8; 16], sbox: &[u8; 256]) -> [u32; 44] {
    let mut w = [0u32; 44];
    for i in 0..4 {
        w[i] = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    let mut rcon: u8 = 1;
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t = t.rotate_left(8);
            let b = t.to_be_bytes();
            t = u32::from_be_bytes([
                sbox[b[0] as usize],
                sbox[b[1] as usize],
                sbox[b[2] as usize],
                sbox[b[3] as usize],
            ]);
            t ^= u32::from(rcon) << 24;
            rcon = xtime(rcon);
        }
        w[i] = w[i - 4] ^ t;
    }
    w
}

/// InvMixColumns applied to a round-key word (for the equivalent inverse
/// cipher's schedule).
fn inv_mix_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    let m = |r: usize| {
        gmul(b[r], 14)
            ^ gmul(b[(r + 1) % 4], 11)
            ^ gmul(b[(r + 2) % 4], 13)
            ^ gmul(b[(r + 3) % 4], 9)
    };
    u32::from_be_bytes([m(0), m(1), m(2), m(3)])
}

struct AesCtx {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    te: Vec<u32>,
    td: Vec<u32>,
    ek: [u32; 44],
    dk: [u32; 44],
}

fn aes_ctx(key: &[u8; 16]) -> AesCtx {
    let sbox = aes_sbox();
    let inv_sbox = aes_inv_sbox(&sbox);
    let te = aes_te(&sbox);
    let td = aes_td(&inv_sbox);
    let ek = aes_expand_key(key, &sbox);
    // Equivalent inverse cipher schedule: reverse round order, InvMixColumns
    // on the middle rounds.
    let mut dk = [0u32; 44];
    for round in 0..=AES_ROUNDS {
        for c in 0..4 {
            let src = ek[(AES_ROUNDS - round) * 4 + c];
            dk[round * 4 + c] = if round == 0 || round == AES_ROUNDS {
                src
            } else {
                inv_mix_word(src)
            };
        }
    }
    AesCtx {
        sbox,
        inv_sbox,
        te,
        td,
        ek,
        dk,
    }
}

fn byte_of(w: u32, pos: u32) -> u32 {
    (w >> (24 - 8 * pos)) & 0xff
}

/// One AES encryption, word-level (operates on 4 big-endian state words).
fn aes_encrypt_block(ctx: &AesCtx, block: [u32; 4]) -> [u32; 4] {
    let mut s = [
        block[0] ^ ctx.ek[0],
        block[1] ^ ctx.ek[1],
        block[2] ^ ctx.ek[2],
        block[3] ^ ctx.ek[3],
    ];
    for round in 1..AES_ROUNDS {
        let mut t = [0u32; 4];
        for (c, tc) in t.iter_mut().enumerate() {
            let w0 = ctx.te[byte_of(s[c], 0) as usize];
            let w1 = ctx.te[byte_of(s[(c + 1) % 4], 1) as usize].rotate_right(8);
            let w2 = ctx.te[byte_of(s[(c + 2) % 4], 2) as usize].rotate_right(16);
            let w3 = ctx.te[byte_of(s[(c + 3) % 4], 3) as usize].rotate_right(24);
            *tc = w0 ^ w1 ^ w2 ^ w3 ^ ctx.ek[round * 4 + c];
        }
        s = t;
    }
    let mut out = [0u32; 4];
    for (c, oc) in out.iter_mut().enumerate() {
        let b0 = u32::from(ctx.sbox[byte_of(s[c], 0) as usize]);
        let b1 = u32::from(ctx.sbox[byte_of(s[(c + 1) % 4], 1) as usize]);
        let b2 = u32::from(ctx.sbox[byte_of(s[(c + 2) % 4], 2) as usize]);
        let b3 = u32::from(ctx.sbox[byte_of(s[(c + 3) % 4], 3) as usize]);
        *oc = (b0 << 24 | b1 << 16 | b2 << 8 | b3) ^ ctx.ek[AES_ROUNDS * 4 + c];
    }
    out
}

/// One AES decryption (equivalent inverse cipher).
fn aes_decrypt_block(ctx: &AesCtx, block: [u32; 4]) -> [u32; 4] {
    let mut s = [
        block[0] ^ ctx.dk[0],
        block[1] ^ ctx.dk[1],
        block[2] ^ ctx.dk[2],
        block[3] ^ ctx.dk[3],
    ];
    for round in 1..AES_ROUNDS {
        let mut t = [0u32; 4];
        for (c, tc) in t.iter_mut().enumerate() {
            let w0 = ctx.td[byte_of(s[c], 0) as usize];
            let w1 = ctx.td[byte_of(s[(c + 3) % 4], 1) as usize].rotate_right(8);
            let w2 = ctx.td[byte_of(s[(c + 2) % 4], 2) as usize].rotate_right(16);
            let w3 = ctx.td[byte_of(s[(c + 1) % 4], 3) as usize].rotate_right(24);
            *tc = w0 ^ w1 ^ w2 ^ w3 ^ ctx.dk[round * 4 + c];
        }
        s = t;
    }
    let mut out = [0u32; 4];
    for (c, oc) in out.iter_mut().enumerate() {
        let b0 = u32::from(ctx.inv_sbox[byte_of(s[c], 0) as usize]);
        let b1 = u32::from(ctx.inv_sbox[byte_of(s[(c + 3) % 4], 1) as usize]);
        let b2 = u32::from(ctx.inv_sbox[byte_of(s[(c + 2) % 4], 2) as usize]);
        let b3 = u32::from(ctx.inv_sbox[byte_of(s[(c + 1) % 4], 3) as usize]);
        *oc = (b0 << 24 | b1 << 16 | b2 << 8 | b3) ^ ctx.dk[AES_ROUNDS * 4 + c];
    }
    out
}

const AES_KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

fn aes_blocks(scale: Scale) -> usize {
    ((scale.n as usize / 4).max(8) + 1) & !1
}

fn aes_plain(scale: Scale) -> Vec<[u32; 4]> {
    let n = aes_blocks(scale);
    let mut r = rng(0xae5);
    (0..n)
        .map(|_| [r.gen(), r.gen(), r.gen(), r.gen()])
        .collect()
}

/// Emits a T-table round column: `Te[b0(s0)] ^ ror(Te[b1(s1)], 8) ^ ... ^ rk`.
/// `rot_dir` picks the source-word rotation pattern (encrypt vs decrypt).
fn ir_aes_column(
    f: &mut FnBuilder,
    table: Val,
    s: &[Val; 4],
    c: usize,
    decrypt: bool,
    rk: Val,
) -> Val {
    let pick = |k: usize| -> usize {
        if decrypt {
            (c + 4 - k) % 4
        } else {
            (c + k) % 4
        }
    };
    let mut acc: Option<Val> = None;
    for k in 0..4usize {
        let word = s[pick(k)];
        // Extract byte k (big-endian position).
        let b = if k == 3 {
            f.and(word, 0xffu32)
        } else {
            let sh = f.shr(word, (24 - 8 * k) as u32);
            if k == 0 {
                sh
            } else {
                f.and(sh, 0xffu32)
            }
        };
        let off = f.shl(b, 2u32);
        let p = f.add(table, off);
        let t = f.load_w(p, 0);
        let t = if k == 0 {
            t
        } else {
            f.bin(BinOp::Ror, t, (8 * k) as u32)
        };
        acc = Some(match acc {
            None => t,
            Some(a) => f.xor(a, t),
        });
    }
    let a = acc.expect("four taps");
    f.xor(a, rk)
}

/// Final-round column using the byte S-box table.
fn ir_aes_final_column(
    f: &mut FnBuilder,
    sbox: Val,
    s: &[Val; 4],
    c: usize,
    decrypt: bool,
    rk: Val,
) -> Val {
    let pick = |k: usize| -> usize {
        if decrypt {
            (c + 4 - k) % 4
        } else {
            (c + k) % 4
        }
    };
    let mut acc: Option<Val> = None;
    for k in 0..4usize {
        let word = s[pick(k)];
        let b = if k == 3 {
            f.and(word, 0xffu32)
        } else {
            let sh = f.shr(word, (24 - 8 * k) as u32);
            if k == 0 {
                sh
            } else {
                f.and(sh, 0xffu32)
            }
        };
        let p = f.add(sbox, b);
        let sb = f.load_b(p, 0);
        let positioned = if k == 3 {
            sb
        } else {
            f.shl(sb, (24 - 8 * k) as u32)
        };
        acc = Some(match acc {
            None => positioned,
            Some(a) => f.or(a, positioned),
        });
    }
    let a = acc.expect("four taps");
    f.xor(a, rk)
}

fn build_rijndael(scale: Scale, decrypt: bool) -> Module {
    let ctx = aes_ctx(&AES_KEY);
    let plain = aes_plain(scale);
    let n = plain.len();
    let cipher: Vec<[u32; 4]> = plain.iter().map(|&b| aes_encrypt_block(&ctx, b)).collect();

    let mut d = DataBuilder::new();
    let table_a = d.words(if decrypt { &ctx.td } else { &ctx.te });
    let sbox_bytes: Vec<u8> = if decrypt {
        ctx.inv_sbox.to_vec()
    } else {
        ctx.sbox.to_vec()
    };
    let sbox_a = d.bytes(&sbox_bytes);
    let keys = if decrypt { &ctx.dk } else { &ctx.ek };
    let rk_a = d.words(keys);
    let input: Vec<u32> = if decrypt { &cipher } else { &plain }
        .iter()
        .flatten()
        .copied()
        .collect();
    let in_a = d.words(&input);

    let mut mb = ModuleBuilder::new();

    // The whole cipher is emitted inline and the block loop is unrolled two
    // blocks deep — the `-funroll-loops` shape real embedded AES code takes,
    // and what puts the hot loop in the 8-16 KB band the paper's cache
    // experiments live in.
    let mut f = FnBuilder::new("main", 0);
    let inv = f.imm(in_a);
    let table = f.imm(table_a);
    let sbox = f.imm(sbox_a);
    let rk = f.imm(rk_a);
    let acc = f.imm(0u32);
    debug_assert_eq!(n % 2, 0, "block count is even");
    f.repeat((n / 2) as u32, |f, pair| {
        let off = f.shl(pair, 5u32);
        let ip = f.add(inv, off);
        for half in 0..2i32 {
            let base_disp = half * 16;
            let mut s: [Val; 4] = [
                f.load_w(ip, base_disp),
                f.load_w(ip, base_disp + 4),
                f.load_w(ip, base_disp + 8),
                f.load_w(ip, base_disp + 12),
            ];
            // AddRoundKey 0.
            for (c, sc) in s.iter_mut().enumerate() {
                let k = f.load_w(rk, (c * 4) as i32);
                *sc = f.xor(*sc, k);
            }
            // Rounds 1..9, fully unrolled.
            for round in 1..AES_ROUNDS {
                let mut t = [s[0]; 4];
                for (c, tc) in t.iter_mut().enumerate() {
                    let k = f.load_w(rk, ((round * 4 + c) * 4) as i32);
                    *tc = ir_aes_column(f, table, &s, c, decrypt, k);
                }
                s = t;
            }
            // Final round.
            for c in 0..4usize {
                let k = f.load_w(rk, ((AES_ROUNDS * 4 + c) * 4) as i32);
                let out = ir_aes_final_column(f, sbox, &s, c, decrypt, k);
                ir_fold(f, acc, out);
            }
        }
    });
    f.emit(acc);
    f.ret(Some(acc));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn build_rijndael_enc(scale: Scale) -> Module {
    build_rijndael(scale, false)
}

pub(super) fn build_rijndael_dec(scale: Scale) -> Module {
    build_rijndael(scale, true)
}

pub(super) fn ref_rijndael_enc(scale: Scale) -> RefOutput {
    let ctx = aes_ctx(&AES_KEY);
    let plain = aes_plain(scale);
    let mut acc: u32 = 0;
    for &b in &plain {
        for w in aes_encrypt_block(&ctx, b) {
            acc = fold(acc, w);
        }
    }
    RefOutput {
        exit_code: acc,
        emitted: vec![acc],
    }
}

pub(super) fn ref_rijndael_dec(scale: Scale) -> RefOutput {
    let ctx = aes_ctx(&AES_KEY);
    let plain = aes_plain(scale);
    let mut acc: u32 = 0;
    for &b in &plain {
        let c = aes_encrypt_block(&ctx, b);
        for w in aes_decrypt_block(&ctx, c) {
            acc = fold(acc, w);
        }
    }
    RefOutput {
        exit_code: acc,
        emitted: vec![acc],
    }
}

// --------------------------------------------------------------------------
// sha — SHA-1 over a message, 80 rounds unrolled in the classic 4 phases.
// --------------------------------------------------------------------------

fn sha_len(scale: Scale) -> usize {
    (scale.n as usize * 16).max(256)
}

/// Pads a message to SHA-1 block format (length in bits, big-endian).
fn sha_pad(msg: &[u8]) -> Vec<u8> {
    let mut m = msg.to_vec();
    let bitlen = (msg.len() as u64) * 8;
    m.push(0x80);
    while m.len() % 64 != 56 {
        m.push(0);
    }
    m.extend_from_slice(&bitlen.to_be_bytes());
    m
}

fn sha1(msg: &[u8]) -> [u32; 5] {
    let padded = sha_pad(msg);
    let mut h = [
        0x6745_2301u32,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];
    for chunk in padded.chunks_exact(64) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            let mut word = [0u8; 4];
            word.copy_from_slice(&chunk[4 * i..4 * i + 4]);
            w[i] = u32::from_be_bytes(word);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a82_7999u32),
                1 => (b ^ c ^ d, 0x6ed9_eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h
}

pub(super) fn build_sha(scale: Scale) -> Module {
    let msg = random_bytes(0x5a1, sha_len(scale));
    let padded = sha_pad(&msg);
    let nblocks = padded.len() / 64;

    let mut d = DataBuilder::new();
    let msg_a = d.bytes(&padded);
    let w_a = d.zeroed(80 * 4, 4);
    let h_init = [
        0x6745_2301u32,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];
    let h_a = d.words(&h_init);

    let mut mb = ModuleBuilder::new();

    // process_block(chunk_base): updates H in memory.
    let mut f = FnBuilder::new("sha_block", 1);
    let chunk = f.param(0);
    let wv = f.imm(w_a);
    let hv = f.imm(h_a);
    // Message schedule: first 16 words big-endian.
    f.repeat(16u32, |f, i| {
        let i4 = f.shl(i, 2u32);
        let p = f.add(chunk, i4);
        let b0 = f.load_b(p, 0);
        let b1 = f.load_b(p, 1);
        let b2 = f.load_b(p, 2);
        let b3 = f.load_b(p, 3);
        let w0 = f.shl(b0, 24u32);
        let w1 = f.shl(b1, 16u32);
        let w2 = f.shl(b2, 8u32);
        let o1 = f.or(w0, w1);
        let o2 = f.or(o1, w2);
        let w = f.or(o2, b3);
        let wp = f.add(wv, i4);
        f.store_w(wp, 0, w);
    });
    f.repeat(64u32, |f, i16| {
        let i = f.add(i16, 16u32);
        let i4 = f.shl(i, 2u32);
        let wp = f.add(wv, i4);
        let w3 = f.load_w(wp, -(3 * 4));
        let w8 = f.load_w(wp, -(8 * 4));
        let w14 = f.load_w(wp, -(14 * 4));
        let w16 = f.load_w(wp, -(16 * 4));
        let x1 = f.xor(w3, w8);
        let x2 = f.xor(x1, w14);
        let x3 = f.xor(x2, w16);
        let w = f.bin(BinOp::Ror, x3, 31u32);
        f.store_w(wp, 0, w);
    });

    let a = f.load_w(hv, 0);
    let b = f.load_w(hv, 4);
    let c = f.load_w(hv, 8);
    let dd = f.load_w(hv, 12);
    let e = f.load_w(hv, 16);
    let (av, bv, cv, dv, ev) = (
        f.imm(0u32),
        f.imm(0u32),
        f.imm(0u32),
        f.imm(0u32),
        f.imm(0u32),
    );
    f.copy(av, a);
    f.copy(bv, b);
    f.copy(cv, c);
    f.copy(dv, dd);
    f.copy(ev, e);

    // 80 rounds, unrolled in the four classic phases.
    for i in 0..80usize {
        let (k, phase) = match i / 20 {
            0 => (0x5a82_7999u32, 0),
            1 => (0x6ed9_eba1, 1),
            2 => (0x8f1b_bcdc, 2),
            _ => (0xca62_c1d6, 1),
        };
        let fv = match phase {
            0 => {
                // (b & c) | (!b & d)
                let bc = f.and(bv, cv);
                let nb = f.not(bv);
                let nbd = f.and(nb, dv);
                f.or(bc, nbd)
            }
            2 => {
                // majority
                let bc = f.and(bv, cv);
                let bd = f.and(bv, dv);
                let cd = f.and(cv, dv);
                let o1 = f.or(bc, bd);
                f.or(o1, cd)
            }
            _ => {
                let x = f.xor(bv, cv);
                f.xor(x, dv)
            }
        };
        let wp = f.imm(w_a + (i as u32) * 4);
        let wi = f.load_w(wp, 0);
        let rot = f.bin(BinOp::Ror, av, 27u32);
        let t1 = f.add(rot, fv);
        let t2 = f.add(t1, ev);
        let t3 = f.add(t2, k);
        let t = f.add(t3, wi);
        f.copy(ev, dv);
        f.copy(dv, cv);
        let b30 = f.bin(BinOp::Ror, bv, 2u32);
        f.copy(cv, b30);
        f.copy(bv, av);
        f.copy(av, t);
    }

    for (off, v) in [(0, av), (4, bv), (8, cv), (12, dv), (16, ev)] {
        let old = f.load_w(hv, off);
        let nv = f.add(old, v);
        f.store_w(hv, off, nv);
    }
    f.ret(None);
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    f.repeat(nblocks as u32, |f, blk| {
        let off = f.shl(blk, 6u32);
        let msgv = f.imm(msg_a);
        let base = f.add(msgv, off);
        f.call_void("sha_block", &[base]);
    });
    let hv = f.imm(h_a);
    let acc = f.imm(0u32);
    for off in [0, 4, 8, 12, 16] {
        let h = f.load_w(hv, off);
        f.emit(h);
        ir_fold(&mut f, acc, h);
    }
    f.ret(Some(acc));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_sha(scale: Scale) -> RefOutput {
    let msg = random_bytes(0x5a1, sha_len(scale));
    let h = sha1(&msg);
    let mut acc: u32 = 0;
    let mut sink = RefSink::new();
    for w in h {
        sink.emit(w);
        acc = fold(acc, w);
    }
    RefOutput {
        exit_code: acc,
        emitted: sink.into_words(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::differential;
    use super::*;

    #[test]
    fn blowfish_enc_matches_reference() {
        differential(build_blowfish_enc, ref_blowfish_enc);
    }

    #[test]
    fn blowfish_dec_matches_reference() {
        differential(build_blowfish_dec, ref_blowfish_dec);
    }

    #[test]
    fn rijndael_enc_matches_reference() {
        differential(build_rijndael_enc, ref_rijndael_enc);
    }

    #[test]
    fn rijndael_dec_matches_reference() {
        differential(build_rijndael_dec, ref_rijndael_dec);
    }

    #[test]
    fn sha_matches_reference() {
        differential(build_sha, ref_sha);
    }

    #[test]
    fn blowfish_round_trips() {
        let b = bf_boxes();
        for (l, r) in [(0u32, 0u32), (1, 2), (0xdead_beef, 0x1234_5678)] {
            let (cl, cr) = bf_encrypt(&b, l, r);
            assert_eq!(bf_decrypt(&b, cl, cr), (l, r));
        }
    }

    #[test]
    fn aes_sbox_is_the_fips_sbox() {
        let s = aes_sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7c);
        assert_eq!(s[0x53], 0xed);
        assert_eq!(s[0xff], 0x16);
    }

    #[test]
    fn aes_matches_fips197_vector() {
        // FIPS-197 Appendix B: key 2b7e...3c, plaintext 3243f6a8885a308d313198a2e0370734.
        let ctx = aes_ctx(&AES_KEY);
        let pt = [0x3243_f6a8u32, 0x885a_308d, 0x3131_98a2, 0xe037_0734];
        let ct = aes_encrypt_block(&ctx, pt);
        assert_eq!(ct, [0x3925_841du32, 0x02dc_09fb, 0xdc11_8597, 0x196a_0b32]);
        assert_eq!(aes_decrypt_block(&ctx, ct), pt);
    }

    #[test]
    fn sha1_known_vector() {
        let h = sha1(b"abc");
        assert_eq!(
            h,
            [
                0xa999_3e36,
                0x4706_816a,
                0xba3e_2571,
                0x7850_c26c,
                0x9cd0_d89d
            ]
        );
    }
}
