//! Automotive kernels: `bitcount`, `qsort`, and the three `susan` passes.

use super::util::{random_words, test_image, DataBuilder, RefSink};
use super::{RefOutput, Scale};
use crate::builder::{FnBuilder, ModuleBuilder};
use crate::ir::{BinOp, CmpOp, Module, Val};

fn fold(acc: u32, v: u32) -> u32 {
    acc.rotate_left(1) ^ v
}

fn ir_fold(f: &mut FnBuilder, acc: Val, v: Val) {
    let r = f.bin(BinOp::Ror, acc, 31u32);
    f.bin_into(acc, BinOp::Xor, r, v);
}

// --------------------------------------------------------------------------
// bitcount — five counting strategies over a word array, like MiBench's
// seven-way bitcount driver.
// --------------------------------------------------------------------------

fn bitcount_len(scale: Scale) -> usize {
    (scale.n as usize * 4).max(64)
}

fn nibble_table() -> Vec<u32> {
    (0..16u32).map(u32::count_ones).collect()
}

fn byte_table() -> Vec<u8> {
    (0..=255u8).map(|b| b.count_ones() as u8).collect()
}

pub(super) fn build_bitcount(scale: Scale) -> Module {
    let len = bitcount_len(scale);
    let words = random_words(0xb17c, len);
    let mut d = DataBuilder::new();
    let data = d.words(&words);
    let ntab = d.words(&nibble_table());
    let btab = d.bytes(&byte_table());

    let mut mb = ModuleBuilder::new();

    // Method 1: Kernighan's loop.
    let mut f = FnBuilder::new("bc_kernighan", 1);
    let x = f.param(0);
    let v = f.imm(0u32);
    f.copy(v, x);
    let c = f.imm(0u32);
    f.while_(f.cmp(CmpOp::Ne, v, 0u32), |f| {
        let m1 = f.sub(v, 1u32);
        let nv = f.and(v, m1);
        f.copy(v, nv);
        let nc = f.add(c, 1u32);
        f.copy(c, nc);
    });
    f.ret(Some(c));
    mb.push(f.finish());

    // Method 2: SWAR parallel reduction.
    let mut f = FnBuilder::new("bc_swar", 1);
    let x = f.param(0);
    let h = f.shr(x, 1u32);
    let h5 = f.and(h, 0x5555_5555u32);
    let v1 = f.sub(x, h5);
    let a = f.and(v1, 0x3333_3333u32);
    let b0 = f.shr(v1, 2u32);
    let b = f.and(b0, 0x3333_3333u32);
    let v2 = f.add(a, b);
    let c0 = f.shr(v2, 4u32);
    let v3 = f.add(v2, c0);
    let v4 = f.and(v3, 0x0f0f_0f0fu32);
    let v5 = f.mul(v4, 0x0101_0101u32);
    let out = f.shr(v5, 24u32);
    f.ret(Some(out));
    mb.push(f.finish());

    // Method 3: eight nibble-table lookups, fully unrolled.
    let mut f = FnBuilder::new("bc_nibble", 1);
    let x = f.param(0);
    let tab = f.imm(ntab);
    let c = f.imm(0u32);
    for k in 0..8u32 {
        let sh = f.shr(x, k * 4);
        let nib = f.and(sh, 0xfu32);
        let off = f.shl(nib, 2u32);
        let p = f.add(tab, off);
        let e = f.load_w(p, 0);
        let nc = f.add(c, e);
        f.copy(c, nc);
    }
    f.ret(Some(c));
    mb.push(f.finish());

    // Method 4: four byte-table lookups.
    let mut f = FnBuilder::new("bc_byte", 1);
    let x = f.param(0);
    let tab = f.imm(btab);
    let c = f.imm(0u32);
    for k in 0..4u32 {
        let sh = f.shr(x, k * 8);
        let byte = f.and(sh, 0xffu32);
        let p = f.add(tab, byte);
        let e = f.load_b(p, 0);
        let nc = f.add(c, e);
        f.copy(c, nc);
    }
    f.ret(Some(c));
    mb.push(f.finish());

    // Method 5: shift-and-add over all 32 bit positions, unrolled.
    let mut f = FnBuilder::new("bc_shift", 1);
    let x = f.param(0);
    let c = f.imm(0u32);
    for k in 0..32u32 {
        let sh = f.shr(x, k);
        let bit = f.and(sh, 1u32);
        let nc = f.add(c, bit);
        f.copy(c, nc);
    }
    f.ret(Some(c));
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    let base = f.imm(data);
    let total = f.imm(0u32);
    let methods = [
        "bc_kernighan",
        "bc_swar",
        "bc_nibble",
        "bc_byte",
        "bc_shift",
    ];
    for name in methods {
        let sum = f.imm(0u32);
        f.repeat(len as u32, |f, i| {
            let off = f.shl(i, 2u32);
            let p = f.add(base, off);
            let w = f.load_w(p, 0);
            let c = f.call(name, &[w]);
            let ns = f.add(sum, c);
            f.copy(sum, ns);
        });
        f.emit(sum);
        ir_fold(&mut f, total, sum);
    }
    f.ret(Some(total));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_bitcount(scale: Scale) -> RefOutput {
    let len = bitcount_len(scale);
    let words = random_words(0xb17c, len);
    let per_method: u32 = words.iter().map(|w| w.count_ones()).sum();
    let mut sink = RefSink::new();
    let mut total: u32 = 0;
    for _ in 0..5 {
        sink.emit(per_method);
        total = fold(total, per_method);
    }
    RefOutput {
        exit_code: total,
        emitted: sink.into_words(),
    }
}

// --------------------------------------------------------------------------
// qsort — recursive quicksort (median-of-3 Hoare partition) with an
// insertion-sort finish, over unsigned words.
// --------------------------------------------------------------------------

fn qsort_len(scale: Scale) -> usize {
    (scale.n as usize * 8).max(64)
}

pub(super) fn build_qsort(scale: Scale) -> Module {
    let len = qsort_len(scale);
    let words = random_words(0x9507, len);
    let mut d = DataBuilder::new();
    let arr = d.words(&words);

    let mut mb = ModuleBuilder::new();

    // insertion_sort(base, lo, hi) — indices inclusive, signed.
    let mut f = FnBuilder::new("isort", 3);
    let base = f.param(0);
    let lo = f.param(1);
    let hi = f.param(2);
    let i = f.add(lo, 1u32);
    f.while_(f.cmp(CmpOp::LeS, i, hi), |f| {
        let i4 = f.shl(i, 2u32);
        let pi = f.add(base, i4);
        let key = f.load_w(pi, 0);
        let j = f.sub(i, 1u32);
        let run = f.imm(1u32);
        f.while_(f.cmp(CmpOp::Ne, run, 0u32), |f| {
            f.if_else(
                f.cmp(CmpOp::LtS, j, lo),
                |f| f.set_imm(run, 0),
                |f| {
                    let j4 = f.shl(j, 2u32);
                    let pj = f.add(base, j4);
                    let vj = f.load_w(pj, 0);
                    f.if_else(
                        f.cmp(CmpOp::GtU, vj, key),
                        |f| {
                            f.store_w(pj, 4, vj);
                            let nj = f.sub(j, 1u32);
                            f.copy(j, nj);
                        },
                        |f| f.set_imm(run, 0),
                    );
                },
            );
        });
        let j4 = f.shl(j, 2u32);
        let pj = f.add(base, j4);
        f.store_w(pj, 4, key);
        let ni = f.add(i, 1u32);
        f.copy(i, ni);
    });
    f.ret(None);
    mb.push(f.finish());

    // quicksort(base, lo, hi) — recursive.
    let mut f = FnBuilder::new("quicksort", 3);
    let base = f.param(0);
    let lo = f.param(1);
    let hi = f.param(2);
    let span = f.sub(hi, lo);
    f.if_else(
        f.cmp(CmpOp::LtS, span, 12u32),
        |f| {
            f.if_(f.cmp(CmpOp::GtS, span, 0u32), |f| {
                f.call_void("isort", &[base, lo, hi]);
            });
        },
        |f| {
            // Median-of-3: order arr[lo], arr[mid], arr[hi].
            let sum = f.add(lo, hi);
            let mid = f.shr(sum, 1u32);
            let lo4 = f.shl(lo, 2u32);
            let mid4 = f.shl(mid, 2u32);
            let hi4 = f.shl(hi, 2u32);
            let plo = f.add(base, lo4);
            let pmid = f.add(base, mid4);
            let phi = f.add(base, hi4);
            let a = f.load_w(plo, 0);
            let b = f.load_w(pmid, 0);
            let c = f.load_w(phi, 0);
            // Three compare-swaps, operating on registers then stored back.
            f.if_(f.cmp(CmpOp::GtU, a, b), |f| {
                let t = f.imm(0u32);
                f.copy(t, a);
                f.copy(a, b);
                f.copy(b, t);
            });
            f.if_(f.cmp(CmpOp::GtU, b, c), |f| {
                let t = f.imm(0u32);
                f.copy(t, b);
                f.copy(b, c);
                f.copy(c, t);
            });
            f.if_(f.cmp(CmpOp::GtU, a, b), |f| {
                let t = f.imm(0u32);
                f.copy(t, a);
                f.copy(a, b);
                f.copy(b, t);
            });
            f.store_w(plo, 0, a);
            f.store_w(pmid, 0, b);
            f.store_w(phi, 0, c);
            let pivot = f.imm(0u32);
            f.copy(pivot, b);

            // Hoare partition.
            let i = f.imm(0u32);
            f.copy(i, lo);
            let j = f.imm(0u32);
            f.copy(j, hi);
            f.while_(f.cmp(CmpOp::LeS, i, j), |f| {
                // Scan i rightwards.
                let i4 = f.shl(i, 2u32);
                let pi = f.add(base, i4);
                let vi = f.load_w(pi, 0);
                f.while_(f.cmp(CmpOp::LtU, vi, pivot), |f| {
                    let ni = f.add(i, 1u32);
                    f.copy(i, ni);
                    let i4 = f.shl(i, 2u32);
                    let pi = f.add(base, i4);
                    let nv = f.load_w(pi, 0);
                    f.copy(vi, nv);
                });
                // Scan j leftwards.
                let j4 = f.shl(j, 2u32);
                let pj = f.add(base, j4);
                let vj = f.load_w(pj, 0);
                f.while_(f.cmp(CmpOp::GtU, vj, pivot), |f| {
                    let nj = f.sub(j, 1u32);
                    f.copy(j, nj);
                    let j4 = f.shl(j, 2u32);
                    let pj = f.add(base, j4);
                    let nv = f.load_w(pj, 0);
                    f.copy(vj, nv);
                });
                f.if_(f.cmp(CmpOp::LeS, i, j), |f| {
                    let i4 = f.shl(i, 2u32);
                    let j4 = f.shl(j, 2u32);
                    let pi = f.add(base, i4);
                    let pj = f.add(base, j4);
                    f.store_w(pi, 0, vj);
                    f.store_w(pj, 0, vi);
                    let ni = f.add(i, 1u32);
                    f.copy(i, ni);
                    let nj = f.sub(j, 1u32);
                    f.copy(j, nj);
                });
            });
            f.if_(f.cmp(CmpOp::LtS, lo, j), |f| {
                f.call_void("quicksort", &[base, lo, j]);
            });
            f.if_(f.cmp(CmpOp::LtS, i, hi), |f| {
                f.call_void("quicksort", &[base, i, hi]);
            });
        },
    );
    f.ret(None);
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    let base = f.imm(arr);
    let lo = f.imm(0u32);
    let hi = f.imm((len - 1) as u32);
    f.call_void("quicksort", &[base, lo, hi]);
    // Sample the sorted array.
    let stride = (len / 16).max(1) as u32;
    let acc = f.imm(0u32);
    let k = f.imm(0u32);
    f.while_(f.cmp(CmpOp::LtU, k, len as u32), |f| {
        let k4 = f.shl(k, 2u32);
        let p = f.add(base, k4);
        let v = f.load_w(p, 0);
        f.emit(v);
        ir_fold(f, acc, v);
        let nk = f.add(k, stride);
        f.copy(k, nk);
    });
    f.ret(Some(acc));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_qsort(scale: Scale) -> RefOutput {
    let len = qsort_len(scale);
    let mut words = random_words(0x9507, len);
    words.sort_unstable();
    let stride = (len / 16).max(1);
    let mut sink = RefSink::new();
    let mut acc: u32 = 0;
    let mut k = 0usize;
    while k < len {
        sink.emit(words[k]);
        acc = fold(acc, words[k]);
        k += stride;
    }
    RefOutput {
        exit_code: acc,
        emitted: sink.into_words(),
    }
}

// --------------------------------------------------------------------------
// susan — smoothing / edges / corners over a grayscale image.
// --------------------------------------------------------------------------

const SUSAN_W: usize = 64;

fn susan_h(scale: Scale) -> usize {
    (scale.n as usize / 4).clamp(16, 256)
}

/// The 3×3 smoothing taps (weight, dy, dx); weights sum to 16.
const SMOOTH_TAPS: [(u32, i32, i32); 9] = [
    (1, -1, -1),
    (2, -1, 0),
    (1, -1, 1),
    (2, 0, -1),
    (4, 0, 0),
    (2, 0, 1),
    (1, 1, -1),
    (2, 1, 0),
    (1, 1, 1),
];

/// 5×5 mask minus corners (20 offsets, center excluded) — the USAN
/// neighbourhood for the edge pass.
fn edge_mask() -> Vec<(i32, i32)> {
    let mut m = Vec::new();
    for dy in -2i32..=2 {
        for dx in -2i32..=2 {
            if (dy, dx) == (0, 0) {
                continue;
            }
            if dy.abs() == 2 && dx.abs() == 2 {
                continue;
            }
            m.push((dy, dx));
        }
    }
    m
}

/// Full 5×5 mask minus center (24 offsets) for the corner pass.
fn corner_mask() -> Vec<(i32, i32)> {
    let mut m = Vec::new();
    for dy in -2i32..=2 {
        for dx in -2i32..=2 {
            if (dy, dx) != (0, 0) {
                m.push((dy, dx));
            }
        }
    }
    m
}

const EDGE_T: u32 = 20;
const EDGE_G: u32 = 14;
const CORNER_T: u32 = 25;
const CORNER_G: u32 = 12;

/// How many output columns each inner-loop iteration handles. This is the
/// unroll factor that sets the hot-loop footprint (see the module docs on
/// matching MiBench's text-size spread).
const SMOOTH_UNROLL: usize = 2;
const EDGE_UNROLL: usize = 12;
const CORNER_UNROLL: usize = 15;

pub(super) fn build_susan_smoothing(scale: Scale) -> Module {
    let (w, h) = (SUSAN_W, susan_h(scale));
    let img = test_image(0x5a5a, w, h);
    let mut d = DataBuilder::new();
    let src = d.bytes(&img);
    let dst = d.zeroed(w * h, 4);

    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let srcv = f.imm(src);
    let dstv = f.imm(dst);
    let acc = f.imm(0u32);
    let y = f.imm(1u32);
    let inner = ((w - 2) / SMOOTH_UNROLL * SMOOTH_UNROLL) as u32;
    f.while_(f.cmp(CmpOp::LtU, y, (h - 1) as u32), |f| {
        let row = f.mul(y, w as u32);
        let sp = f.add(srcv, row);
        let dp = f.add(dstv, row);
        // Row pointers, the way the original SUSAN C code walks the image —
        // keeps every load displacement tiny (dx plus the unroll offset).
        let row_up = f.sub(sp, w as u32);
        let row_dn = f.add(sp, w as u32);
        let x = f.imm(1u32);
        f.while_(f.cmp(CmpOp::LeU, x, inner), |f| {
            let pu = f.add(row_up, x);
            let pc = f.add(sp, x);
            let pd = f.add(row_dn, x);
            let dbase = f.add(dp, x);
            for u in 0..SMOOTH_UNROLL {
                let sum = f.imm(8u32); // rounding
                for (wt, dy, dx) in SMOOTH_TAPS {
                    let rowp = match dy {
                        -1 => pu,
                        0 => pc,
                        _ => pd,
                    };
                    let p = f.load_b(rowp, dx + u as i32);
                    let wp = f.mul(p, wt);
                    let ns = f.add(sum, wp);
                    f.copy(sum, ns);
                }
                let v = f.shr(sum, 4u32);
                f.store_b(dbase, u as i32, v);
                ir_fold(f, acc, v);
            }
            let nx = f.add(x, SMOOTH_UNROLL as u32);
            f.copy(x, nx);
        });
        let ny = f.add(y, 1u32);
        f.copy(y, ny);
    });
    f.emit(acc);
    f.ret(Some(acc));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_susan_smoothing(scale: Scale) -> RefOutput {
    let (w, h) = (SUSAN_W, susan_h(scale));
    let img = test_image(0x5a5a, w, h);
    let inner = (w - 2) / SMOOTH_UNROLL * SMOOTH_UNROLL;
    let mut acc: u32 = 0;
    for y in 1..h - 1 {
        for x in 1..=inner {
            let mut sum: u32 = 8;
            for (wt, dy, dx) in SMOOTH_TAPS {
                let p = img[(y as i32 + dy) as usize * w + (x as i32 + dx) as usize];
                sum = sum.wrapping_add(u32::from(p).wrapping_mul(wt));
            }
            acc = fold(acc, sum >> 4);
        }
    }
    RefOutput {
        exit_code: acc,
        emitted: vec![acc],
    }
}

/// Shared shape of the edge/corner USAN kernels.
fn build_susan_usan(
    scale: Scale,
    mask: &[(i32, i32)],
    t: u32,
    g: u32,
    unroll: usize,
    centroid: bool,
) -> Module {
    let (w, h) = (SUSAN_W, susan_h(scale));
    let img = test_image(0x5a5a, w, h);
    let mut d = DataBuilder::new();
    let src = d.bytes(&img);

    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let srcv = f.imm(src);
    let count = f.imm(0u32);
    let acc = f.imm(0u32);
    let y = f.imm(2u32);
    let first = 2usize;
    let span = (w - 4) / unroll * unroll;
    f.while_(f.cmp(CmpOp::LtU, y, (h - 2) as u32), |f| {
        let row = f.mul(y, w as u32);
        let sp = f.add(srcv, row);
        // Row pointers for the 5-row USAN window (real SUSAN walks the image
        // with pointers, keeping displacements in the byte-load short range).
        let rows: [Val; 5] = [
            f.sub(sp, 2 * w as u32),
            f.sub(sp, w as u32),
            sp,
            f.add(sp, w as u32),
            f.add(sp, 2 * w as u32),
        ];
        let x = f.imm(first as u32);
        f.while_(f.cmp(CmpOp::LtU, x, (first + span) as u32), |f| {
            let ptrs: [Val; 5] = [
                f.add(rows[0], x),
                f.add(rows[1], x),
                f.add(rows[2], x),
                f.add(rows[3], x),
                f.add(rows[4], x),
            ];
            let sbase = ptrs[2];
            for u in 0..unroll {
                let c = f.load_b(sbase, u as i32);
                let usan = f.imm(0u32);
                let cx = if centroid { Some(f.imm(0u32)) } else { None };
                let cy = if centroid { Some(f.imm(0u32)) } else { None };
                for &(dy, dx) in mask {
                    let p = f.load_b(ptrs[(dy + 2) as usize], dx + u as i32);
                    let diff = f.sub(p, c);
                    f.if_(f.cmp(CmpOp::LtS, diff, 0u32), |f| {
                        let nd = f.neg(diff);
                        f.copy(diff, nd);
                    });
                    f.if_(f.cmp(CmpOp::LeS, diff, t), |f| {
                        let nu = f.add(usan, 1u32);
                        f.copy(usan, nu);
                        if let (Some(cx), Some(cy)) = (cx, cy) {
                            let nx = f.add(cx, dx);
                            f.copy(cx, nx);
                            let ny = f.add(cy, dy);
                            f.copy(cy, ny);
                        }
                    });
                }
                f.if_(f.cmp(CmpOp::LtU, usan, g), |f| {
                    let passes = if let (Some(cx), Some(cy)) = (cx, cy) {
                        // Corner: require displaced centroid.
                        let axv = f.imm(0u32);
                        f.copy(axv, cx);
                        f.if_(f.cmp(CmpOp::LtS, axv, 0u32), |f| {
                            let n = f.neg(axv);
                            f.copy(axv, n);
                        });
                        let ayv = f.imm(0u32);
                        f.copy(ayv, cy);
                        f.if_(f.cmp(CmpOp::LtS, ayv, 0u32), |f| {
                            let n = f.neg(ayv);
                            f.copy(ayv, n);
                        });
                        let mag = f.add(axv, ayv);
                        f.set_cond(f.cmp(CmpOp::GtU, mag, 2u32))
                    } else {
                        f.imm(1u32)
                    };
                    f.if_(f.cmp(CmpOp::Ne, passes, 0u32), |f| {
                        let nc = f.add(count, 1u32);
                        f.copy(count, nc);
                        let gv = f.imm(g);
                        let strength = f.sub(gv, usan);
                        ir_fold(f, acc, strength);
                    });
                });
            }
            let nx = f.add(x, unroll as u32);
            f.copy(x, nx);
        });
        let ny = f.add(y, 1u32);
        f.copy(y, ny);
    });
    f.emit(count);
    f.emit(acc);
    let out = f.xor(acc, count);
    f.ret(Some(out));
    mb.push(f.finish());
    mb.finish(d.finish())
}

fn ref_susan_usan(
    scale: Scale,
    mask: &[(i32, i32)],
    t: u32,
    g: u32,
    unroll: usize,
    centroid: bool,
) -> RefOutput {
    let (w, h) = (SUSAN_W, susan_h(scale));
    let img = test_image(0x5a5a, w, h);
    let first = 2usize;
    let span = (w - 4) / unroll * unroll;
    let mut count: u32 = 0;
    let mut acc: u32 = 0;
    for y in 2..h - 2 {
        for x in first..first + span {
            let c = i32::from(img[y * w + x]);
            let mut usan: u32 = 0;
            let mut cx: i32 = 0;
            let mut cy: i32 = 0;
            for &(dy, dx) in mask {
                let p = i32::from(img[(y as i32 + dy) as usize * w + (x as i32 + dx) as usize]);
                let diff = (p - c).abs();
                if diff <= t as i32 {
                    usan += 1;
                    cx += dx;
                    cy += dy;
                }
            }
            if usan < g {
                let passes = if centroid {
                    (cx.abs() + cy.abs()) as u32 > 2
                } else {
                    true
                };
                if passes {
                    count += 1;
                    acc = fold(acc, g - usan);
                }
            }
        }
    }
    RefOutput {
        exit_code: acc ^ count,
        emitted: vec![count, acc],
    }
}

pub(super) fn build_susan_edges(scale: Scale) -> Module {
    build_susan_usan(scale, &edge_mask(), EDGE_T, EDGE_G, EDGE_UNROLL, false)
}

pub(super) fn ref_susan_edges(scale: Scale) -> RefOutput {
    ref_susan_usan(scale, &edge_mask(), EDGE_T, EDGE_G, EDGE_UNROLL, false)
}

pub(super) fn build_susan_corners(scale: Scale) -> Module {
    build_susan_usan(
        scale,
        &corner_mask(),
        CORNER_T,
        CORNER_G,
        CORNER_UNROLL,
        true,
    )
}

pub(super) fn ref_susan_corners(scale: Scale) -> RefOutput {
    ref_susan_usan(
        scale,
        &corner_mask(),
        CORNER_T,
        CORNER_G,
        CORNER_UNROLL,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::differential;
    use super::*;

    #[test]
    fn bitcount_matches_reference() {
        differential(build_bitcount, ref_bitcount);
    }

    #[test]
    fn qsort_matches_reference() {
        differential(build_qsort, ref_qsort);
    }

    #[test]
    fn susan_smoothing_matches_reference() {
        differential(build_susan_smoothing, ref_susan_smoothing);
    }

    #[test]
    fn susan_edges_matches_reference() {
        differential(build_susan_edges, ref_susan_edges);
    }

    #[test]
    fn susan_corners_matches_reference() {
        differential(build_susan_corners, ref_susan_corners);
    }

    #[test]
    fn masks_have_expected_sizes() {
        assert_eq!(edge_mask().len(), 20);
        assert_eq!(corner_mask().len(), 24);
    }

    #[test]
    fn susan_detects_features() {
        // The synthetic image has rectangles, so the detectors must fire.
        let out = ref_susan_edges(Scale::test());
        assert!(out.emitted[0] > 0, "edge count must be nonzero");
        let out = ref_susan_corners(Scale::test());
        assert!(out.emitted[0] > 0, "corner count must be nonzero");
    }
}
