//! Shared helpers for kernel construction: data-segment layout and
//! deterministic input generation.

use fits_isa::DATA_BASE;
use fits_rng::StdRng;

/// Builds the initialized data image for a kernel, handing out absolute
/// addresses (the IR bakes them in as constants, exactly like a linker
/// resolving symbols).
#[derive(Debug, Default)]
pub struct DataBuilder {
    bytes: Vec<u8>,
}

impl DataBuilder {
    /// An empty data image.
    #[must_use]
    pub fn new() -> DataBuilder {
        DataBuilder::default()
    }

    fn align(&mut self, align: usize) {
        while !self.bytes.len().is_multiple_of(align) {
            self.bytes.push(0);
        }
    }

    /// Appends raw bytes, returning their absolute address.
    pub fn bytes(&mut self, data: &[u8]) -> u32 {
        let addr = DATA_BASE + self.bytes.len() as u32;
        self.bytes.extend_from_slice(data);
        addr
    }

    /// Appends 32-bit words (little-endian), 4-aligned.
    pub fn words(&mut self, data: &[u32]) -> u32 {
        self.align(4);
        let addr = DATA_BASE + self.bytes.len() as u32;
        for w in data {
            self.bytes.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends 16-bit halfwords (little-endian), 2-aligned.
    pub fn halves(&mut self, data: &[i16]) -> u32 {
        self.align(2);
        let addr = DATA_BASE + self.bytes.len() as u32;
        for h in data {
            self.bytes.extend_from_slice(&h.to_le_bytes());
        }
        addr
    }

    /// Reserves a zeroed region with the given alignment.
    pub fn zeroed(&mut self, len: usize, align: usize) -> u32 {
        self.align(align);
        let addr = DATA_BASE + self.bytes.len() as u32;
        self.bytes.resize(self.bytes.len() + len, 0);
        addr
    }

    /// Finalizes the image.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// A deterministic RNG for workload generation. Every kernel derives its
/// stream from its own fixed seed so inputs are stable across runs and
/// machines (the reproduction's substitute for MiBench's packaged inputs).
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `len` random bytes.
#[must_use]
pub fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen()).collect()
}

/// `len` random words.
#[must_use]
pub fn random_words(seed: u64, len: usize) -> Vec<u32> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen()).collect()
}

/// `len` pseudo-audio samples: a few sine components plus noise, quantized
/// to i16 — gives ADPCM/filter kernels realistic (compressible) signals.
#[must_use]
pub fn audio_samples(seed: u64, len: usize) -> Vec<i16> {
    let mut r = rng(seed);
    let f1 = r.gen_range(0.01..0.05);
    let f2 = r.gen_range(0.002..0.01);
    (0..len)
        .map(|i| {
            let t = i as f64;
            let v = 9000.0 * (t * f1).sin()
                + 4000.0 * (t * f2).sin()
                + f64::from(r.gen_range(-500i32..500));
            v as i16
        })
        .collect()
}

/// A grayscale test image: smooth gradients with blocky structures and
/// noise, so edge/corner detectors have real features to find.
#[must_use]
pub fn test_image(seed: u64, width: usize, height: usize) -> Vec<u8> {
    let mut r = rng(seed);
    let mut img = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            let g = (x * 255 / width.max(1)) as i32;
            img[y * width + x] = (g / 2 + 64) as u8;
        }
    }
    // Scatter rectangles of differing brightness.
    for _ in 0..24 {
        let x0 = r.gen_range(0..width.max(2) - 1);
        let y0 = r.gen_range(0..height.max(2) - 1);
        let w = r.gen_range(1..=(width / 4).max(1));
        let h = r.gen_range(1..=(height / 4).max(1));
        let v: u8 = r.gen();
        for y in y0..(y0 + h).min(height) {
            for x in x0..(x0 + w).min(width) {
                img[y * width + x] = v;
            }
        }
    }
    // Light noise.
    for p in img.iter_mut() {
        let n: i32 = r.gen_range(-6..=6);
        *p = (i32::from(*p) + n).clamp(0, 255) as u8;
    }
    img
}

/// The reference-side emit stream collector; mirrors the simulator's
/// `SWI 1` trap.
#[derive(Debug, Default)]
pub struct RefSink {
    emitted: Vec<u32>,
}

impl RefSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> RefSink {
        RefSink::default()
    }

    /// Records one emitted word.
    pub fn emit(&mut self, word: u32) {
        self.emitted.push(word);
    }

    /// The recorded stream.
    #[must_use]
    pub fn into_words(self) -> Vec<u32> {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_builder_alignment_and_addresses() {
        let mut d = DataBuilder::new();
        let a = d.bytes(&[1, 2, 3]);
        let b = d.words(&[0xaabbccdd]);
        let c = d.zeroed(10, 8);
        assert_eq!(a, DATA_BASE);
        assert_eq!(b, DATA_BASE + 4, "word region 4-aligned");
        assert_eq!(c % 8, 0);
        let img = d.finish();
        assert_eq!(&img[4..8], &0xaabb_ccddu32.to_le_bytes());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_bytes(7, 64), random_bytes(7, 64));
        assert_ne!(random_bytes(7, 64), random_bytes(8, 64));
        assert_eq!(audio_samples(3, 32), audio_samples(3, 32));
        assert_eq!(test_image(1, 16, 16), test_image(1, 16, 16));
    }

    #[test]
    fn image_has_contrast() {
        let img = test_image(2, 64, 64);
        let min = img.iter().min().unwrap();
        let max = img.iter().max().unwrap();
        assert!(max - min > 100, "image should have usable dynamic range");
    }
}
