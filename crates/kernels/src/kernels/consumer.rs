//! Consumer kernels: `jpeg.dct` (block DCT + quantize) and `lame.filter`
//! (polyphase-style FIR subband filter).

use super::util::{audio_samples, test_image, DataBuilder, RefSink};
use super::{RefOutput, Scale};
use crate::builder::{FnBuilder, ModuleBuilder};
use crate::ir::{BinOp, CmpOp, Module, Val};

fn fold(acc: u32, v: u32) -> u32 {
    acc.rotate_left(1) ^ v
}

fn ir_fold(f: &mut FnBuilder, acc: Val, v: Val) {
    let r = f.bin(BinOp::Ror, acc, 31u32);
    f.bin_into(acc, BinOp::Xor, r, v);
}

// --------------------------------------------------------------------------
// jpeg.dct — 8×8 forward DCT by table-driven matrix multiply, then
// shift-quantization (no divider on the SA-1100-class datapath, so the
// quantizer is a per-coefficient arithmetic shift, as fixed-point codecs do).
// --------------------------------------------------------------------------

fn jpeg_blocks(scale: Scale) -> usize {
    (scale.n as usize / 8).max(4)
}

/// DCT-II basis, 12-bit fixed point: `C[u][x] = alpha(u) * cos((2x+1)uπ/16)`.
fn dct_table() -> Vec<i16> {
    let mut t = Vec::with_capacity(64);
    for u in 0..8usize {
        let alpha = if u == 0 {
            (1.0f64 / 8.0).sqrt()
        } else {
            (2.0f64 / 8.0).sqrt()
        };
        for x in 0..8usize {
            let c = alpha * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            t.push((c * 4096.0).round() as i16);
        }
    }
    t
}

/// Per-coefficient quantization shifts (coarser for high frequencies).
fn quant_shifts() -> Vec<u32> {
    let mut q = Vec::with_capacity(64);
    for u in 0..8usize {
        for v in 0..8usize {
            q.push(((u + v) / 3 + 1).min(6) as u32);
        }
    }
    q
}

pub(super) fn build_jpeg_dct(scale: Scale) -> Module {
    let blocks = jpeg_blocks(scale);
    // The image is a strip of `blocks` 8x8 blocks side by side.
    let img = test_image(0x09e6, 8 * blocks, 8);
    let mut d = DataBuilder::new();
    let src = d.bytes(&img);
    let ctab = d.halves(&dct_table());
    let qtab = d.words(&quant_shifts());
    let tmp = d.zeroed(64 * 4, 4); // row-pass intermediate, i32
    let out = d.zeroed(64 * 4, 4);

    let mut mb = ModuleBuilder::new();

    // dct_block(src_base) -> folded coefficients for one 8x8 block. Source
    // rows are `8 * blocks` bytes apart (the image stride).
    let stride = (8 * blocks) as u32;
    let mut f = FnBuilder::new("dct_block", 1);
    let sbase = f.param(0);
    let qt = f.imm(qtab);
    let tmpv = f.imm(tmp);
    let outv = f.imm(out);

    // Row pass: tmp[y][u] = (sum_x (in[y][x]-128) * C[u][x]) >> 9.
    f.repeat(8u32, |f, yy| {
        let soff = f.mul(yy, stride);
        let srow = f.add(sbase, soff);
        // Load and level-shift the eight pixels of the row.
        let px: Vec<Val> = (0..8)
            .map(|x| {
                let p = f.load_b(srow, x);
                f.sub(p, 128u32)
            })
            .collect();
        let toff = f.shl(yy, 5u32); // y * 8 coeffs * 4 bytes
        let trow = f.add(tmpv, toff);
        for u in 0..8usize {
            let cbase = f.imm(ctab + (u as u32) * 16);
            let acc = f.imm(0u32);
            for (x, p) in px.iter().enumerate() {
                let c = f.load_sh(cbase, (x * 2) as i32);
                let m = f.mul(*p, c);
                let na = f.add(acc, m);
                f.copy(acc, na);
            }
            let sc = f.sar(acc, 9u32);
            f.store_w(trow, (u * 4) as i32, sc);
        }
    });

    // Column pass + quantization:
    // out[u][v] = ((sum_y tmp[y][v] * C[u][y]) >> 12) >> qshift[u][v].
    let acc_all = f.imm(0u32);
    f.repeat(8u32, |f, u| {
        let row_off = f.shl(u, 5u32);
        let orow = f.add(outv, row_off);
        let qrow = f.add(qt, row_off);
        let c_off = f.shl(u, 4u32); // u * 8 coeffs * 2 bytes
        let ct_c = f.imm(ctab);
        let crow = f.add(ct_c, c_off);
        for v in 0..8usize {
            let acc = f.imm(0u32);
            for y in 0..8usize {
                let t = f.load_w(tmpv, (y * 32 + v * 4) as i32);
                let c = f.load_sh(crow, (y * 2) as i32);
                let m = f.mul(t, c);
                let na = f.add(acc, m);
                f.copy(acc, na);
            }
            let sc = f.sar(acc, 12u32);
            let qs = f.load_w(qrow, (v * 4) as i32);
            let qv = f.bin(BinOp::Sar, sc, qs);
            f.store_w(orow, (v * 4) as i32, qv);
            ir_fold(f, acc_all, qv);
        }
    });
    f.ret(Some(acc_all));
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    let total = f.imm(0u32);
    f.repeat(blocks as u32, |f, b| {
        let boff = f.shl(b, 3u32); // blocks sit 8 pixels apart in the strip
        let srcv = f.imm(src);
        let block_base = f.add(srcv, boff);
        let h = f.call("dct_block", &[block_base]);
        f.emit(h);
        ir_fold(f, total, h);
    });
    f.ret(Some(total));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_jpeg_dct(scale: Scale) -> RefOutput {
    let blocks = jpeg_blocks(scale);
    let img = test_image(0x09e6, 8 * blocks, 8);
    let ctab = dct_table();
    let qtab = quant_shifts();
    let stride = 8 * blocks;
    let mut sink = RefSink::new();
    let mut total: u32 = 0;
    for b in 0..blocks {
        // The block's fold restarts per block but the accumulator register
        // in the kernel is function-local, so it restarts there too.
        let mut tmp = [0u32; 64];
        for y in 0..8usize {
            for u in 0..8usize {
                let mut acc: u32 = 0;
                for x in 0..8usize {
                    let p = u32::from(img[y * stride + b * 8 + x]).wrapping_sub(128);
                    let c = i32::from(ctab[u * 8 + x]) as u32;
                    acc = acc.wrapping_add(p.wrapping_mul(c));
                }
                tmp[y * 8 + u] = ((acc as i32) >> 9) as u32;
            }
        }
        let mut h: u32 = 0;
        for u in 0..8usize {
            for v in 0..8usize {
                let mut acc: u32 = 0;
                for y in 0..8usize {
                    let c = i32::from(ctab[u * 8 + y]) as u32;
                    acc = acc.wrapping_add(tmp[y * 8 + v].wrapping_mul(c));
                }
                let sc = ((acc as i32) >> 12) as u32;
                let qv = ((sc as i32) >> qtab[u * 8 + v]) as u32;
                h = fold(h, qv);
            }
        }
        sink.emit(h);
        total = fold(total, h);
    }
    RefOutput {
        exit_code: total,
        emitted: sink.into_words(),
    }
}

// --------------------------------------------------------------------------
// lame.filter — 64-tap windowed FIR with 8× decimation, fully unrolled taps
// (the shape of LAME's polyphase subband window stage).
// --------------------------------------------------------------------------

const TAPS: usize = 64;
const DECIM: usize = 8;

fn lame_samples(scale: Scale) -> usize {
    (scale.n as usize * 8).max(256)
}

fn window() -> Vec<i16> {
    // A raised-cosine window in 14-bit fixed point; generated, not
    // tabulated, so both sides share the exact values.
    (0..TAPS)
        .map(|k| {
            let x = (k as f64 + 0.5) / TAPS as f64;
            let w = (std::f64::consts::PI * x).sin().powi(2) * 16383.0;
            w as i16
        })
        .collect()
}

pub(super) fn build_lame_filter(scale: Scale) -> Module {
    let n = lame_samples(scale);
    let samples = audio_samples(0x1a3e, n);
    let win = window();
    let n_out = (n - TAPS) / DECIM;

    let mut d = DataBuilder::new();
    let inp = d.halves(&samples);
    let wtab = d.halves(&win);

    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    let inpv = f.imm(inp);
    let wv = f.imm(wtab);
    let acc_all = f.imm(0u32);
    f.repeat(n_out as u32, |f, k| {
        let start = f.mul(k, (DECIM * 2) as u32);
        let base = f.add(inpv, start);
        let acc = f.imm(0u32);
        for t in 0..TAPS {
            let s = f.load_sh(base, (t * 2) as i32);
            let w = f.load_sh(wv, (t * 2) as i32);
            let m = f.mul(s, w);
            let na = f.add(acc, m);
            f.copy(acc, na);
        }
        let out = f.sar(acc, 14u32);
        ir_fold(f, acc_all, out);
        let mask = f.and(k, 63u32);
        f.if_(f.cmp(CmpOp::Eq, mask, 0u32), |f| f.emit(out));
    });
    f.emit(acc_all);
    f.ret(Some(acc_all));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_lame_filter(scale: Scale) -> RefOutput {
    let n = lame_samples(scale);
    let samples = audio_samples(0x1a3e, n);
    let win = window();
    let n_out = (n - TAPS) / DECIM;
    let mut sink = RefSink::new();
    let mut acc_all: u32 = 0;
    for k in 0..n_out {
        let mut acc: u32 = 0;
        for t in 0..TAPS {
            let s = i32::from(samples[k * DECIM + t]) as u32;
            let w = i32::from(win[t]) as u32;
            acc = acc.wrapping_add(s.wrapping_mul(w));
        }
        let out = ((acc as i32) >> 14) as u32;
        acc_all = fold(acc_all, out);
        if k % 64 == 0 {
            sink.emit(out);
        }
    }
    sink.emit(acc_all);
    RefOutput {
        exit_code: acc_all,
        emitted: sink.into_words(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::differential;
    use super::*;

    #[test]
    fn jpeg_dct_matches_reference() {
        differential(build_jpeg_dct, ref_jpeg_dct);
    }

    #[test]
    fn lame_filter_matches_reference() {
        differential(build_lame_filter, ref_lame_filter);
    }

    #[test]
    fn dct_dc_row_is_flat() {
        let t = dct_table();
        // u = 0 row: all entries equal (alpha(0) * cos(0)).
        assert!(t[0..8].iter().all(|&c| c == t[0]));
        assert!(t[0] > 1400 && t[0] < 1500, "alpha0*4096 ~ 1448: {}", t[0]);
    }

    #[test]
    fn window_is_symmetric_and_positive() {
        let w = window();
        assert_eq!(w.len(), TAPS);
        for k in 0..TAPS / 2 {
            assert_eq!(w[k], w[TAPS - 1 - k], "tap {k}");
        }
        assert!(w.iter().all(|&v| v >= 0));
    }
}
