//! Network kernels: `dijkstra` (dense shortest paths) and `patricia`
//! (binary radix-trie routing-table lookups).

use super::util::{rng, DataBuilder, RefSink};
use super::{RefOutput, Scale};
use crate::builder::{FnBuilder, ModuleBuilder};
use crate::ir::{BinOp, CmpOp, Module, Val};

fn fold(acc: u32, v: u32) -> u32 {
    acc.rotate_left(1) ^ v
}

fn ir_fold(f: &mut FnBuilder, acc: Val, v: Val) {
    let r = f.bin(BinOp::Ror, acc, 31u32);
    f.bin_into(acc, BinOp::Xor, r, v);
}

// --------------------------------------------------------------------------
// dijkstra — O(V^2) single-source shortest paths on a dense adjacency
// matrix, run from several sources (MiBench's driver computes many pairs).
// --------------------------------------------------------------------------

const INF: u32 = 0x3fff_ffff;
const SOURCES: u32 = 4;

fn dijkstra_v(scale: Scale) -> usize {
    (scale.n as usize / 2).clamp(16, 96)
}

fn adjacency(v: usize) -> Vec<u32> {
    let mut r = rng(0xd13a);
    let mut adj = vec![INF; v * v];
    for i in 0..v {
        adj[i * v + i] = 0;
        for j in 0..v {
            if i != j && r.gen_range(0..100u32) < 35 {
                adj[i * v + j] = r.gen_range(1..1000u32);
            }
        }
    }
    adj
}

pub(super) fn build_dijkstra(scale: Scale) -> Module {
    let v = dijkstra_v(scale);
    let adj = adjacency(v);
    let mut d = DataBuilder::new();
    let adj_a = d.words(&adj);
    let dist_a = d.zeroed(v * 4, 4);
    let seen_a = d.zeroed(v * 4, 4);

    let mut mb = ModuleBuilder::new();

    // shortest_paths(src) -> fold of all distances from src.
    let mut f = FnBuilder::new("shortest_paths", 1);
    let src = f.param(0);
    let adjv = f.imm(adj_a);
    let dist = f.imm(dist_a);
    let seen = f.imm(seen_a);

    // Initialize.
    f.repeat(v as u32, |f, i| {
        let i4 = f.shl(i, 2u32);
        let dp = f.add(dist, i4);
        let inf = f.imm(INF);
        f.store_w(dp, 0, inf);
        let sp = f.add(seen, i4);
        let zero = f.imm(0u32);
        f.store_w(sp, 0, zero);
    });
    let s4 = f.shl(src, 2u32);
    let sdp = f.add(dist, s4);
    let zero = f.imm(0u32);
    f.store_w(sdp, 0, zero);

    // Main loop: V iterations of select-min + relax.
    f.repeat(v as u32, |f, _round| {
        let best = f.imm(INF);
        let best_i = f.imm(v as u32);
        f.repeat(v as u32, |f, i| {
            let i4 = f.shl(i, 2u32);
            let sp = f.add(seen, i4);
            let vis = f.load_w(sp, 0);
            f.if_(f.cmp(CmpOp::Eq, vis, 0u32), |f| {
                let dp = f.add(dist, i4);
                let dv = f.load_w(dp, 0);
                f.if_(f.cmp(CmpOp::LtU, dv, best), |f| {
                    f.copy(best, dv);
                    f.copy(best_i, i);
                });
            });
        });
        f.if_(f.cmp(CmpOp::LtU, best_i, v as u32), |f| {
            let b4 = f.shl(best_i, 2u32);
            let sp = f.add(seen, b4);
            let one = f.imm(1u32);
            f.store_w(sp, 0, one);
            let row_off = f.mul(best_i, (v * 4) as u32);
            let row = f.add(adjv, row_off);
            f.repeat(v as u32, |f, j| {
                let j4 = f.shl(j, 2u32);
                let wp = f.add(row, j4);
                let w = f.load_w(wp, 0);
                f.if_(f.cmp(CmpOp::LtU, w, INF), |f| {
                    let cand = f.add(best, w);
                    let dp = f.add(dist, j4);
                    let dv = f.load_w(dp, 0);
                    f.if_(f.cmp(CmpOp::LtU, cand, dv), |f| {
                        f.store_w(dp, 0, cand);
                    });
                });
            });
        });
    });

    let acc = f.imm(0u32);
    f.repeat(v as u32, |f, i| {
        let i4 = f.shl(i, 2u32);
        let dp = f.add(dist, i4);
        let dv = f.load_w(dp, 0);
        ir_fold(f, acc, dv);
    });
    f.ret(Some(acc));
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    let total = f.imm(0u32);
    f.repeat(SOURCES, |f, s| {
        let h = f.call("shortest_paths", &[s]);
        f.emit(h);
        ir_fold(f, total, h);
    });
    f.ret(Some(total));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_dijkstra(scale: Scale) -> RefOutput {
    let v = dijkstra_v(scale);
    let adj = adjacency(v);
    let mut sink = RefSink::new();
    let mut total: u32 = 0;
    for src in 0..SOURCES as usize {
        let mut dist = vec![INF; v];
        let mut seen = vec![false; v];
        dist[src] = 0;
        for _ in 0..v {
            let mut best = INF;
            let mut best_i = v;
            for i in 0..v {
                if !seen[i] && dist[i] < best {
                    best = dist[i];
                    best_i = i;
                }
            }
            if best_i < v {
                seen[best_i] = true;
                for j in 0..v {
                    let w = adj[best_i * v + j];
                    if w < INF {
                        let cand = best.wrapping_add(w);
                        if cand < dist[j] {
                            dist[j] = cand;
                        }
                    }
                }
            }
        }
        let mut h: u32 = 0;
        for dv in &dist {
            h = fold(h, *dv);
        }
        sink.emit(h);
        total = fold(total, h);
    }
    RefOutput {
        exit_code: total,
        emitted: sink.into_words(),
    }
}

// --------------------------------------------------------------------------
// patricia — binary radix trie on the top PREFIX_BITS of IPv4-like keys:
// insert a routing table, then look up a query stream (half hits).
// --------------------------------------------------------------------------

const PREFIX_BITS: u32 = 20;

fn patricia_n(scale: Scale) -> usize {
    (scale.n as usize * 2).clamp(32, 2048)
}

fn patricia_keys(n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut r = rng(0x9a77);
    let inserted: Vec<u32> = (0..n).map(|_| r.gen()).collect();
    let mut queries = Vec::with_capacity(2 * n);
    for i in 0..2 * n {
        if i % 2 == 0 {
            queries.push(inserted[r.gen_range(0..n)]);
        } else {
            queries.push(r.gen());
        }
    }
    (inserted, queries)
}

pub(super) fn build_patricia(scale: Scale) -> Module {
    let n = patricia_n(scale);
    let (inserted, queries) = patricia_keys(n);
    let mut d = DataBuilder::new();
    let ins_a = d.words(&inserted);
    let qry_a = d.words(&queries);
    // Node pool: {left, right} word pairs. Index 0 is null, index 1 is the
    // root; worst case one new node per key per level.
    let pool_nodes = 2 + n * PREFIX_BITS as usize;
    let pool_a = d.zeroed(pool_nodes * 8, 4);

    let mut mb = ModuleBuilder::new();

    // insert(key) — walks the top bits, allocating missing nodes. The pool
    // bump pointer lives in the pool's slot 0 (node 0 is never used).
    let mut f = FnBuilder::new("trie_insert", 1);
    let key = f.param(0);
    let pool = f.imm(pool_a);
    let cur = f.imm(1u32);
    let next_free = f.load_w(pool, 0);
    // First call: bump pointer starts at 0 -> fix to 2.
    f.if_(f.cmp(CmpOp::LtU, next_free, 2u32), |f| {
        f.set_imm(next_free, 2)
    });
    f.repeat(PREFIX_BITS, |f, b| {
        let amt = f.imm(31u32);
        let sh = f.sub(amt, b);
        let shifted = f.bin(BinOp::Shr, key, sh);
        let bit = f.and(shifted, 1u32);
        let off8 = f.shl(cur, 3u32);
        let bit4 = f.shl(bit, 2u32);
        let slot_off = f.add(off8, bit4);
        let slot = f.add(pool, slot_off);
        let child = f.load_w(slot, 0);
        f.if_(f.cmp(CmpOp::Eq, child, 0u32), |f| {
            f.copy(child, next_free);
            f.store_w(slot, 0, child);
            let nf = f.add(next_free, 1u32);
            f.copy(next_free, nf);
        });
        f.copy(cur, child);
    });
    f.store_w(pool, 0, next_free);
    f.ret(None);
    mb.push(f.finish());

    // lookup(key) -> 1 if the full prefix path exists.
    let mut f = FnBuilder::new("trie_lookup", 1);
    let key = f.param(0);
    let pool = f.imm(pool_a);
    let cur = f.imm(1u32);
    let found = f.imm(1u32);
    f.repeat(PREFIX_BITS, |f, b| {
        f.if_(f.cmp(CmpOp::Ne, found, 0u32), |f| {
            let amt = f.imm(31u32);
            let sh = f.sub(amt, b);
            let shifted = f.bin(BinOp::Shr, key, sh);
            let bit = f.and(shifted, 1u32);
            let off8 = f.shl(cur, 3u32);
            let bit4 = f.shl(bit, 2u32);
            let slot_off = f.add(off8, bit4);
            let slot = f.add(pool, slot_off);
            let child = f.load_w(slot, 0);
            f.if_else(
                f.cmp(CmpOp::Eq, child, 0u32),
                |f| f.set_imm(found, 0),
                |f| f.copy(cur, child),
            );
        });
    });
    f.ret(Some(found));
    mb.push(f.finish());

    let mut f = FnBuilder::new("main", 0);
    let insv = f.imm(ins_a);
    f.repeat(n as u32, |f, i| {
        let i4 = f.shl(i, 2u32);
        let p = f.add(insv, i4);
        let k = f.load_w(p, 0);
        f.call_void("trie_insert", &[k]);
    });
    let qryv = f.imm(qry_a);
    let hits = f.imm(0u32);
    f.repeat((2 * n) as u32, |f, i| {
        let i4 = f.shl(i, 2u32);
        let p = f.add(qryv, i4);
        let k = f.load_w(p, 0);
        let r = f.call("trie_lookup", &[k]);
        let nh = f.add(hits, r);
        f.copy(hits, nh);
    });
    f.emit(hits);
    // Fold in the final bump pointer (trie shape check).
    let pool = f.imm(pool_a);
    let nodes = f.load_w(pool, 0);
    f.emit(nodes);
    let out = f.xor(hits, nodes);
    f.ret(Some(out));
    mb.push(f.finish());
    mb.finish(d.finish())
}

pub(super) fn ref_patricia(scale: Scale) -> RefOutput {
    let n = patricia_n(scale);
    let (inserted, queries) = patricia_keys(n);
    // Mirror the pool-based trie exactly (node counts must match).
    let mut pool: Vec<[u32; 2]> = vec![[0, 0]; 2 + n * PREFIX_BITS as usize];
    let mut next_free: u32 = 2;
    for &key in &inserted {
        let mut cur = 1u32;
        for b in 0..PREFIX_BITS {
            let bit = (key >> (31 - b)) & 1;
            let child = pool[cur as usize][bit as usize];
            let child = if child == 0 {
                let c = next_free;
                next_free += 1;
                pool[cur as usize][bit as usize] = c;
                c
            } else {
                child
            };
            cur = child;
        }
    }
    let mut hits: u32 = 0;
    for &key in &queries {
        let mut cur = 1u32;
        let mut found = 1u32;
        for b in 0..PREFIX_BITS {
            let bit = (key >> (31 - b)) & 1;
            let child = pool[cur as usize][bit as usize];
            if child == 0 {
                found = 0;
                break;
            }
            cur = child;
        }
        hits += found;
    }
    RefOutput {
        exit_code: hits ^ next_free,
        emitted: vec![hits, next_free],
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::differential;
    use super::*;

    #[test]
    fn dijkstra_matches_reference() {
        differential(build_dijkstra, ref_dijkstra);
    }

    #[test]
    fn patricia_matches_reference() {
        differential(build_patricia, ref_patricia);
    }

    #[test]
    fn adjacency_is_connected_enough() {
        let v = 32;
        let adj = adjacency(v);
        let out = ref_dijkstra(Scale { n: 64 });
        // With 35% density the graph is almost surely connected; distances
        // must differ across sources.
        assert!(out.emitted.windows(2).any(|w| w[0] != w[1]));
        assert_eq!(adj.len(), v * v);
    }

    #[test]
    fn patricia_hit_rate_is_plausible() {
        let out = ref_patricia(Scale::test());
        let n = patricia_n(Scale::test()) as u32;
        let hits = out.emitted[0];
        // At least the n inserted-key queries must hit; random keys rarely do
        // at 20-bit depth.
        assert!(hits >= n, "hits {hits} < {n}");
        assert!(hits <= 2 * n);
    }
}
