//! Code generation: LIR + register allocation → AR32 [`Program`].
//!
//! The conventions mirror a simple ARM ABI: arguments and return value in
//! `r0`–`r3`/`r0`, virtual registers in callee-saved `r4`–`r11`, spills in a
//! fixed-size frame below `sp`, `r12` untouched (reserved for the ARM→FITS
//! translator's expansion sequences), returns via `mov pc, lr`. Constants
//! are materialized with `MOV`/`MVN`/`ORR` chunk sequences rather than
//! literal pools, so the text segment contains only instructions (keeping
//! code-size comparisons across ISAs exact).

use std::collections::HashMap;
use std::fmt;

use fits_isa::{
    AddrOffset, Cond as ACond, DpOp, Instr, MemOp, Operand2, Program, Reg, Shift, ShiftKind,
};

use crate::ir::{BinOp, CmpOp, Cond, Module, Operand, UnOp, Width};
use crate::lower::{lower, LFunction, LInst, Label};
use crate::regalloc::{Allocation, Loc};

/// Errors from module compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A call referenced a function not present in the module.
    UnknownFunction {
        /// The missing callee.
        callee: String,
        /// The calling function.
        caller: String,
    },
    /// A branch target ended up out of the 24-bit range (would need veneers).
    BranchOutOfRange {
        /// The function containing the branch.
        func: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownFunction { callee, caller } => {
                write!(f, "call to unknown function `{callee}` from `{caller}`")
            }
            CompileError::BranchOutOfRange { func } => {
                write!(f, "branch out of range in `{func}`")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Map a comparison operator onto the AR32 condition that holds after
/// `CMP a, b`.
fn cond_of(op: CmpOp) -> ACond {
    match op {
        CmpOp::Eq => ACond::Eq,
        CmpOp::Ne => ACond::Ne,
        CmpOp::LtS => ACond::Lt,
        CmpOp::LeS => ACond::Le,
        CmpOp::GtS => ACond::Gt,
        CmpOp::GeS => ACond::Ge,
        CmpOp::LtU => ACond::Cc,
        CmpOp::LeU => ACond::Ls,
        CmpOp::GtU => ACond::Hi,
        CmpOp::GeU => ACond::Cs,
    }
}

/// Scratch registers (the caller-saved argument registers).
const SCR0: Reg = Reg::R0;
const SCR1: Reg = Reg::R1;
const SCR2: Reg = Reg::R2;

enum Fixup {
    /// Branch to a function-local label.
    Local(Label),
    /// `BL` to a function by name.
    Func(String),
}

struct FnEmitter<'a> {
    alloc: &'a Allocation,
    out: Vec<Instr>,
    fixups: Vec<(usize, Fixup)>,
    labels: HashMap<Label, usize>,
    frame: u32,
    saved: Vec<Reg>, // callee-saved regs + lr, in save order
    is_main: bool,
}

impl<'a> FnEmitter<'a> {
    fn spill_off(&self, slot: u32) -> i32 {
        (self.saved.len() as i32 + slot as i32) * 4
    }

    fn push(&mut self, i: Instr) {
        self.out.push(i);
    }

    /// Materializes an arbitrary constant into `rd`.
    fn emit_const(&mut self, rd: Reg, value: u32) {
        if let Some(op2) = Operand2::imm(value) {
            self.push(Instr::mov(rd, op2));
            return;
        }
        if let Some(op2) = Operand2::imm(!value) {
            self.push(Instr::dp(DpOp::Mvn, rd, Reg::R0, op2));
            return;
        }
        // Chunked MOV/ORR: each byte lane is individually encodable.
        let mut first = true;
        for shift in [0u32, 8, 16, 24] {
            let chunk = value & (0xff << shift);
            if chunk == 0 && !(first && shift == 24) {
                continue;
            }
            let op2 = Operand2::imm(chunk).expect("byte-lane chunk is encodable");
            if first {
                self.push(Instr::mov(rd, op2));
                first = false;
            } else {
                self.push(Instr::dp(DpOp::Orr, rd, rd, op2));
            }
        }
        if first {
            self.push(Instr::mov(rd, Operand2::imm(0).expect("zero encodes")));
        }
    }

    /// Brings a vreg's value into a physical register, using `scratch` when
    /// it lives in a spill slot.
    fn read(&mut self, v: crate::ir::Val, scratch: Reg) -> Reg {
        match self.alloc.locs[v.index() as usize] {
            Loc::Reg(r) => r,
            Loc::Slot(s) => {
                let off = self.spill_off(s);
                self.push(Instr::mem(MemOp::Ldr, scratch, Reg::SP, off));
                scratch
            }
        }
    }

    /// The register to compute a vreg's new value into; spilled vregs get
    /// `scratch` plus a store-back emitted by `write_back`.
    fn dest(&self, v: crate::ir::Val, scratch: Reg) -> Reg {
        match self.alloc.locs[v.index() as usize] {
            Loc::Reg(r) => r,
            Loc::Slot(_) => scratch,
        }
    }

    fn write_back(&mut self, v: crate::ir::Val, from: Reg) {
        if let Loc::Slot(s) = self.alloc.locs[v.index() as usize] {
            let off = self.spill_off(s);
            self.push(Instr::mem(MemOp::Str, from, Reg::SP, off));
        }
    }

    /// Turns an IR operand into an AR32 `Operand2`, materializing into
    /// `scratch` when the immediate doesn't encode. Returns the operand and
    /// whether the immediate had to be negated (for add/sub folding, handled
    /// by the caller via `negated_op`).
    fn operand2(&mut self, b: &Operand, scratch: Reg) -> Operand2 {
        match b {
            Operand::Val(v) => Operand2::reg(self.read(*v, scratch)),
            Operand::Imm(value) => {
                if let Some(op2) = Operand2::imm(*value) {
                    op2
                } else {
                    self.emit_const(scratch, *value);
                    Operand2::reg(scratch)
                }
            }
        }
    }

    fn prologue(&mut self, f: &LFunction) {
        if self.frame > 0 {
            let imm = Operand2::imm(self.frame).expect("frame size encodes");
            self.push(Instr::dp(DpOp::Sub, Reg::SP, Reg::SP, imm));
        }
        let saved = self.saved.clone();
        for (i, r) in saved.iter().enumerate() {
            self.push(Instr::mem(MemOp::Str, *r, Reg::SP, (i as i32) * 4));
        }
        // Home the parameters.
        for p in 0..f.params {
            let src = Reg::new(p as u8);
            match self.alloc.locs[p as usize] {
                Loc::Reg(r) => self.push(Instr::mov(r, Operand2::reg(src))),
                Loc::Slot(s) => {
                    let off = self.spill_off(s);
                    self.push(Instr::mem(MemOp::Str, src, Reg::SP, off));
                }
            }
        }
    }

    fn epilogue(&mut self, value: Option<crate::ir::Val>) {
        if let Some(v) = value {
            let r = self.read(v, SCR0);
            if r != Reg::R0 {
                self.push(Instr::mov(Reg::R0, Operand2::reg(r)));
            }
        }
        let saved = self.saved.clone();
        for (i, r) in saved.iter().enumerate() {
            self.push(Instr::mem(MemOp::Ldr, *r, Reg::SP, (i as i32) * 4));
        }
        if self.frame > 0 {
            let imm = Operand2::imm(self.frame).expect("frame size encodes");
            self.push(Instr::dp(DpOp::Add, Reg::SP, Reg::SP, imm));
        }
        if self.is_main {
            self.push(Instr::Swi {
                cond: ACond::Al,
                imm: 0,
            });
        } else {
            self.push(Instr::mov(Reg::PC, Operand2::reg(Reg::LR)));
        }
    }

    /// Emits a load/store with displacement splitting when out of range.
    fn mem_access(&mut self, op: MemOp, data: Reg, base: Reg, disp: i32) {
        if AddrOffset::Imm(disp).is_valid_for(op) {
            self.push(Instr::mem(op, data, base, disp));
        } else {
            // base + disp doesn't fit the offset field: split via SCR2 (or
            // SCR1 if the data register is SCR2).
            let tmp = if data == SCR2 || base == SCR2 {
                SCR1
            } else {
                SCR2
            };
            self.emit_const(tmp, disp as u32);
            self.push(Instr::dp(DpOp::Add, tmp, base, Operand2::reg(tmp)));
            self.push(Instr::mem(op, data, tmp, 0));
        }
    }

    fn shift_bin(&mut self, op: BinOp, rd: Reg, ra: Reg, b: &Operand) {
        let kind = match op {
            BinOp::Shl => ShiftKind::Lsl,
            BinOp::Shr => ShiftKind::Lsr,
            BinOp::Sar => ShiftKind::Asr,
            BinOp::Ror => ShiftKind::Ror,
            _ => unreachable!(),
        };
        match b {
            Operand::Imm(n) => {
                let n = *n;
                let shift = match (kind, n) {
                    (_, 0) => Shift::NONE,
                    (ShiftKind::Lsl, 1..=31) => Shift::Imm(kind, n as u8),
                    (ShiftKind::Lsl, _) => {
                        // Fully shifted out.
                        self.push(Instr::mov(rd, Operand2::imm(0).expect("zero")));
                        return;
                    }
                    (ShiftKind::Lsr, 1..=31) => Shift::Imm(kind, n as u8),
                    (ShiftKind::Lsr, _) => {
                        self.push(Instr::mov(rd, Operand2::imm(0).expect("zero")));
                        return;
                    }
                    (ShiftKind::Asr, 1..=31) => Shift::Imm(kind, n as u8),
                    (ShiftKind::Asr, _) => Shift::Imm(ShiftKind::Asr, 32),
                    (ShiftKind::Ror, _) => {
                        let m = (n % 32) as u8;
                        if m == 0 {
                            Shift::NONE
                        } else {
                            Shift::Imm(ShiftKind::Ror, m)
                        }
                    }
                };
                self.push(Instr::mov(rd, Operand2::Reg(ra, shift)));
            }
            Operand::Val(v) => {
                let rs = self.read(*v, SCR2);
                self.push(Instr::mov(rd, Operand2::Reg(ra, Shift::Reg(kind, rs))));
            }
        }
    }

    fn bin(&mut self, op: BinOp, d: crate::ir::Val, a: crate::ir::Val, b: &Operand) {
        let rd = self.dest(d, SCR0);
        match op {
            BinOp::Shl | BinOp::Shr | BinOp::Sar | BinOp::Ror => {
                let ra = self.read(a, SCR1);
                self.shift_bin(op, rd, ra, b);
            }
            BinOp::Mul => {
                let ra = self.read(a, SCR1);
                let rb = match b {
                    Operand::Val(v) => self.read(*v, SCR2),
                    Operand::Imm(value) => {
                        self.emit_const(SCR2, *value);
                        SCR2
                    }
                };
                self.push(Instr::mul(rd, ra, rb));
            }
            BinOp::Add | BinOp::Sub => {
                let ra = self.read(a, SCR1);
                // Fold negated immediates: `add #-n` -> `sub #n`.
                let (dp, op2) = match b {
                    Operand::Imm(v)
                        if Operand2::imm(*v).is_none()
                            && Operand2::imm(v.wrapping_neg()).is_some() =>
                    {
                        let flipped = if op == BinOp::Add {
                            DpOp::Sub
                        } else {
                            DpOp::Add
                        };
                        (flipped, Operand2::imm(v.wrapping_neg()).expect("checked"))
                    }
                    _ => {
                        let dp = if op == BinOp::Add {
                            DpOp::Add
                        } else {
                            DpOp::Sub
                        };
                        (dp, self.operand2(b, SCR2))
                    }
                };
                self.push(Instr::dp(dp, rd, ra, op2));
            }
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Bic => {
                let ra = self.read(a, SCR1);
                // Fold inverted masks: `and #m` with unencodable m but
                // encodable !m becomes `bic #!m` (and vice versa).
                let (dp, op2) = match (op, b) {
                    (BinOp::And, Operand::Imm(v))
                        if Operand2::imm(*v).is_none() && Operand2::imm(!v).is_some() =>
                    {
                        (DpOp::Bic, Operand2::imm(!v).expect("checked"))
                    }
                    (BinOp::Bic, Operand::Imm(v))
                        if Operand2::imm(*v).is_none() && Operand2::imm(!v).is_some() =>
                    {
                        (DpOp::And, Operand2::imm(!v).expect("checked"))
                    }
                    _ => {
                        let dp = match op {
                            BinOp::And => DpOp::And,
                            BinOp::Or => DpOp::Orr,
                            BinOp::Xor => DpOp::Eor,
                            BinOp::Bic => DpOp::Bic,
                            _ => unreachable!(),
                        };
                        (dp, self.operand2(b, SCR2))
                    }
                };
                self.push(Instr::dp(dp, rd, ra, op2));
            }
        }
        self.write_back(d, rd);
    }

    fn compare(&mut self, cond: &Cond) -> ACond {
        let ra = self.read(cond.a, SCR1);
        let op2 = self.operand2(&cond.b, SCR2);
        self.push(Instr::cmp(ra, op2));
        cond_of(cond.op)
    }

    fn emit_inst(&mut self, f: &LFunction, inst: &LInst) {
        match inst {
            LInst::MovImm(d, value) => {
                let rd = self.dest(*d, SCR0);
                self.emit_const(rd, *value);
                self.write_back(*d, rd);
            }
            LInst::Mov(d, s) => {
                let rs = self.read(*s, SCR1);
                let rd = self.dest(*d, SCR0);
                if rd != rs {
                    self.push(Instr::mov(rd, Operand2::reg(rs)));
                    self.write_back(*d, rd);
                } else {
                    self.write_back(*d, rd);
                }
            }
            LInst::Un(op, d, a) => {
                let ra = self.read(*a, SCR1);
                let rd = self.dest(*d, SCR0);
                match op {
                    UnOp::Not => self.push(Instr::dp(DpOp::Mvn, rd, Reg::R0, Operand2::reg(ra))),
                    UnOp::Neg => self.push(Instr::dp(
                        DpOp::Rsb,
                        rd,
                        ra,
                        Operand2::imm(0).expect("zero"),
                    )),
                }
                self.write_back(*d, rd);
            }
            LInst::Bin(op, d, a, b) => self.bin(*op, *d, *a, b),
            LInst::SetCond(d, cond) => {
                let cc = self.compare(cond);
                let rd = self.dest(*d, SCR0);
                let one = Operand2::imm(1).expect("one");
                let zero = Operand2::imm(0).expect("zero");
                self.push(Instr::mov(rd, one).with_cond(cc));
                self.push(Instr::mov(rd, zero).with_cond(cc.inverse()));
                self.write_back(*d, rd);
            }
            LInst::Load {
                width,
                signed,
                dst,
                base,
                disp,
            } => {
                let rb = self.read(*base, SCR1);
                let rd = self.dest(*dst, SCR0);
                let op = match (width, signed) {
                    (Width::W, _) => MemOp::Ldr,
                    (Width::H, false) => MemOp::Ldrh,
                    (Width::H, true) => MemOp::Ldrsh,
                    (Width::B, false) => MemOp::Ldrb,
                    (Width::B, true) => MemOp::Ldrsb,
                };
                self.mem_access(op, rd, rb, *disp);
                self.write_back(*dst, rd);
            }
            LInst::Store {
                width,
                src,
                base,
                disp,
            } => {
                let rs = self.read(*src, SCR0);
                let rb = self.read(*base, SCR1);
                let op = match width {
                    Width::W => MemOp::Str,
                    Width::H => MemOp::Strh,
                    Width::B => MemOp::Strb,
                };
                self.mem_access(op, rs, rb, *disp);
            }
            LInst::CmpBr(cond, target) => {
                let cc = self.compare(cond);
                let at = self.out.len();
                self.push(Instr::b(0).with_cond(cc));
                self.fixups.push((at, Fixup::Local(*target)));
            }
            LInst::Br(target) => {
                let at = self.out.len();
                self.push(Instr::b(0));
                self.fixups.push((at, Fixup::Local(*target)));
            }
            LInst::Lbl(l) => {
                self.labels.insert(*l, self.out.len());
            }
            LInst::Call { callee, args, ret } => {
                for (i, arg) in args.iter().enumerate() {
                    let dst = Reg::new(i as u8);
                    match self.alloc.locs[arg.index() as usize] {
                        Loc::Reg(r) => self.push(Instr::mov(dst, Operand2::reg(r))),
                        Loc::Slot(s) => {
                            let off = self.spill_off(s);
                            self.push(Instr::mem(MemOp::Ldr, dst, Reg::SP, off));
                        }
                    }
                }
                let at = self.out.len();
                self.push(Instr::Branch {
                    cond: ACond::Al,
                    link: true,
                    offset: 0,
                });
                self.fixups.push((at, Fixup::Func(callee.clone())));
                if let Some(d) = ret {
                    match self.alloc.locs[d.index() as usize] {
                        Loc::Reg(r) => self.push(Instr::mov(r, Operand2::reg(Reg::R0))),
                        Loc::Slot(s) => {
                            let off = self.spill_off(s);
                            self.push(Instr::mem(MemOp::Str, Reg::R0, Reg::SP, off));
                        }
                    }
                }
            }
            LInst::Emit(v) => {
                let r = self.read(*v, SCR0);
                if r != Reg::R0 {
                    self.push(Instr::mov(Reg::R0, Operand2::reg(r)));
                }
                self.push(Instr::Swi {
                    cond: ACond::Al,
                    imm: 1,
                });
            }
            LInst::Ret(v) => self.epilogue(*v),
        }
        let _ = f;
    }
}

/// Compiles a module to an AR32 program. `main` is placed first and becomes
/// the entry point.
///
/// # Errors
///
/// Returns [`CompileError`] for calls to unknown functions or branch targets
/// beyond the 24-bit range.
pub fn compile(module: &Module) -> Result<Program, CompileError> {
    compile_with_regs(module, &crate::regalloc::ALLOCATABLE)
}

/// Compiles with a restricted allocatable register set — used to model
/// recompilation for a target with a narrow register window (the Thumb
/// code-size baseline of the paper's Figure 5).
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_with_regs(module: &Module, allocatable: &[Reg]) -> Result<Program, CompileError> {
    // Lower and allocate every function, main first.
    let mut lowered: Vec<LFunction> = Vec::with_capacity(module.funcs.len());
    for f in &module.funcs {
        lowered.push(lower(f));
    }
    lowered.sort_by_key(|f| if f.name == "main" { 0 } else { 1 });

    let mut text: Vec<Instr> = Vec::new();
    let mut symbols: Vec<(usize, String)> = Vec::new();
    let mut func_start: HashMap<String, usize> = HashMap::new();
    let mut all_fixups: Vec<(usize, Fixup, String)> = Vec::new();
    let mut all_labels: HashMap<(String, Label), usize> = HashMap::new();

    for lf in &lowered {
        let alloc = crate::regalloc::allocate_with(lf, allocatable);
        let mut saved: Vec<Reg> = alloc.used_regs.clone();
        saved.push(Reg::LR);
        let frame = {
            let words = saved.len() as u32 + alloc.slots;
            (words * 4 + 7) & !7
        };
        let mut em = FnEmitter {
            alloc: &alloc,
            out: Vec::new(),
            fixups: Vec::new(),
            labels: HashMap::new(),
            frame,
            saved,
            is_main: lf.name == "main",
        };
        em.prologue(lf);
        for inst in &lf.code {
            em.emit_inst(lf, inst);
        }
        let base = text.len();
        func_start.insert(lf.name.clone(), base);
        symbols.push((base, lf.name.clone()));
        for (at, fix) in em.fixups {
            all_fixups.push((base + at, fix, lf.name.clone()));
        }
        for (l, pos) in em.labels {
            all_labels.insert((lf.name.clone(), l), base + pos);
        }
        text.extend(em.out);
    }

    // Patch branches.
    for (at, fix, owner) in all_fixups {
        let target = match &fix {
            Fixup::Local(l) => *all_labels
                .get(&(owner.clone(), *l))
                .expect("label defined in its function"),
            Fixup::Func(name) => {
                *func_start
                    .get(name)
                    .ok_or_else(|| CompileError::UnknownFunction {
                        callee: name.clone(),
                        caller: owner.clone(),
                    })?
            }
        };
        let offset = target as i64 - (at as i64 + 2);
        if !(-(1 << 23)..(1 << 23)).contains(&offset) {
            return Err(CompileError::BranchOutOfRange { func: owner });
        }
        match &mut text[at] {
            Instr::Branch { offset: o, .. } => *o = offset as i32,
            other => unreachable!("fixup target is not a branch: {other}"),
        }
    }

    Ok(Program {
        entry: func_start["main"],
        text,
        data: module.data.clone(),
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FnBuilder, ModuleBuilder};
    use crate::ir::CmpOp;
    use fits_isa::DATA_BASE;
    use fits_sim::{Ar32Set, Machine};

    fn run(module: &Module) -> u32 {
        let program = compile(module).expect("compiles");
        let mut m = Machine::new(Ar32Set::load(&program));
        m.run().expect("runs").exit_code
    }

    #[test]
    fn arithmetic_pipeline() {
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("main", 0);
        let a = f.imm(100u32);
        let b = f.imm(7u32);
        let c = f.mul(a, b); // 700
        let d = f.sub(c, 55u32); // 645
        let e = f.xor(d, 0xffu32); // 645 ^ 255
        let g = f.shr(e, 1u32);
        f.ret(Some(g));
        mb.push(f.finish());
        assert_eq!(run(&mb.finish(Vec::new())), ((700u32 - 55) ^ 0xff) >> 1);
    }

    #[test]
    fn loops_and_memory() {
        // Sum 32 bytes of the data segment.
        let data: Vec<u8> = (0..32u8).collect();
        let expect: u32 = data.iter().map(|&b| u32::from(b)).sum();
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("main", 0);
        let base = f.imm(DATA_BASE);
        let sum = f.imm(0u32);
        f.repeat(32u32, |f, i| {
            let p = f.add(base, i);
            let v = f.load_b(p, 0);
            let s = f.add(sum, v);
            f.copy(sum, s);
        });
        f.ret(Some(sum));
        mb.push(f.finish());
        assert_eq!(run(&mb.finish(data)), expect);
    }

    #[test]
    fn cross_function_calls() {
        let mut mb = ModuleBuilder::new();

        let mut g = FnBuilder::new("mix", 2);
        let x = g.param(0);
        let y = g.param(1);
        let t = g.xor(x, y);
        let u = g.shl(t, 3u32);
        g.ret(Some(u));
        mb.push(g.finish());

        let mut f = FnBuilder::new("main", 0);
        let a = f.imm(0x5au32);
        let b = f.imm(0xa5u32);
        let r = f.call("mix", &[a, b]);
        f.ret(Some(r));
        mb.push(f.finish());

        assert_eq!(run(&mb.finish(Vec::new())), (0x5au32 ^ 0xa5) << 3);
    }

    #[test]
    fn recursion_works() {
        // fib(12) the slow way.
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("fib", 1);
        let n = f.param(0);
        let out = f.imm(0u32);
        f.if_else(
            f.cmp(CmpOp::LtU, n, 2u32),
            |f| f.copy(out, n),
            |f| {
                let n1 = f.sub(n, 1u32);
                let a = f.call("fib", &[n1]);
                let n2 = f.sub(n, 2u32);
                let b = f.call("fib", &[n2]);
                let s = f.add(a, b);
                f.copy(out, s);
            },
        );
        f.ret(Some(out));
        mb.push(f.finish());

        let mut m = FnBuilder::new("main", 0);
        let n = m.imm(12u32);
        let r = m.call("fib", &[n]);
        m.ret(Some(r));
        mb.push(m.finish());

        assert_eq!(run(&mb.finish(Vec::new())), 144);
    }

    #[test]
    fn spills_preserve_values() {
        // Force heavy pressure: 16 live values combined at the end.
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("main", 0);
        let vals: Vec<_> = (0..16).map(|i| f.imm(1u32 << i)).collect();
        let mut acc = f.imm(0u32);
        for v in vals.iter().rev() {
            acc = f.add(acc, *v);
        }
        f.ret(Some(acc));
        mb.push(f.finish());
        assert_eq!(run(&mb.finish(Vec::new())), 0xffff);
    }

    #[test]
    fn big_constants_materialize() {
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("main", 0);
        let a = f.imm(0x1234_5678u32);
        let b = f.imm(0xdead_beefu32);
        let c = f.xor(a, b);
        f.ret(Some(c));
        mb.push(f.finish());
        assert_eq!(run(&mb.finish(Vec::new())), 0x1234_5678 ^ 0xdead_beef);
    }

    #[test]
    fn set_cond_produces_booleans() {
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("main", 0);
        let a = f.imm(5u32);
        let t = f.set_cond(f.cmp(CmpOp::LtU, a, 9u32));
        let u = f.set_cond(f.cmp(CmpOp::GtS, a, 9u32));
        let packed = f.shl(t, 1u32);
        let r = f.or(packed, u);
        f.ret(Some(r));
        mb.push(f.finish());
        assert_eq!(run(&mb.finish(Vec::new())), 0b10);
    }

    #[test]
    fn signed_vs_unsigned_compares() {
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("main", 0);
        let minus_one = f.imm(-1i32);
        let one = f.imm(1u32);
        // Signed: -1 < 1. Unsigned: 0xffffffff > 1.
        let s = f.set_cond(f.cmp(CmpOp::LtS, minus_one, one));
        let u = f.set_cond(f.cmp(CmpOp::GtU, minus_one, one));
        let packed = f.shl(s, 1u32);
        let r = f.or(packed, u);
        f.ret(Some(r));
        mb.push(f.finish());
        assert_eq!(run(&mb.finish(Vec::new())), 0b11);
    }

    #[test]
    fn unknown_callee_is_an_error() {
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("main", 0);
        let a = f.imm(0u32);
        let r = f.call("nonexistent", &[a]);
        f.ret(Some(r));
        mb.push(f.finish());
        let module = mb.finish(Vec::new());
        assert!(matches!(
            compile(&module),
            Err(CompileError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn emit_reaches_output_stream() {
        let mut mb = ModuleBuilder::new();
        let mut f = FnBuilder::new("main", 0);
        let a = f.imm(0xabcdu32);
        f.emit(a);
        f.ret(Some(a));
        mb.push(f.finish());
        let program = compile(&mb.finish(Vec::new())).unwrap();
        let mut m = Machine::new(Ar32Set::load(&program));
        let out = m.run().unwrap();
        assert_eq!(out.exit_code, 0xabcd);
        // Emitting changes the hash away from the empty-stream value.
        let mut f2 = FnBuilder::new("main", 0);
        let a2 = f2.imm(0xabcdu32);
        f2.ret(Some(a2));
        let mut mb2 = ModuleBuilder::new();
        mb2.push(f2.finish());
        let p2 = compile(&mb2.finish(Vec::new())).unwrap();
        let out2 = Machine::new(Ar32Set::load(&p2)).run().unwrap();
        assert_ne!(out.emitted, out2.emitted);
    }
}
