//! # fits-kernels — benchmark IR, compiler and MiBench-like kernels
//!
//! The workload substrate of the PowerFITS reproduction, standing in for
//! GCC-compiled MiBench:
//!
//! * [`ir`]/[`builder`] — a small structured intermediate representation
//!   (virtual registers, nested `if`/`while`, explicit memory operations)
//!   with an ergonomic closure-based builder;
//! * [`lower`] — lowering to a linear form with labels and branches;
//! * [`regalloc`] — linear-scan register allocation onto `r4`–`r11` (the
//!   allocatable set is parameterizable, which is how the Thumb baseline's
//!   register pressure is modeled);
//! * [`codegen`] — AR32 code generation: instruction selection, rotated-
//!   immediate materialization, spill code, calls and branch fixup;
//! * [`kernels`] — the 21 MiBench-like benchmarks across the six MiBench
//!   categories, each paired with a pure-Rust reference implementation and
//!   a deterministic seeded input generator.
//!
//! ## Example
//!
//! ```
//! use fits_kernels::kernels::{Kernel, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Kernel::Crc32.compile(Scale::test())?;
//! assert!(!program.text.is_empty());
//! println!("{}", program); // instruction/byte counts
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod builder;
pub mod codegen;
pub mod ir;
pub mod kernels;
pub mod lower;
pub mod regalloc;
