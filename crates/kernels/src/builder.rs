//! Ergonomic construction of IR functions and modules.
//!
//! ```
//! use fits_kernels::builder::{FnBuilder, ModuleBuilder};
//! use fits_kernels::ir::CmpOp;
//!
//! let mut module = ModuleBuilder::new();
//! let mut f = FnBuilder::new("main", 0);
//! let i = f.imm(0);
//! let sum = f.imm(0);
//! f.while_(f.cmp(CmpOp::LtU, i, 10u32), |f| {
//!     let next = f.add(sum, i);
//!     f.copy(sum, next);
//!     let step = f.add(i, 1u32);
//!     f.copy(i, step);
//! });
//! f.ret(Some(sum));
//! module.push(f.finish());
//! let m = module.finish(Vec::new());
//! assert_eq!(m.funcs.len(), 1);
//! ```

use crate::ir::{BinOp, CmpOp, Cond, Function, Module, Operand, Rvalue, Stmt, UnOp, Val, Width};

/// Builds one [`Function`] with nested control flow via closures.
#[derive(Debug)]
pub struct FnBuilder {
    name: String,
    params: u32,
    next: u32,
    stack: Vec<Vec<Stmt>>,
}

impl FnBuilder {
    /// Starts a function with `params` parameters (≤ 4). Parameter values
    /// are the first virtual registers, retrievable with [`FnBuilder::param`].
    ///
    /// # Panics
    ///
    /// Panics if `params > 4` (the AR32 calling convention passes arguments
    /// in `r0`–`r3`).
    #[must_use]
    pub fn new(name: &str, params: u32) -> FnBuilder {
        assert!(params <= 4, "at most 4 parameters");
        FnBuilder {
            name: name.to_string(),
            params,
            next: params,
            stack: vec![Vec::new()],
        }
    }

    /// The `i`-th parameter's virtual register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn param(&self, i: u32) -> Val {
        assert!(i < self.params, "parameter {i} out of range");
        Val(i)
    }

    fn fresh(&mut self) -> Val {
        let v = Val(self.next);
        self.next += 1;
        v
    }

    fn push(&mut self, stmt: Stmt) {
        self.stack
            .last_mut()
            .expect("builder block stack never empty")
            .push(stmt);
    }

    fn assign_new(&mut self, rv: Rvalue) -> Val {
        let dst = self.fresh();
        self.push(Stmt::Assign(dst, rv));
        dst
    }

    /// A fresh register holding a constant.
    pub fn imm(&mut self, value: impl Into<Operand>) -> Val {
        match value.into() {
            Operand::Imm(v) => self.assign_new(Rvalue::Imm(v)),
            Operand::Val(v) => self.assign_new(Rvalue::Copy(v)),
        }
    }

    /// Copies `src` into the existing register `dst` (loop-variable update).
    pub fn copy(&mut self, dst: Val, src: Val) {
        self.push(Stmt::Assign(dst, Rvalue::Copy(src)));
    }

    /// Stores a constant into the existing register `dst`.
    pub fn set_imm(&mut self, dst: Val, value: u32) {
        self.push(Stmt::Assign(dst, Rvalue::Imm(value)));
    }

    /// Builds a condition for use with `if_`/`while_`.
    #[must_use]
    pub fn cmp(&self, op: CmpOp, a: Val, b: impl Into<Operand>) -> Cond {
        Cond::new(op, a, b)
    }

    /// `dst = if cond { 1 } else { 0 }` into a fresh register.
    pub fn set_cond(&mut self, cond: Cond) -> Val {
        self.assign_new(Rvalue::SetCond(cond))
    }

    /// Emits a binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: Val, b: impl Into<Operand>) -> Val {
        self.assign_new(Rvalue::Binary(op, a, b.into()))
    }

    /// Emits a binary operation into an existing register (in-place update).
    pub fn bin_into(&mut self, dst: Val, op: BinOp, a: Val, b: impl Into<Operand>) {
        self.push(Stmt::Assign(dst, Rvalue::Binary(op, a, b.into())));
    }

    /// Addition.
    pub fn add(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::Add, a, b)
    }

    /// Subtraction.
    pub fn sub(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::Sub, a, b)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::Xor, a, b)
    }

    /// Logical shift left.
    pub fn shl(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::Shl, a, b)
    }

    /// Logical shift right.
    pub fn shr(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::Shr, a, b)
    }

    /// Arithmetic shift right.
    pub fn sar(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::Sar, a, b)
    }

    /// Multiplication (low 32 bits).
    pub fn mul(&mut self, a: Val, b: impl Into<Operand>) -> Val {
        self.bin(BinOp::Mul, a, b)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: Val) -> Val {
        self.assign_new(Rvalue::Unary(UnOp::Not, a))
    }

    /// Negation.
    pub fn neg(&mut self, a: Val) -> Val {
        self.assign_new(Rvalue::Unary(UnOp::Neg, a))
    }

    fn load(&mut self, width: Width, signed: bool, base: Val, disp: i32) -> Val {
        self.assign_new(Rvalue::Load {
            width,
            signed,
            base,
            disp,
        })
    }

    /// Word load.
    pub fn load_w(&mut self, base: Val, disp: i32) -> Val {
        self.load(Width::W, false, base, disp)
    }

    /// Zero-extending halfword load.
    pub fn load_h(&mut self, base: Val, disp: i32) -> Val {
        self.load(Width::H, false, base, disp)
    }

    /// Zero-extending byte load.
    pub fn load_b(&mut self, base: Val, disp: i32) -> Val {
        self.load(Width::B, false, base, disp)
    }

    /// Sign-extending halfword load.
    pub fn load_sh(&mut self, base: Val, disp: i32) -> Val {
        self.load(Width::H, true, base, disp)
    }

    /// Sign-extending byte load.
    pub fn load_sb(&mut self, base: Val, disp: i32) -> Val {
        self.load(Width::B, true, base, disp)
    }

    /// Word store.
    pub fn store_w(&mut self, base: Val, disp: i32, src: Val) {
        self.push(Stmt::Store {
            width: Width::W,
            base,
            disp,
            src,
        });
    }

    /// Halfword store.
    pub fn store_h(&mut self, base: Val, disp: i32, src: Val) {
        self.push(Stmt::Store {
            width: Width::H,
            base,
            disp,
            src,
        });
    }

    /// Byte store.
    pub fn store_b(&mut self, base: Val, disp: i32, src: Val) {
        self.push(Stmt::Store {
            width: Width::B,
            base,
            disp,
            src,
        });
    }

    /// Structured `if`.
    pub fn if_(&mut self, cond: Cond, then: impl FnOnce(&mut Self)) {
        self.stack.push(Vec::new());
        then(self);
        let block = self.stack.pop().expect("then block");
        self.push(Stmt::If {
            cond,
            then: block,
            els: Vec::new(),
        });
    }

    /// Structured `if`/`else`.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Vec::new());
        then(self);
        let t = self.stack.pop().expect("then block");
        self.stack.push(Vec::new());
        els(self);
        let e = self.stack.pop().expect("else block");
        self.push(Stmt::If {
            cond,
            then: t,
            els: e,
        });
    }

    /// Structured top-tested loop.
    pub fn while_(&mut self, cond: Cond, body: impl FnOnce(&mut Self)) {
        self.stack.push(Vec::new());
        body(self);
        let block = self.stack.pop().expect("while block");
        self.push(Stmt::While { cond, body: block });
    }

    /// Counted loop: `for i in 0..n { body(b, i) }` with `i` in a register.
    /// Returns nothing; the index register is scoped to the loop.
    pub fn repeat(&mut self, n: impl Into<Operand>, body: impl FnOnce(&mut Self, Val)) {
        let i = self.imm(0u32);
        let cond = self.cmp(CmpOp::LtU, i, n);
        self.while_(cond, |b| {
            body(b, i);
            let next = b.add(i, 1u32);
            b.copy(i, next);
        });
    }

    /// Calls another function, returning its result in a fresh register.
    pub fn call(&mut self, callee: &str, args: &[Val]) -> Val {
        assert!(args.len() <= 4, "at most 4 arguments");
        let dst = self.fresh();
        self.push(Stmt::Call {
            callee: callee.to_string(),
            args: args.to_vec(),
            ret: Some(dst),
        });
        dst
    }

    /// Calls another function, discarding any result.
    pub fn call_void(&mut self, callee: &str, args: &[Val]) {
        assert!(args.len() <= 4, "at most 4 arguments");
        self.push(Stmt::Call {
            callee: callee.to_string(),
            args: args.to_vec(),
            ret: None,
        });
    }

    /// Emits a word to the simulator output stream.
    pub fn emit(&mut self, v: Val) {
        self.push(Stmt::Emit(v));
    }

    /// Returns from the function.
    pub fn ret(&mut self, value: Option<Val>) {
        self.push(Stmt::Return(value));
    }

    /// Finalizes the function.
    ///
    /// # Panics
    ///
    /// Panics if control-flow blocks are unbalanced (an internal bug).
    #[must_use]
    pub fn finish(mut self) -> Function {
        assert_eq!(self.stack.len(), 1, "unbalanced blocks in {}", self.name);
        Function {
            name: self.name,
            params: self.params,
            vregs: self.next,
            body: self.stack.pop().expect("body"),
        }
    }
}

/// Accumulates functions into a [`Module`].
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    funcs: Vec<Function>,
}

impl ModuleBuilder {
    /// An empty module builder.
    #[must_use]
    pub fn new() -> ModuleBuilder {
        ModuleBuilder::default()
    }

    /// Adds a function.
    ///
    /// # Panics
    ///
    /// Panics on duplicate function names.
    pub fn push(&mut self, f: Function) {
        assert!(
            self.funcs.iter().all(|g| g.name != f.name),
            "duplicate function {}",
            f.name
        );
        self.funcs.push(f);
    }

    /// Finalizes the module with its data image.
    ///
    /// # Panics
    ///
    /// Panics if no `main` function was added.
    #[must_use]
    pub fn finish(self, data: Vec<u8>) -> Module {
        assert!(
            self.funcs.iter().any(|f| f.name == "main"),
            "module needs a main function"
        );
        Module {
            funcs: self.funcs,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_blocks_balance() {
        let mut f = FnBuilder::new("main", 0);
        let x = f.imm(1u32);
        f.if_else(
            f.cmp(CmpOp::Eq, x, 1u32),
            |f| {
                f.while_(f.cmp(CmpOp::LtU, x, 10u32), |f| {
                    let n = f.add(x, 1u32);
                    f.copy(x, n);
                });
            },
            |f| {
                f.set_imm(x, 0);
            },
        );
        f.ret(Some(x));
        let func = f.finish();
        assert_eq!(func.body.len(), 3);
        assert!(func.vregs >= 2);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_names_rejected() {
        let mut m = ModuleBuilder::new();
        let mk = || {
            let mut f = FnBuilder::new("main", 0);
            f.ret(None);
            f.finish()
        };
        m.push(mk());
        m.push(mk());
    }

    #[test]
    #[should_panic(expected = "needs a main")]
    fn missing_main_rejected() {
        let mut m = ModuleBuilder::new();
        let mut f = FnBuilder::new("helper", 0);
        f.ret(None);
        m.push(f.finish());
        let _ = m.finish(Vec::new());
    }

    #[test]
    fn params_are_first_vregs() {
        let f = FnBuilder::new("f", 2);
        assert_eq!(f.param(0).index(), 0);
        assert_eq!(f.param(1).index(), 1);
    }
}
