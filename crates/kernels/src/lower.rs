//! Lowering from structured IR to linear LIR (labels + conditional
//! branches), the form the register allocator and code generator work on.

use crate::ir::BinOp;
use crate::ir::{Cond, Function, Operand, Rvalue, Stmt, UnOp, Val, Width};

/// A label within one function's LIR stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// One linear instruction.
#[derive(Clone, Debug)]
pub enum LInst {
    /// `dst = imm`.
    MovImm(Val, u32),
    /// `dst = src`.
    Mov(Val, Val),
    /// `dst = op(a)`.
    Un(UnOp, Val, Val),
    /// `dst = op(a, b)`.
    Bin(BinOp, Val, Val, Operand),
    /// `dst = if cond { 1 } else { 0 }`.
    SetCond(Val, Cond),
    /// Load from `base + disp`.
    Load {
        /// Access width.
        width: Width,
        /// Sign extension.
        signed: bool,
        /// Destination.
        dst: Val,
        /// Base register.
        base: Val,
        /// Byte displacement.
        disp: i32,
    },
    /// Store to `base + disp`.
    Store {
        /// Access width.
        width: Width,
        /// Value to store.
        src: Val,
        /// Base register.
        base: Val,
        /// Byte displacement.
        disp: i32,
    },
    /// Conditional branch to `target` when `cond` holds.
    CmpBr(Cond, Label),
    /// Unconditional branch.
    Br(Label),
    /// Label definition.
    Lbl(Label),
    /// Function call.
    Call {
        /// Callee name.
        callee: String,
        /// Argument registers.
        args: Vec<Val>,
        /// Return-value destination.
        ret: Option<Val>,
    },
    /// Emit trap.
    Emit(Val),
    /// Function return.
    Ret(Option<Val>),
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct LFunction {
    /// Name (unique in module).
    pub name: String,
    /// Parameter count.
    pub params: u32,
    /// Virtual register count.
    pub vregs: u32,
    /// The linear instruction stream.
    pub code: Vec<LInst>,
}

struct Lowerer {
    code: Vec<LInst>,
    next_label: u32,
}

impl Lowerer {
    fn fresh(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn lower_block(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.lower_stmt(stmt);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign(dst, rv) => match rv {
                Rvalue::Imm(v) => self.code.push(LInst::MovImm(*dst, *v)),
                Rvalue::Copy(s) => self.code.push(LInst::Mov(*dst, *s)),
                Rvalue::Unary(op, a) => self.code.push(LInst::Un(*op, *dst, *a)),
                Rvalue::Binary(op, a, b) => self.code.push(LInst::Bin(*op, *dst, *a, *b)),
                Rvalue::Load {
                    width,
                    signed,
                    base,
                    disp,
                } => self.code.push(LInst::Load {
                    width: *width,
                    signed: *signed,
                    dst: *dst,
                    base: *base,
                    disp: *disp,
                }),
                Rvalue::SetCond(cond) => self.code.push(LInst::SetCond(*dst, *cond)),
            },
            Stmt::Store {
                width,
                base,
                disp,
                src,
            } => self.code.push(LInst::Store {
                width: *width,
                src: *src,
                base: *base,
                disp: *disp,
            }),
            Stmt::If { cond, then, els } => {
                let skip = self.fresh();
                let negated = Cond {
                    op: cond.op.negated(),
                    ..*cond
                };
                if els.is_empty() {
                    self.code.push(LInst::CmpBr(negated, skip));
                    self.lower_block(then);
                    self.code.push(LInst::Lbl(skip));
                } else {
                    let end = self.fresh();
                    self.code.push(LInst::CmpBr(negated, skip));
                    self.lower_block(then);
                    self.code.push(LInst::Br(end));
                    self.code.push(LInst::Lbl(skip));
                    self.lower_block(els);
                    self.code.push(LInst::Lbl(end));
                }
            }
            Stmt::While { cond, body } => {
                // head: if !cond goto end; body; goto head; end:
                let head = self.fresh();
                let end = self.fresh();
                let negated = Cond {
                    op: cond.op.negated(),
                    ..*cond
                };
                self.code.push(LInst::Lbl(head));
                self.code.push(LInst::CmpBr(negated, end));
                self.lower_block(body);
                self.code.push(LInst::Br(head));
                self.code.push(LInst::Lbl(end));
            }
            Stmt::Call { callee, args, ret } => self.code.push(LInst::Call {
                callee: callee.clone(),
                args: args.clone(),
                ret: *ret,
            }),
            Stmt::Emit(v) => self.code.push(LInst::Emit(*v)),
            Stmt::Return(v) => self.code.push(LInst::Ret(*v)),
        }
    }
}

/// Lowers one function to LIR. Appends an implicit `Return(None)` if the
/// body can fall off the end.
#[must_use]
pub fn lower(f: &Function) -> LFunction {
    let mut l = Lowerer {
        code: Vec::new(),
        next_label: 0,
    };
    l.lower_block(&f.body);
    if !matches!(l.code.last(), Some(LInst::Ret(_))) {
        l.code.push(LInst::Ret(None));
    }
    LFunction {
        name: f.name.clone(),
        params: f.params,
        vregs: f.vregs,
        code: l.code,
    }
}

/// All virtual registers an instruction reads.
#[must_use]
pub fn uses(inst: &LInst) -> Vec<Val> {
    let operand = |b: &Operand| match b {
        Operand::Val(v) => Some(*v),
        Operand::Imm(_) => None,
    };
    match inst {
        LInst::MovImm(..) | LInst::Br(_) | LInst::Lbl(_) => Vec::new(),
        LInst::Mov(_, s) | LInst::Un(_, _, s) => vec![*s],
        LInst::Bin(_, _, a, b) => std::iter::once(*a).chain(operand(b)).collect(),
        LInst::SetCond(_, c) | LInst::CmpBr(c, _) => {
            std::iter::once(c.a).chain(operand(&c.b)).collect()
        }
        LInst::Load { base, .. } => vec![*base],
        LInst::Store { src, base, .. } => vec![*src, *base],
        LInst::Call { args, .. } => args.clone(),
        LInst::Emit(v) => vec![*v],
        LInst::Ret(v) => v.iter().copied().collect(),
    }
}

/// The virtual register an instruction defines, if any.
#[must_use]
pub fn def(inst: &LInst) -> Option<Val> {
    match inst {
        LInst::MovImm(d, _)
        | LInst::Mov(d, _)
        | LInst::Un(_, d, _)
        | LInst::Bin(_, d, _, _)
        | LInst::SetCond(d, _)
        | LInst::Load { dst: d, .. } => Some(*d),
        LInst::Call { ret, .. } => *ret,
        _ => None,
    }
}

/// A tiny LIR interpreter used to validate lowering and (differentially)
/// the code generator. Memory is a byte array indexed from zero; the data
/// image is placed at `data_base`.
#[cfg(test)]
pub mod interp {
    use super::*;
    use std::collections::HashMap;

    pub struct Interp<'m> {
        pub funcs: HashMap<String, &'m LFunction>,
        pub mem: Vec<u8>,
        pub emitted: Vec<u32>,
        pub steps: u64,
    }

    impl<'m> Interp<'m> {
        pub fn run(&mut self, name: &str, args: &[u32]) -> Option<u32> {
            self.steps += 1;
            let f = self.funcs[name];
            let mut regs = vec![0u32; f.vregs.max(4) as usize];
            regs[..args.len()].copy_from_slice(args);
            // Label positions.
            let mut labels = HashMap::new();
            for (i, inst) in f.code.iter().enumerate() {
                if let LInst::Lbl(l) = inst {
                    labels.insert(*l, i);
                }
            }
            let opv = |regs: &[u32], o: &Operand| match o {
                Operand::Val(v) => regs[v.0 as usize],
                Operand::Imm(i) => *i,
            };
            let mut pc = 0usize;
            loop {
                self.steps += 1;
                assert!(self.steps < 100_000_000, "interpreter runaway");
                match &f.code[pc] {
                    LInst::MovImm(d, v) => regs[d.0 as usize] = *v,
                    LInst::Mov(d, s) => regs[d.0 as usize] = regs[s.0 as usize],
                    LInst::Un(op, d, a) => {
                        let x = regs[a.0 as usize];
                        regs[d.0 as usize] = match op {
                            UnOp::Not => !x,
                            UnOp::Neg => x.wrapping_neg(),
                        };
                    }
                    LInst::Bin(op, d, a, b) => {
                        let x = regs[a.0 as usize];
                        let y = opv(&regs, b);
                        regs[d.0 as usize] = eval_bin(*op, x, y);
                    }
                    LInst::SetCond(d, c) => {
                        regs[d.0 as usize] =
                            u32::from(c.op.eval(regs[c.a.0 as usize], opv(&regs, &c.b)));
                    }
                    LInst::Load {
                        width,
                        signed,
                        dst,
                        base,
                        disp,
                    } => {
                        let addr = (regs[base.0 as usize] as i64 + i64::from(*disp)) as usize;
                        let raw = match width {
                            Width::W => {
                                u32::from_le_bytes(self.mem[addr..addr + 4].try_into().unwrap())
                            }
                            Width::H => u32::from(u16::from_le_bytes(
                                self.mem[addr..addr + 2].try_into().unwrap(),
                            )),
                            Width::B => u32::from(self.mem[addr]),
                        };
                        regs[dst.0 as usize] = match (width, signed) {
                            (Width::H, true) => raw as u16 as i16 as i32 as u32,
                            (Width::B, true) => raw as u8 as i8 as i32 as u32,
                            _ => raw,
                        };
                    }
                    LInst::Store {
                        width,
                        src,
                        base,
                        disp,
                    } => {
                        let addr = (regs[base.0 as usize] as i64 + i64::from(*disp)) as usize;
                        let v = regs[src.0 as usize];
                        match width {
                            Width::W => {
                                self.mem[addr..addr + 4].copy_from_slice(&v.to_le_bytes());
                            }
                            Width::H => {
                                self.mem[addr..addr + 2].copy_from_slice(&(v as u16).to_le_bytes())
                            }
                            Width::B => self.mem[addr] = v as u8,
                        }
                    }
                    LInst::CmpBr(c, l) => {
                        if c.op.eval(regs[c.a.0 as usize], opv(&regs, &c.b)) {
                            pc = labels[l];
                        }
                    }
                    LInst::Br(l) => pc = labels[l],
                    LInst::Lbl(_) => {}
                    LInst::Call { callee, args, ret } => {
                        let vals: Vec<u32> = args.iter().map(|v| regs[v.0 as usize]).collect();
                        let r = self.run(callee, &vals);
                        if let Some(dst) = ret {
                            regs[dst.0 as usize] = r.unwrap_or(0);
                        }
                    }
                    LInst::Emit(v) => self.emitted.push(regs[v.0 as usize]),
                    LInst::Ret(v) => return v.map(|v| regs[v.0 as usize]),
                }
                pc += 1;
            }
        }
    }

    pub fn eval_bin(op: BinOp, x: u32, y: u32) -> u32 {
        // Shift semantics follow ARM register-shift rules: the amount is
        // the low byte; >= 32 shifts out completely.
        let sh = y & 0xff;
        match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Bic => x & !y,
            BinOp::Shl => {
                if sh >= 32 {
                    0
                } else {
                    x << sh
                }
            }
            BinOp::Shr => {
                if sh >= 32 {
                    0
                } else {
                    x >> sh
                }
            }
            BinOp::Sar => {
                let s = sh.min(31);
                ((x as i32) >> s) as u32
            }
            BinOp::Ror => x.rotate_right(sh % 32),
            BinOp::Mul => x.wrapping_mul(y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FnBuilder;
    use crate::ir::CmpOp;
    use std::collections::HashMap;

    #[test]
    fn while_loop_lowers_and_runs() {
        let mut f = FnBuilder::new("main", 0);
        let i = f.imm(0u32);
        let acc = f.imm(0u32);
        f.while_(f.cmp(CmpOp::LtU, i, 5u32), |f| {
            let t = f.add(acc, i);
            f.copy(acc, t);
            let n = f.add(i, 1u32);
            f.copy(i, n);
        });
        f.ret(Some(acc));
        let lf = lower(&f.finish());
        let mut interp = interp::Interp {
            funcs: HashMap::from([("main".to_string(), &lf)]),
            mem: vec![0; 64],
            emitted: Vec::new(),
            steps: 0,
        };
        assert_eq!(interp.run("main", &[]), Some(10));
    }

    #[test]
    fn if_else_lowers_both_arms() {
        for (input, expect) in [(3u32, 30u32), (7, 70)] {
            let mut f = FnBuilder::new("main", 1);
            let x = f.param(0);
            let out = f.imm(0u32);
            f.if_else(
                f.cmp(CmpOp::LtU, x, 5u32),
                |f| f.set_imm(out, 30),
                |f| f.set_imm(out, 70),
            );
            f.ret(Some(out));
            let lf = lower(&f.finish());
            let mut interp = interp::Interp {
                funcs: HashMap::from([("main".to_string(), &lf)]),
                mem: vec![0; 64],
                emitted: Vec::new(),
                steps: 0,
            };
            assert_eq!(interp.run("main", &[input]), Some(expect));
        }
    }

    #[test]
    fn calls_pass_arguments() {
        let mut g = FnBuilder::new("double", 1);
        let x = g.param(0);
        let d = g.add(x, x);
        g.ret(Some(d));
        let g = lower(&g.finish());

        let mut f = FnBuilder::new("main", 0);
        let v = f.imm(21u32);
        let r = f.call("double", &[v]);
        f.ret(Some(r));
        let f = lower(&f.finish());

        let mut interp = interp::Interp {
            funcs: HashMap::from([("main".to_string(), &f), ("double".to_string(), &g)]),
            mem: vec![0; 64],
            emitted: Vec::new(),
            steps: 0,
        };
        assert_eq!(interp.run("main", &[]), Some(42));
    }

    #[test]
    fn memory_round_trip() {
        let mut f = FnBuilder::new("main", 0);
        let base = f.imm(16u32);
        let v = f.imm(0xdead_beefu32);
        f.store_w(base, 0, v);
        let b0 = f.load_b(base, 0);
        let s = f.load_sb(base, 3); // 0xde -> sign-extended
        let sum = f.add(b0, s);
        f.ret(Some(sum));
        let lf = lower(&f.finish());
        let mut interp = interp::Interp {
            funcs: HashMap::from([("main".to_string(), &lf)]),
            mem: vec![0; 64],
            emitted: Vec::new(),
            steps: 0,
        };
        assert_eq!(
            interp.run("main", &[]),
            Some(0xefu32.wrapping_add(0xde_u8 as i8 as i32 as u32))
        );
    }

    #[test]
    fn uses_and_defs() {
        let i = LInst::Bin(BinOp::Add, Val(2), Val(0), Operand::Val(Val(1)));
        assert_eq!(uses(&i), vec![Val(0), Val(1)]);
        assert_eq!(def(&i), Some(Val(2)));
        let s = LInst::Store {
            width: Width::W,
            src: Val(3),
            base: Val(4),
            disp: 0,
        };
        assert_eq!(uses(&s), vec![Val(3), Val(4)]);
        assert_eq!(def(&s), None);
    }

    #[test]
    fn fallthrough_gets_implicit_return() {
        let f = FnBuilder::new("main", 0);
        let lf = lower(&f.finish());
        assert!(matches!(lf.code.last(), Some(LInst::Ret(None))));
    }
}
