//! Prints each kernel's static code/data footprint.

#![allow(clippy::unwrap_used)]

use fits_kernels::kernels::{Kernel, Scale};
fn main() {
    for k in Kernel::ALL {
        let p = k.compile(Scale::experiment()).unwrap();
        println!(
            "{:18} {:6} instrs  {:6} bytes text  {:7} bytes data",
            k.name(),
            p.text.len(),
            p.code_bytes(),
            p.data.len()
        );
    }
}
