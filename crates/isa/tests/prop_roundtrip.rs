//! Property tests: every constructible AR32 instruction must survive an
//! encode → decode round trip, rotated immediates must be value-exact, T16
//! instructions must survive their halfword round trip, and reserved /
//! invalid bit patterns must be rejected rather than mis-decoded. These
//! properties feed the `fits-verify` encoding-soundness checker, which
//! assumes both fixed ISAs have exact, total codecs over their valid forms.
//!
//! Randomness comes from the workspace's deterministic `fits-rng` stream,
//! so failures reproduce exactly; each test walks a fixed seed range.

#![allow(clippy::unwrap_used)]

use fits_isa::thumb::{AddSubRhs, HiOp, Imm8Op, T16Alu, T16Instr};
use fits_isa::{
    AddrOffset, Cond, DpOp, Index, Instr, MemOp, Operand2, Reg, RotImm, Shift, ShiftKind,
};
use fits_rng::StdRng;

const ITERS: usize = 20_000;

fn arb_reg(r: &mut StdRng) -> Reg {
    Reg::new(r.gen_range(0..16u8))
}

fn arb_low_reg(r: &mut StdRng) -> Reg {
    Reg::new(r.gen_range(0..8u8))
}

fn arb_cond(r: &mut StdRng) -> Cond {
    Cond::from_bits(r.gen_range(0..16u8))
}

fn arb_shift_kind(r: &mut StdRng) -> ShiftKind {
    ShiftKind::from_bits(r.gen_range(0..4u8))
}

fn arb_shift(r: &mut StdRng) -> Shift {
    match r.gen_range(0..6u8) {
        0 => Shift::NONE,
        1 => Shift::Imm(ShiftKind::Lsl, r.gen_range(1..32u8).min(31)),
        2 => Shift::Imm(ShiftKind::Lsr, r.gen_range(1..=32u8)),
        3 => Shift::Imm(ShiftKind::Asr, r.gen_range(1..=32u8)),
        4 => Shift::Imm(ShiftKind::Ror, r.gen_range(1..32u8)),
        _ => Shift::Reg(arb_shift_kind(r), arb_reg(r)),
    }
}

fn arb_op2(r: &mut StdRng) -> Operand2 {
    if r.gen() {
        Operand2::Imm(RotImm::from_fields(r.gen(), r.gen_range(0..16u8)))
    } else {
        Operand2::Reg(arb_reg(r), arb_shift(r))
    }
}

fn arb_dp(r: &mut StdRng) -> Instr {
    let op = DpOp::from_bits(r.gen_range(0..16u8));
    Instr::Dp {
        cond: arb_cond(r),
        op,
        set_flags: r.gen::<bool>() || op.is_compare(),
        rd: arb_reg(r),
        rn: arb_reg(r),
        op2: arb_op2(r),
    }
}

const MEM_OPS: [MemOp; 8] = [
    MemOp::Ldr,
    MemOp::Str,
    MemOp::Ldrb,
    MemOp::Strb,
    MemOp::Ldrh,
    MemOp::Strh,
    MemOp::Ldrsb,
    MemOp::Ldrsh,
];

fn arb_mem(r: &mut StdRng) -> Option<Instr> {
    let op = MEM_OPS[r.gen_range(0..MEM_OPS.len())];
    let index = match r.gen_range(0..3u8) {
        0 => Index::PreNoWb,
        1 => Index::PreWb,
        _ => Index::Post,
    };
    let offset = match r.gen_range(0..3u8) {
        0 => AddrOffset::Imm(r.gen_range(-4095..=4095)),
        1 => AddrOffset::Reg {
            rm: arb_reg(r),
            shift: Shift::NONE,
            subtract: r.gen(),
        },
        _ => AddrOffset::Reg {
            rm: arb_reg(r),
            shift: Shift::Imm(arb_shift_kind(r), r.gen_range(1..31u8)),
            subtract: r.gen(),
        },
    };
    // Halfword-form transfers take a narrower displacement and no shift.
    let offset = match offset {
        AddrOffset::Imm(d) if op.is_halfword_form() => AddrOffset::Imm(d.clamp(-255, 255)),
        AddrOffset::Reg { rm, subtract, .. } if op.is_halfword_form() => AddrOffset::Reg {
            rm,
            shift: Shift::NONE,
            subtract,
        },
        o => o,
    };
    offset.is_valid_for(op).then_some(Instr::Mem {
        cond: arb_cond(r),
        op,
        rd: arb_reg(r),
        rn: arb_reg(r),
        offset,
        index,
    })
}

fn arb_instr(r: &mut StdRng) -> Instr {
    loop {
        match r.gen_range(0..5u8) {
            0 | 1 => return arb_dp(r),
            2 => {
                if let Some(i) = arb_mem(r) {
                    return i;
                }
            }
            3 => {
                return Instr::Mul {
                    cond: arb_cond(r),
                    set_flags: r.gen(),
                    rd: arb_reg(r),
                    rm: arb_reg(r),
                    rs: arb_reg(r),
                    acc: r.gen::<bool>().then(|| arb_reg(r)),
                }
            }
            _ => {
                return if r.gen() {
                    Instr::Branch {
                        cond: arb_cond(r),
                        link: r.gen(),
                        offset: r.gen_range(-(1 << 23)..(1 << 23)),
                    }
                } else {
                    Instr::Swi {
                        cond: arb_cond(r),
                        imm: r.gen_range(0..1u32 << 24),
                    }
                };
            }
        }
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut r = StdRng::seed_from_u64(0x1234);
    for _ in 0..ITERS {
        let instr = arb_instr(&mut r);
        let word = instr.encode();
        let back = Instr::decode(word).expect("generated instruction must decode");
        assert_eq!(back, instr, "round trip through {word:#010x}");
    }
}

#[test]
fn rot_imm_round_trip() {
    let mut r = StdRng::seed_from_u64(0x5678);
    for _ in 0..ITERS {
        let imm = RotImm::from_fields(r.gen(), r.gen_range(0..16u8));
        let canonical = RotImm::encode(imm.value()).expect("value came from an encoding");
        assert_eq!(canonical.value(), imm.value());
    }
}

#[test]
fn rot_imm_encode_is_exact() {
    let mut r = StdRng::seed_from_u64(0x9abc);
    for _ in 0..ITERS {
        let v: u32 = r.gen();
        if let Some(imm) = RotImm::encode(v) {
            assert_eq!(imm.value(), v);
        }
    }
}

#[test]
fn display_never_panics() {
    let mut r = StdRng::seed_from_u64(0xdef0);
    for _ in 0..ITERS {
        let _ = arb_instr(&mut r).to_string();
    }
}

#[test]
fn reads_writes_are_registers() {
    let mut r = StdRng::seed_from_u64(0x1111);
    for _ in 0..ITERS {
        let instr = arb_instr(&mut r);
        for reg in instr.reads().into_iter().chain(instr.writes()) {
            assert!(reg.index() < 16);
        }
    }
}

// ---------------------------------------------------------------------------
// AR32 rejection: decoding must be a partial function that *fails* on
// reserved patterns, never mis-decodes them, and is idempotent through a
// re-encode on everything it accepts.

#[test]
fn ar32_decode_rejects_reserved_patterns() {
    // One representative per unsupported class; the fuzz test below covers
    // the space broadly.
    let reserved: &[(u32, &str)] = &[
        (0xe8bd_8000, "block data transfer (LDM/STM)"),
        (0xee00_0000, "coprocessor op"),
        (0xe10f_0000, "PSR transfer (compare without S)"),
        (0xe1a0_0062, "RRX shifter form"),
        (0xe080_0291, "long multiply (UMULL)"),
        (0xe000_02b1, "signed store form (STRSB slot)"),
        (0xe000_1291, "MUL with nonzero Rn field"),
    ];
    for &(word, what) in reserved {
        assert!(
            Instr::decode(word).is_err(),
            "{what} ({word:#010x}) must be rejected"
        );
    }
}

#[test]
fn ar32_decode_is_stable_under_reencode() {
    // For arbitrary 32-bit words: decoding either fails, or produces an
    // instruction whose re-encoding decodes to the same instruction
    // (decode ∘ encode ∘ decode = decode). Non-canonical source words (e.g.
    // a subtracting zero displacement) may re-encode differently, but the
    // *meaning* must be preserved.
    let mut r = StdRng::seed_from_u64(0x2222);
    let mut accepted = 0usize;
    for _ in 0..ITERS * 5 {
        let word: u32 = r.gen();
        if let Ok(instr) = Instr::decode(word) {
            accepted += 1;
            let again = Instr::decode(instr.encode()).expect("re-encoded word must decode");
            assert_eq!(again, instr, "unstable decode of {word:#010x}");
        }
    }
    assert!(accepted > 0, "fuzz should hit some valid encodings");
}

// ---------------------------------------------------------------------------
// T16: halfword round trips and rejection of unsupported format space.

const T16_ALU_OPS: [T16Alu; 16] = [
    T16Alu::And,
    T16Alu::Eor,
    T16Alu::Lsl,
    T16Alu::Lsr,
    T16Alu::Asr,
    T16Alu::Adc,
    T16Alu::Sbc,
    T16Alu::Ror,
    T16Alu::Tst,
    T16Alu::Neg,
    T16Alu::Cmp,
    T16Alu::Cmn,
    T16Alu::Orr,
    T16Alu::Mul,
    T16Alu::Bic,
    T16Alu::Mvn,
];

fn arb_t16(r: &mut StdRng) -> T16Instr {
    match r.gen_range(0..12u8) {
        0 => {
            let kind = match r.gen_range(0..3u8) {
                0 => ShiftKind::Lsl,
                1 => ShiftKind::Lsr,
                _ => ShiftKind::Asr,
            };
            let n = match kind {
                ShiftKind::Lsl => r.gen_range(0..32u8),
                _ => r.gen_range(1..=32u8),
            };
            T16Instr::ShiftImm(kind, arb_low_reg(r), arb_low_reg(r), n)
        }
        1 => T16Instr::AddSub3 {
            sub: r.gen(),
            rd: arb_low_reg(r),
            rn: arb_low_reg(r),
            rhs: if r.gen() {
                AddSubRhs::Reg(arb_low_reg(r))
            } else {
                AddSubRhs::Imm3(r.gen_range(0..8u8))
            },
        },
        2 => {
            let op = match r.gen_range(0..4u8) {
                0 => Imm8Op::Mov,
                1 => Imm8Op::Cmp,
                2 => Imm8Op::Add,
                _ => Imm8Op::Sub,
            };
            T16Instr::Imm8(op, arb_low_reg(r), r.gen())
        }
        3 => T16Instr::Alu(
            T16_ALU_OPS[r.gen_range(0..16usize)],
            arb_low_reg(r),
            arb_low_reg(r),
        ),
        4 => {
            let op = match r.gen_range(0..3u8) {
                0 => HiOp::Add,
                1 => HiOp::Cmp,
                _ => HiOp::Mov,
            };
            T16Instr::HiOp(op, arb_reg(r), arb_reg(r))
        }
        5 => T16Instr::Bx(arb_reg(r)),
        6 => T16Instr::MemReg(
            MEM_OPS[r.gen_range(0..MEM_OPS.len())],
            arb_low_reg(r),
            arb_low_reg(r),
            arb_low_reg(r),
        ),
        7 => {
            let op = match r.gen_range(0..6u8) {
                0 => MemOp::Ldr,
                1 => MemOp::Str,
                2 => MemOp::Ldrb,
                3 => MemOp::Strb,
                4 => MemOp::Ldrh,
                _ => MemOp::Strh,
            };
            T16Instr::MemImm(op, arb_low_reg(r), arb_low_reg(r), r.gen_range(0..32u8))
        }
        8 => T16Instr::MemSp {
            load: r.gen(),
            rd: arb_low_reg(r),
            imm8: r.gen(),
        },
        9 => {
            // Valid condition codes only: not AL (1110) and not the SWI
            // slot (1111).
            let cond = Cond::from_bits(r.gen_range(0..14u8));
            T16Instr::BCond(cond, r.gen_range(-128..=127))
        }
        10 => {
            if r.gen() {
                T16Instr::B(r.gen_range(-1024..=1023))
            } else {
                T16Instr::Bl(r.gen_range(-(1 << 21)..1 << 21))
            }
        }
        _ => T16Instr::Swi(r.gen()),
    }
}

#[test]
fn t16_encode_decode_round_trip() {
    let mut r = StdRng::seed_from_u64(0x3333);
    for _ in 0..ITERS {
        let instr = arb_t16(&mut r);
        let mut words = Vec::new();
        instr
            .encode(&mut words)
            .unwrap_or_else(|e| panic!("generated T16 instruction must encode: {instr}: {e}"));
        assert_eq!(words.len() * 2, instr.size(), "size() matches encoding");
        let (back, used) = T16Instr::decode(&words).expect("encoded T16 must decode");
        assert_eq!(used, words.len());
        assert_eq!(back, instr);
    }
}

#[test]
fn t16_encode_rejects_unencodable_forms() {
    let mut bad = Vec::new();
    // ROR by immediate does not exist in format 1.
    assert!(T16Instr::ShiftImm(ShiftKind::Ror, Reg::R0, Reg::R1, 3)
        .encode(&mut bad)
        .is_err());
    // Signed loads have no immediate-displacement form.
    assert!(T16Instr::MemImm(MemOp::Ldrsh, Reg::R0, Reg::R1, 0)
        .encode(&mut bad)
        .is_err());
    // High register in a low-register field.
    assert!(T16Instr::Alu(T16Alu::And, Reg::R9, Reg::R1)
        .encode(&mut bad)
        .is_err());
    // AL condition belongs to the unconditional branch, not format 16.
    assert!(T16Instr::BCond(Cond::Al, 4).encode(&mut bad).is_err());
    // Branch offsets out of field range.
    assert!(T16Instr::B(2048).encode(&mut bad).is_err());
    assert!(T16Instr::BCond(Cond::Eq, 200).encode(&mut bad).is_err());
    assert!(bad.is_empty(), "failed encodes must not emit halfwords");
}

#[test]
fn t16_decode_rejects_reserved_patterns() {
    let reserved: &[(u16, &str)] = &[
        (0b0100_1000_0000_0000, "PC-relative load"),
        (0b1010_0000_0000_0000, "ADD to PC"),
        (0b1011_0000_0000_0000, "misc format space"),
        (0b1100_0000_0000_0000, "block transfer"),
        (0b1101_1110_0000_0000, "undefined conditional-branch slot"),
        (0b1110_1000_0000_0000, "Thumb-2 prefix space"),
        (0b1111_1000_0000_0000, "BL suffix without prefix"),
        (0b0100_0111_1000_0000, "malformed BX (H1 set)"),
    ];
    for &(word, what) in reserved {
        assert!(
            T16Instr::decode(&[word]).is_err(),
            "{what} ({word:#06x}) must be rejected"
        );
    }
    // A BL prefix must be followed by its suffix halfword.
    assert!(T16Instr::decode(&[0b1111_0000_0000_0001]).is_err());
    assert!(T16Instr::decode(&[0b1111_0000_0000_0001, 0]).is_err());
}

#[test]
fn t16_decode_is_stable_under_reencode() {
    let mut r = StdRng::seed_from_u64(0x4444);
    let mut accepted = 0usize;
    for _ in 0..ITERS * 5 {
        let word: u16 = r.gen();
        let stream = [word, 0b1111_1000_0000_0000 | (r.gen::<u16>() & 0x7ff)];
        if let Ok((instr, used)) = T16Instr::decode(&stream) {
            accepted += 1;
            let mut words = Vec::new();
            instr
                .encode(&mut words)
                .expect("decoded T16 instruction must re-encode");
            assert_eq!(words.len(), used, "{word:#06x}");
            assert_eq!(&words[..], &stream[..used], "{word:#06x}");
        }
    }
    assert!(accepted > 0, "fuzz should hit some valid encodings");
}
