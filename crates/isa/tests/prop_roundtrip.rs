//! Property tests: every constructible AR32 instruction must survive an
//! encode → decode round trip, and rotated immediates must be value-exact.

use fits_isa::{
    AddrOffset, Cond, DpOp, Index, Instr, MemOp, Operand2, Reg, RotImm, Shift, ShiftKind,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..16).prop_map(Cond::from_bits)
}

fn arb_shift_kind() -> impl Strategy<Value = ShiftKind> {
    (0u8..4).prop_map(ShiftKind::from_bits)
}

fn arb_shift() -> impl Strategy<Value = Shift> {
    prop_oneof![
        Just(Shift::NONE),
        (1u8..32).prop_map(|n| Shift::Imm(ShiftKind::Lsl, n.min(31))),
        (1u8..=32).prop_map(|n| Shift::Imm(ShiftKind::Lsr, n)),
        (1u8..=32).prop_map(|n| Shift::Imm(ShiftKind::Asr, n)),
        (1u8..32).prop_map(|n| Shift::Imm(ShiftKind::Ror, n)),
        (arb_shift_kind(), arb_reg()).prop_map(|(k, r)| Shift::Reg(k, r)),
    ]
}

fn arb_op2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        (any::<u8>(), 0u8..16).prop_map(|(imm8, rot)| Operand2::Imm(RotImm::from_fields(imm8, rot))),
        (arb_reg(), arb_shift()).prop_map(|(r, s)| Operand2::Reg(r, s)),
    ]
}

fn arb_dp() -> impl Strategy<Value = Instr> {
    (
        arb_cond(),
        (0u8..16).prop_map(DpOp::from_bits),
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        arb_op2(),
    )
        .prop_map(|(cond, op, s, rd, rn, op2)| Instr::Dp {
            cond,
            op,
            set_flags: s || op.is_compare(),
            rd,
            rn,
            op2,
        })
}

fn arb_mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        Just(MemOp::Ldr),
        Just(MemOp::Str),
        Just(MemOp::Ldrb),
        Just(MemOp::Strb),
        Just(MemOp::Ldrh),
        Just(MemOp::Strh),
        Just(MemOp::Ldrsb),
        Just(MemOp::Ldrsh),
    ]
}

fn arb_index() -> impl Strategy<Value = Index> {
    prop_oneof![Just(Index::PreNoWb), Just(Index::PreWb), Just(Index::Post)]
}

fn arb_mem() -> impl Strategy<Value = Instr> {
    (
        arb_cond(),
        arb_mem_op(),
        arb_reg(),
        arb_reg(),
        arb_index(),
        prop_oneof![
            (-4095i32..=4095).prop_map(AddrOffset::Imm),
            (arb_reg(), any::<bool>()).prop_map(|(rm, subtract)| AddrOffset::Reg {
                rm,
                shift: Shift::NONE,
                subtract,
            }),
            (arb_reg(), any::<bool>(), 1u8..31, arb_shift_kind()).prop_map(
                |(rm, subtract, n, k)| AddrOffset::Reg {
                    rm,
                    shift: Shift::Imm(k, n),
                    subtract,
                }
            ),
        ],
    )
        .prop_filter_map("offset must fit the op", |(cond, op, rd, rn, index, offset)| {
            // Halfword-form transfers take a narrower displacement and no shift.
            let offset = match offset {
                AddrOffset::Imm(d) if op.is_halfword_form() => AddrOffset::Imm(d.clamp(-255, 255)),
                AddrOffset::Reg { rm, subtract, .. } if op.is_halfword_form() => AddrOffset::Reg {
                    rm,
                    shift: Shift::NONE,
                    subtract,
                },
                o => o,
            };
            // Zero displacement with "subtract" re-encodes as +0; skip the
            // non-canonical source form.
            if let AddrOffset::Imm(d) = offset {
                if d < 0 && d == 0 {
                    return None;
                }
            }
            offset.is_valid_for(op).then_some(Instr::Mem {
                cond,
                op,
                rd,
                rn,
                offset,
                index,
            })
        })
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        arb_dp(),
        arb_mem(),
        (arb_cond(), arb_reg(), arb_reg(), arb_reg(), any::<bool>(), proptest::option::of(arb_reg()))
            .prop_map(|(cond, rd, rm, rs, s, acc)| Instr::Mul {
                cond,
                set_flags: s,
                rd,
                rm,
                rs,
                acc,
            }),
        (arb_cond(), any::<bool>(), -(1i32 << 23)..(1i32 << 23))
            .prop_map(|(cond, link, offset)| Instr::Branch { cond, link, offset }),
        (arb_cond(), 0u32..(1 << 24)).prop_map(|(cond, imm)| Instr::Swi { cond, imm }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(instr in arb_instr()) {
        let word = instr.encode();
        let back = Instr::decode(word).expect("generated instruction must decode");
        // Immediate displacement of -0 decodes as +0; both denote the same
        // address, so compare modulo that normalization.
        let normalize = |i: Instr| match i {
            Instr::Mem { cond, op, rd, rn, offset: AddrOffset::Imm(0), index } =>
                Instr::Mem { cond, op, rd, rn, offset: AddrOffset::Imm(0), index },
            other => other,
        };
        prop_assert_eq!(normalize(back), normalize(instr));
    }

    #[test]
    fn rot_imm_round_trip(imm8 in any::<u8>(), rot in 0u8..16) {
        let imm = RotImm::from_fields(imm8, rot);
        let canonical = RotImm::encode(imm.value()).expect("value came from an encoding");
        prop_assert_eq!(canonical.value(), imm.value());
    }

    #[test]
    fn rot_imm_encode_is_exact(v in any::<u32>()) {
        if let Some(imm) = RotImm::encode(v) {
            prop_assert_eq!(imm.value(), v);
        }
    }

    #[test]
    fn display_never_panics(instr in arb_instr()) {
        let _ = instr.to_string();
    }

    #[test]
    fn reads_writes_are_registers(instr in arb_instr()) {
        for r in instr.reads().into_iter().chain(instr.writes()) {
            prop_assert!(r.index() < 16);
        }
    }
}
