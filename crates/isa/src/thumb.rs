//! T16 — a Thumb-like 16-bit instruction set used as the code-size baseline
//! of the paper's Figure 5.
//!
//! THUMB is the "general-purpose 16-bit ISA" FITS is contrasted against: it
//! spends encoding space on general-purpose coverage, so it sees only 8
//! registers from ALU operations, is almost entirely 2-address, and has
//! small immediate and displacement fields. Those structural constraints —
//! not the halved instruction width — are why THUMB recovers only ~33% of
//! ARM code size where FITS recovers ~47%.
//!
//! [`translate`] rewrites an AR32 [`Program`] into T16 under those
//! constraints, expanding each AR32 instruction into one or more T16
//! instructions. The translation is used for *code-size accounting only*
//! (the paper never executes THUMB either; its Figure 5 compares static
//! segment sizes), so T16 carries enough operand detail to be inspectable
//! and countable, but no executor is provided.

use std::fmt;

use crate::{AddrOffset, Cond, DpOp, Instr, MemOp, Operand2, Program, Reg, Shift, ShiftKind};

/// A T16 (Thumb-like) instruction. Sizes are 2 bytes except [`T16Instr::Bl`]
/// which, as in Thumb, occupies two halfwords.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum T16Instr {
    /// 3-address shift by immediate: `lsl/lsr/asr rd, rm, #imm5`.
    ShiftImm(ShiftKind, Reg, Reg, u8),
    /// 3-address add/subtract of registers or a 3-bit immediate.
    AddSub3 {
        /// `true` for subtract.
        sub: bool,
        /// Destination (low register).
        rd: Reg,
        /// First operand (low register).
        rn: Reg,
        /// Register or tiny-immediate second operand.
        rhs: AddSubRhs,
    },
    /// `mov/cmp/add/sub rd, #imm8` (2-address immediate group).
    Imm8(Imm8Op, Reg, u8),
    /// 2-address register ALU group (`and`, `eor`, `adc`, `mul`, …).
    Alu(T16Alu, Reg, Reg),
    /// Hi-register move/add/compare (the only ALU access to `r8`–`r14`).
    HiOp(HiOp, Reg, Reg),
    /// Branch-exchange to a register (`bx lr` serves as return).
    Bx(Reg),
    /// Load/store with a scaled 5-bit immediate displacement.
    MemImm(MemOp, Reg, Reg, u8),
    /// Load/store with a register offset (includes the signed-load forms).
    MemReg(MemOp, Reg, Reg, Reg),
    /// SP-relative load/store with a scaled 8-bit displacement.
    MemSp {
        /// `true` for load.
        load: bool,
        /// Data register.
        rd: Reg,
        /// Word-scaled displacement (`0..=255`, i.e. up to 1020 bytes).
        imm8: u8,
    },
    /// Conditional branch, ±128 instructions.
    BCond(Cond, i32),
    /// Unconditional branch, ±1024 instructions.
    B(i32),
    /// Branch-and-link; a two-halfword (4-byte) instruction as in Thumb.
    Bl(i32),
    /// Software interrupt with an 8-bit number.
    Swi(u8),
}

/// The register-or-tiny-immediate operand of [`T16Instr::AddSub3`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddSubRhs {
    /// A low register.
    Reg(Reg),
    /// A 3-bit immediate.
    Imm3(u8),
}

/// Operations in the `#imm8` group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Imm8Op {
    Mov,
    Cmp,
    Add,
    Sub,
}

/// The 2-address register ALU operations T16 provides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum T16Alu {
    And,
    Eor,
    Lsl,
    Lsr,
    Asr,
    Adc,
    Sbc,
    Ror,
    Tst,
    Neg,
    Cmp,
    Cmn,
    Orr,
    Mul,
    Bic,
    Mvn,
}

/// Hi-register operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum HiOp {
    Add,
    Cmp,
    Mov,
}

impl T16Instr {
    /// Encoded size in bytes (2, or 4 for `BL`).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            T16Instr::Bl(_) => 4,
            _ => 2,
        }
    }
}

impl fmt::Display for T16Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            T16Instr::ShiftImm(k, rd, rm, n) => write!(f, "{k} {rd}, {rm}, #{n}"),
            T16Instr::AddSub3 { sub, rd, rn, rhs } => {
                let op = if *sub { "sub" } else { "add" };
                match rhs {
                    AddSubRhs::Reg(rm) => write!(f, "{op} {rd}, {rn}, {rm}"),
                    AddSubRhs::Imm3(n) => write!(f, "{op} {rd}, {rn}, #{n}"),
                }
            }
            T16Instr::Imm8(op, rd, n) => {
                let s = match op {
                    Imm8Op::Mov => "mov",
                    Imm8Op::Cmp => "cmp",
                    Imm8Op::Add => "add",
                    Imm8Op::Sub => "sub",
                };
                write!(f, "{s} {rd}, #{n}")
            }
            T16Instr::Alu(op, rd, rm) => write!(f, "{} {rd}, {rm}", alu_name(*op)),
            T16Instr::HiOp(op, rd, rm) => {
                let s = match op {
                    HiOp::Add => "add",
                    HiOp::Cmp => "cmp",
                    HiOp::Mov => "mov",
                };
                write!(f, "{s} {rd}, {rm}")
            }
            T16Instr::Bx(r) => write!(f, "bx {r}"),
            T16Instr::MemImm(op, rd, rn, n) => write!(f, "{op} {rd}, [{rn}, #{n}]"),
            T16Instr::MemReg(op, rd, rn, rm) => write!(f, "{op} {rd}, [{rn}, {rm}]"),
            T16Instr::MemSp { load, rd, imm8 } => {
                let s = if *load { "ldr" } else { "str" };
                write!(f, "{s} {rd}, [sp, #{}]", u32::from(*imm8) * 4)
            }
            T16Instr::BCond(cond, off) => write!(f, "b{cond} {off:+}"),
            T16Instr::B(off) => write!(f, "b {off:+}"),
            T16Instr::Bl(off) => write!(f, "bl {off:+}"),
            T16Instr::Swi(n) => write!(f, "swi #{n}"),
        }
    }
}

fn alu_name(op: T16Alu) -> &'static str {
    match op {
        T16Alu::And => "and",
        T16Alu::Eor => "eor",
        T16Alu::Lsl => "lsl",
        T16Alu::Lsr => "lsr",
        T16Alu::Asr => "asr",
        T16Alu::Adc => "adc",
        T16Alu::Sbc => "sbc",
        T16Alu::Ror => "ror",
        T16Alu::Tst => "tst",
        T16Alu::Neg => "neg",
        T16Alu::Cmp => "cmp",
        T16Alu::Cmn => "cmn",
        T16Alu::Orr => "orr",
        T16Alu::Mul => "mul",
        T16Alu::Bic => "bic",
        T16Alu::Mvn => "mvn",
    }
}

/// The result of an AR32→T16 translation.
#[derive(Clone, Debug, Default)]
pub struct T16Program {
    /// The emitted T16 instructions, in program order.
    pub instrs: Vec<T16Instr>,
    /// For each AR32 instruction index, the number of T16 instructions it
    /// expanded into.
    pub expansion: Vec<u32>,
}

impl T16Program {
    /// Total encoded size in bytes.
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.instrs.iter().map(T16Instr::size).sum()
    }

    /// Fraction of AR32 instructions that mapped 1-to-1.
    #[must_use]
    pub fn one_to_one_rate(&self) -> f64 {
        if self.expansion.is_empty() {
            return 1.0;
        }
        let ones = self.expansion.iter().filter(|&&n| n == 1).count();
        ones as f64 / self.expansion.len() as f64
    }
}

const TMP: Reg = Reg::R7; // conventionally sacrificed work register

fn is_low(r: Reg) -> bool {
    r.index() < 8
}

/// Cost (and instructions) to bring a high register into a low one.
fn demote(r: Reg, out: &mut Vec<T16Instr>) -> Reg {
    if is_low(r) {
        r
    } else {
        out.push(T16Instr::HiOp(HiOp::Mov, TMP, r));
        TMP
    }
}

/// Materializes a 32-bit constant into `rd` using MOV/shift/ADD sequences,
/// the standard Thumb idiom in the absence of literal pools.
fn materialize(rd: Reg, value: u32, out: &mut Vec<T16Instr>) {
    if value <= 0xff {
        out.push(T16Instr::Imm8(Imm8Op::Mov, rd, value as u8));
        return;
    }
    let neg = value.wrapping_neg();
    if neg <= 0xff {
        out.push(T16Instr::Imm8(Imm8Op::Mov, rd, neg as u8));
        out.push(T16Instr::Alu(T16Alu::Neg, rd, rd));
        return;
    }
    // Shifted byte: v == b << s.
    let tz = value.trailing_zeros();
    if value >> tz <= 0xff {
        out.push(T16Instr::Imm8(Imm8Op::Mov, rd, (value >> tz) as u8));
        out.push(T16Instr::ShiftImm(ShiftKind::Lsl, rd, rd, tz as u8));
        return;
    }
    // General case: build byte-by-byte (mov, lsl #8, add) — up to 7 instrs.
    let bytes = value.to_be_bytes();
    let mut started = false;
    for (i, b) in bytes.iter().enumerate() {
        if !started {
            if *b == 0 {
                continue;
            }
            out.push(T16Instr::Imm8(Imm8Op::Mov, rd, *b));
            started = true;
        } else {
            out.push(T16Instr::ShiftImm(ShiftKind::Lsl, rd, rd, 8));
            if *b != 0 {
                out.push(T16Instr::Imm8(Imm8Op::Add, rd, *b));
            }
        }
        let _ = i;
    }
    if !started {
        out.push(T16Instr::Imm8(Imm8Op::Mov, rd, 0));
    }
}

fn dp_to_alu(op: DpOp) -> Option<T16Alu> {
    match op {
        DpOp::And => Some(T16Alu::And),
        DpOp::Eor => Some(T16Alu::Eor),
        DpOp::Adc => Some(T16Alu::Adc),
        DpOp::Sbc => Some(T16Alu::Sbc),
        DpOp::Tst => Some(T16Alu::Tst),
        DpOp::Cmp => Some(T16Alu::Cmp),
        DpOp::Cmn => Some(T16Alu::Cmn),
        DpOp::Orr => Some(T16Alu::Orr),
        DpOp::Bic => Some(T16Alu::Bic),
        DpOp::Mvn => Some(T16Alu::Mvn),
        _ => None,
    }
}

/// Lowers the flexible operand into a low register, returning it.
fn lower_op2(op2: &Operand2, out: &mut Vec<T16Instr>) -> Reg {
    match op2 {
        Operand2::Imm(imm) => {
            materialize(TMP, imm.value(), out);
            TMP
        }
        Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) => demote(*rm, out),
        Operand2::Reg(rm, Shift::Imm(kind, n)) => {
            let low = demote(*rm, out);
            out.push(T16Instr::ShiftImm(*kind, TMP, low, (*n).min(31)));
            TMP
        }
        Operand2::Reg(rm, Shift::Reg(kind, rs)) => {
            let low = demote(*rm, out);
            if low != TMP {
                out.push(T16Instr::HiOp(HiOp::Mov, TMP, low));
            }
            let alu = match kind {
                ShiftKind::Lsl => T16Alu::Lsl,
                ShiftKind::Lsr => T16Alu::Lsr,
                ShiftKind::Asr => T16Alu::Asr,
                ShiftKind::Ror => T16Alu::Ror,
            };
            let rs_low = demote(*rs, out);
            out.push(T16Instr::Alu(alu, TMP, rs_low));
            TMP
        }
    }
}

fn translate_one(instr: &Instr, out: &mut Vec<T16Instr>) {
    // Predication: T16 (like Thumb) has no conditional execution except
    // branches; a predicated instruction becomes a branch-around.
    let cond = instr.cond();
    let body_start = out.len();
    let needs_guard = cond != Cond::Al && !matches!(instr, Instr::Branch { .. });
    if needs_guard {
        // Placeholder; patched below once the body length is known.
        out.push(T16Instr::BCond(cond.inverse(), 0));
    }

    match instr {
        Instr::Dp {
            op, rd, rn, op2, ..
        } => match op {
            DpOp::Mov => match op2 {
                Operand2::Imm(imm) if is_low(*rd) => materialize(*rd, imm.value(), out),
                Operand2::Imm(imm) => {
                    materialize(TMP, imm.value(), out);
                    out.push(T16Instr::HiOp(HiOp::Mov, *rd, TMP));
                }
                Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) => {
                    out.push(T16Instr::HiOp(HiOp::Mov, *rd, *rm));
                }
                Operand2::Reg(rm, Shift::Imm(kind, n)) if is_low(*rd) && is_low(*rm) => {
                    out.push(T16Instr::ShiftImm(*kind, *rd, *rm, (*n).min(31)));
                }
                _ => {
                    let val = lower_op2(op2, out);
                    out.push(T16Instr::HiOp(HiOp::Mov, *rd, val));
                }
            },
            DpOp::Add | DpOp::Sub => {
                let sub = *op == DpOp::Sub;
                match op2 {
                    Operand2::Imm(imm)
                        if imm.value() <= 7 && is_low(*rd) && is_low(*rn) =>
                    {
                        out.push(T16Instr::AddSub3 {
                            sub,
                            rd: *rd,
                            rn: *rn,
                            rhs: AddSubRhs::Imm3(imm.value() as u8),
                        });
                    }
                    Operand2::Imm(imm) if imm.value() <= 0xff && rd == rn && is_low(*rd) => {
                        let op8 = if sub { Imm8Op::Sub } else { Imm8Op::Add };
                        out.push(T16Instr::Imm8(op8, *rd, imm.value() as u8));
                    }
                    Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0))
                        if is_low(*rd) && is_low(*rn) && is_low(*rm) =>
                    {
                        out.push(T16Instr::AddSub3 {
                            sub,
                            rd: *rd,
                            rn: *rn,
                            rhs: AddSubRhs::Reg(*rm),
                        });
                    }
                    _ => {
                        let val = lower_op2(op2, out);
                        if sub {
                            let rn_low = demote(*rn, out);
                            out.push(T16Instr::AddSub3 {
                                sub: true,
                                rd: if is_low(*rd) { *rd } else { TMP },
                                rn: rn_low,
                                rhs: AddSubRhs::Reg(val),
                            });
                        } else {
                            // Hi-reg ADD tolerates any registers.
                            if rd != rn {
                                out.push(T16Instr::HiOp(HiOp::Mov, *rd, *rn));
                            }
                            out.push(T16Instr::HiOp(HiOp::Add, *rd, val));
                        }
                        if sub && !is_low(*rd) {
                            out.push(T16Instr::HiOp(HiOp::Mov, *rd, TMP));
                        }
                    }
                }
            }
            DpOp::Cmp => match op2 {
                Operand2::Imm(imm) if imm.value() <= 0xff && is_low(*rn) => {
                    out.push(T16Instr::Imm8(Imm8Op::Cmp, *rn, imm.value() as u8));
                }
                Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) => {
                    out.push(T16Instr::HiOp(HiOp::Cmp, *rn, *rm));
                }
                _ => {
                    let val = lower_op2(op2, out);
                    out.push(T16Instr::HiOp(HiOp::Cmp, *rn, val));
                }
            },
            DpOp::Rsb => {
                // Thumb NEG covers `rsb rd, rn, #0`; everything else expands.
                if matches!(op2, Operand2::Imm(i) if i.value() == 0)
                    && is_low(*rd)
                    && is_low(*rn)
                {
                    if rd != rn {
                        out.push(T16Instr::HiOp(HiOp::Mov, *rd, *rn));
                    }
                    out.push(T16Instr::Alu(T16Alu::Neg, *rd, *rd));
                } else {
                    let val = lower_op2(op2, out);
                    let rn_low = demote(*rn, out);
                    out.push(T16Instr::AddSub3 {
                        sub: true,
                        rd: if is_low(*rd) { *rd } else { TMP },
                        rn: val,
                        rhs: AddSubRhs::Reg(rn_low),
                    });
                    if !is_low(*rd) {
                        out.push(T16Instr::HiOp(HiOp::Mov, *rd, TMP));
                    }
                }
            }
            _ => {
                // 2-address ALU group: and/eor/orr/bic/mvn/adc/sbc/tst/teq/
                // cmn and the shift-by-register forms.
                let alu = dp_to_alu(*op).unwrap_or(T16Alu::Eor); // TEQ ~ EOR+flags
                let val = lower_op2(op2, out);
                if op.is_compare() {
                    let rn_low = demote(*rn, out);
                    out.push(T16Instr::Alu(alu, rn_low, val));
                } else {
                    let rd_low = if is_low(*rd) { *rd } else { TMP };
                    if !op.ignores_rn() && rd != rn {
                        out.push(T16Instr::HiOp(HiOp::Mov, rd_low, *rn));
                    }
                    out.push(T16Instr::Alu(alu, rd_low, val));
                    if !is_low(*rd) {
                        out.push(T16Instr::HiOp(HiOp::Mov, *rd, rd_low));
                    }
                }
            }
        },
        Instr::Mul { rd, rm, rs, acc, .. } => {
            let rd_low = if is_low(*rd) { *rd } else { TMP };
            if rd_low != *rm {
                out.push(T16Instr::HiOp(HiOp::Mov, rd_low, *rm));
            }
            out.push(T16Instr::Alu(T16Alu::Mul, rd_low, *rs));
            if let Some(rn) = acc {
                out.push(T16Instr::HiOp(HiOp::Add, rd_low, *rn));
            }
            if !is_low(*rd) {
                out.push(T16Instr::HiOp(HiOp::Mov, *rd, rd_low));
            }
        }
        Instr::Mem {
            op,
            rd,
            rn,
            offset,
            index,
            ..
        } => {
            let rd_low = demote(*rd, out);
            // Writeback modes don't exist in T16: address arithmetic is
            // explicit.
            if index.writes_base() {
                let val = lower_op2(
                    &match offset {
                        AddrOffset::Imm(d) => {
                            Operand2::imm(d.unsigned_abs()).unwrap_or(Operand2::reg(TMP))
                        }
                        AddrOffset::Reg { rm, .. } => Operand2::reg(*rm),
                    },
                    out,
                );
                out.push(T16Instr::HiOp(HiOp::Add, *rn, val));
                let base = demote(*rn, out);
                out.push(T16Instr::MemImm(*op, rd_low, base, 0));
                return_patch(needs_guard, body_start, out);
                return;
            }
            match offset {
                AddrOffset::Imm(d) => {
                    let scale = op.size() as i32;
                    let scaled = d / scale;
                    let in_range = *d >= 0
                        && d % scale == 0
                        && scaled <= 31
                        && !matches!(op, MemOp::Ldrsb | MemOp::Ldrsh);
                    if *rn == Reg::SP && matches!(op, MemOp::Ldr | MemOp::Str) {
                        let w = d / 4;
                        if *d >= 0 && d % 4 == 0 && w <= 255 {
                            out.push(T16Instr::MemSp {
                                load: op.is_load(),
                                rd: rd_low,
                                imm8: w as u8,
                            });
                        } else {
                            materialize(TMP, *d as u32, out);
                            out.push(T16Instr::HiOp(HiOp::Add, TMP, Reg::SP));
                            out.push(T16Instr::MemImm(*op, rd_low, TMP, 0));
                        }
                    } else if in_range && is_low(*rn) {
                        out.push(T16Instr::MemImm(*op, rd_low, *rn, scaled as u8));
                    } else {
                        // Signed loads and out-of-range displacements take
                        // the register-offset form.
                        materialize(TMP, *d as u32, out);
                        let base = demote(*rn, out);
                        out.push(T16Instr::MemReg(*op, rd_low, base, TMP));
                    }
                }
                AddrOffset::Reg { rm, shift, subtract } => {
                    let mut idx = demote(*rm, out);
                    if *shift != Shift::NONE || *subtract {
                        let val = lower_op2(&Operand2::Reg(*rm, *shift), out);
                        if *subtract {
                            out.push(T16Instr::Alu(T16Alu::Neg, val, val));
                        }
                        idx = val;
                    }
                    let base = demote(*rn, out);
                    out.push(T16Instr::MemReg(*op, rd_low, base, idx));
                }
            }
            if !is_low(*rd) && op.is_load() {
                out.push(T16Instr::HiOp(HiOp::Mov, *rd, rd_low));
            }
        }
        Instr::Branch { cond, link, offset } => {
            if *link {
                out.push(T16Instr::Bl(*offset));
            } else if *cond == Cond::Al {
                out.push(T16Instr::B(*offset));
            } else {
                out.push(T16Instr::BCond(*cond, *offset));
            }
        }
        Instr::Swi { imm, .. } => out.push(T16Instr::Swi((*imm & 0xff) as u8)),
    }

    return_patch(needs_guard, body_start, out);
}

fn return_patch(needs_guard: bool, body_start: usize, out: &mut Vec<T16Instr>) {
    if needs_guard {
        let body_len = (out.len() - body_start - 1) as i32;
        if let T16Instr::BCond(_, off) = &mut out[body_start] {
            *off = body_len;
        }
    }
}

/// Translates an AR32 program into T16, applying Thumb's structural
/// constraints, then relaxes branches whose targets fall outside the short
/// ranges (±128 instructions conditional, ±1024 unconditional) into longer
/// sequences, iterating to a fixpoint as a real assembler would.
#[must_use]
pub fn translate(program: &Program) -> T16Program {
    let mut expansion: Vec<u32> = Vec::with_capacity(program.text.len());
    let mut instrs = Vec::with_capacity(program.text.len() * 2);
    for instr in &program.text {
        let start = instrs.len();
        translate_one(instr, &mut instrs);
        expansion.push((instrs.len() - start) as u32);
    }

    // Branch relaxation on instruction counts. Positions move as branches
    // grow, so iterate to a fixpoint (growth is monotone; terminates).
    let mut extra: Vec<u32> = vec![0; program.text.len()];
    loop {
        let mut changed = false;
        // Prefix positions in halfwords (BL counts as 2).
        let mut pos = vec![0u32; program.text.len() + 1];
        for i in 0..program.text.len() {
            pos[i + 1] = pos[i] + expansion[i] + extra[i];
        }
        for (i, instr) in program.text.iter().enumerate() {
            if let Instr::Branch { cond, link, .. } = instr {
                if *link {
                    continue; // BL already has long range
                }
                let Some(target) = program.branch_target(i) else {
                    continue;
                };
                let dist = i64::from(pos[target]) - i64::from(pos[i + 1]);
                let limit: i64 = if *cond == Cond::Al { 1024 } else { 128 };
                // Either relaxation form costs one extra halfword: a
                // conditional branch grows to invert + long b, an
                // unconditional one to the BL-style long form.
                let out_of_range = (dist.abs() >= limit && *cond != Cond::Al)
                    || dist.abs() >= 1024;
                let needed = u32::from(out_of_range);
                if extra[i] < needed {
                    extra[i] = needed;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (i, e) in extra.iter().enumerate() {
        expansion[i] += e;
        for _ in 0..*e {
            instrs.push(T16Instr::B(0)); // placeholder long-form halfword
        }
    }

    T16Program { instrs, expansion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instr, Operand2};

    fn prog(text: Vec<Instr>) -> Program {
        Program {
            text,
            ..Program::default()
        }
    }

    #[test]
    fn simple_ops_map_one_to_one() {
        let p = prog(vec![
            Instr::mov(Reg::R0, Operand2::imm(5).unwrap()),
            Instr::dp(DpOp::Add, Reg::R0, Reg::R0, Operand2::imm(1).unwrap()),
            Instr::dp(DpOp::Add, Reg::R2, Reg::R0, Operand2::reg(Reg::R1)),
            Instr::cmp(Reg::R0, Operand2::imm(10).unwrap()),
            Instr::b(-3),
        ]);
        let t = translate(&p);
        assert_eq!(t.expansion, vec![1, 1, 1, 1, 1]);
        assert_eq!(t.code_bytes(), 10);
        assert!((t.one_to_one_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_address_logical_expands() {
        // and r2, r0, r1 has no 3-address T16 form.
        let p = prog(vec![Instr::dp(
            DpOp::And,
            Reg::R2,
            Reg::R0,
            Operand2::reg(Reg::R1),
        )]);
        let t = translate(&p);
        assert_eq!(t.expansion, vec![2]);
    }

    #[test]
    fn big_immediate_expands() {
        let p = prog(vec![Instr::mov(
            Reg::R0,
            Operand2::imm(0x0001_0000).unwrap(),
        )]);
        let t = translate(&p);
        assert!(t.expansion[0] >= 2, "0x10000 needs mov+lsl: {:?}", t.instrs);
    }

    #[test]
    fn predication_costs_a_branch() {
        let p = prog(vec![Instr::dp(
            DpOp::Add,
            Reg::R0,
            Reg::R0,
            Operand2::imm(1).unwrap(),
        )
        .with_cond(Cond::Eq)]);
        let t = translate(&p);
        assert_eq!(t.expansion, vec![2]);
        assert!(matches!(t.instrs[0], T16Instr::BCond(Cond::Ne, 1)));
    }

    #[test]
    fn high_registers_cost_moves() {
        let p = prog(vec![Instr::dp(
            DpOp::Eor,
            Reg::R9,
            Reg::R9,
            Operand2::reg(Reg::R10),
        )]);
        let t = translate(&p);
        assert!(t.expansion[0] >= 3, "{:?}", t.instrs);
    }

    #[test]
    fn signed_load_uses_register_form() {
        let p = prog(vec![Instr::mem(MemOp::Ldrsh, Reg::R0, Reg::R1, 6)]);
        let t = translate(&p);
        assert!(t
            .instrs
            .iter()
            .any(|i| matches!(i, T16Instr::MemReg(MemOp::Ldrsh, ..))));
    }

    #[test]
    fn sp_relative_load_is_single() {
        let p = prog(vec![Instr::mem(MemOp::Ldr, Reg::R0, Reg::SP, 16)]);
        let t = translate(&p);
        assert_eq!(t.expansion, vec![1]);
        assert!(matches!(t.instrs[0], T16Instr::MemSp { load: true, imm8: 4, .. }));
    }

    #[test]
    fn far_conditional_branch_relaxes() {
        // A conditional branch over ~300 instructions must grow.
        let mut text = vec![Instr::Branch {
            cond: Cond::Eq,
            link: false,
            offset: 300,
        }];
        for _ in 0..302 {
            text.push(Instr::dp(DpOp::Add, Reg::R0, Reg::R0, Operand2::imm(1).unwrap()));
        }
        let t = translate(&prog(text));
        assert_eq!(t.expansion[0], 2);
    }

    #[test]
    fn bl_is_four_bytes() {
        let p = prog(vec![Instr::Branch {
            cond: Cond::Al,
            link: true,
            offset: 0,
        }]);
        let t = translate(&p);
        assert_eq!(t.code_bytes(), 4);
        assert_eq!(t.expansion, vec![1]);
    }
}
