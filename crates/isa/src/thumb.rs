//! T16 — a Thumb-like 16-bit instruction set used as the code-size baseline
//! of the paper's Figure 5.
//!
//! THUMB is the "general-purpose 16-bit ISA" FITS is contrasted against: it
//! spends encoding space on general-purpose coverage, so it sees only 8
//! registers from ALU operations, is almost entirely 2-address, and has
//! small immediate and displacement fields. Those structural constraints —
//! not the halved instruction width — are why THUMB recovers only ~33% of
//! ARM code size where FITS recovers ~47%.
//!
//! [`translate`] rewrites an AR32 [`Program`] into T16 under those
//! constraints, expanding each AR32 instruction into one or more T16
//! instructions. The translation is used for *code-size accounting only*
//! (the paper never executes THUMB either; its Figure 5 compares static
//! segment sizes), so T16 carries enough operand detail to be inspectable
//! and countable, but no executor is provided.

use std::fmt;

use crate::{AddrOffset, Cond, DpOp, Instr, MemOp, Operand2, Program, Reg, Shift, ShiftKind};

/// A T16 (Thumb-like) instruction. Sizes are 2 bytes except [`T16Instr::Bl`]
/// which, as in Thumb, occupies two halfwords.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum T16Instr {
    /// 3-address shift by immediate: `lsl/lsr/asr rd, rm, #imm5`.
    ShiftImm(ShiftKind, Reg, Reg, u8),
    /// 3-address add/subtract of registers or a 3-bit immediate.
    AddSub3 {
        /// `true` for subtract.
        sub: bool,
        /// Destination (low register).
        rd: Reg,
        /// First operand (low register).
        rn: Reg,
        /// Register or tiny-immediate second operand.
        rhs: AddSubRhs,
    },
    /// `mov/cmp/add/sub rd, #imm8` (2-address immediate group).
    Imm8(Imm8Op, Reg, u8),
    /// 2-address register ALU group (`and`, `eor`, `adc`, `mul`, …).
    Alu(T16Alu, Reg, Reg),
    /// Hi-register move/add/compare (the only ALU access to `r8`–`r14`).
    HiOp(HiOp, Reg, Reg),
    /// Branch-exchange to a register (`bx lr` serves as return).
    Bx(Reg),
    /// Load/store with a scaled 5-bit immediate displacement.
    MemImm(MemOp, Reg, Reg, u8),
    /// Load/store with a register offset (includes the signed-load forms).
    MemReg(MemOp, Reg, Reg, Reg),
    /// SP-relative load/store with a scaled 8-bit displacement.
    MemSp {
        /// `true` for load.
        load: bool,
        /// Data register.
        rd: Reg,
        /// Word-scaled displacement (`0..=255`, i.e. up to 1020 bytes).
        imm8: u8,
    },
    /// Conditional branch, ±128 instructions.
    BCond(Cond, i32),
    /// Unconditional branch, ±1024 instructions.
    B(i32),
    /// Branch-and-link; a two-halfword (4-byte) instruction as in Thumb.
    Bl(i32),
    /// Software interrupt with an 8-bit number.
    Swi(u8),
}

/// The register-or-tiny-immediate operand of [`T16Instr::AddSub3`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddSubRhs {
    /// A low register.
    Reg(Reg),
    /// A 3-bit immediate.
    Imm3(u8),
}

/// Operations in the `#imm8` group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Imm8Op {
    Mov,
    Cmp,
    Add,
    Sub,
}

/// The 2-address register ALU operations T16 provides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum T16Alu {
    And,
    Eor,
    Lsl,
    Lsr,
    Asr,
    Adc,
    Sbc,
    Ror,
    Tst,
    Neg,
    Cmp,
    Cmn,
    Orr,
    Mul,
    Bic,
    Mvn,
}

/// Hi-register operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum HiOp {
    Add,
    Cmp,
    Mov,
}

impl T16Instr {
    /// Encoded size in bytes (2, or 4 for `BL`).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            T16Instr::Bl(_) => 4,
            _ => 2,
        }
    }
}

impl fmt::Display for T16Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            T16Instr::ShiftImm(k, rd, rm, n) => write!(f, "{k} {rd}, {rm}, #{n}"),
            T16Instr::AddSub3 { sub, rd, rn, rhs } => {
                let op = if *sub { "sub" } else { "add" };
                match rhs {
                    AddSubRhs::Reg(rm) => write!(f, "{op} {rd}, {rn}, {rm}"),
                    AddSubRhs::Imm3(n) => write!(f, "{op} {rd}, {rn}, #{n}"),
                }
            }
            T16Instr::Imm8(op, rd, n) => {
                let s = match op {
                    Imm8Op::Mov => "mov",
                    Imm8Op::Cmp => "cmp",
                    Imm8Op::Add => "add",
                    Imm8Op::Sub => "sub",
                };
                write!(f, "{s} {rd}, #{n}")
            }
            T16Instr::Alu(op, rd, rm) => write!(f, "{} {rd}, {rm}", alu_name(*op)),
            T16Instr::HiOp(op, rd, rm) => {
                let s = match op {
                    HiOp::Add => "add",
                    HiOp::Cmp => "cmp",
                    HiOp::Mov => "mov",
                };
                write!(f, "{s} {rd}, {rm}")
            }
            T16Instr::Bx(r) => write!(f, "bx {r}"),
            T16Instr::MemImm(op, rd, rn, n) => write!(f, "{op} {rd}, [{rn}, #{n}]"),
            T16Instr::MemReg(op, rd, rn, rm) => write!(f, "{op} {rd}, [{rn}, {rm}]"),
            T16Instr::MemSp { load, rd, imm8 } => {
                let s = if *load { "ldr" } else { "str" };
                write!(f, "{s} {rd}, [sp, #{}]", u32::from(*imm8) * 4)
            }
            T16Instr::BCond(cond, off) => write!(f, "b{cond} {off:+}"),
            T16Instr::B(off) => write!(f, "b {off:+}"),
            T16Instr::Bl(off) => write!(f, "bl {off:+}"),
            T16Instr::Swi(n) => write!(f, "swi #{n}"),
        }
    }
}

fn alu_name(op: T16Alu) -> &'static str {
    match op {
        T16Alu::And => "and",
        T16Alu::Eor => "eor",
        T16Alu::Lsl => "lsl",
        T16Alu::Lsr => "lsr",
        T16Alu::Asr => "asr",
        T16Alu::Adc => "adc",
        T16Alu::Sbc => "sbc",
        T16Alu::Ror => "ror",
        T16Alu::Tst => "tst",
        T16Alu::Neg => "neg",
        T16Alu::Cmp => "cmp",
        T16Alu::Cmn => "cmn",
        T16Alu::Orr => "orr",
        T16Alu::Mul => "mul",
        T16Alu::Bic => "bic",
        T16Alu::Mvn => "mvn",
    }
}

/// The result of an AR32→T16 translation.
#[derive(Clone, Debug, Default)]
pub struct T16Program {
    /// The emitted T16 instructions, in program order.
    pub instrs: Vec<T16Instr>,
    /// For each AR32 instruction index, the number of T16 instructions it
    /// expanded into.
    pub expansion: Vec<u32>,
}

impl T16Program {
    /// Total encoded size in bytes.
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.instrs.iter().map(T16Instr::size).sum()
    }

    /// Fraction of AR32 instructions that mapped 1-to-1.
    #[must_use]
    pub fn one_to_one_rate(&self) -> f64 {
        if self.expansion.is_empty() {
            return 1.0;
        }
        let ones = self.expansion.iter().filter(|&&n| n == 1).count();
        ones as f64 / self.expansion.len() as f64
    }
}

const TMP: Reg = Reg::R7; // conventionally sacrificed work register

fn is_low(r: Reg) -> bool {
    r.index() < 8
}

/// Cost (and instructions) to bring a high register into a low one.
fn demote(r: Reg, out: &mut Vec<T16Instr>) -> Reg {
    if is_low(r) {
        r
    } else {
        out.push(T16Instr::HiOp(HiOp::Mov, TMP, r));
        TMP
    }
}

/// Materializes a 32-bit constant into `rd` using MOV/shift/ADD sequences,
/// the standard Thumb idiom in the absence of literal pools.
fn materialize(rd: Reg, value: u32, out: &mut Vec<T16Instr>) {
    if value <= 0xff {
        out.push(T16Instr::Imm8(Imm8Op::Mov, rd, value as u8));
        return;
    }
    let neg = value.wrapping_neg();
    if neg <= 0xff {
        out.push(T16Instr::Imm8(Imm8Op::Mov, rd, neg as u8));
        out.push(T16Instr::Alu(T16Alu::Neg, rd, rd));
        return;
    }
    // Shifted byte: v == b << s.
    let tz = value.trailing_zeros();
    if value >> tz <= 0xff {
        out.push(T16Instr::Imm8(Imm8Op::Mov, rd, (value >> tz) as u8));
        out.push(T16Instr::ShiftImm(ShiftKind::Lsl, rd, rd, tz as u8));
        return;
    }
    // General case: build byte-by-byte (mov, lsl #8, add) — up to 7 instrs.
    let bytes = value.to_be_bytes();
    let mut started = false;
    for (i, b) in bytes.iter().enumerate() {
        if !started {
            if *b == 0 {
                continue;
            }
            out.push(T16Instr::Imm8(Imm8Op::Mov, rd, *b));
            started = true;
        } else {
            out.push(T16Instr::ShiftImm(ShiftKind::Lsl, rd, rd, 8));
            if *b != 0 {
                out.push(T16Instr::Imm8(Imm8Op::Add, rd, *b));
            }
        }
        let _ = i;
    }
    if !started {
        out.push(T16Instr::Imm8(Imm8Op::Mov, rd, 0));
    }
}

fn dp_to_alu(op: DpOp) -> Option<T16Alu> {
    match op {
        DpOp::And => Some(T16Alu::And),
        DpOp::Eor => Some(T16Alu::Eor),
        DpOp::Adc => Some(T16Alu::Adc),
        DpOp::Sbc => Some(T16Alu::Sbc),
        DpOp::Tst => Some(T16Alu::Tst),
        DpOp::Cmp => Some(T16Alu::Cmp),
        DpOp::Cmn => Some(T16Alu::Cmn),
        DpOp::Orr => Some(T16Alu::Orr),
        DpOp::Bic => Some(T16Alu::Bic),
        DpOp::Mvn => Some(T16Alu::Mvn),
        _ => None,
    }
}

/// Lowers the flexible operand into a low register, returning it.
fn lower_op2(op2: &Operand2, out: &mut Vec<T16Instr>) -> Reg {
    match op2 {
        Operand2::Imm(imm) => {
            materialize(TMP, imm.value(), out);
            TMP
        }
        Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) => demote(*rm, out),
        Operand2::Reg(rm, Shift::Imm(kind, n)) => {
            let low = demote(*rm, out);
            out.push(T16Instr::ShiftImm(*kind, TMP, low, (*n).min(31)));
            TMP
        }
        Operand2::Reg(rm, Shift::Reg(kind, rs)) => {
            let low = demote(*rm, out);
            if low != TMP {
                out.push(T16Instr::HiOp(HiOp::Mov, TMP, low));
            }
            let alu = match kind {
                ShiftKind::Lsl => T16Alu::Lsl,
                ShiftKind::Lsr => T16Alu::Lsr,
                ShiftKind::Asr => T16Alu::Asr,
                ShiftKind::Ror => T16Alu::Ror,
            };
            let rs_low = demote(*rs, out);
            out.push(T16Instr::Alu(alu, TMP, rs_low));
            TMP
        }
    }
}

fn translate_one(instr: &Instr, out: &mut Vec<T16Instr>) {
    // Predication: T16 (like Thumb) has no conditional execution except
    // branches; a predicated instruction becomes a branch-around.
    let cond = instr.cond();
    let body_start = out.len();
    let needs_guard = cond != Cond::Al && !matches!(instr, Instr::Branch { .. });
    if needs_guard {
        // Placeholder; patched below once the body length is known.
        out.push(T16Instr::BCond(cond.inverse(), 0));
    }

    match instr {
        Instr::Dp {
            op, rd, rn, op2, ..
        } => match op {
            DpOp::Mov => match op2 {
                Operand2::Imm(imm) if is_low(*rd) => materialize(*rd, imm.value(), out),
                Operand2::Imm(imm) => {
                    materialize(TMP, imm.value(), out);
                    out.push(T16Instr::HiOp(HiOp::Mov, *rd, TMP));
                }
                Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) => {
                    out.push(T16Instr::HiOp(HiOp::Mov, *rd, *rm));
                }
                Operand2::Reg(rm, Shift::Imm(kind, n)) if is_low(*rd) && is_low(*rm) => {
                    out.push(T16Instr::ShiftImm(*kind, *rd, *rm, (*n).min(31)));
                }
                _ => {
                    let val = lower_op2(op2, out);
                    out.push(T16Instr::HiOp(HiOp::Mov, *rd, val));
                }
            },
            DpOp::Add | DpOp::Sub => {
                let sub = *op == DpOp::Sub;
                match op2 {
                    Operand2::Imm(imm) if imm.value() <= 7 && is_low(*rd) && is_low(*rn) => {
                        out.push(T16Instr::AddSub3 {
                            sub,
                            rd: *rd,
                            rn: *rn,
                            rhs: AddSubRhs::Imm3(imm.value() as u8),
                        });
                    }
                    Operand2::Imm(imm) if imm.value() <= 0xff && rd == rn && is_low(*rd) => {
                        let op8 = if sub { Imm8Op::Sub } else { Imm8Op::Add };
                        out.push(T16Instr::Imm8(op8, *rd, imm.value() as u8));
                    }
                    Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0))
                        if is_low(*rd) && is_low(*rn) && is_low(*rm) =>
                    {
                        out.push(T16Instr::AddSub3 {
                            sub,
                            rd: *rd,
                            rn: *rn,
                            rhs: AddSubRhs::Reg(*rm),
                        });
                    }
                    _ => {
                        let val = lower_op2(op2, out);
                        if sub {
                            let rn_low = demote(*rn, out);
                            out.push(T16Instr::AddSub3 {
                                sub: true,
                                rd: if is_low(*rd) { *rd } else { TMP },
                                rn: rn_low,
                                rhs: AddSubRhs::Reg(val),
                            });
                        } else {
                            // Hi-reg ADD tolerates any registers.
                            if rd != rn {
                                out.push(T16Instr::HiOp(HiOp::Mov, *rd, *rn));
                            }
                            out.push(T16Instr::HiOp(HiOp::Add, *rd, val));
                        }
                        if sub && !is_low(*rd) {
                            out.push(T16Instr::HiOp(HiOp::Mov, *rd, TMP));
                        }
                    }
                }
            }
            DpOp::Cmp => match op2 {
                Operand2::Imm(imm) if imm.value() <= 0xff && is_low(*rn) => {
                    out.push(T16Instr::Imm8(Imm8Op::Cmp, *rn, imm.value() as u8));
                }
                Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) => {
                    out.push(T16Instr::HiOp(HiOp::Cmp, *rn, *rm));
                }
                _ => {
                    let val = lower_op2(op2, out);
                    out.push(T16Instr::HiOp(HiOp::Cmp, *rn, val));
                }
            },
            DpOp::Rsb => {
                // Thumb NEG covers `rsb rd, rn, #0`; everything else expands.
                if matches!(op2, Operand2::Imm(i) if i.value() == 0) && is_low(*rd) && is_low(*rn) {
                    if rd != rn {
                        out.push(T16Instr::HiOp(HiOp::Mov, *rd, *rn));
                    }
                    out.push(T16Instr::Alu(T16Alu::Neg, *rd, *rd));
                } else {
                    let val = lower_op2(op2, out);
                    let rn_low = demote(*rn, out);
                    out.push(T16Instr::AddSub3 {
                        sub: true,
                        rd: if is_low(*rd) { *rd } else { TMP },
                        rn: val,
                        rhs: AddSubRhs::Reg(rn_low),
                    });
                    if !is_low(*rd) {
                        out.push(T16Instr::HiOp(HiOp::Mov, *rd, TMP));
                    }
                }
            }
            _ => {
                // 2-address ALU group: and/eor/orr/bic/mvn/adc/sbc/tst/teq/
                // cmn and the shift-by-register forms.
                let alu = dp_to_alu(*op).unwrap_or(T16Alu::Eor); // TEQ ~ EOR+flags
                let val = lower_op2(op2, out);
                if op.is_compare() {
                    let rn_low = demote(*rn, out);
                    out.push(T16Instr::Alu(alu, rn_low, val));
                } else {
                    let rd_low = if is_low(*rd) { *rd } else { TMP };
                    if !op.ignores_rn() && rd != rn {
                        out.push(T16Instr::HiOp(HiOp::Mov, rd_low, *rn));
                    }
                    out.push(T16Instr::Alu(alu, rd_low, val));
                    if !is_low(*rd) {
                        out.push(T16Instr::HiOp(HiOp::Mov, *rd, rd_low));
                    }
                }
            }
        },
        Instr::Mul {
            rd, rm, rs, acc, ..
        } => {
            let rd_low = if is_low(*rd) { *rd } else { TMP };
            if rd_low != *rm {
                out.push(T16Instr::HiOp(HiOp::Mov, rd_low, *rm));
            }
            out.push(T16Instr::Alu(T16Alu::Mul, rd_low, *rs));
            if let Some(rn) = acc {
                out.push(T16Instr::HiOp(HiOp::Add, rd_low, *rn));
            }
            if !is_low(*rd) {
                out.push(T16Instr::HiOp(HiOp::Mov, *rd, rd_low));
            }
        }
        Instr::Mem {
            op,
            rd,
            rn,
            offset,
            index,
            ..
        } => {
            let rd_low = demote(*rd, out);
            // Writeback modes don't exist in T16: address arithmetic is
            // explicit.
            if index.writes_base() {
                let val = lower_op2(
                    &match offset {
                        AddrOffset::Imm(d) => {
                            Operand2::imm(d.unsigned_abs()).unwrap_or(Operand2::reg(TMP))
                        }
                        AddrOffset::Reg { rm, .. } => Operand2::reg(*rm),
                    },
                    out,
                );
                out.push(T16Instr::HiOp(HiOp::Add, *rn, val));
                let base = demote(*rn, out);
                out.push(T16Instr::MemImm(*op, rd_low, base, 0));
                return_patch(needs_guard, body_start, out);
                return;
            }
            match offset {
                AddrOffset::Imm(d) => {
                    let scale = op.size() as i32;
                    let scaled = d / scale;
                    let in_range = *d >= 0
                        && d % scale == 0
                        && scaled <= 31
                        && !matches!(op, MemOp::Ldrsb | MemOp::Ldrsh);
                    if *rn == Reg::SP && matches!(op, MemOp::Ldr | MemOp::Str) {
                        let w = d / 4;
                        if *d >= 0 && d % 4 == 0 && w <= 255 {
                            out.push(T16Instr::MemSp {
                                load: op.is_load(),
                                rd: rd_low,
                                imm8: w as u8,
                            });
                        } else {
                            materialize(TMP, *d as u32, out);
                            out.push(T16Instr::HiOp(HiOp::Add, TMP, Reg::SP));
                            out.push(T16Instr::MemImm(*op, rd_low, TMP, 0));
                        }
                    } else if in_range && is_low(*rn) {
                        out.push(T16Instr::MemImm(*op, rd_low, *rn, scaled as u8));
                    } else {
                        // Signed loads and out-of-range displacements take
                        // the register-offset form.
                        materialize(TMP, *d as u32, out);
                        let base = demote(*rn, out);
                        out.push(T16Instr::MemReg(*op, rd_low, base, TMP));
                    }
                }
                AddrOffset::Reg {
                    rm,
                    shift,
                    subtract,
                } => {
                    let mut idx = demote(*rm, out);
                    if *shift != Shift::NONE || *subtract {
                        let val = lower_op2(&Operand2::Reg(*rm, *shift), out);
                        if *subtract {
                            out.push(T16Instr::Alu(T16Alu::Neg, val, val));
                        }
                        idx = val;
                    }
                    let base = demote(*rn, out);
                    out.push(T16Instr::MemReg(*op, rd_low, base, idx));
                }
            }
            if !is_low(*rd) && op.is_load() {
                out.push(T16Instr::HiOp(HiOp::Mov, *rd, rd_low));
            }
        }
        Instr::Branch { cond, link, offset } => {
            if *link {
                out.push(T16Instr::Bl(*offset));
            } else if *cond == Cond::Al {
                out.push(T16Instr::B(*offset));
            } else {
                out.push(T16Instr::BCond(*cond, *offset));
            }
        }
        Instr::Swi { imm, .. } => out.push(T16Instr::Swi((*imm & 0xff) as u8)),
    }

    return_patch(needs_guard, body_start, out);
}

fn return_patch(needs_guard: bool, body_start: usize, out: &mut [T16Instr]) {
    if needs_guard {
        let body_len = (out.len() - body_start - 1) as i32;
        if let T16Instr::BCond(_, off) = &mut out[body_start] {
            *off = body_len;
        }
    }
}

/// Translates an AR32 program into T16, applying Thumb's structural
/// constraints, then relaxes branches whose targets fall outside the short
/// ranges (±128 instructions conditional, ±1024 unconditional) into longer
/// sequences, iterating to a fixpoint as a real assembler would.
#[must_use]
pub fn translate(program: &Program) -> T16Program {
    let mut expansion: Vec<u32> = Vec::with_capacity(program.text.len());
    let mut instrs = Vec::with_capacity(program.text.len() * 2);
    for instr in &program.text {
        let start = instrs.len();
        translate_one(instr, &mut instrs);
        expansion.push((instrs.len() - start) as u32);
    }

    // Branch relaxation on instruction counts. Positions move as branches
    // grow, so iterate to a fixpoint (growth is monotone; terminates).
    let mut extra: Vec<u32> = vec![0; program.text.len()];
    loop {
        let mut changed = false;
        // Prefix positions in halfwords (BL counts as 2).
        let mut pos = vec![0u32; program.text.len() + 1];
        for i in 0..program.text.len() {
            pos[i + 1] = pos[i] + expansion[i] + extra[i];
        }
        for (i, instr) in program.text.iter().enumerate() {
            if let Instr::Branch { cond, link, .. } = instr {
                if *link {
                    continue; // BL already has long range
                }
                let Some(target) = program.branch_target(i) else {
                    continue;
                };
                let dist = i64::from(pos[target]) - i64::from(pos[i + 1]);
                let limit: i64 = if *cond == Cond::Al { 1024 } else { 128 };
                // Either relaxation form costs one extra halfword: a
                // conditional branch grows to invert + long b, an
                // unconditional one to the BL-style long form.
                let out_of_range = (dist.abs() >= limit && *cond != Cond::Al) || dist.abs() >= 1024;
                let needed = u32::from(out_of_range);
                if extra[i] < needed {
                    extra[i] = needed;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (i, e) in extra.iter().enumerate() {
        expansion[i] += e;
        for _ in 0..*e {
            instrs.push(T16Instr::B(0)); // placeholder long-form halfword
        }
    }

    T16Program { instrs, expansion }
}

/// Error: a structural T16 instruction has no 16-bit Thumb encoding (e.g. a
/// `ROR`-by-immediate shift, an immediate-form signed load, or an
/// out-of-range branch offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct T16EncodeError {
    reason: &'static str,
}

impl T16EncodeError {
    pub(crate) fn new(reason: &'static str) -> Self {
        T16EncodeError { reason }
    }

    /// Why the instruction has no 16-bit encoding.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for T16EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not encodable in T16: {}", self.reason)
    }
}

impl std::error::Error for T16EncodeError {}

/// Error returned when a 16-bit halfword stream is not a valid T16
/// instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct T16DecodeError {
    word: u16,
    reason: &'static str,
}

impl T16DecodeError {
    pub(crate) fn new(word: u16, reason: &'static str) -> Self {
        T16DecodeError { word, reason }
    }

    /// The offending halfword.
    #[must_use]
    pub fn word(&self) -> u16 {
        self.word
    }

    /// Why the halfword does not decode.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for T16DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#06x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for T16DecodeError {}

fn enc_err(reason: &'static str) -> T16EncodeError {
    T16EncodeError { reason }
}

fn low(r: Reg) -> Result<u16, T16EncodeError> {
    if is_low(r) {
        Ok(u16::from(r.index()))
    } else {
        Err(enc_err("high register in a low-register field"))
    }
}

fn fit_signed(v: i32, bits: u32, reason: &'static str) -> Result<u16, T16EncodeError> {
    let half = 1i32 << (bits - 1);
    if (-half..half).contains(&v) {
        Ok((v as u16) & ((1 << bits) - 1))
    } else {
        Err(enc_err(reason))
    }
}

impl T16Instr {
    /// Appends the instruction's halfword encoding (one halfword, or two for
    /// [`T16Instr::Bl`]) to `out`, using the classic ARM7TDMI Thumb formats.
    ///
    /// # Errors
    ///
    /// Returns [`T16EncodeError`] for structural forms the 16-bit encoding
    /// space cannot express: `ROR`-by-immediate shifts, immediate-form
    /// signed loads, `b<cond>` with the always condition, and field
    /// overflows (shift amounts, displacements, branch offsets).
    pub fn encode(&self, out: &mut Vec<u16>) -> Result<(), T16EncodeError> {
        let half = match *self {
            T16Instr::ShiftImm(kind, rd, rm, n) => {
                let op = match kind {
                    ShiftKind::Lsl => 0u16,
                    ShiftKind::Lsr => 1,
                    ShiftKind::Asr => 2,
                    ShiftKind::Ror => return Err(enc_err("ROR by immediate")),
                };
                let imm5 = match (kind, n) {
                    (ShiftKind::Lsl, 0..=31) => u16::from(n),
                    (ShiftKind::Lsr | ShiftKind::Asr, 1..=31) => u16::from(n),
                    (ShiftKind::Lsr | ShiftKind::Asr, 32) => 0,
                    _ => return Err(enc_err("shift amount out of range")),
                };
                (op << 11) | (imm5 << 6) | (low(rm)? << 3) | low(rd)?
            }
            T16Instr::AddSub3 { sub, rd, rn, rhs } => {
                let (i, field) = match rhs {
                    AddSubRhs::Reg(rm) => (0u16, low(rm)?),
                    AddSubRhs::Imm3(n) => {
                        if n > 7 {
                            return Err(enc_err("imm3 out of range"));
                        }
                        (1, u16::from(n))
                    }
                };
                0b0001_1000_0000_0000
                    | (i << 10)
                    | (u16::from(sub) << 9)
                    | (field << 6)
                    | (low(rn)? << 3)
                    | low(rd)?
            }
            T16Instr::Imm8(op, rd, n) => {
                let op = match op {
                    Imm8Op::Mov => 0u16,
                    Imm8Op::Cmp => 1,
                    Imm8Op::Add => 2,
                    Imm8Op::Sub => 3,
                };
                0b0010_0000_0000_0000 | (op << 11) | (low(rd)? << 8) | u16::from(n)
            }
            T16Instr::Alu(op, rd, rm) => {
                0b0100_0000_0000_0000 | ((op as u16) << 6) | (low(rm)? << 3) | low(rd)?
            }
            T16Instr::HiOp(op, rd, rm) => {
                let op = match op {
                    HiOp::Add => 0u16,
                    HiOp::Cmp => 1,
                    HiOp::Mov => 2,
                };
                let h1 = u16::from(rd.index() >> 3);
                let h2 = u16::from(rm.index() >> 3);
                0b0100_0100_0000_0000
                    | (op << 8)
                    | (h1 << 7)
                    | (h2 << 6)
                    | (u16::from(rm.index() & 7) << 3)
                    | u16::from(rd.index() & 7)
            }
            T16Instr::Bx(rm) => {
                let h2 = u16::from(rm.index() >> 3);
                0b0100_0111_0000_0000 | (h2 << 6) | (u16::from(rm.index() & 7) << 3)
            }
            T16Instr::MemReg(op, rd, rn, rm) => {
                let bits = match op {
                    MemOp::Str => 0b000u16,
                    MemOp::Strb => 0b010,
                    MemOp::Ldr => 0b100,
                    MemOp::Ldrb => 0b110,
                    // The `1` in bit 9 selects the halfword/signed group.
                    MemOp::Strh => 0b001,
                    MemOp::Ldrsb => 0b011,
                    MemOp::Ldrh => 0b101,
                    MemOp::Ldrsh => 0b111,
                };
                0b0101_0000_0000_0000 | (bits << 9) | (low(rm)? << 6) | (low(rn)? << 3) | low(rd)?
            }
            T16Instr::MemImm(op, rd, rn, n) => {
                if n > 31 {
                    return Err(enc_err("imm5 displacement out of range"));
                }
                let imm5 = u16::from(n);
                let base = match op {
                    MemOp::Str => 0b0110_0000_0000_0000u16,
                    MemOp::Ldr => 0b0110_1000_0000_0000,
                    MemOp::Strb => 0b0111_0000_0000_0000,
                    MemOp::Ldrb => 0b0111_1000_0000_0000,
                    MemOp::Strh => 0b1000_0000_0000_0000,
                    MemOp::Ldrh => 0b1000_1000_0000_0000,
                    MemOp::Ldrsb | MemOp::Ldrsh => {
                        return Err(enc_err("signed load has no immediate form"))
                    }
                };
                base | (imm5 << 6) | (low(rn)? << 3) | low(rd)?
            }
            T16Instr::MemSp { load, rd, imm8 } => {
                0b1001_0000_0000_0000 | (u16::from(load) << 11) | (low(rd)? << 8) | u16::from(imm8)
            }
            T16Instr::BCond(cond, off) => {
                if cond == Cond::Al || cond.bits() == 0b1111 {
                    return Err(enc_err("conditional branch with AL/NV condition"));
                }
                0b1101_0000_0000_0000
                    | (u16::from(cond.bits()) << 8)
                    | fit_signed(off, 8, "conditional branch offset out of range")?
            }
            T16Instr::B(off) => {
                0b1110_0000_0000_0000 | fit_signed(off, 11, "branch offset out of range")?
            }
            T16Instr::Swi(n) => 0b1101_1111_0000_0000 | u16::from(n),
            T16Instr::Bl(off) => {
                if !(-(1 << 21)..(1 << 21)).contains(&off) {
                    return Err(enc_err("BL offset out of range"));
                }
                let hi = ((off >> 11) as u16) & 0x7ff;
                let lo = (off as u16) & 0x7ff;
                out.push(0b1111_0000_0000_0000 | hi);
                out.push(0b1111_1000_0000_0000 | lo);
                return Ok(());
            }
        };
        out.push(half);
        Ok(())
    }

    /// Decodes the T16 instruction at the head of `stream`, returning it and
    /// the number of halfwords consumed (1, or 2 for `BL`).
    ///
    /// # Errors
    ///
    /// Returns [`T16DecodeError`] for halfwords in unallocated or
    /// unsupported Thumb format space (PC-relative loads, `PUSH`/`POP`,
    /// block transfers, `ADD` to PC/SP, Thumb-2 prefixes) and for a
    /// truncated or unpaired `BL`.
    pub fn decode(stream: &[u16]) -> Result<(T16Instr, usize), T16DecodeError> {
        let Some(&w) = stream.first() else {
            return Err(T16DecodeError {
                word: 0,
                reason: "empty stream",
            });
        };
        let err = |reason| T16DecodeError { word: w, reason };
        let reg3 = |shift: u16| Reg::new(((w >> shift) & 7) as u8);
        let instr = match w >> 11 {
            0b00000..=0b00010 => {
                let kind = match w >> 11 {
                    0b00000 => ShiftKind::Lsl,
                    0b00001 => ShiftKind::Lsr,
                    _ => ShiftKind::Asr,
                };
                let raw = ((w >> 6) & 0x1f) as u8;
                let n = if raw == 0 && kind != ShiftKind::Lsl {
                    32
                } else {
                    raw
                };
                T16Instr::ShiftImm(kind, reg3(0), reg3(3), n)
            }
            0b00011 => {
                let rhs = if w & (1 << 10) != 0 {
                    AddSubRhs::Imm3(((w >> 6) & 7) as u8)
                } else {
                    AddSubRhs::Reg(reg3(6))
                };
                T16Instr::AddSub3 {
                    sub: w & (1 << 9) != 0,
                    rd: reg3(0),
                    rn: reg3(3),
                    rhs,
                }
            }
            0b00100..=0b00111 => {
                let op = match (w >> 11) & 3 {
                    0 => Imm8Op::Mov,
                    1 => Imm8Op::Cmp,
                    2 => Imm8Op::Add,
                    _ => Imm8Op::Sub,
                };
                T16Instr::Imm8(op, reg3(8), (w & 0xff) as u8)
            }
            0b01000 => {
                if w & (1 << 10) == 0 {
                    let op = match (w >> 6) & 0xf {
                        0 => T16Alu::And,
                        1 => T16Alu::Eor,
                        2 => T16Alu::Lsl,
                        3 => T16Alu::Lsr,
                        4 => T16Alu::Asr,
                        5 => T16Alu::Adc,
                        6 => T16Alu::Sbc,
                        7 => T16Alu::Ror,
                        8 => T16Alu::Tst,
                        9 => T16Alu::Neg,
                        10 => T16Alu::Cmp,
                        11 => T16Alu::Cmn,
                        12 => T16Alu::Orr,
                        13 => T16Alu::Mul,
                        14 => T16Alu::Bic,
                        _ => T16Alu::Mvn,
                    };
                    T16Instr::Alu(op, reg3(0), reg3(3))
                } else {
                    let rd = Reg::new((((w >> 7) & 1) << 3 | (w & 7)) as u8);
                    let rm = Reg::new((((w >> 6) & 1) << 3 | ((w >> 3) & 7)) as u8);
                    match (w >> 8) & 3 {
                        0 => T16Instr::HiOp(HiOp::Add, rd, rm),
                        1 => T16Instr::HiOp(HiOp::Cmp, rd, rm),
                        2 => T16Instr::HiOp(HiOp::Mov, rd, rm),
                        _ => {
                            if w & (1 << 7) != 0 || w & 7 != 0 {
                                return Err(err("malformed BX"));
                            }
                            T16Instr::Bx(rm)
                        }
                    }
                }
            }
            0b01001 => return Err(err("PC-relative load unsupported")),
            0b01010 | 0b01011 => {
                let op = match (w >> 9) & 7 {
                    0b000 => MemOp::Str,
                    0b010 => MemOp::Strb,
                    0b100 => MemOp::Ldr,
                    0b110 => MemOp::Ldrb,
                    0b001 => MemOp::Strh,
                    0b011 => MemOp::Ldrsb,
                    0b101 => MemOp::Ldrh,
                    _ => MemOp::Ldrsh,
                };
                T16Instr::MemReg(op, reg3(0), reg3(3), reg3(6))
            }
            0b01100..=0b10001 => {
                let op = match (w >> 11) & 0b11111 {
                    0b01100 => MemOp::Str,
                    0b01101 => MemOp::Ldr,
                    0b01110 => MemOp::Strb,
                    0b01111 => MemOp::Ldrb,
                    0b10000 => MemOp::Strh,
                    _ => MemOp::Ldrh,
                };
                T16Instr::MemImm(op, reg3(0), reg3(3), ((w >> 6) & 0x1f) as u8)
            }
            0b10010 | 0b10011 => T16Instr::MemSp {
                load: w & (1 << 11) != 0,
                rd: reg3(8),
                imm8: (w & 0xff) as u8,
            },
            0b10100 | 0b10101 => return Err(err("ADD to PC/SP unsupported")),
            0b10110 | 0b10111 => return Err(err("misc format space unsupported")),
            0b11000 | 0b11001 => return Err(err("block transfer unsupported")),
            0b11010 | 0b11011 => {
                let cond_bits = ((w >> 8) & 0xf) as u8;
                if cond_bits == 0b1111 {
                    T16Instr::Swi((w & 0xff) as u8)
                } else if cond_bits == 0b1110 {
                    return Err(err("undefined conditional-branch slot"));
                } else {
                    let off = i32::from((w & 0xff) as i8);
                    T16Instr::BCond(Cond::from_bits(cond_bits), off)
                }
            }
            0b11100 => {
                let off = ((i32::from(w & 0x7ff)) << 21) >> 21;
                T16Instr::B(off)
            }
            0b11101 => return Err(err("Thumb-2 prefix space")),
            0b11110 => {
                let Some(&w2) = stream.get(1) else {
                    return Err(err("truncated BL"));
                };
                if w2 >> 11 != 0b11111 {
                    return Err(err("BL prefix without suffix"));
                }
                let hi = i32::from(w & 0x7ff);
                let lo = i32::from(w2 & 0x7ff);
                let off = ((hi << 11 | lo) << 10) >> 10;
                return Ok((T16Instr::Bl(off), 2));
            }
            _ => return Err(err("BL suffix without prefix")),
        };
        Ok((instr, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instr, Operand2};

    fn prog(text: Vec<Instr>) -> Program {
        Program {
            text,
            ..Program::default()
        }
    }

    #[test]
    fn simple_ops_map_one_to_one() {
        let p = prog(vec![
            Instr::mov(Reg::R0, Operand2::imm(5).unwrap()),
            Instr::dp(DpOp::Add, Reg::R0, Reg::R0, Operand2::imm(1).unwrap()),
            Instr::dp(DpOp::Add, Reg::R2, Reg::R0, Operand2::reg(Reg::R1)),
            Instr::cmp(Reg::R0, Operand2::imm(10).unwrap()),
            Instr::b(-3),
        ]);
        let t = translate(&p);
        assert_eq!(t.expansion, vec![1, 1, 1, 1, 1]);
        assert_eq!(t.code_bytes(), 10);
        assert!((t.one_to_one_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_address_logical_expands() {
        // and r2, r0, r1 has no 3-address T16 form.
        let p = prog(vec![Instr::dp(
            DpOp::And,
            Reg::R2,
            Reg::R0,
            Operand2::reg(Reg::R1),
        )]);
        let t = translate(&p);
        assert_eq!(t.expansion, vec![2]);
    }

    #[test]
    fn big_immediate_expands() {
        let p = prog(vec![Instr::mov(
            Reg::R0,
            Operand2::imm(0x0001_0000).unwrap(),
        )]);
        let t = translate(&p);
        assert!(t.expansion[0] >= 2, "0x10000 needs mov+lsl: {:?}", t.instrs);
    }

    #[test]
    fn predication_costs_a_branch() {
        let p = prog(vec![Instr::dp(
            DpOp::Add,
            Reg::R0,
            Reg::R0,
            Operand2::imm(1).unwrap(),
        )
        .with_cond(Cond::Eq)]);
        let t = translate(&p);
        assert_eq!(t.expansion, vec![2]);
        assert!(matches!(t.instrs[0], T16Instr::BCond(Cond::Ne, 1)));
    }

    #[test]
    fn high_registers_cost_moves() {
        let p = prog(vec![Instr::dp(
            DpOp::Eor,
            Reg::R9,
            Reg::R9,
            Operand2::reg(Reg::R10),
        )]);
        let t = translate(&p);
        assert!(t.expansion[0] >= 3, "{:?}", t.instrs);
    }

    #[test]
    fn signed_load_uses_register_form() {
        let p = prog(vec![Instr::mem(MemOp::Ldrsh, Reg::R0, Reg::R1, 6)]);
        let t = translate(&p);
        assert!(t
            .instrs
            .iter()
            .any(|i| matches!(i, T16Instr::MemReg(MemOp::Ldrsh, ..))));
    }

    #[test]
    fn sp_relative_load_is_single() {
        let p = prog(vec![Instr::mem(MemOp::Ldr, Reg::R0, Reg::SP, 16)]);
        let t = translate(&p);
        assert_eq!(t.expansion, vec![1]);
        assert!(matches!(
            t.instrs[0],
            T16Instr::MemSp {
                load: true,
                imm8: 4,
                ..
            }
        ));
    }

    #[test]
    fn far_conditional_branch_relaxes() {
        // A conditional branch over ~300 instructions must grow.
        let mut text = vec![Instr::Branch {
            cond: Cond::Eq,
            link: false,
            offset: 300,
        }];
        for _ in 0..302 {
            text.push(Instr::dp(
                DpOp::Add,
                Reg::R0,
                Reg::R0,
                Operand2::imm(1).unwrap(),
            ));
        }
        let t = translate(&prog(text));
        assert_eq!(t.expansion[0], 2);
    }

    #[test]
    fn bl_is_four_bytes() {
        let p = prog(vec![Instr::Branch {
            cond: Cond::Al,
            link: true,
            offset: 0,
        }]);
        let t = translate(&p);
        assert_eq!(t.code_bytes(), 4);
        assert_eq!(t.expansion, vec![1]);
    }
}
