use std::fmt;

use crate::alu::Flags;

/// An AR32 condition code, the 4-bit predicate every instruction carries.
///
/// Semantics are the standard ARM ones; [`Cond::holds`] evaluates the
/// predicate against a [`Flags`] snapshot.
///
/// ```
/// use fits_isa::Cond;
/// use fits_isa::alu::Flags;
///
/// let flags = Flags { n: false, z: true, c: true, v: false };
/// assert!(Cond::Eq.holds(flags));
/// assert!(!Cond::Ne.holds(flags));
/// assert!(Cond::Al.holds(flags));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq = 0,
    /// Not equal (`Z == 0`).
    Ne = 1,
    /// Carry set / unsigned higher-or-same (`C == 1`).
    Cs = 2,
    /// Carry clear / unsigned lower (`C == 0`).
    Cc = 3,
    /// Minus / negative (`N == 1`).
    Mi = 4,
    /// Plus / positive-or-zero (`N == 0`).
    Pl = 5,
    /// Overflow set (`V == 1`).
    Vs = 6,
    /// Overflow clear (`V == 0`).
    Vc = 7,
    /// Unsigned higher (`C == 1 && Z == 0`).
    Hi = 8,
    /// Unsigned lower-or-same (`C == 0 || Z == 1`).
    Ls = 9,
    /// Signed greater-or-equal (`N == V`).
    Ge = 10,
    /// Signed less-than (`N != V`).
    Lt = 11,
    /// Signed greater-than (`Z == 0 && N == V`).
    Gt = 12,
    /// Signed less-or-equal (`Z == 1 || N != V`).
    Le = 13,
    /// Always.
    Al = 14,
    /// Never (the ARM `NV` encoding; retained so decode is total over 0..=15).
    Nv = 15,
}

impl Cond {
    /// All sixteen condition codes, in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
        Cond::Nv,
    ];

    /// Decodes a 4-bit condition field.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 15`.
    #[must_use]
    pub fn from_bits(bits: u8) -> Cond {
        Cond::ALL[usize::from(bits)]
    }

    /// The 4-bit encoding of this condition.
    #[must_use]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Evaluates the predicate against a flag snapshot.
    #[must_use]
    pub fn holds(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
            Cond::Al => true,
            Cond::Nv => false,
        }
    }

    /// The logical inverse of this condition (`EQ` ↔ `NE`, …).
    ///
    /// Used by the ARM→FITS translator to rewrite a rarely-used predicated
    /// instruction as a branch-around with the inverted condition.
    #[must_use]
    pub fn inverse(self) -> Cond {
        Cond::from_bits(self.bits() ^ 1)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
            Cond::Nv => "nv",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(n: bool, z: bool, c: bool, v: bool) -> Flags {
        Flags { n, z, c, v }
    }

    #[test]
    fn bits_round_trip() {
        for cond in Cond::ALL {
            assert_eq!(Cond::from_bits(cond.bits()), cond);
        }
    }

    #[test]
    fn inverse_pairs() {
        assert_eq!(Cond::Eq.inverse(), Cond::Ne);
        assert_eq!(Cond::Ge.inverse(), Cond::Lt);
        assert_eq!(Cond::Hi.inverse(), Cond::Ls);
        for cond in Cond::ALL {
            assert_eq!(cond.inverse().inverse(), cond);
        }
    }

    #[test]
    fn inverse_is_semantic_complement() {
        for cond in Cond::ALL {
            // AL/NV are each other's inverse in encoding; skip the pair since
            // AL is unconditionally true by definition.
            if cond == Cond::Al || cond == Cond::Nv {
                continue;
            }
            for bits in 0..16u8 {
                let f = flags(bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                assert_ne!(cond.holds(f), cond.inverse().holds(f), "{cond:?} on {f:?}");
            }
        }
    }

    #[test]
    fn signed_comparisons() {
        // 3 - 5: N=1, V=0 -> LT holds.
        let f = flags(true, false, false, false);
        assert!(Cond::Lt.holds(f));
        assert!(!Cond::Ge.holds(f));
        assert!(Cond::Le.holds(f));
        assert!(!Cond::Gt.holds(f));
    }

    #[test]
    fn unsigned_comparisons() {
        // 5 - 3 (unsigned): C=1 (no borrow), Z=0 -> HI holds.
        let f = flags(false, false, true, false);
        assert!(Cond::Hi.holds(f));
        assert!(!Cond::Ls.holds(f));
        assert!(Cond::Cs.holds(f));
    }
}
