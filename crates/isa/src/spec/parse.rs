//! Recursive-descent parser for the `powerfits-isa-v1` spec format.
//!
//! Grammar (whitespace-separated, `#` line comments):
//!
//! ```text
//! spec  := "isa" name "{" item* "}"
//! item  := "schema" ident
//!        | "word-width" int
//!        | "registers" "{" ("count" int | "alias" ident int | "window" int)* "}"
//!        | "flags" "{" ident* "}"
//!        | "layouts" "{" ident* "}"
//!        | "tiers" "{" ident* "}"
//!        | "dictionaries" "{" ident* "}"
//!        | "form" name "{" "pattern" string "}"
//!        | "reserved" name "{" "pattern" string "reason" string "}"
//! ```
//!
//! `word-width` must precede the first `form`/`reserved` so pattern
//! strings can be width-checked as they are read.

use super::lex::{lex, Tok, Token};
use super::pattern::Pattern;
use super::{EntryKind, IsaSpec, PatternEntry, Pos, RegisterFile, SpecError};

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i)
    }

    fn eof_pos(&self) -> Pos {
        self.toks.last().map_or(Pos { line: 1, col: 1 }, |t| t.pos)
    }

    fn next(&mut self, what: &str) -> Result<Token, SpecError> {
        let tok = self.toks.get(self.i).cloned().ok_or_else(|| {
            SpecError::new(
                self.eof_pos(),
                format!("expected {what}, found end of spec"),
            )
        })?;
        self.i += 1;
        Ok(tok)
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), SpecError> {
        let tok = self.next(what)?;
        match tok.tok {
            Tok::Ident(s) => Ok((s, tok.pos)),
            other => Err(SpecError::new(
                tok.pos,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    fn int(&mut self, what: &str) -> Result<(u64, Pos), SpecError> {
        let tok = self.next(what)?;
        match tok.tok {
            Tok::Int(n) => Ok((n, tok.pos)),
            other => Err(SpecError::new(
                tok.pos,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    fn string(&mut self, what: &str) -> Result<(String, Pos), SpecError> {
        let tok = self.next(what)?;
        match tok.tok {
            Tok::Str(s) => Ok((s, tok.pos)),
            other => Err(SpecError::new(
                tok.pos,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    fn lbrace(&mut self) -> Result<(), SpecError> {
        let tok = self.next("`{`")?;
        match tok.tok {
            Tok::LBrace => Ok(()),
            other => Err(SpecError::new(
                tok.pos,
                format!("expected `{{`, found {}", other.describe()),
            )),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<Pos, SpecError> {
        let (word, pos) = self.ident(&format!("`{kw}`"))?;
        if word == kw {
            Ok(pos)
        } else {
            Err(SpecError::new(
                pos,
                format!("expected `{kw}`, found `{word}`"),
            ))
        }
    }

    fn at_rbrace(&self) -> bool {
        matches!(self.peek(), Some(t) if t.tok == Tok::RBrace)
    }

    /// Consumes idents until the closing brace of an already-opened block.
    fn ident_list(&mut self) -> Result<Vec<String>, SpecError> {
        let mut out = Vec::new();
        loop {
            if self.at_rbrace() {
                self.i += 1;
                return Ok(out);
            }
            let (name, _) = self.ident("a name or `}`")?;
            out.push(name);
        }
    }

    fn u32_field(&mut self, what: &str) -> Result<u32, SpecError> {
        let (n, pos) = self.int(what)?;
        u32::try_from(n).map_err(|_| SpecError::new(pos, format!("{what} {n} too large")))
    }
}

fn require_width(width: Option<u32>, pos: Pos) -> Result<u32, SpecError> {
    width.ok_or_else(|| SpecError::new(pos, "`word-width` must be declared before patterns"))
}

/// Parses a full spec document into an (unvalidated) [`IsaSpec`].
///
/// # Errors
///
/// Returns a position-carrying [`SpecError`] on any lexical or
/// syntactic problem.
pub fn parse_spec(text: &str) -> Result<IsaSpec, SpecError> {
    let mut p = Parser {
        toks: lex(text)?,
        i: 0,
    };
    p.keyword("isa")?;
    let (name, _) = p.ident("an ISA name")?;
    p.lbrace()?;

    let mut schema = String::new();
    let mut word_width: Option<u32> = None;
    let mut registers = RegisterFile::default();
    let mut flags = Vec::new();
    let mut entries: Vec<PatternEntry> = Vec::new();
    let mut layouts = Vec::new();
    let mut tiers = Vec::new();
    let mut dictionaries = Vec::new();

    loop {
        if p.at_rbrace() {
            p.i += 1;
            break;
        }
        let (item, item_pos) = p.ident("an item or `}`")?;
        match item.as_str() {
            "schema" => {
                let (s, _) = p.ident("a schema identifier")?;
                schema = s;
            }
            "word-width" => {
                word_width = Some(p.u32_field("word-width")?);
            }
            "registers" => {
                p.lbrace()?;
                loop {
                    if p.at_rbrace() {
                        p.i += 1;
                        break;
                    }
                    let (field, field_pos) = p.ident("a register item or `}`")?;
                    match field.as_str() {
                        "count" => registers.count = p.u32_field("count")?,
                        "alias" => {
                            let (alias, _) = p.ident("an alias name")?;
                            let idx = p.u32_field("alias index")?;
                            registers.aliases.push((alias, idx));
                        }
                        "window" => registers.windows.push(p.u32_field("window")?),
                        other => {
                            return Err(SpecError::new(
                                field_pos,
                                format!("unknown register item `{other}`"),
                            ));
                        }
                    }
                }
            }
            "flags" => {
                p.lbrace()?;
                flags = p.ident_list()?;
            }
            "layouts" => {
                p.lbrace()?;
                layouts = p.ident_list()?;
            }
            "tiers" => {
                p.lbrace()?;
                tiers = p.ident_list()?;
            }
            "dictionaries" => {
                p.lbrace()?;
                dictionaries = p.ident_list()?;
            }
            "form" => {
                let (form_name, pos) = p.ident("a form name")?;
                p.lbrace()?;
                p.keyword("pattern")?;
                let (pat_text, pat_pos) = p.string("a pattern string")?;
                let width = require_width(word_width, pat_pos)?;
                let pattern = Pattern::parse(&pat_text, width, pat_pos)?;
                let tok = p.next("`}`")?;
                if tok.tok != Tok::RBrace {
                    return Err(SpecError::new(
                        tok.pos,
                        format!("expected `}}`, found {}", tok.tok.describe()),
                    ));
                }
                entries.push(PatternEntry {
                    name: form_name,
                    kind: EntryKind::Form,
                    pattern,
                    pos,
                });
            }
            "reserved" => {
                let (res_name, pos) = p.ident("a reserved-pattern name")?;
                p.lbrace()?;
                p.keyword("pattern")?;
                let (pat_text, pat_pos) = p.string("a pattern string")?;
                let width = require_width(word_width, pat_pos)?;
                let pattern = Pattern::parse(&pat_text, width, pat_pos)?;
                p.keyword("reason")?;
                let (reason, _) = p.string("a reason string")?;
                let tok = p.next("`}`")?;
                if tok.tok != Tok::RBrace {
                    return Err(SpecError::new(
                        tok.pos,
                        format!("expected `}}`, found {}", tok.tok.describe()),
                    ));
                }
                entries.push(PatternEntry {
                    name: res_name,
                    kind: EntryKind::Reserved { reason },
                    pattern,
                    pos,
                });
            }
            other => {
                return Err(SpecError::new(item_pos, format!("unknown item `{other}`")));
            }
        }
    }
    if let Some(tok) = p.peek() {
        return Err(SpecError::new(
            tok.pos,
            format!("trailing {} after closing `}}`", tok.tok.describe()),
        ));
    }
    let word_width = word_width
        .ok_or_else(|| SpecError::new(Pos { line: 1, col: 1 }, "missing `word-width`"))?;
    Ok(IsaSpec {
        name,
        schema,
        word_width,
        registers,
        flags,
        entries,
        layouts,
        tiers,
        dictionaries,
        source: text.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_spec() {
        let spec = parse_spec(
            "isa tiny {\n schema powerfits-isa-v1\n word-width 16\n registers { count 8 alias sp 7 window 4 }\n flags { n z }\n form nop { pattern \"0000000000000000\" }\n reserved rest { pattern \"xxxxxxxxxxxxxxxx\" reason \"unsupported\" }\n}\n",
        )
        .unwrap();
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.word_width, 16);
        assert_eq!(spec.registers.count, 8);
        assert_eq!(spec.registers.aliases, vec![("sp".to_string(), 7)]);
        assert_eq!(spec.registers.windows, vec![4]);
        assert_eq!(spec.flags, vec!["n", "z"]);
        assert_eq!(spec.entries.len(), 2);
        assert!(spec.entries[0].is_form());
        assert_eq!(
            spec.entries[1].kind,
            EntryKind::Reserved {
                reason: "unsupported".to_string()
            }
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_spec("isa x {\n bogus 3\n}").unwrap_err();
        assert_eq!((err.pos.line, err.pos.col), (2, 2));
        assert!(err.to_string().contains("bogus"));
        let err = parse_spec("isa x {\n form f { pattern \"00\" }\n}").unwrap_err();
        assert!(err.to_string().contains("word-width"));
        let err = parse_spec("isa x { word-width 16").unwrap_err();
        assert!(err.to_string().contains("end of spec"));
    }

    #[test]
    fn pattern_width_checked_at_parse() {
        let err = parse_spec(
            "isa x { schema powerfits-isa-v1 word-width 16 form f { pattern \"000\" } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("expected 16"));
    }
}
