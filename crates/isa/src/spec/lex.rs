//! Tokenizer for the `powerfits-isa-v1` ISA specification text format.
//!
//! The format is deliberately tiny: identifiers (kebab-case), unsigned
//! integers, double-quoted strings, braces, and `#` line comments. Every
//! token carries its source position so parse and validation diagnostics
//! can point at the offending line and column.

use super::{Pos, SpecError};

/// A lexical token of the spec format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Bare word: keywords, names, schema identifiers (`word-width`,
    /// `ar32`, `powerfits-isa-v1`).
    Ident(String),
    /// A double-quoted string (bit patterns, reserved reasons).
    Str(String),
    /// An unsigned integer literal.
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
}

impl Tok {
    /// Short description for diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Str(_) => "string".to_string(),
            Tok::Int(n) => format!("integer `{n}`"),
            Tok::LBrace => "`{`".to_string(),
            Tok::RBrace => "`}`".to_string(),
        }
    }
}

/// A token with the position of its first character.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Line/column of the token's first character (1-based).
    pub pos: Pos,
}

fn ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'
}

/// Tokenizes a spec document.
///
/// # Errors
///
/// Returns a position-carrying [`SpecError`] on unterminated strings or
/// characters outside the format's alphabet.
pub fn lex(text: &str) -> Result<Vec<Token>, SpecError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        let pos = Pos { line, col };
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '#' => {
                // Line comment.
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
                line += 1;
                col = 1;
            }
            '{' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::LBrace,
                    pos,
                });
            }
            '}' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::RBrace,
                    pos,
                });
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    col += 1;
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        return Err(SpecError::new(pos, "unterminated string"));
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(SpecError::new(pos, "unterminated string"));
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if !ident_char(c) {
                        break;
                    }
                    s.push(c);
                    chars.next();
                    col += 1;
                }
                let n = s.parse::<u64>().map_err(|_| {
                    SpecError::new(pos, format!("`{s}` is not an unsigned integer"))
                })?;
                out.push(Token {
                    tok: Tok::Int(n),
                    pos,
                });
            }
            c if ident_char(c) => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if !ident_char(c) {
                        break;
                    }
                    s.push(c);
                    chars.next();
                    col += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(s),
                    pos,
                });
            }
            c => {
                return Err(SpecError::new(
                    pos,
                    format!("unexpected character `{c}` (idents, ints, strings, braces and # comments only)"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_positions() {
        let toks = lex("isa ar32 {\n  # comment\n  word-width 32\n}\n").unwrap();
        assert_eq!(toks.len(), 6);
        assert_eq!(toks[0].tok, Tok::Ident("isa".to_string()));
        assert_eq!((toks[0].pos.line, toks[0].pos.col), (1, 1));
        assert_eq!(toks[3].tok, Tok::Ident("word-width".to_string()));
        assert_eq!((toks[3].pos.line, toks[3].pos.col), (3, 3));
        assert_eq!(toks[4].tok, Tok::Int(32));
    }

    #[test]
    fn strings_and_errors() {
        let toks = lex("pattern \"cccc 0000\"").unwrap();
        assert_eq!(toks[1].tok, Tok::Str("cccc 0000".to_string()));
        let err = lex("pattern \"oops\n").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.to_string().contains("unterminated"));
        let err = lex("a $ b").unwrap_err();
        assert_eq!((err.pos.line, err.pos.col), (1, 3));
    }
}
