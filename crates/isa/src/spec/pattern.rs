//! Bit-pattern language for instruction encodings.
//!
//! A pattern is a fixed-width bit string written MSB-first. Each character
//! is either a literal `0`/`1`, a don't-care `x`, or a field letter
//! (`a`-`w`, `y`, `z`, upper case allowed). Repeated runs of the same
//! letter are one field; split runs concatenate MSB-first. Spaces and
//! underscores are ignored, so specs can group nibbles for readability.

use super::{Pos, SpecError};

/// One named field of a pattern: the runs of bit positions it occupies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// The field letter as written in the pattern.
    pub letter: char,
    /// Total width in bits across all runs.
    pub width: u32,
    /// `(shift, width)` runs in MSB-first order: the first run holds the
    /// most significant bits of the field value.
    pub runs: Vec<(u32, u32)>,
}

/// A parsed, fixed-width bit pattern with named fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    /// Pattern width in bits (16 or 32 for the shipped specs).
    pub width: u32,
    /// Mask of literally-constrained bit positions.
    pub mask: u32,
    /// Required values at the masked positions.
    pub value: u32,
    /// Named fields in first-appearance order.
    pub fields: Vec<Field>,
    /// The source text as written (separators preserved), for diagnostics.
    pub text: String,
}

impl Pattern {
    /// Parses a pattern string, enforcing `expect_width` significant
    /// characters.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] at `pos` on width mismatch or characters
    /// outside the pattern alphabet.
    pub fn parse(text: &str, expect_width: u32, pos: Pos) -> Result<Self, SpecError> {
        let bits: Vec<char> = text.chars().filter(|&c| c != ' ' && c != '_').collect();
        let width =
            u32::try_from(bits.len()).map_err(|_| SpecError::new(pos, "pattern too wide"))?;
        if width != expect_width {
            return Err(SpecError::new(
                pos,
                format!("pattern \"{text}\" has {width} bits, expected {expect_width}"),
            ));
        }
        let mut mask = 0u32;
        let mut value = 0u32;
        let mut fields: Vec<Field> = Vec::new();
        for (i, &c) in bits.iter().enumerate() {
            // Index 0 is the MSB.
            let shift = width - 1 - u32::try_from(i).unwrap_or(0);
            match c {
                '0' => mask |= 1 << shift,
                '1' => {
                    mask |= 1 << shift;
                    value |= 1 << shift;
                }
                'x' | 'X' => {}
                c if c.is_ascii_alphabetic() => {
                    let idx = match fields.iter().position(|f| f.letter == c) {
                        Some(i) => i,
                        None => {
                            fields.push(Field {
                                letter: c,
                                width: 0,
                                runs: Vec::new(),
                            });
                            fields.len() - 1
                        }
                    };
                    let field = &mut fields[idx];
                    // Extend the last run if contiguous, else start a new
                    // run; string order is MSB-first so runs stay sorted.
                    match field.runs.last_mut() {
                        Some(&mut (ref mut run_shift, ref mut run_width))
                            if *run_shift == shift + 1 =>
                        {
                            *run_shift = shift;
                            *run_width += 1;
                        }
                        _ => field.runs.push((shift, 1)),
                    }
                    field.width += 1;
                }
                c => {
                    return Err(SpecError::new(
                        pos,
                        format!("pattern \"{text}\" has invalid character `{c}` (use 0, 1, x or a field letter)"),
                    ));
                }
            }
        }
        Ok(Pattern {
            width,
            mask,
            value,
            fields,
            text: text.to_string(),
        })
    }

    /// Does `word` match this pattern's literal bits?
    #[must_use]
    pub fn matches(&self, word: u32) -> bool {
        word & self.mask == self.value
    }

    /// Extracts the named field from `word`, concatenating split runs
    /// MSB-first. Returns 0 for a letter the pattern does not define
    /// (engines validate required letters at build time).
    #[must_use]
    pub fn extract(&self, letter: char, word: u32) -> u32 {
        let Some(field) = self.fields.iter().find(|f| f.letter == letter) else {
            return 0;
        };
        let mut out = 0u32;
        for &(shift, width) in &field.runs {
            let run_mask = if width >= 32 {
                u32::MAX
            } else {
                (1 << width) - 1
            };
            out = (out << width) | ((word >> shift) & run_mask);
        }
        out
    }

    /// Packs field values into a word over the pattern's literal bits.
    /// Values wider than the field are masked to fit; letters the pattern
    /// does not define are ignored.
    #[must_use]
    pub fn pack(&self, values: &[(char, u32)]) -> u32 {
        let mut word = self.value;
        for &(letter, val) in values {
            let Some(field) = self.fields.iter().find(|f| f.letter == letter) else {
                continue;
            };
            let mut remaining = field.width;
            for &(shift, width) in &field.runs {
                remaining -= width;
                let run_mask = if width >= 32 {
                    u32::MAX
                } else {
                    (1 << width) - 1
                };
                word |= ((val >> remaining) & run_mask) << shift;
            }
        }
        word
    }

    /// Can some word match both patterns?
    #[must_use]
    pub fn overlaps(&self, other: &Pattern) -> bool {
        self.width == other.width && (self.value ^ other.value) & (self.mask & other.mask) == 0
    }

    /// Is every word matching `self` also matched by `other`?
    #[must_use]
    pub fn subset_of(&self, other: &Pattern) -> bool {
        self.width == other.width
            && other.mask & !self.mask == 0
            && (self.value ^ other.value) & other.mask == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POS: Pos = Pos { line: 1, col: 1 };

    #[test]
    fn parses_literals_and_fields() {
        let p = Pattern::parse("cccc 0000 000S dddd 0000 ssss 1001 mmmm", 32, POS).unwrap();
        assert_eq!(p.width, 32);
        // Literal bits: 0000 at 27..24 wait -- bits 27..25? compute directly.
        assert!(p.matches(0xe000_0291)); // mul r0, r1, r2
        assert!(!p.matches(0xe020_0291)); // mla has bit21 set
        assert_eq!(p.extract('c', 0xe000_0291), 0xe);
        assert_eq!(p.extract('d', 0xe000_0291), 0);
        assert_eq!(p.extract('s', 0xe000_0291), 2);
        assert_eq!(p.extract('m', 0xe000_0291), 1);
        assert_eq!(
            p.pack(&[('c', 0xe), ('d', 0), ('s', 2), ('m', 1), ('S', 0)]),
            0xe000_0291
        );
    }

    #[test]
    fn split_runs_concatenate_msb_first() {
        // Halfword immediate: hi nibble at 11..8, lo nibble at 3..0.
        let p = Pattern::parse("cccc 000p u1w0 nnnn dddd hhhh 1011 llll", 32, POS).unwrap();
        let word = p.pack(&[('h', 0xa), ('l', 0x5)]);
        assert_eq!(p.extract('h', word), 0xa);
        assert_eq!(p.extract('l', word), 0x5);
        // A genuinely split field in one letter.
        let q = Pattern::parse("ii00ii", 6, POS).unwrap();
        assert_eq!(q.fields.len(), 1);
        assert_eq!(q.fields[0].width, 4);
        assert_eq!(q.fields[0].runs, vec![(4, 2), (0, 2)]);
        assert_eq!(q.extract('i', 0b11_00_01), 0b1101);
        assert_eq!(q.pack(&[('i', 0b1101)]), 0b11_00_01);
    }

    #[test]
    fn width_and_alphabet_enforced() {
        assert!(Pattern::parse("0000", 5, POS).is_err());
        assert!(Pattern::parse("00?0", 4, POS).is_err());
        // Separators don't count toward width.
        assert!(Pattern::parse("00_00 1111", 8, POS).is_ok());
    }

    #[test]
    fn overlap_and_subset() {
        let swi = Pattern::parse("11011111 iiiiiiii", 16, POS).unwrap();
        let bcond = Pattern::parse("1101 cccc iiiiiiii", 16, POS).unwrap();
        let b = Pattern::parse("11100 iiiiiiiiiii", 16, POS).unwrap();
        assert!(swi.overlaps(&bcond));
        assert!(swi.subset_of(&bcond));
        assert!(!bcond.subset_of(&swi));
        assert!(!swi.overlaps(&b));
        assert!(!b.overlaps(&bcond));
    }

    #[test]
    fn extract_unknown_letter_is_zero() {
        let p = Pattern::parse("1010", 4, POS).unwrap();
        assert_eq!(p.extract('q', 0b1010), 0);
        assert_eq!(p.pack(&[('q', 3)]), 0b1010);
    }
}
