//! `IsaSpec` — a parsed, validated, runtime-loaded ISA description.
//!
//! The machine descriptions that used to be frozen Rust in this crate
//! (AR32 decode/encode tables, the T16 halfword formats, the FITS
//! decoder vocabulary) are now *data*: a small text format with a
//! `powerfits-isa-v1` schema describes the register file, the encoding
//! forms as bit patterns with named fields, the reserved carve-outs with
//! their rejection reasons, and (for FITS) the layout/tier/dictionary
//! vocabulary the synthesizer draws from. The shipped AR32/T16/FITS
//! descriptions are embedded spec texts compiled into pattern tables at
//! load; user-supplied specs go through the identical loader and are
//! validated by `fits-verify`'s ISA family before use.
//!
//! Split of responsibility: the spec carries *dispatch* — which words
//! belong to which named form, in priority order, with reserved
//! carve-outs — while Rust form constructors bound by form name carry
//! the field *semantics* (operand assembly, plus field-value-dependent
//! rejections such as ROR #0 or post-index writeback that a mask/value
//! pattern cannot express).

pub mod lex;
pub mod parse;
pub mod pattern;

mod ar32;
mod t16;

pub use ar32::Ar32Tables;
pub use pattern::{Field, Pattern};
pub use t16::T16Tables;

use std::fmt;
use std::sync::{Arc, OnceLock};

/// Schema identifier every spec must declare.
pub const SCHEMA: &str = "powerfits-isa-v1";

/// Embedded source text of the shipped AR32 spec.
pub const AR32_SPEC_TEXT: &str = include_str!("../../specs/ar32.isa");
/// Embedded source text of the shipped T16 spec.
pub const T16_SPEC_TEXT: &str = include_str!("../../specs/t16.isa");
/// Embedded source text of the shipped FITS spec.
pub const FITS_SPEC_TEXT: &str = include_str!("../../specs/fits.isa");

/// A 1-based line/column source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A spec loading error with the source position it points at.
#[derive(Clone, Debug)]
pub struct SpecError {
    /// Where in the spec text the problem is.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl SpecError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> Self {
        SpecError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec:{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Whether a pattern entry decodes to an instruction or rejects a
/// reserved encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// A decodable instruction form; a Rust constructor bound by name
    /// supplies the field semantics.
    Form,
    /// A reserved carve-out: matching words are rejected with `reason`.
    Reserved {
        /// Why the encoding is rejected, as written in the spec.
        reason: String,
    },
}

/// One prioritized pattern entry: forms and reserved carve-outs share a
/// single ordered list; the first matching entry wins.
#[derive(Clone, Debug)]
pub struct PatternEntry {
    /// Form or carve-out name (unique within the spec).
    pub name: String,
    /// Form vs. reserved.
    pub kind: EntryKind,
    /// The bit pattern.
    pub pattern: Pattern,
    /// Source position of the entry's declaration.
    pub pos: Pos,
}

impl PatternEntry {
    /// Is this a decodable form (not a reserved carve-out)?
    #[must_use]
    pub fn is_form(&self) -> bool {
        matches!(self.kind, EntryKind::Form)
    }
}

/// The register file description.
#[derive(Clone, Debug, Default)]
pub struct RegisterFile {
    /// Number of architectural registers.
    pub count: u32,
    /// Named aliases (`sp` → 13, ...).
    pub aliases: Vec<(String, u32)>,
    /// Permitted visible-window sizes (FITS synthesis knob); empty means
    /// the full file is always visible.
    pub windows: Vec<u32>,
}

/// A parsed and structurally validated ISA specification.
#[derive(Clone, Debug)]
pub struct IsaSpec {
    /// ISA name (`ar32`, `t16`, `fits`, or a user-chosen name).
    pub name: String,
    /// Declared schema; always [`SCHEMA`] after validation.
    pub schema: String,
    /// Instruction word width in bits (16 or 32).
    pub word_width: u32,
    /// Register file description.
    pub registers: RegisterFile,
    /// Condition flags in declaration order.
    pub flags: Vec<String>,
    /// Prioritized encoding forms and reserved carve-outs, file order.
    pub entries: Vec<PatternEntry>,
    /// Operand-layout vocabulary (FITS synthesis plane).
    pub layouts: Vec<String>,
    /// Encoding-tier vocabulary (FITS synthesis plane).
    pub tiers: Vec<String>,
    /// Dictionary vocabulary (FITS synthesis plane).
    pub dictionaries: Vec<String>,
    source: String,
}

impl IsaSpec {
    /// Parses and structurally validates a spec document.
    ///
    /// # Errors
    ///
    /// Returns a position-carrying [`SpecError`] on lexical, syntactic or
    /// structural problems (wrong schema, bad width, duplicate names,
    /// out-of-range aliases).
    pub fn load(text: &str) -> Result<Self, SpecError> {
        let spec = parse::parse_spec(text)?;
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), SpecError> {
        let top = Pos { line: 1, col: 1 };
        if self.schema != SCHEMA {
            return Err(SpecError::new(
                top,
                format!("schema `{}` is not `{SCHEMA}`", self.schema),
            ));
        }
        if self.word_width != 16 && self.word_width != 32 {
            return Err(SpecError::new(
                top,
                format!("word-width {} is not 16 or 32", self.word_width),
            ));
        }
        if self.registers.count == 0 || self.registers.count > 64 {
            return Err(SpecError::new(
                top,
                format!(
                    "register count {} out of range 1..=64",
                    self.registers.count
                ),
            ));
        }
        for (alias, idx) in &self.registers.aliases {
            if *idx >= self.registers.count {
                return Err(SpecError::new(
                    top,
                    format!(
                        "alias `{alias}` = {idx} exceeds register count {}",
                        self.registers.count
                    ),
                ));
            }
        }
        for window in &self.registers.windows {
            if *window == 0 || *window > self.registers.count {
                return Err(SpecError::new(
                    top,
                    format!("window {window} out of range 1..={}", self.registers.count),
                ));
            }
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if self.entries[..i].iter().any(|e| e.name == entry.name) {
                return Err(SpecError::new(
                    entry.pos,
                    format!("duplicate pattern name `{}`", entry.name),
                ));
            }
        }
        for list in [&self.layouts, &self.tiers, &self.dictionaries] {
            for (i, name) in list.iter().enumerate() {
                if list[..i].iter().any(|n| n == name) {
                    return Err(SpecError::new(top, format!("duplicate name `{name}`")));
                }
            }
        }
        Ok(())
    }

    /// The spec source text exactly as loaded.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// FNV-1a hash of the source text — the spec's content address.
    #[must_use]
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.source.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The content hash as fixed-width lowercase hex.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash())
    }

    /// Iterates the decodable forms (skipping reserved carve-outs).
    pub fn forms(&self) -> impl Iterator<Item = &PatternEntry> {
        self.entries.iter().filter(|e| e.is_form())
    }

    /// Looks up an entry by name.
    #[must_use]
    pub fn entry(&self, name: &str) -> Option<&PatternEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The shipped spec for a built-in ISA name, if any.
    #[must_use]
    pub fn builtin(name: &str) -> Option<&'static IsaSpec> {
        match name {
            "ar32" => Some(builtin_ar32()),
            "t16" => Some(builtin_t16()),
            "fits" => Some(builtin_fits()),
            _ => None,
        }
    }
}

fn load_shipped(text: &str, which: &str) -> IsaSpec {
    match IsaSpec::load(text) {
        Ok(spec) => spec,
        Err(err) => unreachable!("shipped {which} spec invalid: {err}"),
    }
}

/// The shipped AR32 spec (parsed once).
#[must_use]
pub fn builtin_ar32() -> &'static IsaSpec {
    static SPEC: OnceLock<IsaSpec> = OnceLock::new();
    SPEC.get_or_init(|| load_shipped(AR32_SPEC_TEXT, "ar32"))
}

/// The shipped T16 spec (parsed once).
#[must_use]
pub fn builtin_t16() -> &'static IsaSpec {
    static SPEC: OnceLock<IsaSpec> = OnceLock::new();
    SPEC.get_or_init(|| load_shipped(T16_SPEC_TEXT, "t16"))
}

/// The shipped FITS spec (parsed once).
#[must_use]
pub fn builtin_fits() -> &'static IsaSpec {
    static SPEC: OnceLock<IsaSpec> = OnceLock::new();
    SPEC.get_or_init(|| load_shipped(FITS_SPEC_TEXT, "fits"))
}

/// The three ISA specs a pipeline run resolves against. `Default` is the
/// shipped catalog; serving swaps in user-supplied specs per request.
#[derive(Clone, Debug)]
pub struct SpecCatalog {
    /// The AR32 (source ISA) spec.
    pub ar32: Arc<IsaSpec>,
    /// The T16 (Thumb-like comparison ISA) spec.
    pub t16: Arc<IsaSpec>,
    /// The FITS (synthesized ISA) vocabulary spec.
    pub fits: Arc<IsaSpec>,
}

impl Default for SpecCatalog {
    fn default() -> Self {
        SpecCatalog {
            ar32: Arc::new(builtin_ar32().clone()),
            t16: Arc::new(builtin_t16().clone()),
            fits: Arc::new(builtin_fits().clone()),
        }
    }
}

impl SpecCatalog {
    /// A compact identity string: the three spec hashes joined, used as
    /// a cache-key component and stamped into artifacts.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!(
            "{}{}{}",
            self.ar32.hash_hex(),
            self.t16.hash_hex(),
            self.fits.hash_hex()
        )
    }

    /// Is this the shipped catalog (all three specs hash-identical to
    /// the built-ins)?
    #[must_use]
    pub fn is_builtin(&self) -> bool {
        self.ar32.hash() == builtin_ar32().hash()
            && self.t16.hash() == builtin_t16().hash()
            && self.fits.hash() == builtin_fits().hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_specs_load() {
        let ar32 = builtin_ar32();
        assert_eq!(ar32.name, "ar32");
        assert_eq!(ar32.word_width, 32);
        assert_eq!(ar32.registers.count, 16);
        let t16 = builtin_t16();
        assert_eq!(t16.word_width, 16);
        let fits = builtin_fits();
        assert_eq!(fits.word_width, 16);
        assert!(!fits.layouts.is_empty());
        assert!(!fits.tiers.is_empty());
    }

    #[test]
    fn hash_is_stable_and_content_addressed() {
        let a = builtin_ar32();
        let b = IsaSpec::load(AR32_SPEC_TEXT).unwrap();
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.hash_hex().len(), 16);
        let c = IsaSpec::load(&AR32_SPEC_TEXT.replace("ar32", "ar32x")).unwrap();
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn validation_rejects_structural_problems() {
        let bad_schema = "isa x { schema powerfits-isa-v2 word-width 32 registers { count 16 } }";
        assert!(IsaSpec::load(bad_schema)
            .unwrap_err()
            .to_string()
            .contains("schema"));
        let bad_width = "isa x { schema powerfits-isa-v1 word-width 24 registers { count 16 } }";
        assert!(IsaSpec::load(bad_width)
            .unwrap_err()
            .to_string()
            .contains("word-width"));
        let dup = "isa x { schema powerfits-isa-v1 word-width 16 registers { count 8 } \
                   form a { pattern \"0000000000000000\" } form a { pattern \"1111111111111111\" } }";
        let err = IsaSpec::load(dup).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        let alias =
            "isa x { schema powerfits-isa-v1 word-width 16 registers { count 8 alias sp 13 } }";
        assert!(IsaSpec::load(alias)
            .unwrap_err()
            .to_string()
            .contains("alias"));
    }

    #[test]
    fn builtin_lookup_and_catalog() {
        assert!(IsaSpec::builtin("ar32").is_some());
        assert!(IsaSpec::builtin("nope").is_none());
        let catalog = SpecCatalog::default();
        assert!(catalog.is_builtin());
        assert_eq!(catalog.hash_hex().len(), 48);
    }
}
